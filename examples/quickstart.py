#!/usr/bin/env python
"""Quickstart: simulate data, compute a likelihood, optimise, search.

The 60-second tour of the library's public API:

1. simulate a DNA alignment along a random tree (GTR+Gamma),
2. compute the phylogenetic log-likelihood of the true tree,
3. optimise branch lengths with the Newton–Raphson kernels,
4. run a full maximum-likelihood tree search from scratch and check it
   recovers the generating topology.

Run:  python examples/quickstart.py
"""

from repro import GammaRates, LikelihoodEngine, gtr, simulate_dataset
from repro.search import SearchConfig, ml_search, optimize_all_branches


def main() -> None:
    # 1. simulate: 12 taxa, 1500 sites, GTR+Gamma4 (INDELible-equivalent)
    sim = simulate_dataset(n_taxa=12, n_sites=1500, seed=42)
    patterns = sim.alignment.compress()
    print(
        f"simulated {sim.alignment.n_taxa} taxa x {sim.alignment.n_sites} sites "
        f"({patterns.n_patterns} unique patterns)"
    )

    # 2. likelihood of the true tree under a fresh GTR+Gamma model
    engine = LikelihoodEngine(
        patterns, sim.tree.copy(), gtr(), GammaRates(alpha=1.0, n_categories=4)
    )
    print(f"lnL (true tree, default parameters): {engine.log_likelihood():.2f}")

    # 3. branch-length optimisation (derivativeSum/derivativeCore kernels)
    lnl = optimize_all_branches(engine, passes=3)
    print(f"lnL (after branch optimisation):     {lnl:.2f}")

    # 4. full ML search from a parsimony starting tree
    result = ml_search(
        sim.alignment, config=SearchConfig(radii=(5,), max_spr_rounds=5)
    )
    rf = result.tree.robinson_foulds(sim.tree)
    print(f"lnL (full search):                   {result.lnl:.2f}")
    print(f"estimated alpha: {result.alpha:.3f}")
    print(f"Robinson-Foulds distance to the true topology: {rf}")
    print(f"kernel invocations during the search: {result.counters.merged()}")
    print("\nfinal tree:")
    print(result.newick)


if __name__ == "__main__":
    main()
