#!/usr/bin/env python
"""A realistic inference workflow: files in, tree + report out.

Mirrors how RAxML-Light is driven in practice: a PHYLIP alignment on
disk, a full ML search (parsimony start -> model optimisation -> SPR
rounds -> final polish), and a Newick tree plus a run report written
back out.  Also demonstrates the partitioned-analysis extension: the
same tree evaluated under two independent per-gene models.

Run:  python examples/full_tree_search.py [workdir]
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.core.partitioned import Partition, PartitionedEngine
from repro.phylo import (
    GammaRates,
    gtr,
    read_phylip,
    simulate_alignment,
    simulate_dataset,
    write_phylip,
)
from repro.search import SearchConfig, ml_search, optimize_all_branches


def main() -> None:
    workdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp())
    workdir.mkdir(parents=True, exist_ok=True)

    # --- produce an input file (in real use this comes from a sequencer)
    sim = simulate_dataset(n_taxa=10, n_sites=2000, seed=7)
    phylip_path = workdir / "alignment.phy"
    write_phylip(sim.alignment, phylip_path)
    print(f"wrote {phylip_path}")

    # --- the actual workflow: read, search, write
    alignment = read_phylip(phylip_path)
    result = ml_search(
        alignment, config=SearchConfig(radii=(5, 10), max_spr_rounds=8, seed=7)
    )
    tree_path = workdir / "ml_tree.nwk"
    tree_path.write_text(result.newick + "\n")

    print(f"final lnL: {result.lnl:.3f}   alpha: {result.alpha:.3f}")
    print("GTR exchangeabilities (AC AG AT CG CT GT):")
    print("  " + " ".join(f"{x:.3f}" for x in result.model.exchangeabilities))
    print(f"search wall time: {result.wall_time:.1f}s")
    print("likelihood trajectory:")
    for stage, lnl in result.lnl_trajectory:
        print(f"  {stage:<20s} {lnl:.3f}")
    print(f"RF distance to the generating topology: "
          f"{result.tree.robinson_foulds(sim.tree)}")
    print(f"wrote {tree_path}")

    # --- partitioned analysis on the inferred tree (two 'genes')
    rng = np.random.default_rng(8)
    model2 = gtr(
        np.array([0.9, 4.5, 1.1, 0.9, 4.5, 1.0]),
        np.array([0.35, 0.15, 0.15, 0.35]),
    )
    gene2 = simulate_alignment(
        result.tree, model2, 800, rng, gamma=GammaRates(0.5, 4)
    ).alignment
    engine = PartitionedEngine(
        [
            Partition("gene1", alignment.compress(), result.model,
                      GammaRates(result.alpha, 4)),
            Partition("gene2", gene2.compress(), model2, GammaRates(0.5, 4)),
        ],
        result.tree.copy(),
    )
    lnl = optimize_all_branches(engine, passes=2)
    print(f"\npartitioned analysis (2 genes, shared branch lengths): "
          f"lnL = {lnl:.3f}")
    for name, site_lnl in engine.per_site_log_likelihoods().items():
        print(f"  {name}: {site_lnl.shape[0]} patterns, "
              f"mean site lnL {site_lnl.mean():.3f}")


if __name__ == "__main__":
    main()
