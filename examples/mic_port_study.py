#!/usr/bin/env python
"""The MIC port under the microscope (paper Sections III & V).

Walks through the paper's optimisation story on the simulated Xeon Phi:

1. Figure 2 — pragma auto-vectorization and intrinsics emit identical
   code on the 512-bit ISA,
2. per-kernel cycle measurements on the simulated MIC vs the AVX CPU
   core (Figure 3's raw material),
3. streaming stores: DRAM traffic with and without (Sec. V-B5),
4. software prefetch distance tuning (Sec. V-B6),
5. offload vs native invocation cost (Sec. V-C).

Run:  python examples/mic_port_study.py
"""

import numpy as np

from repro.core import kernels as ref
from repro.core.vectorized import (
    emit_derivative_core,
    emit_derivative_sum,
    emit_evaluate,
    emit_newview_inner_inner,
    prepare_derivative_consts,
    prepare_evaluate_consts,
    prepare_newview_consts,
    setup_buffers,
)
from repro.harness.figure2 import render_figure2
from repro.mic import NativeRuntime, OffloadRuntime, xeon_e5_device, xeon_phi_device
from repro.phylo import GammaRates, gtr


def kernel_cycles(device, kernel, problem):
    eigen, gamma, zl, zr, w = problem
    vm = device.make_vm()
    if kernel == "derivative_core":
        sumbuf = ref.derivative_sum(zl, zr)
        bufs = setup_buffers(vm, sumbuf, zr, weights=w)
        prepare_derivative_consts(vm, bufs, eigen, gamma.rates, gamma.weights, 0.3)
        prog = emit_derivative_core(vm.isa, bufs, site_block=vm.isa.width)
    else:
        bufs = setup_buffers(vm, zl, zr, weights=w)
        if kernel == "derivative_sum":
            prog = emit_derivative_sum(vm.isa, bufs)
        elif kernel == "evaluate":
            prepare_evaluate_consts(vm, bufs, eigen, gamma.rates, gamma.weights, 0.3)
            prog = emit_evaluate(vm.isa, bufs)
        else:
            prepare_newview_consts(vm, bufs, eigen, gamma.rates, 0.2, 0.4)
            prog = emit_newview_inner_inner(vm.isa, bufs)
    stats = vm.run(prog)
    return stats, bufs, vm


def main() -> None:
    print(render_figure2())

    rng = np.random.default_rng(0)
    n_sites = 96
    model = gtr(
        np.array([1.2, 3.1, 0.9, 1.1, 3.4, 1.0]),
        np.array([0.3, 0.2, 0.2, 0.3]),
    )
    problem = (
        model.eigen(),
        GammaRates(0.8, 4),
        rng.uniform(0.1, 1.0, size=(n_sites, 4, 4)),
        rng.uniform(0.1, 1.0, size=(n_sites, 4, 4)),
        np.ones(n_sites),
    )

    print("\nPer-kernel VM measurements (cycles/site, DRAM bytes/site):")
    mic, cpu = xeon_phi_device(), xeon_e5_device()
    print(f"{'kernel':<18s} {'MIC cyc':>8s} {'MIC B':>6s} {'CPU cyc':>8s} {'CPU B':>6s}")
    for kernel in ("newview", "evaluate", "derivative_sum", "derivative_core"):
        sm, *_ = kernel_cycles(mic, kernel, problem)
        sc, *_ = kernel_cycles(cpu, kernel, problem)
        print(
            f"{kernel:<18s} {sm.cycles / n_sites:8.1f} "
            f"{sm.memory.dram_bytes / n_sites:6.0f} "
            f"{sc.cycles / n_sites:8.1f} "
            f"{sc.memory.dram_bytes / n_sites:6.0f}"
        )

    print("\nStreaming stores (derivativeSum on the MIC, Sec. V-B5):")
    vm = mic.make_vm()
    bufs = setup_buffers(vm, problem[2], problem[3])
    with_nt = vm.run(emit_derivative_sum(vm.isa, bufs, nontemporal=True))
    without = vm.run(emit_derivative_sum(vm.isa, bufs, nontemporal=False))
    print(f"  DRAM bytes/site with streaming stores:    "
          f"{with_nt.memory.dram_bytes / n_sites:.0f}")
    print(f"  DRAM bytes/site with regular stores:      "
          f"{without.memory.dram_bytes / n_sites:.0f}")

    print("\nSoftware prefetch distance (Sec. V-B6, HW streamer disabled):")
    for dist in (0, 1, 2, 4, 8):
        vm = mic.make_vm()
        vm.hierarchy.hw_prefetch_enabled = False
        bufs = setup_buffers(vm, problem[2], problem[3])
        stats = vm.run(emit_derivative_sum(vm.isa, bufs, prefetch_distance=dist))
        print(f"  distance {dist:2d}: {stats.cycles / n_sites:7.0f} cycles/site")

    print("\nPeephole optimisation of the auto-vectorized square kernel:")
    from repro.mic import MIC512
    from repro.mic.compiler import ArrayRef, Loop, auto_vectorize
    from repro.mic.peephole import optimize_program

    vm = mic.make_vm()
    arrays = {"a": vm.alloc(64), "out": vm.alloc(64)}
    loop = Loop(64, "out", ArrayRef("a") * ArrayRef("a")).with_pragmas(
        "ivdep", "vector aligned"
    )
    naive, _ = auto_vectorize(loop, arrays, MIC512)
    opt = optimize_program(naive, MIC512)
    print(f"  naive:     {len(naive)} instructions")
    print(f"  optimised: {len(opt.program)} instructions "
          f"({opt.instructions_removed} removed, "
          f"{opt.issue_cycles_saved:.0f} issue cycles saved)")

    print("\nOffload vs native invocation (Sec. V-C):")
    kernel_s = 50e-6  # a typical small-alignment kernel invocation
    offload, native = OffloadRuntime(), NativeRuntime()
    t_off = sum(offload.invoke(kernel_s) for _ in range(1000))
    t_nat = sum(native.invoke(kernel_s) for _ in range(1000))
    print(f"  1000 calls, offload: {t_off * 1e3:.1f} ms "
          f"(overhead {offload.overhead_seconds * 1e3:.1f} ms)")
    print(f"  1000 calls, native:  {t_nat * 1e3:.1f} ms")
    print(f"  native speedup: {t_off / t_nat:.2f}x "
          "(the paper observed 'exceeding a factor of two')")


if __name__ == "__main__":
    main()
