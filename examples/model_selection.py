#!/usr/bin/env python
"""Model selection and distance-based starting trees.

The workflow a study runs before committing to the paper's GTR+Gamma
configuration:

1. build a quick neighbor-joining tree from Jukes–Cantor distances,
2. fit the candidate model family (JC69/K80/HKY85/GTR, each +-Gamma)
   on that fixed tree,
3. rank by BIC and report the winner,
4. run the full ML search under the selected model.

Run:  python examples/model_selection.py
"""

import numpy as np

from repro.phylo import (
    alignment_stats,
    gtr,
    jc_distance,
    neighbor_joining,
    simulate_dataset,
)
from repro.search import SearchConfig, ml_search, select_model


def main() -> None:
    # data generated under GTR+Gamma with strong transition bias
    sim = simulate_dataset(
        n_taxa=8,
        n_sites=1500,
        seed=77,
        model=gtr(
            np.array([1.0, 6.0, 1.0, 1.0, 6.0, 1.0]),
            np.array([0.35, 0.15, 0.15, 0.35]),
        ),
        alpha=0.4,
    )
    patterns = sim.alignment.compress()
    print(alignment_stats(patterns).summary())

    # 1. NJ guide tree
    d, taxa = jc_distance(patterns)
    guide = neighbor_joining(d, taxa)
    print(f"\nNJ guide tree RF to truth: {guide.robinson_foulds(sim.tree)}")

    # 2./3. model selection on the guide tree
    best, fits = select_model(patterns, guide, criterion="bic")
    print("\nmodel ranking (BIC):")
    print(f"{'model':<10s} {'lnL':>12s} {'k':>4s} {'AIC':>12s} {'BIC':>12s}")
    for f in fits:
        marker = " <- selected" if f.name == best.name else ""
        print(
            f"{f.name:<10s} {f.lnl:12.2f} {f.n_parameters:4d} "
            f"{f.aic:12.2f} {f.bic:12.2f}{marker}"
        )

    # 4. full search under the winner (GTR+G expected on this data)
    result = ml_search(
        sim.alignment,
        starting_tree=guide,
        config=SearchConfig(radii=(4,), max_spr_rounds=4),
    )
    print(f"\nfinal search under GTR+G: lnL {result.lnl:.2f}, "
          f"RF to truth {result.tree.robinson_foulds(sim.tree)}")


if __name__ == "__main__":
    main()
