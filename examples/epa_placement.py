#!/usr/bin/env python
"""Evolutionary placement of query reads (the paper's Sec. VII outlook).

Simulates a reference phylogeny, holds three taxa out as 'environmental
query reads', and places them back with the EPA implementation.  Because
every (branch, query) evaluation is independent, the kernel trace has no
mandatory reduction points — the communication profile the paper argues
makes placement an even better fit for the MIC than tree search.

Run:  python examples/epa_placement.py
"""

from repro.phylo import Alignment, GammaRates, gtr, simulate_dataset
from repro.search.epa import place_queries


def main() -> None:
    sim = simulate_dataset(n_taxa=12, n_sites=1200, seed=99)
    alignment = sim.alignment
    query_names = alignment.taxa[2:5]
    print(f"holding out as queries: {', '.join(query_names)}")

    # prune the queries from the true tree to get the reference tree
    ref_tree = sim.tree.copy()
    for name in query_names:
        leaf = ref_tree.node_by_name(name)
        pendant = ref_tree.incident_edges(leaf)[0]
        ref_tree.prune_subtree(pendant, subtree_root=leaf)
        ref_tree.remove_node(leaf)
    ref_tree.check()

    reference = Alignment.from_sequences(
        {
            t: alignment.sequence(t)
            for t in alignment.taxa
            if t not in query_names
        }
    )
    queries = {name: alignment.sequence(name) for name in query_names}

    results = place_queries(
        reference, ref_tree, queries, gtr(), GammaRates(1.0, 4), keep_best=3
    )
    for result in results:
        print(f"\nquery {result.query}:")
        for i, p in enumerate(result.placements, 1):
            side = ",".join(p.edge_label)
            print(
                f"  #{i}: branch toward [{side}]  lnL {p.log_likelihood:.2f}  "
                f"LWR {p.weight_ratio:.3f}  pendant {p.pendant_length:.4f}"
            )


if __name__ == "__main__":
    main()
