#!/usr/bin/env python
"""Bootstrap support, consensus trees, and CAT rate assignment.

Demonstrates the inference-quality toolkit around the core search:

1. infer an ML tree,
2. run non-parametric bootstrap replicates (pattern reweighting),
3. compute per-branch support values and draw them on the tree,
4. build the majority-rule consensus of the replicates,
5. compare the Gamma model against a likelihood-assigned CAT model
   (the Stamatakis-2006 approximation the paper lists as future work).

Run:  python examples/bootstrap_support.py
"""

import numpy as np

from repro.core import CatLikelihoodEngine, LikelihoodEngine
from repro.core.cat import assign_categories_by_likelihood
from repro.phylo import CatRates, GammaRates, ascii_tree, gtr, simulate_dataset
from repro.search import SearchConfig, bootstrap_analysis, ml_search


def main() -> None:
    sim = simulate_dataset(n_taxa=8, n_sites=800, seed=2024, alpha=0.5)
    patterns = sim.alignment.compress()

    # 1. ML tree
    result = ml_search(
        sim.alignment, config=SearchConfig(radii=(4,), max_spr_rounds=4)
    )
    print(f"ML tree lnL: {result.lnl:.2f} "
          f"(RF to truth: {result.tree.robinson_foulds(sim.tree)})")

    # 2./3. bootstrap + support
    boot = bootstrap_analysis(
        patterns, result.tree, result.model, GammaRates(result.alpha, 4),
        n_replicates=10, seed=7,
    )
    print(f"\nbootstrap ({len(boot.replicate_trees)} replicates), "
          f"minimum split support: {boot.min_support() * 100:.0f}%")
    print(ascii_tree(result.tree, support=boot.support))

    # 4. majority-rule consensus
    consensus, cons_support = boot.consensus()
    print("\nmajority-rule consensus of the replicates:")
    print(ascii_tree(consensus, show_lengths=False, support=cons_support))

    # 5. Gamma vs likelihood-assigned CAT
    gamma_engine = LikelihoodEngine(
        patterns, result.tree.copy(), result.model, GammaRates(result.alpha, 4)
    )
    rng = np.random.default_rng(1)
    cat = CatRates.from_gamma(
        result.alpha, patterns.n_patterns, 4, rng, weights=patterns.weights
    )
    cat_engine = CatLikelihoodEngine(
        patterns, result.tree.copy(), result.model, cat
    )
    random_lnl = cat_engine.log_likelihood()
    assign_categories_by_likelihood(cat_engine)
    print(f"\nGamma4 lnL:                  {gamma_engine.log_likelihood():.2f}")
    print(f"CAT lnL (random categories): {random_lnl:.2f}")
    print(f"CAT lnL (ML-assigned):       {cat_engine.log_likelihood():.2f}")
    print("(CAT overfits per-site rates, hence its higher likelihood — "
          "the reason RAxML only uses CAT for searching, not reporting)")


if __name__ == "__main__":
    main()
