#!/usr/bin/env python
"""Multi-card scaling study: Table III, Figures 4 and 5 end to end.

Reproduces the paper's application-level evaluation from one script:

1. regenerates Table III's time and speedup matrix from the trace-driven
   platform models,
2. derives Figure 4 (2-MIC vs 1-MIC) and Figure 5 (energy),
3. demonstrates the *functional* side: ExaML's distributed likelihood on
   simulated MPI ranks agrees with the serial engine to machine
   precision while the modelled AllReduce time is accounted.

Run:  python examples/multi_card_scaling.py
"""

from repro.core import LikelihoodEngine
from repro.harness.figure4 import render_figure4
from repro.harness.figure5 import render_figure5
from repro.harness.table3 import render_table3
from repro.parallel import DistributedEngine, SimMPI
from repro.parallel.hybrid import MIC_ONCARD_MPI
from repro.parallel.simmpi import PCIE_MIC_MIC
from repro.phylo import GammaRates, gtr, simulate_dataset


def main() -> None:
    print(render_table3())
    print()
    print(render_figure4())
    print()
    print(render_figure5())

    print("\nFunctional check: ExaML's scheme on simulated ranks")
    print("=" * 55)
    sim = simulate_dataset(n_taxa=15, n_sites=5000, seed=3)
    patterns = sim.alignment.compress()
    model, gamma = gtr(), GammaRates(0.8, 4)

    serial = LikelihoodEngine(patterns, sim.tree.copy(), model, gamma)
    lnl_serial = serial.log_likelihood()

    # 4 ranks as on two MIC cards: 2 ranks/card, cards over PCIe
    mpi = SimMPI(
        4, interconnect=MIC_ONCARD_MPI, inter=PCIE_MIC_MIC, ranks_per_group=2
    )
    dist = DistributedEngine(
        patterns, sim.tree.copy(), model, gamma, n_ranks=4, mpi=mpi
    )
    lnl_dist = dist.log_likelihood()
    print(f"serial lnL:      {lnl_serial:.6f}")
    print(f"distributed lnL: {lnl_dist:.6f}  (4 ranks, 2 cards)")
    print(f"difference:      {abs(lnl_serial - lnl_dist):.2e}")

    # a branch optimisation pass to exercise derivative reductions
    from repro.search import optimize_all_branches

    optimize_all_branches(dist, passes=1)
    print(
        f"after one smoothing pass: {mpi.allreduce_calls} AllReduce calls, "
        f"modelled communication time {mpi.comm_seconds * 1e3:.2f} ms"
    )


if __name__ == "__main__":
    main()
