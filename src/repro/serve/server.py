"""The placement server: warm sessions, cross-query batching, tenancy.

Architecture (DESIGN.md §12):

- A :class:`Tenant` owns one reference tree's warm state — a
  :class:`~repro.search.epa.PlacementSession` (compressed reference,
  decoded rows, precomputed candidate labels/distals, merged-pattern
  LRU), an optional resident reference engine (``session.warm()``
  through the memsave machinery), and, for process-parallel tenants, a
  labelled resident :class:`~repro.parallel.forkjoin.ForkJoinEngine`
  worker pool the faults layer reports on.
- Each tenant runs a single **dispatcher thread**: concurrent HTTP
  requests enqueue their queries, the dispatcher waits a short batching
  window, coalesces compatible pending requests (disjoint query names,
  combined size ≤ ``max_batch``) into one ``session.place()`` call —
  which fuses the queries' per-candidate traversals into lockstep wave
  dispatches — and fans the ranked results back out per request.
  Because likelihood-weight ratios are normalised over the *full*
  candidate set before ``keep_best`` truncation, one shared ranking
  serves every request's ``keep_best`` by pure slicing, bit-identical
  to an offline :func:`~repro.search.epa.place_queries` run.
- Tenants live in a bounded LRU: registering beyond ``max_tenants``
  evicts (closes) the least-recently-used tenant, mirroring the CLA
  eviction policy of :class:`~repro.core.memsave.MemorySavingEngine`
  one level up.
- The HTTP front reuses the :mod:`repro.obs.server` patterns
  (``ThreadingHTTPServer`` on daemon threads, JSON documents, silenced
  request logging) and serves the observability documents itself:
  ``/metrics`` (including per-tenant lanes), ``/healthz`` (503 once any
  worker death or degradation event fires) and ``/progress``.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from ..obs import server as _obs_server
from ..obs.metrics import get_registry, log_buckets, sanitize_metric_component
from ..phylo.alignment import Alignment, PatternAlignment
from ..phylo.models import SubstitutionModel, gtr
from ..phylo.rates import GammaRates
from ..phylo.tree import Tree
from ..search.epa import PlacementResult, PlacementSession, to_jplace

__all__ = ["Tenant", "PlacementServer", "serve"]


@dataclass
class _Pending:
    """One enqueued placement request awaiting its batch."""

    queries: dict[str, str]
    keep_best: int
    enqueued_at: float
    done: threading.Event = field(default_factory=threading.Event)
    results: list[PlacementResult] | None = None
    error: str | None = None
    code: int = 200


class Tenant:
    """Warm per-reference-tree serving state plus its dispatcher thread."""

    def __init__(
        self,
        name: str,
        session: PlacementSession,
        *,
        max_batch: int = 16,
        batch_wait_s: float = 0.02,
        keep_best: int = 5,
        pool_engine=None,
    ) -> None:
        self.name = name
        self.session = session
        self.max_batch = max(int(max_batch), 1)
        self.batch_wait_s = float(batch_wait_s)
        self.keep_best = keep_best
        self.pool_engine = pool_engine
        self.created_at = time.monotonic()
        self.last_used_at = self.created_at
        self.last_error: str | None = None
        self.batches_run = 0
        lane = sanitize_metric_component(name)
        reg = get_registry()
        self.m_queries = reg.counter(
            f"repro_serve_{lane}_queries_total",
            f"queries placed for tenant {name}",
        )
        self.m_depth = reg.gauge(
            f"repro_serve_{lane}_queue_depth",
            f"requests waiting in tenant {name}'s queue",
        )
        self.m_latency = reg.histogram(
            f"repro_serve_{lane}_latency_seconds",
            f"request latency for tenant {name} (enqueue to response)",
            bounds=log_buckets(1e-4, 100.0, per_decade=3),
        )
        self.m_batch = reg.histogram(
            f"repro_serve_{lane}_batch_queries",
            f"queries fused per dispatch for tenant {name}",
            bounds=log_buckets(1.0, 256.0, per_decade=3),
        )
        self._cond = threading.Condition()
        self._queue: deque[_Pending] = deque()
        self._closed = False
        self._thread = threading.Thread(
            target=self._dispatch_loop,
            name=f"repro-serve-dispatch:{name}",
            daemon=True,
        )
        self._thread.start()

    # -- request side ---------------------------------------------------
    def submit(self, queries: dict[str, str], keep_best: int) -> _Pending:
        """Enqueue one request; the dispatcher completes its ``done``."""
        pending = _Pending(
            queries=dict(queries),
            keep_best=keep_best,
            enqueued_at=time.monotonic(),
        )
        with self._cond:
            if self._closed:
                raise RuntimeError(f"tenant {self.name!r} is closed")
            self._queue.append(pending)
            self.m_depth.set(len(self._queue))
            self._cond.notify_all()
        return pending

    @property
    def queue_depth(self) -> int:
        with self._cond:
            return len(self._queue)

    # -- dispatcher side ------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            batch = self._collect_batch()
            if batch is None:
                return
            self._run_batch(batch)

    def _collect_batch(self) -> list[_Pending] | None:
        """Block for work, then coalesce a compatible request batch.

        Waits ``batch_wait_s`` past the first arrival so concurrent
        clients can land in the same dispatch, then pops requests in
        FIFO order while their query names stay disjoint and the fused
        batch stays within ``max_batch`` queries.
        """
        with self._cond:
            while not self._queue and not self._closed:
                self._cond.wait()
            if not self._queue:  # closed and drained
                return None
            deadline = time.monotonic() + self.batch_wait_s
            while True:
                depth = sum(len(p.queries) for p in self._queue)
                remaining = deadline - time.monotonic()
                if depth >= self.max_batch or remaining <= 0:
                    break
                self._cond.wait(timeout=remaining)
            batch: list[_Pending] = []
            names: set[str] = set()
            size = 0
            while self._queue:
                head = self._queue[0]
                if batch and (
                    (names & head.queries.keys())
                    or size + len(head.queries) > self.max_batch
                ):
                    break
                batch.append(self._queue.popleft())
                names |= head.queries.keys()
                size += len(head.queries)
            self.m_depth.set(len(self._queue))
            return batch

    def _run_batch(self, batch: list[_Pending]) -> None:
        merged: dict[str, str] = {}
        for pending in batch:
            merged.update(pending.queries)
        keep = max(p.keep_best for p in batch)
        try:
            results = self.session.place(merged, keep_best=keep)
        except Exception as exc:  # noqa: BLE001 - reported to the client
            self.last_error = f"{type(exc).__name__}: {exc}"
            for pending in batch:
                pending.error = self.last_error
                pending.code = 400 if isinstance(exc, ValueError) else 500
                pending.done.set()
            return
        finally:
            now = time.monotonic()
            self.last_used_at = now
            for pending in batch:
                self.m_latency.observe(now - pending.enqueued_at)
        self.batches_run += 1
        self.m_batch.observe(len(merged))
        self.m_queries.inc(len(merged))
        by_query = {r.query: r for r in results}
        for pending in batch:
            # LWRs are normalised over the full candidate set, so a
            # request's keep_best is a pure slice of the shared ranking.
            pending.results = [
                PlacementResult(
                    query=name,
                    placements=by_query[name].placements[: pending.keep_best],
                )
                for name in pending.queries
            ]
            pending.done.set()
        best = max(
            (r.best.log_likelihood for r in results if r.placements),
            default=None,
        )
        _obs_server.progress_update(f"batch:{self.name}", lnl=best)

    # -- introspection / lifecycle --------------------------------------
    def info(self) -> dict:
        pool = None
        engine = self.pool_engine
        if engine is not None and engine.pool is not None:
            pool = {
                "label": engine.pool.label,
                "workers": engine.pool.n_workers,
                "alive": len(engine.pool.alive),
                "dead": sorted(engine.pool.dead),
            }
        return {
            "name": self.name,
            "reference_taxa": self.session.reference.n_taxa,
            "reference_lnl": self.session.reference_lnl,
            "candidate_branches": len(self.session._candidates),
            "queries_placed": self.session.queries_placed,
            "batches_run": self.batches_run,
            "queue_depth": self.queue_depth,
            "keep_best": self.keep_best,
            "workers": self.session.workers,
            "execution": self.session.execution,
            "pool": pool,
            "last_error": self.last_error,
        }

    def close(self) -> None:
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        self._thread.join(timeout=10)
        # Fail anything still queued (the dispatcher drained what it could).
        with self._cond:
            while self._queue:
                pending = self._queue.popleft()
                pending.error = f"tenant {self.name!r} closed"
                pending.code = 503
                pending.done.set()
        if self.pool_engine is not None:
            closer = getattr(self.pool_engine, "close", None)
            if callable(closer):
                closer()
            self.pool_engine = None
        self.session.close()


class _ServeHandler(BaseHTTPRequestHandler):
    """JSON routing for the placement server (obs.server idiom)."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"
    placement_server: "PlacementServer"  # set per-server via subclassing

    ROUTES = [
        "GET /",
        "GET /metrics",
        "GET /healthz",
        "GET /progress",
        "GET /tenants",
        "POST /tenants/<name>",
        "DELETE /tenants/<name>",
        "POST /tenants/<name>/place",
        "POST /faults/kill-worker?tenant=<name>",
    ]

    def _send(self, code: int, body: str, content_type: str) -> None:
        data = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _send_json(self, code: int, doc) -> None:
        self._send(code, json.dumps(doc, indent=1), "application/json")

    def _read_json(self):
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return None
        return json.loads(raw.decode("utf-8"))

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = urlsplit(self.path).path
        srv = self.placement_server
        if path == "/metrics":
            self._send(
                200,
                get_registry().to_prometheus(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        elif path == "/healthz":
            snap = srv.health_snapshot()
            code = 200 if snap["status"] == "ok" else 503
            self._send_json(code, snap)
        elif path == "/progress":
            self._send_json(200, _obs_server.progress().snapshot())
        elif path == "/tenants":
            self._send_json(200, {"tenants": srv.tenant_infos()})
        elif path == "/":
            self._send_json(200, {"routes": self.ROUTES})
        else:
            self._send_json(404, {"error": f"no route {path}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        split = urlsplit(self.path)
        parts = [p for p in split.path.split("/") if p]
        srv = self.placement_server
        try:
            if parts[:1] == ["tenants"] and len(parts) == 2:
                body = self._read_json()
                if not isinstance(body, dict):
                    raise _HttpError(400, "JSON object body required")
                self._send_json(201, srv.register_tenant(parts[1], body))
            elif (
                parts[:1] == ["tenants"]
                and len(parts) == 3
                and parts[2] == "place"
            ):
                body = self._read_json()
                if not isinstance(body, dict):
                    raise _HttpError(400, "JSON object body required")
                self._send_json(200, srv.place(parts[1], body))
            elif parts == ["faults", "kill-worker"]:
                tenant = parse_qs(split.query).get("tenant", [""])[0]
                self._send_json(200, srv.kill_worker(tenant))
            else:
                raise _HttpError(404, f"no route {split.path}")
        except _HttpError as exc:
            self._send_json(exc.code, {"error": exc.message})
        except (ValueError, KeyError) as exc:
            self._send_json(400, {"error": f"{type(exc).__name__}: {exc}"})

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        parts = [p for p in urlsplit(self.path).path.split("/") if p]
        if parts[:1] == ["tenants"] and len(parts) == 2:
            try:
                self.placement_server.evict_tenant(parts[1])
            except _HttpError as exc:
                self._send_json(exc.code, {"error": exc.message})
                return
            self._send_json(200, {"evicted": parts[1]})
        else:
            self._send_json(404, {"error": f"no route {self.path}"})

    def log_message(self, fmt: str, *args) -> None:
        """Silence per-request stderr logging (obs.server idiom)."""


class _HttpError(Exception):
    def __init__(self, code: int, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


class PlacementServer:
    """Multi-tenant placement service over warm sessions.

    Binding to ``port=0`` picks an ephemeral port; :attr:`port` holds
    the bound one.  Starting the server turns the :mod:`repro.obs`
    gates on (worker pools self-register, progress/health documents go
    live); :meth:`stop` closes every tenant and restores the gate.
    Usable as a context manager.
    """

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        *,
        max_batch: int = 16,
        batch_wait_s: float = 0.02,
        max_tenants: int = 4,
        keep_best: int = 5,
        newton_iterations: int = 4,
        max_resident: int | None = None,
        backend: str | None = None,
        workers: int = 1,
        execution: str = "simulated",
        allow_fault_injection: bool = False,
        request_timeout_s: float = 600.0,
    ) -> None:
        self.max_batch = max_batch
        self.batch_wait_s = batch_wait_s
        self.max_tenants = max(int(max_tenants), 1)
        self.keep_best = keep_best
        self.newton_iterations = newton_iterations
        self.max_resident = max_resident
        self.backend = backend
        self.workers = workers
        self.execution = execution
        self.allow_fault_injection = allow_fault_injection
        self.request_timeout_s = request_timeout_s
        self._tenants: "OrderedDict[str, Tenant]" = OrderedDict()
        self._lock = threading.Lock()
        self._prev_obs_enabled = _obs_server.ENABLED
        _obs_server.ENABLED = True
        # obs.serve() idiom: the served documents describe this server's
        # lifetime, so start both states fresh.
        _obs_server.health().reset()
        _obs_server.progress().begin("serve", total_steps=None)
        self.m_requests = get_registry().counter(
            "repro_serve_requests_total", "placement requests admitted"
        )

        handler = type(
            "_BoundServeHandler", (_ServeHandler,), {"placement_server": self}
        )
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self.host = host
        self.port = int(self._httpd.server_address[1])
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"repro-serve:{self.port}",
            daemon=True,
        )
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- tenancy --------------------------------------------------------
    def add_tenant(
        self,
        name: str,
        reference_alignment: "Alignment | PatternAlignment",
        reference_tree: Tree,
        model: SubstitutionModel | None = None,
        gamma: GammaRates | None = None,
        *,
        backend: str | None = None,
        workers: int | None = None,
        execution: str | None = None,
        max_resident: int | None = None,
        keep_best: int | None = None,
    ) -> Tenant:
        """Register (and warm) one reference tree; LRU-evicts past cap."""
        model = model if model is not None else gtr()
        gamma = gamma if gamma is not None else GammaRates(1.0, 4)
        backend = backend if backend is not None else self.backend
        workers = workers if workers is not None else self.workers
        execution = execution if execution is not None else self.execution
        max_resident = (
            max_resident if max_resident is not None else self.max_resident
        )
        session = PlacementSession(
            reference_alignment,
            reference_tree,
            model,
            gamma,
            newton_iterations=self.newton_iterations,
            backend=backend,
            workers=workers,
            execution=execution,
            max_resident=max_resident,
        )
        session.warm()
        pool_engine = None
        if workers > 1 and execution == "processes":
            # A labelled resident pool carrying the reference CLAs: the
            # faults layer reports its deaths on /healthz per tenant.
            from ..parallel.forkjoin import ForkJoinEngine

            pool_engine = ForkJoinEngine(
                session.reference,
                session.tree,
                model,
                gamma,
                n_threads=workers,
                execution="processes",
                backend=backend if isinstance(backend, str) else None,
                label=name,
            )
            pool_engine.log_likelihood()  # warm the pool's CLAs too
        tenant = Tenant(
            name,
            session,
            max_batch=self.max_batch,
            batch_wait_s=self.batch_wait_s,
            keep_best=keep_best if keep_best is not None else self.keep_best,
            pool_engine=pool_engine,
        )
        evicted: Tenant | None = None
        with self._lock:
            old = self._tenants.pop(name, None)
            self._tenants[name] = tenant
            if len(self._tenants) > self.max_tenants:
                _, evicted = self._tenants.popitem(last=False)
        if old is not None:
            old.close()
        if evicted is not None:
            # Normal LRU housekeeping, not a degradation: visible via
            # /tenants and the progress stage, never via /healthz.
            evicted.close()
            _obs_server.progress_update(
                f"evict:{evicted.name}", step_done=False
            )
        return tenant

    def register_tenant(self, name: str, body: dict) -> dict:
        """HTTP tenant registration: newick tree + taxon→sequence map."""
        tree_text = body.get("tree")
        aln = body.get("alignment")
        if not isinstance(tree_text, str) or not isinstance(aln, dict):
            raise _HttpError(
                400, 'body needs "tree" (newick) and "alignment" (mapping)'
            )
        tenant = self.add_tenant(
            name,
            Alignment.from_sequences(aln),
            Tree.from_newick(tree_text),
            backend=body.get("backend"),
            workers=body.get("workers"),
            execution=body.get("execution"),
            max_resident=body.get("max_resident"),
            keep_best=body.get("keep_best"),
        )
        return tenant.info()

    def get_tenant(self, name: str) -> Tenant:
        with self._lock:
            tenant = self._tenants.get(name)
            if tenant is None:
                raise _HttpError(404, f"no tenant {name!r}")
            self._tenants.move_to_end(name)  # LRU touch
            return tenant

    def evict_tenant(self, name: str) -> None:
        with self._lock:
            tenant = self._tenants.pop(name, None)
        if tenant is None:
            raise _HttpError(404, f"no tenant {name!r}")
        tenant.close()

    def tenant_infos(self) -> list[dict]:
        with self._lock:
            tenants = list(self._tenants.values())
        return [t.info() for t in tenants]

    # -- request handling ----------------------------------------------
    def place(self, name: str, body: dict) -> dict:
        """Admit one placement request; blocks until its batch lands."""
        queries = body.get("queries")
        if not isinstance(queries, dict) or not queries:
            raise _HttpError(400, 'body needs a non-empty "queries" mapping')
        keep_best = body.get("keep_best")
        tenant = self.get_tenant(name)
        self.m_requests.inc()
        pending = tenant.submit(
            queries,
            int(keep_best) if keep_best is not None else tenant.keep_best,
        )
        if not pending.done.wait(timeout=self.request_timeout_s):
            raise _HttpError(504, "placement timed out")
        if pending.error is not None:
            raise _HttpError(pending.code, pending.error)
        return to_jplace(pending.results, tenant.session.tree)

    def kill_worker(self, name: str) -> dict:
        """Fault-injection hook: kill one pool worker, absorb, report."""
        if not self.allow_fault_injection:
            raise _HttpError(403, "fault injection disabled (--allow-fault-injection)")
        tenant = self.get_tenant(name)
        engine = tenant.pool_engine
        if engine is None or engine.pool is None:
            raise _HttpError(
                409, f"tenant {name!r} has no resident worker pool"
            )
        pool = engine.pool
        if len(pool.alive) < 2:
            raise _HttpError(409, "refusing to kill the last worker")
        victim = pool.alive[-1]
        pool.kill_worker(victim)
        # Drive one region so the death is absorbed through the faults
        # layer (adoption + health_event) rather than discovered lazily.
        engine.log_likelihood()
        return {
            "tenant": name,
            "killed": victim,
            "alive": len(pool.alive),
            "dead": sorted(pool.dead),
        }

    # -- documents ------------------------------------------------------
    def health_snapshot(self) -> dict:
        snap = _obs_server.health().snapshot()
        snap["tenants"] = self.tenant_infos()
        return snap

    # -- lifecycle ------------------------------------------------------
    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5)
        with self._lock:
            tenants = list(self._tenants.values())
            self._tenants.clear()
        for tenant in tenants:
            tenant.close()
        _obs_server.progress_finish()
        # Restore the gate unless an obs server still needs it.
        _obs_server.ENABLED = (
            self._prev_obs_enabled or _obs_server.get_server() is not None
        )

    def __enter__(self) -> "PlacementServer":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def serve(port: int = 0, host: str = "127.0.0.1", **kwargs) -> PlacementServer:
    """Start a placement server (ephemeral port by default)."""
    return PlacementServer(port=port, host=host, **kwargs)
