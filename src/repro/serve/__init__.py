"""Likelihood-as-a-service: the long-running placement server.

The paper's §VII outlook names EPA placement as the kernel workload
with the best parallel profile — one fixed reference tree, independent
(branch × query) evaluations with near-zero communication.  This
package keeps that reference state *warm*: a
:class:`~repro.search.epa.PlacementSession` (and optional worker pool)
stays resident per reference tree, queries arrive over a stdlib HTTP
front, and concurrent queries sharing a reference are fused into single
cross-query wave dispatches (:func:`repro.core.schedule.execute_lockstep`)
— the long-lived instance model of BEAGLE 4.1, at placement granularity.
"""

from .server import PlacementServer, Tenant, serve

__all__ = ["PlacementServer", "Tenant", "serve"]
