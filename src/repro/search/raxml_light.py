"""RAxML-Light-style maximum-likelihood tree search driver.

The complete inference pipeline the paper benchmarks (Sec. VI measures
"a full ML tree search"):

1. randomized stepwise-addition parsimony starting tree,
2. initial branch-length smoothing,
3. model-parameter optimisation (Gamma alpha + GTR rates),
4. lazy SPR rounds with an escalating rearrangement radius,
5. final model + branch-length polish.

The returned :class:`SearchResult` carries the optimised tree, the
likelihood trajectory, and — crucially for the reproduction — the
engine's :class:`~repro.core.traversal.KernelCounters`, i.e. the
kernel-invocation trace that the performance harness scales to the
paper's dataset sizes (Table III's workload is exactly "one full tree
search").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.backends import KernelBackend, make_engine
from ..core.engine import LikelihoodEngine
from ..obs import spans as _obs
from ..core.traversal import KernelCounters
from ..phylo.alignment import Alignment, PatternAlignment
from ..phylo.models import SubstitutionModel, gtr
from ..phylo.parsimony import stepwise_addition_tree
from ..phylo.rates import GammaRates
from ..phylo.tree import Tree
from .branch_opt import optimize_all_branches
from .model_opt import optimize_model
from .spr import SprRoundStats, spr_search

__all__ = ["SearchConfig", "SearchResult", "ml_search"]


@dataclass
class SearchConfig:
    """Tuning knobs of the ML search (defaults mirror small RAxML runs)."""

    radii: tuple[int, ...] = (5, 10)
    max_spr_rounds: int = 10
    spr_epsilon: float = 0.01
    model_rounds: int = 2
    optimize_exchangeabilities: bool = True
    final_branch_passes: int = 4
    seed: int = 0


@dataclass
class SearchResult:
    """Outcome of a full ML tree search."""

    tree: Tree
    lnl: float
    model: SubstitutionModel
    alpha: float
    engine: LikelihoodEngine
    counters: KernelCounters
    spr_history: list[SprRoundStats] = field(default_factory=list)
    lnl_trajectory: list[tuple[str, float]] = field(default_factory=list)
    wall_time: float = 0.0

    @property
    def newick(self) -> str:
        return self.tree.to_newick()


def ml_search(
    alignment: Alignment | PatternAlignment,
    model: SubstitutionModel | None = None,
    gamma: GammaRates | None = None,
    config: SearchConfig | None = None,
    starting_tree: Tree | None = None,
    backend: str | KernelBackend | None = None,
) -> SearchResult:
    """Run a complete maximum-likelihood tree search.

    Parameters
    ----------
    alignment:
        Raw or pattern-compressed alignment.
    model:
        Starting substitution model; defaults to GTR with empirical base
        frequencies (RAxML's default for DNA).
    gamma:
        Rate heterogeneity; defaults to Gamma4 with ``alpha=1`` — the
        paper's "Γ model with four discrete rates".
    starting_tree:
        Optional user tree; otherwise a randomized stepwise-addition
        parsimony tree is built (RAxML-Light's default).
    backend:
        Kernel backend name or instance driving the whole search (see
        :mod:`repro.core.backends`); ``None`` uses the process default.
    """
    t_start = time.perf_counter()
    config = config or SearchConfig()
    patterns = (
        alignment if isinstance(alignment, PatternAlignment) else alignment.compress()
    )
    rng = np.random.default_rng(config.seed)
    if model is None:
        model = gtr(frequencies=empirical_frequencies(patterns))
    if gamma is None:
        gamma = GammaRates(alpha=1.0, n_categories=4)

    tree = starting_tree.copy() if starting_tree is not None else stepwise_addition_tree(
        patterns, rng
    )
    for edge in tree.edges:
        edge.length = max(edge.length, 0.05)

    engine = make_engine(patterns, tree, model, gamma, backend=backend)
    trajectory: list[tuple[str, float]] = []
    with _obs.span(
        "search.ml_search",
        taxa=patterns.n_taxa,
        patterns=patterns.n_patterns,
    ):
        trajectory.append(("start", engine.log_likelihood()))
        _obs.instant("search.progress", phase="start", lnl=trajectory[-1][1])

        with _obs.span("search.initial_branch_opt"):
            lnl = optimize_all_branches(engine, passes=2)
        trajectory.append(("initial_branch_opt", lnl))
        _obs.instant("search.progress", phase="initial_branch_opt", lnl=lnl)

        with _obs.span("search.model_opt"):
            mres = optimize_model(
                engine,
                max_rounds=config.model_rounds,
                optimize_exchangeabilities=config.optimize_exchangeabilities,
            )
        trajectory.append(("model_opt", mres.lnl))
        _obs.instant("search.progress", phase="model_opt", lnl=mres.lnl)

        with _obs.span("search.spr", radii=list(config.radii)):
            history = spr_search(
                engine,
                radii=config.radii,
                max_rounds=config.max_spr_rounds,
                epsilon=config.spr_epsilon,
            )
            trajectory.append(("spr", engine.log_likelihood()))
        _obs.instant("search.progress", phase="spr", lnl=trajectory[-1][1])

        with _obs.span("search.final_polish"):
            mres = optimize_model(
                engine,
                max_rounds=1,
                optimize_exchangeabilities=config.optimize_exchangeabilities,
            )
            lnl = optimize_all_branches(
                engine, passes=config.final_branch_passes
            )
        trajectory.append(("final", lnl))
        _obs.instant("search.progress", phase="final", lnl=lnl)

    return SearchResult(
        tree=tree,
        lnl=lnl,
        model=engine.model,
        alpha=engine.rates_model.alpha,
        engine=engine,
        counters=engine.counters,
        spr_history=history,
        lnl_trajectory=trajectory,
        wall_time=time.perf_counter() - t_start,
    )


def empirical_frequencies(patterns: PatternAlignment) -> np.ndarray:
    """Weighted empirical state frequencies (ambiguities split evenly).

    RAxML's default base-frequency estimator: each character contributes
    its indicator mass divided by its ambiguity degree, weighted by the
    pattern multiplicity; a small pseudocount keeps degenerate alignments
    (e.g. a state never observed) strictly positive.
    """
    rows = patterns.states.tip_rows(patterns.data.reshape(-1))
    rows = rows / rows.sum(axis=1, keepdims=True)
    w = np.tile(patterns.weights, patterns.n_taxa)
    freqs = (rows * w[:, None]).sum(axis=0)
    freqs = freqs + 1e-6
    return freqs / freqs.sum()
