"""RAxML-Light-style maximum-likelihood tree search driver.

The complete inference pipeline the paper benchmarks (Sec. VI measures
"a full ML tree search"):

1. randomized stepwise-addition parsimony starting tree,
2. initial branch-length smoothing,
3. model-parameter optimisation (Gamma alpha + GTR rates),
4. lazy SPR rounds with an escalating rearrangement radius,
5. final model + branch-length polish.

The returned :class:`SearchResult` carries the optimised tree, the
likelihood trajectory, and — crucially for the reproduction — the
engine's :class:`~repro.core.traversal.KernelCounters`, i.e. the
kernel-invocation trace that the performance harness scales to the
paper's dataset sizes (Table III's workload is exactly "one full tree
search").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core.backends import KernelBackend, make_engine
from ..core.engine import LikelihoodEngine
from ..faults.plan import FaultError, FaultPlan, InjectedCrash
from ..obs import metrics as _obs_metrics
from ..obs import server as _obs_server
from ..obs import spans as _obs
from ..core.traversal import KernelCounters
from ..phylo.alignment import Alignment, PatternAlignment
from ..phylo.models import SubstitutionModel, gtr
from ..phylo.parsimony import stepwise_addition_tree
from ..phylo.rates import GammaRates
from ..phylo.tree import Tree
from .branch_opt import BRANCH_OPT_METHODS, optimize_all_branches
from .checkpoint import Checkpoint, CheckpointWriter, resume_engine
from .model_opt import optimize_model
from .spr import SprRoundStats, spr_search

__all__ = ["SearchConfig", "SearchResult", "ml_search", "STAGE_ORDER"]

#: Completion order of the driver's checkpointable stages.  A resumed
#: search skips every stage whose rank is <= the checkpoint's.
STAGE_ORDER = {
    "start": 0,
    "initial_branch_opt": 1,
    "model_opt": 2,
    "spr": 3,
    "final": 4,
}


@dataclass
class SearchConfig:
    """Tuning knobs of the ML search (defaults mirror small RAxML runs).

    ``checkpoint_path`` enables periodic crash-safe snapshots (atomic
    write + last-``checkpoint_keep`` rotation) every
    ``checkpoint_every`` driver steps — a *step* is one completed
    checkpointable unit: the initial evaluation, the initial branch
    smoothing, model optimisation, each SPR round, and the final
    polish.
    """

    radii: tuple[int, ...] = (5, 10)
    max_spr_rounds: int = 10
    spr_epsilon: float = 0.01
    model_rounds: int = 2
    optimize_exchangeabilities: bool = True
    final_branch_passes: int = 4
    #: Full-tree smoothing method ("newton", "gradient" or "prox"); a
    #: resumed run keeps the checkpoint's method over this setting.
    branch_opt_method: str = "newton"
    seed: int = 0
    checkpoint_path: str | Path | None = None
    checkpoint_every: int = 1
    checkpoint_keep: int = 3


@dataclass
class SearchResult:
    """Outcome of a full ML tree search."""

    tree: Tree
    lnl: float
    model: SubstitutionModel
    alpha: float
    engine: LikelihoodEngine
    counters: KernelCounters
    spr_history: list[SprRoundStats] = field(default_factory=list)
    lnl_trajectory: list[tuple[str, float]] = field(default_factory=list)
    wall_time: float = 0.0

    @property
    def newick(self) -> str:
        return self.tree.to_newick()


def _close_engine(engine) -> None:
    """Release pool/arena resources held by parallel engines (no-op
    for the serial engines, which own nothing beyond numpy arrays)."""
    close = getattr(engine, "close", None)
    if callable(close):
        close()


class _Progress:
    """The driver's step clock: crash injection + periodic snapshots.

    One ``tick`` per completed checkpointable unit.  Order matters: the
    crash check precedes the write, so a step that "kills the process"
    is *not* persisted — exactly what a real mid-run kill leaves behind
    (the rotation holds the previous step's snapshot).
    """

    def __init__(
        self,
        engine,
        writer: CheckpointWriter | None,
        fault_plan: FaultPlan | None,
        first_step: int = 0,
    ) -> None:
        self.engine = engine
        self.writer = writer
        self.fault_plan = fault_plan
        self.step = first_step
        self.stage = "start"
        self.lnl: float | None = None
        self.spr_round = 0
        self.spr_radius_idx = 0

    def tick(
        self, stage: str, lnl: float, spr_round: int = 0, spr_radius_idx: int = 0
    ) -> None:
        step = self.step
        self.step += 1
        self.stage, self.lnl = stage, lnl
        self.spr_round, self.spr_radius_idx = spr_round, spr_radius_idx
        if _obs_server.ENABLED:
            _obs_server.progress_update(
                stage, lnl=lnl,
                spr_round=spr_round, spr_radius_idx=spr_radius_idx,
            )
        if self.fault_plan is not None and self.fault_plan.crash_at_step(step):
            raise InjectedCrash(step)
        if self.writer is not None:
            self.writer.maybe_write(
                self.engine, lnl, stage, step, spr_round, spr_radius_idx
            )

    def emergency_write(self) -> None:
        """Abort-with-checkpoint: persist the last completed state."""
        if self.writer is not None:
            self.writer.write(
                self.engine,
                self.lnl,
                self.stage,
                self.step - 1 if self.step else 0,
                self.spr_round,
                self.spr_radius_idx,
            )


def ml_search(
    alignment: Alignment | PatternAlignment,
    model: SubstitutionModel | None = None,
    gamma: GammaRates | None = None,
    config: SearchConfig | None = None,
    starting_tree: Tree | None = None,
    backend: str | KernelBackend | None = None,
    resume_from: Checkpoint | None = None,
    fault_plan: FaultPlan | None = None,
    workers: int = 1,
    execution: str = "simulated",
) -> SearchResult:
    """Run a complete maximum-likelihood tree search.

    Parameters
    ----------
    alignment:
        Raw or pattern-compressed alignment.
    model:
        Starting substitution model; defaults to GTR with empirical base
        frequencies (RAxML's default for DNA).
    gamma:
        Rate heterogeneity; defaults to Gamma4 with ``alpha=1`` — the
        paper's "Γ model with four discrete rates".
    starting_tree:
        Optional user tree; otherwise a randomized stepwise-addition
        parsimony tree is built (RAxML-Light's default).
    backend:
        Kernel backend name or instance driving the whole search (see
        :mod:`repro.core.backends`); ``None`` uses the process default.
    resume_from:
        A loaded :class:`Checkpoint` — the engine is rebuilt from it,
        the restored ``lnl`` seeds the likelihood trajectory, completed
        stages are *skipped* (per the checkpoint's ``stage``), and the
        SPR schedule continues from the recorded round/radius position,
        so resumption continues the run instead of repeating it.
    fault_plan:
        Active :class:`~repro.faults.FaultPlan`; the driver consults it
        once per completed step (``crash-at-step``) and hands it to the
        checkpoint writer (``crash-in-write``).
    workers / execution:
        ``workers > 1`` runs every likelihood evaluation of the search
        on a :class:`~repro.parallel.forkjoin.ForkJoinEngine` with that
        many site slices on the chosen substrate (``simulated``,
        ``threads``, ``processes``).  The search trajectory is
        bit-identical to the serial run for every worker count.  The
        returned ``SearchResult.engine`` owns the pool — call its
        ``close()`` when finished (the CLI does this automatically).

    Crash safety: with ``config.checkpoint_path`` set, a rotated atomic
    snapshot is written every ``checkpoint_every`` steps.  Any
    :class:`~repro.faults.FaultError` *other than* an injected crash
    (offload retry exhaustion, AllReduce timeout, unabsorbed rank
    failure) triggers one final abort-checkpoint before propagating —
    ExaML's "die loudly but restartably".
    """
    t_start = time.perf_counter()
    config = config or SearchConfig()
    patterns = (
        alignment if isinstance(alignment, PatternAlignment) else alignment.compress()
    )
    rng = np.random.default_rng(config.seed)
    if model is None and resume_from is None:
        model = gtr(frequencies=empirical_frequencies(patterns))
    if gamma is None:
        gamma = GammaRates(alpha=1.0, n_categories=4)

    branch_method = config.branch_opt_method
    if resume_from is not None and resume_from.branch_opt_method:
        # The checkpoint's method wins: the resumed trajectory must keep
        # smoothing with the optimiser that produced it.
        branch_method = resume_from.branch_opt_method
    if branch_method not in BRANCH_OPT_METHODS:
        raise ValueError(
            f"branch_opt_method must be one of {BRANCH_OPT_METHODS}, "
            f"got {branch_method!r}"
        )

    writer = None
    if config.checkpoint_path is not None:
        writer = CheckpointWriter(
            config.checkpoint_path,
            every=config.checkpoint_every,
            keep=config.checkpoint_keep,
            fault_plan=fault_plan,
            branch_opt_method=branch_method,
        )

    resume_rank = -1
    spr_start_round = 0
    spr_start_radius_idx = 0
    if resume_from is not None:
        engine = resume_engine(
            patterns,
            resume_from,
            backend=backend,
            workers=workers,
            execution=execution,
        )
        tree = engine.tree
        stage = resume_from.stage or "start"
        resume_rank = STAGE_ORDER.get(stage, 0)
        if stage == "spr":
            spr_start_round = resume_from.spr_round + 1
            spr_start_radius_idx = resume_from.spr_radius_idx
        elif resume_rank > STAGE_ORDER["spr"]:
            spr_start_round = config.max_spr_rounds  # SPR already done
        first_step = resume_from.step + 1
    else:
        tree = (
            starting_tree.copy()
            if starting_tree is not None
            else stepwise_addition_tree(patterns, rng)
        )
        for edge in tree.edges:
            edge.length = max(edge.length, 0.05)
        engine = make_engine(
            patterns,
            tree,
            model,
            gamma,
            backend=backend,
            workers=workers,
            execution=execution,
        )
        first_step = 0

    progress = _Progress(engine, writer, fault_plan, first_step=first_step)
    if _obs_server.ENABLED:
        # The step clock: 4 stage ticks (start, initial branch opt,
        # model opt, final) plus one per SPR round, minus whatever a
        # resumed checkpoint already completed.
        planned = 4 + config.max_spr_rounds
        _obs_server.progress_begin(
            "ml_search",
            total_steps=max(planned - first_step, 1),
            taxa=patterns.n_taxa,
            patterns=patterns.n_patterns,
            resumed=resume_from is not None,
            workers=workers,
        )
    trajectory: list[tuple[str, float]] = []
    history: list[SprRoundStats] = []
    with _obs.span(
        "search.ml_search",
        taxa=patterns.n_taxa,
        patterns=patterns.n_patterns,
        resumed=resume_from is not None,
    ):
        try:
            if resume_from is not None:
                lnl = (
                    resume_from.lnl
                    if resume_from.lnl is not None
                    else engine.log_likelihood()
                )
                trajectory.append((f"resume:{resume_from.stage}", lnl))
                progress.stage, progress.lnl = resume_from.stage, lnl
                progress.spr_round = resume_from.spr_round
                progress.spr_radius_idx = resume_from.spr_radius_idx
                _obs.instant(
                    "search.resume",
                    stage=resume_from.stage,
                    step=resume_from.step,
                    lnl=lnl,
                )
                if _obs.ENABLED:
                    _obs_metrics.get_registry().counter(
                        "repro_search_resumes_total",
                        "searches resumed from a checkpoint",
                    ).inc()
            else:
                lnl = engine.log_likelihood()
                trajectory.append(("start", lnl))
                _obs.instant("search.progress", phase="start", lnl=lnl)
                progress.tick("start", lnl)

            if resume_rank < STAGE_ORDER["initial_branch_opt"]:
                with _obs.span("search.initial_branch_opt"):
                    lnl = optimize_all_branches(
                        engine, passes=2, method=branch_method
                    )
                trajectory.append(("initial_branch_opt", lnl))
                _obs.instant(
                    "search.progress", phase="initial_branch_opt", lnl=lnl
                )
                progress.tick("initial_branch_opt", lnl)

            if resume_rank < STAGE_ORDER["model_opt"]:
                with _obs.span("search.model_opt"):
                    mres = optimize_model(
                        engine,
                        max_rounds=config.model_rounds,
                        optimize_exchangeabilities=config.optimize_exchangeabilities,
                    )
                trajectory.append(("model_opt", mres.lnl))
                _obs.instant("search.progress", phase="model_opt", lnl=mres.lnl)
                progress.tick("model_opt", mres.lnl)

            if spr_start_round < config.max_spr_rounds:
                def on_round(round_index, next_radius_idx, stats):
                    progress.tick(
                        "spr",
                        stats.lnl_after,
                        spr_round=round_index,
                        spr_radius_idx=next_radius_idx,
                    )

                with _obs.span("search.spr", radii=list(config.radii)):
                    history = spr_search(
                        engine,
                        radii=config.radii,
                        max_rounds=config.max_spr_rounds,
                        epsilon=config.spr_epsilon,
                        start_round=spr_start_round,
                        start_radius_idx=spr_start_radius_idx,
                        on_round=on_round,
                    )
                    trajectory.append(("spr", engine.log_likelihood()))
                _obs.instant("search.progress", phase="spr", lnl=trajectory[-1][1])

            if resume_rank < STAGE_ORDER["final"]:
                with _obs.span("search.final_polish"):
                    mres = optimize_model(
                        engine,
                        max_rounds=1,
                        optimize_exchangeabilities=config.optimize_exchangeabilities,
                    )
                    lnl = optimize_all_branches(
                        engine,
                        passes=config.final_branch_passes,
                        method=branch_method,
                    )
                trajectory.append(("final", lnl))
                _obs.instant("search.progress", phase="final", lnl=lnl)
                progress.tick("final", lnl)
            else:
                lnl = engine.log_likelihood()
        except InjectedCrash:
            # The simulated process is dead: no write (the rotation
            # already holds the last periodic snapshot), just propagate.
            # Real worker pools are shut down — the *simulated* crash
            # must not leak actual shared-memory segments.
            _close_engine(engine)
            raise
        except FaultError as exc:
            # Unrecoverable-but-anticipated fault: abort with a final
            # checkpoint so the run is restartable, then propagate.
            if _obs_server.ENABLED:
                _obs_server.health_event(
                    "search_abort",
                    stage=progress.stage,
                    step=progress.step,
                    error=type(exc).__name__,
                )
            progress.emergency_write()
            _close_engine(engine)
            raise
        except BaseException:
            _close_engine(engine)
            raise

    if _obs_server.ENABLED:
        _obs_server.progress_finish(lnl)
    return SearchResult(
        tree=engine.tree,
        lnl=lnl,
        model=engine.model,
        alpha=engine.rates_model.alpha,
        engine=engine,
        counters=engine.counters,
        spr_history=history,
        lnl_trajectory=trajectory,
        wall_time=time.perf_counter() - t_start,
    )


def empirical_frequencies(patterns: PatternAlignment) -> np.ndarray:
    """Weighted empirical state frequencies (ambiguities split evenly).

    RAxML's default base-frequency estimator: each character contributes
    its indicator mass divided by its ambiguity degree, weighted by the
    pattern multiplicity; a small pseudocount keeps degenerate alignments
    (e.g. a state never observed) strictly positive.
    """
    rows = patterns.states.tip_rows(patterns.data.reshape(-1))
    rows = rows / rows.sum(axis=1, keepdims=True)
    w = np.tile(patterns.weights, patterns.n_taxa)
    freqs = (rows * w[:, None]).sum(axis=0)
    freqs = freqs + 1e-6
    return freqs / freqs.sum()
