"""Nearest-neighbour-interchange (NNI) hill climbing.

The cheap alternative to SPR: each internal branch admits two
interchanges of the subtrees at its ends, giving ``2(n-3)`` neighbours
per topology instead of SPR's ``O(n * radius)``.  RAxML uses NNI-like
moves in its fast bootstrap mode; here NNI serves as (a) a lightweight
search option, and (b) the local-rearrangement polish after SPR rounds.

Same lazy scoring as the SPR module: apply the move, re-optimise only
the central branch with a couple of Newton steps, evaluate once, undo
unless improved.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.engine import LikelihoodEngine
from .branch_opt import optimize_all_branches, optimize_branch

__all__ = ["NniRoundStats", "nni_round", "nni_search"]


@dataclass
class NniRoundStats:
    """Accounting for one sweep over all internal branches."""

    moves_tried: int = 0
    moves_accepted: int = 0
    lnl_before: float = 0.0
    lnl_after: float = 0.0


def _internal_edge_pairs(tree) -> list[tuple[int, int]]:
    """Internal edges identified by their (stable) endpoint node ids."""
    return [
        (e.u, e.v)
        for e in tree.edges
        if not tree.is_leaf(e.u) and not tree.is_leaf(e.v)
    ]


def nni_round(
    engine: LikelihoodEngine, epsilon: float = 0.01, newton_iterations: int = 2
) -> NniRoundStats:
    """Try both NNI variants across every internal branch."""
    tree = engine.tree
    stats = NniRoundStats(lnl_before=engine.log_likelihood())
    current = stats.lnl_before
    for u, v in _internal_edge_pairs(tree):
        try:
            eid = tree.find_edge(u, v)
        except KeyError:  # consumed by an earlier accepted move
            continue
        if tree.is_leaf(u) or tree.is_leaf(v):
            continue
        for which in (0, 1):
            eid = tree.find_edge(u, v)
            undo = tree.nni_swap(eid, which=which)
            stats.moves_tried += 1
            # quick central-branch polish, then score
            sumbuf = engine.edge_sum_buffer(eid)
            t = tree.edge(eid).length
            for _ in range(newton_iterations):
                _, d1, d2 = engine.branch_derivatives(sumbuf, t)
                if d2 >= 0.0 or abs(d1) < 1e-9:
                    break
                t = min(max(t - d1 / d2, 1e-8), 50.0)
            old_len = tree.edge(eid).length
            tree.edge(eid).length = t
            lnl = engine.log_likelihood(eid)
            if lnl > current + epsilon:
                current = lnl
                stats.moves_accepted += 1
                optimize_branch(engine, eid)
                current = engine.log_likelihood()
            else:
                tree.edge(eid).length = old_len
                undo()
    stats.lnl_after = current
    return stats


def nni_search(
    engine: LikelihoodEngine,
    max_rounds: int = 10,
    epsilon: float = 0.01,
    smooth_passes: int = 1,
) -> list[NniRoundStats]:
    """Iterate NNI rounds to a local optimum."""
    history: list[NniRoundStats] = []
    for _ in range(max_rounds):
        stats = nni_round(engine, epsilon=epsilon)
        history.append(stats)
        if stats.moves_accepted == 0:
            break
        optimize_all_branches(engine, passes=smooth_passes)
    return history
