"""Non-parametric bootstrap support values.

Standard Felsenstein bootstrap as RAxML implements it: each replicate
resamples alignment columns with replacement — which, on a
pattern-compressed alignment, is just a *reweighting* of the existing
patterns (drawing per-pattern counts from a multinomial over the
original weights).  No new CLAs, no re-encoding: the likelihood engine
only needs new pattern weights, making replicates cheap — the same
observation behind RAxML's rapid-bootstrap implementation.

For each replicate a (reduced-effort) ML search runs, and
:func:`support_values` maps the frequency of every bipartition of a
reference tree over the replicate trees — the numbers drawn on published
phylogenies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..phylo.alignment import PatternAlignment
from ..phylo.models import SubstitutionModel
from ..phylo.rates import GammaRates
from ..phylo.tree import Tree

__all__ = ["bootstrap_weights", "BootstrapResult", "bootstrap_analysis", "support_values"]


def bootstrap_weights(
    patterns: PatternAlignment, rng: np.random.Generator
) -> np.ndarray:
    """One bootstrap replicate as a per-pattern weight vector.

    Sampling ``n_sites`` columns with replacement is multinomial over
    the patterns with probabilities proportional to the original
    weights; the result sums exactly to the original site count.
    """
    n_sites = int(patterns.weights.sum())
    probs = patterns.weights / patterns.weights.sum()
    return rng.multinomial(n_sites, probs).astype(np.float64)


@dataclass
class BootstrapResult:
    """Replicate trees plus the per-split support of a reference tree."""

    reference: Tree
    replicate_trees: list[Tree] = field(default_factory=list)
    support: dict[frozenset[str], float] = field(default_factory=dict)

    def min_support(self) -> float:
        return min(self.support.values()) if self.support else 1.0

    def consensus(self, threshold: float = 0.5):
        """Majority-rule consensus of the replicate trees.

        Returns ``(tree, split_support)`` — see
        :func:`repro.phylo.consensus.majority_rule_consensus`.
        """
        from ..phylo.consensus import majority_rule_consensus

        return majority_rule_consensus(self.replicate_trees, threshold)


def support_values(
    reference: Tree, replicates: list[Tree]
) -> dict[frozenset[str], float]:
    """Fraction of replicate trees containing each reference bipartition."""
    if not replicates:
        raise ValueError("no replicate trees")
    ref_splits = reference.splits()
    counts = {s: 0 for s in ref_splits}
    for tree in replicates:
        rep_splits = tree.splits()
        for s in ref_splits:
            if s in rep_splits:
                counts[s] += 1
    return {s: c / len(replicates) for s, c in counts.items()}


def bootstrap_analysis(
    patterns: PatternAlignment,
    reference: Tree,
    model: SubstitutionModel,
    gamma: GammaRates | None = None,
    n_replicates: int = 10,
    seed: int = 0,
    search_radius: int = 3,
) -> BootstrapResult:
    """Run bootstrap replicates and compute reference-tree supports.

    Each replicate reweights the patterns and runs a reduced ML search
    (small SPR radius, no model re-optimisation — RAxML's rapid
    bootstrap makes the same effort tradeoff).
    """
    from .raxml_light import SearchConfig, ml_search

    if n_replicates < 1:
        raise ValueError("need at least one replicate")
    rng = np.random.default_rng(seed)
    result = BootstrapResult(reference=reference.copy())
    for rep in range(n_replicates):
        weights = bootstrap_weights(patterns, rng)
        keep = weights > 0
        replicate = PatternAlignment(
            taxa=list(patterns.taxa),
            data=np.ascontiguousarray(patterns.data[:, keep]),
            weights=weights[keep],
            site_to_pattern=np.arange(int(keep.sum())),
            states=patterns.states,
        )
        search = ml_search(
            replicate,
            model=model,
            gamma=gamma,
            config=SearchConfig(
                radii=(search_radius,),
                max_spr_rounds=3,
                model_rounds=1,
                optimize_exchangeabilities=False,
                seed=seed * 1000 + rep,
            ),
        )
        result.replicate_trees.append(search.tree)
    result.support = support_values(reference, result.replicate_trees)
    return result
