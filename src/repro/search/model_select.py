"""Information-criterion model selection (AIC / AICc / BIC).

Which substitution model should a study use?  The standard answer
(jModelTest / ModelTest-NG style) is to fit each candidate on a fixed
reasonable tree and compare penalised likelihoods.  This module runs the
comparison over the library's DNA model family — JC69, K80, HKY85, GTR,
each optionally with Gamma rate heterogeneity and/or invariant sites —
reusing the optimisers from :mod:`repro.search`.

Free-parameter counts follow the usual conventions: branch lengths
(``2n - 3``) are counted for every model, exchangeabilities and
frequencies per model family, +1 for the Gamma shape, +1 for ``p_inv``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.backends import KernelBackend, get_backend, make_engine
from ..core.engine import LikelihoodEngine
from ..phylo.alignment import PatternAlignment
from ..phylo.models import SubstitutionModel, gtr, hky85, jc69, k80
from ..phylo.tree import Tree
from ..phylo.rates import GammaRates
from .branch_opt import optimize_all_branches
from .model_opt import optimize_alpha, optimize_pinv, optimize_rates
from .raxml_light import empirical_frequencies

__all__ = ["ModelFit", "candidate_models", "select_model"]

#: Free model parameters (beyond branch lengths): (exchangeabilities,
#: frequencies) per family.
_FAMILY_PARAMS = {
    "JC69": (0, 0),
    "K80": (1, 0),
    "HKY85": (1, 3),
    "GTR": (5, 3),
}


@dataclass(frozen=True)
class ModelFit:
    """One candidate's fit: likelihood and information criteria."""

    name: str
    lnl: float
    n_parameters: int
    aic: float
    aicc: float
    bic: float
    alpha: float | None = None
    p_inv: float | None = None


def candidate_models(patterns: PatternAlignment) -> dict[str, SubstitutionModel]:
    """The DNA candidate set with empirical frequencies where free."""
    freqs = empirical_frequencies(patterns)
    return {
        "JC69": jc69(),
        "K80": k80(),
        "HKY85": hky85(2.0, freqs),
        "GTR": gtr(frequencies=freqs),
    }


def _optimize_kappa(engine: LikelihoodEngine, tolerance: float = 1e-4) -> float:
    """Brent over the single transition/transversion ratio (K80/HKY85).

    Unlike :func:`repro.search.model_opt.optimize_rates` this respects
    the family constraint — AG and CT share one multiplier, the four
    transversions stay at 1 — so the nested-model likelihood ordering
    (JC <= K80 <= HKY <= GTR) holds in the selection table.
    """
    from scipy.optimize import minimize_scalar

    model = engine.model

    def objective(log_kappa: float) -> float:
        k = float(np.exp(log_kappa))
        ex = np.array([1.0, k, 1.0, 1.0, k, 1.0])
        engine.set_model(model.with_parameters(exchangeabilities=ex))
        return -engine.log_likelihood()

    res = minimize_scalar(
        objective,
        bounds=(np.log(1e-2), np.log(1e2)),
        method="bounded",
        options={"xatol": tolerance},
    )
    k = float(np.exp(res.x))
    engine.set_model(
        model.with_parameters(
            exchangeabilities=np.array([1.0, k, 1.0, 1.0, k, 1.0])
        )
    )
    return engine.log_likelihood()


def _fit_one(
    name: str,
    model: SubstitutionModel,
    patterns: PatternAlignment,
    tree: Tree,
    with_gamma: bool,
    with_inv: bool,
    branch_passes: int,
    backend: "str | KernelBackend | None" = None,
) -> ModelFit:
    gamma = GammaRates(1.0, 4) if with_gamma else GammaRates(1.0, 1)
    engine: LikelihoodEngine = make_engine(
        patterns, tree.copy(), model, gamma,
        p_inv=0.05 if with_inv else None,
        backend=backend,
    )
    lnl = optimize_all_branches(engine, passes=branch_passes)
    family_ex, family_freq = _FAMILY_PARAMS[name]
    alpha = None
    p_inv = None
    # two alternation rounds so nested models (GTR > HKY) converge far
    # enough that likelihood ordering respects the nesting
    for _ in range(2):
        if name == "GTR":
            lnl = optimize_rates(engine)
        elif name in ("K80", "HKY85"):
            lnl = _optimize_kappa(engine)
        if with_gamma:
            lnl = optimize_alpha(engine)
            alpha = engine.rates_model.alpha
        if with_inv:
            lnl = optimize_pinv(engine)
            p_inv = engine.p_inv
        lnl = optimize_all_branches(engine, passes=branch_passes)

    n_branches = 2 * patterns.n_taxa - 3
    k = n_branches + family_ex + family_freq
    k += 1 if with_gamma else 0
    k += 1 if with_inv else 0
    n_sites = patterns.n_sites
    aic = 2 * k - 2 * lnl
    denom = n_sites - k - 1
    aicc = aic + (2 * k * (k + 1) / denom if denom > 0 else np.inf)
    bic = k * np.log(n_sites) - 2 * lnl
    label = name + ("+G" if with_gamma else "") + ("+I" if with_inv else "")
    return ModelFit(
        name=label, lnl=lnl, n_parameters=k, aic=aic, aicc=aicc, bic=bic,
        alpha=alpha, p_inv=p_inv,
    )


def select_model(
    patterns: PatternAlignment,
    tree: Tree,
    criterion: str = "bic",
    include_gamma: bool = True,
    include_invariant: bool = False,
    branch_passes: int = 2,
    backend: "str | KernelBackend | None" = None,
) -> tuple[ModelFit, list[ModelFit]]:
    """Fit the candidate family on a fixed tree; return (best, all_fits).

    ``criterion`` picks the ranking column (``"aic"``, ``"aicc"`` or
    ``"bic"``).  The topology is held fixed (standard model-selection
    practice); branch lengths and model parameters are optimised per
    candidate.  ``backend`` selects the kernel implementation shared by
    every candidate fit.
    """
    if criterion not in ("aic", "aicc", "bic"):
        raise ValueError(f"unknown criterion {criterion!r}")
    if isinstance(backend, str) and backend == "auto":
        from ..perf.autotune import resolve_auto_backend

        backend = resolve_auto_backend(patterns.n_patterns, 4, 4)
    backend = get_backend(backend)
    fits: list[ModelFit] = []
    variants = [(False, False)]
    if include_gamma:
        variants.append((True, False))
    if include_invariant:
        variants.append((False, True))
        if include_gamma:
            variants.append((True, True))
    for name, model in candidate_models(patterns).items():
        for with_gamma, with_inv in variants:
            fits.append(
                _fit_one(
                    name, model, patterns, tree, with_gamma, with_inv,
                    branch_passes, backend=backend,
                )
            )
    fits.sort(key=lambda f: getattr(f, criterion))
    return fits[0], fits
