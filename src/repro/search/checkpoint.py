"""Search checkpointing (ExaML's restart capability).

ExaML writes binary checkpoints so multi-day supercomputer runs survive
job-queue limits; the reproduction provides the same capability as a
JSON snapshot of the search-relevant state — topology with branch
lengths, substitution-model parameters, the Gamma shape, and the
likelihood trajectory — restorable into a fresh engine.

The checkpoint contains no CLAs (they are derived data and rebuild
lazily on the first evaluation), which is also why ExaML checkpoints
stay small next to its memory footprint.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..core.backends import KernelBackend, make_engine
from ..core.engine import LikelihoodEngine
from ..phylo.alignment import PatternAlignment
from ..phylo.models import SubstitutionModel
from ..phylo.rates import GammaRates
from ..phylo.tree import Tree

__all__ = ["Checkpoint", "save_checkpoint", "load_checkpoint", "resume_engine"]

FORMAT_VERSION = 1


@dataclass(frozen=True)
class Checkpoint:
    """Restorable search state."""

    newick: str
    model_name: str
    exchangeabilities: tuple[float, ...]
    frequencies: tuple[float, ...]
    alpha: float
    n_rate_categories: int
    lnl: float | None = None
    stage: str = ""

    def to_json(self) -> str:
        return json.dumps(
            {
                "format_version": FORMAT_VERSION,
                "newick": self.newick,
                "model_name": self.model_name,
                "exchangeabilities": list(self.exchangeabilities),
                "frequencies": list(self.frequencies),
                "alpha": self.alpha,
                "n_rate_categories": self.n_rate_categories,
                "lnl": self.lnl,
                "stage": self.stage,
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "Checkpoint":
        d = json.loads(text)
        version = d.get("format_version")
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported checkpoint format {version!r} "
                f"(this build reads {FORMAT_VERSION})"
            )
        return cls(
            newick=d["newick"],
            model_name=d["model_name"],
            exchangeabilities=tuple(d["exchangeabilities"]),
            frequencies=tuple(d["frequencies"]),
            alpha=float(d["alpha"]),
            n_rate_categories=int(d["n_rate_categories"]),
            lnl=d.get("lnl"),
            stage=d.get("stage", ""),
        )


def save_checkpoint(
    engine: LikelihoodEngine,
    path: str | Path,
    lnl: float | None = None,
    stage: str = "",
) -> Checkpoint:
    """Snapshot an engine's search state to a JSON file."""
    ckpt = Checkpoint(
        newick=engine.tree.to_newick(precision=12),
        model_name=engine.model.name,
        exchangeabilities=tuple(float(x) for x in engine.model.exchangeabilities),
        frequencies=tuple(float(x) for x in engine.model.frequencies),
        alpha=float(engine.rates_model.alpha),
        n_rate_categories=int(engine.rates_model.n_categories),
        lnl=lnl,
        stage=stage,
    )
    Path(path).write_text(ckpt.to_json())
    return ckpt


def load_checkpoint(path: str | Path) -> Checkpoint:
    """Read a checkpoint file."""
    return Checkpoint.from_json(Path(path).read_text())


def resume_engine(
    patterns: PatternAlignment,
    checkpoint: Checkpoint,
    backend: str | KernelBackend | None = None,
) -> LikelihoodEngine:
    """Rebuild an engine from a checkpoint over the original alignment.

    The alignment itself is not stored in the checkpoint (it is the
    immutable input, exactly as in ExaML, whose restarts re-read the
    original PHYLIP file); taxon-set agreement is verified.  ``backend``
    picks the kernel implementation of the resumed engine — a restart
    may switch backends freely because the checkpoint stores no CLAs.
    """
    tree = Tree.from_newick(checkpoint.newick)
    if set(tree.leaf_names()) != set(patterns.taxa):
        raise ValueError(
            "checkpoint tree taxa do not match the supplied alignment"
        )
    model = SubstitutionModel(
        name=checkpoint.model_name,
        exchangeabilities=np.asarray(checkpoint.exchangeabilities),
        frequencies=np.asarray(checkpoint.frequencies),
    )
    gamma = GammaRates(
        alpha=checkpoint.alpha, n_categories=checkpoint.n_rate_categories
    )
    return make_engine(patterns, tree, model, gamma, backend=backend)
