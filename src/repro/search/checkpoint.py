"""Search checkpointing (ExaML's restart capability).

ExaML writes binary checkpoints so multi-day supercomputer runs survive
job-queue limits; the reproduction provides the same capability as a
JSON snapshot of the search-relevant state — topology with branch
lengths, substitution-model parameters, the Gamma shape, the likelihood
trajectory position, and (format 2) the search-driver progress marker
(step / stage / SPR round + radius index) needed to *continue* a run
rather than repeat it.

The checkpoint contains no CLAs (they are derived data and rebuild
lazily on the first evaluation), which is also why ExaML checkpoints
stay small next to its memory footprint.

Crash safety: every write goes through
:func:`repro.util.atomic_write_text` (tmp file + fsync + ``os.replace``)
so a process killed mid-write leaves the previous snapshot intact, and
:class:`CheckpointWriter` keeps a rotation of the last *K* snapshots
(``ck.json``, ``ck.json.1``, …) so even a snapshot corrupted *after*
landing (disk fault) still leaves an older restartable state.
:func:`load_latest_checkpoint` walks that rotation newest-first.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..core.backends import KernelBackend, make_engine
from ..core.engine import LikelihoodEngine
from ..faults.plan import FaultPlan, InjectedCrash
from ..obs import metrics as _obs_metrics
from ..obs import server as _obs_server
from ..obs import spans as _obs
from ..phylo.alignment import PatternAlignment
from ..phylo.models import SubstitutionModel
from ..phylo.rates import GammaRates
from ..phylo.tree import Tree
from ..util import atomic_write_text

__all__ = [
    "Checkpoint",
    "CheckpointWriter",
    "save_checkpoint",
    "load_checkpoint",
    "load_latest_checkpoint",
    "rotation_slots",
    "resume_engine",
]

FORMAT_VERSION = 2

#: Format versions this build can read (v1 lacks the progress marker;
#: its fields default to "start of search").
READABLE_VERSIONS = (1, 2)


@dataclass(frozen=True)
class Checkpoint:
    """Restorable search state.

    ``lnl``/``stage`` locate the snapshot on the likelihood trajectory;
    ``step`` is the search driver's monotonic step counter and
    ``spr_round``/``spr_radius_idx`` pin the SPR schedule position so a
    resumed search continues the hill climb exactly where the dead
    process left it (rather than restarting rounds from the smallest
    radius).
    """

    newick: str
    model_name: str
    exchangeabilities: tuple[float, ...]
    frequencies: tuple[float, ...]
    alpha: float
    n_rate_categories: int
    lnl: float | None = None
    stage: str = ""
    step: int = 0
    spr_round: int = 0
    spr_radius_idx: int = 0
    tree_state: dict | None = None
    #: Full-tree smoothing method the run was using; a resumed search
    #: keeps it (the checkpoint wins over the resuming config) so the
    #: trajectory continues with the same optimiser.
    branch_opt_method: str = "newton"

    def to_json(self) -> str:
        return json.dumps(
            {
                "format_version": FORMAT_VERSION,
                "newick": self.newick,
                "model_name": self.model_name,
                "exchangeabilities": list(self.exchangeabilities),
                "frequencies": list(self.frequencies),
                "alpha": self.alpha,
                "n_rate_categories": self.n_rate_categories,
                "lnl": self.lnl,
                "stage": self.stage,
                "step": self.step,
                "spr_round": self.spr_round,
                "spr_radius_idx": self.spr_radius_idx,
                "tree_state": self.tree_state,
                "branch_opt_method": self.branch_opt_method,
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "Checkpoint":
        """Parse a checkpoint document.

        Truncated, non-JSON, or field-incomplete documents raise a
        single clear ``ValueError("corrupt checkpoint: ...")`` — never a
        raw ``KeyError``/``JSONDecodeError`` — so callers (and the
        rotation fallback in :func:`load_latest_checkpoint`) can treat
        "corrupt" uniformly.  An honest version mismatch keeps its own
        message.
        """
        try:
            d = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"corrupt checkpoint: not valid JSON ({exc})") from exc
        if not isinstance(d, dict):
            raise ValueError(
                "corrupt checkpoint: expected a JSON object, got "
                + type(d).__name__
            )
        version = d.get("format_version")
        if version not in READABLE_VERSIONS:
            raise ValueError(
                f"unsupported checkpoint format {version!r} "
                f"(this build reads {READABLE_VERSIONS})"
            )
        try:
            return cls(
                newick=d["newick"],
                model_name=d["model_name"],
                exchangeabilities=tuple(float(x) for x in d["exchangeabilities"]),
                frequencies=tuple(float(x) for x in d["frequencies"]),
                alpha=float(d["alpha"]),
                n_rate_categories=int(d["n_rate_categories"]),
                lnl=None if d.get("lnl") is None else float(d["lnl"]),
                stage=str(d.get("stage", "")),
                step=int(d.get("step", 0)),
                spr_round=int(d.get("spr_round", 0)),
                spr_radius_idx=int(d.get("spr_radius_idx", 0)),
                tree_state=d.get("tree_state"),
                branch_opt_method=str(d.get("branch_opt_method", "newton")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            detail = (
                f"missing field {exc}" if isinstance(exc, KeyError) else str(exc)
            )
            raise ValueError(f"corrupt checkpoint: {detail}") from exc


def _snapshot(
    engine: LikelihoodEngine,
    lnl: float | None,
    stage: str,
    step: int = 0,
    spr_round: int = 0,
    spr_radius_idx: int = 0,
    branch_opt_method: str = "newton",
) -> Checkpoint:
    # ``tree_state`` is the authoritative restore payload: an exact
    # structural dump (node/edge ids, adjacency order, id counters) so a
    # resumed search replays the identical floating-point trajectory —
    # a newick round-trip renumbers nodes and reorders enumeration,
    # which perturbs CLA/branch-opt evaluation order and drifts lnl by
    # ~1e-6, blowing the 1e-8 resume-parity gate.  The newick (17
    # significant digits, bit-exact branch lengths) stays for human
    # inspection and v1 readers.
    return Checkpoint(
        newick=engine.tree.to_newick(precision=17),
        model_name=engine.model.name,
        exchangeabilities=tuple(float(x) for x in engine.model.exchangeabilities),
        frequencies=tuple(float(x) for x in engine.model.frequencies),
        alpha=float(engine.rates_model.alpha),
        n_rate_categories=int(engine.rates_model.n_categories),
        lnl=lnl,
        stage=stage,
        step=step,
        spr_round=spr_round,
        spr_radius_idx=spr_radius_idx,
        tree_state=engine.tree.to_state(),
        branch_opt_method=branch_opt_method,
    )


def save_checkpoint(
    engine: LikelihoodEngine,
    path: str | Path,
    lnl: float | None = None,
    stage: str = "",
    step: int = 0,
    spr_round: int = 0,
    spr_radius_idx: int = 0,
    branch_opt_method: str = "newton",
) -> Checkpoint:
    """Snapshot an engine's search state to a JSON file, atomically.

    The write is crash-safe (tmp + fsync + ``os.replace``): a kill at
    any instant leaves either the previous snapshot or the new one on
    disk, never a truncated hybrid.
    """
    ckpt = _snapshot(
        engine, lnl, stage, step, spr_round, spr_radius_idx, branch_opt_method
    )
    atomic_write_text(path, ckpt.to_json())
    return ckpt


def load_checkpoint(path: str | Path) -> Checkpoint:
    """Read a checkpoint file; errors name the offending path."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ValueError(f"cannot read checkpoint {path}: {exc}") from exc
    try:
        return Checkpoint.from_json(text)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from exc


def rotation_slots(path: str | Path, keep: int = 3) -> list[Path]:
    """The rotation file names, newest first: ``p``, ``p.1``, …"""
    path = Path(path)
    return [path] + [
        path.with_name(f"{path.name}.{k}") for k in range(1, max(keep, 1))
    ]


def load_latest_checkpoint(
    path: str | Path, keep: int = 3
) -> tuple[Checkpoint, Path]:
    """The newest loadable snapshot in a rotation; ``(checkpoint, path)``.

    Tries ``path``, then ``path.1``, …  — a snapshot corrupted by a
    crash or disk fault silently falls through to the next-older slot.
    Raises ``ValueError`` describing every slot when none loads.
    """
    failures: list[str] = []
    for slot in rotation_slots(path, keep):
        if not slot.exists():
            failures.append(f"{slot}: missing")
            continue
        try:
            return load_checkpoint(slot), slot
        except ValueError as exc:
            failures.append(str(exc))
    raise ValueError(
        "no loadable checkpoint in rotation:\n  " + "\n  ".join(failures)
    )


class CheckpointWriter:
    """Periodic crash-safe snapshots with last-``keep`` rotation.

    ``every`` is the step period (``maybe_write`` fires when
    ``step % every == 0``); :meth:`write` always fires (used for the
    abort-with-checkpoint path).  Before a new snapshot lands, existing
    slots shift ``p`` → ``p.1`` → … → ``p.(keep-1)`` via atomic renames.

    Fault hook: a ``crash-in-write`` fault from ``fault_plan`` raises
    :class:`~repro.faults.InjectedCrash` *between* the tmp file's fsync
    and the final rename — the strongest kill-mid-write simulation: the
    payload is fully on disk, yet the rotation still shows only complete
    older snapshots.
    """

    def __init__(
        self,
        path: str | Path,
        every: int = 1,
        keep: int = 3,
        fault_plan: FaultPlan | None = None,
        branch_opt_method: str = "newton",
    ) -> None:
        if every < 0:
            raise ValueError("checkpoint period must be >= 0")
        if keep < 1:
            raise ValueError("need at least one rotation slot")
        self.path = Path(path)
        self.every = every
        self.keep = keep
        self.fault_plan = fault_plan
        self.branch_opt_method = branch_opt_method
        self.writes = 0
        self.seconds_writing = 0.0
        self.last_checkpoint: Checkpoint | None = None

    def _rotate(self) -> None:
        import os

        slots = rotation_slots(self.path, self.keep)
        for older, newer in zip(reversed(slots[1:]), reversed(slots[:-1])):
            if newer.exists():
                os.replace(newer, older)

    def write(
        self,
        engine: LikelihoodEngine,
        lnl: float | None,
        stage: str,
        step: int,
        spr_round: int = 0,
        spr_radius_idx: int = 0,
    ) -> Checkpoint:
        """Rotate and atomically write one snapshot (unconditional)."""
        t0 = time.perf_counter()
        ckpt = _snapshot(
            engine, lnl, stage, step, spr_round, spr_radius_idx,
            self.branch_opt_method,
        )
        self._rotate()

        hook = None
        if self.fault_plan is not None:
            plan = self.fault_plan

            def hook(tmp_path: Path) -> None:
                if plan.crash_in_write(str(self.path)):
                    raise InjectedCrash(step, where="checkpoint-write")

        atomic_write_text(self.path, ckpt.to_json(), pre_replace_hook=hook)
        self.writes += 1
        self.last_checkpoint = ckpt
        dt = time.perf_counter() - t0
        self.seconds_writing += dt
        if _obs.ENABLED:
            _obs.add_complete(
                "checkpoint.write", t0, t0 + dt,
                args={"stage": stage, "step": step, "path": str(self.path)},
            )
            reg = _obs_metrics.get_registry()
            reg.counter(
                "repro_checkpoint_writes_total", "checkpoint snapshots written"
            ).inc()
            reg.histogram(
                "repro_checkpoint_write_seconds",
                "wall time of one rotated atomic checkpoint write",
            ).observe(dt)
        if _obs_server.ENABLED:
            _obs_server.checkpoint_written(str(self.path), step)
        return ckpt

    def maybe_write(
        self,
        engine: LikelihoodEngine,
        lnl: float | None,
        stage: str,
        step: int,
        spr_round: int = 0,
        spr_radius_idx: int = 0,
    ) -> Checkpoint | None:
        """Periodic entry point: write when ``step`` hits the period."""
        if self.every == 0 or step % self.every != 0:
            return None
        return self.write(engine, lnl, stage, step, spr_round, spr_radius_idx)


def resume_engine(
    patterns: PatternAlignment,
    checkpoint: Checkpoint,
    backend: str | KernelBackend | None = None,
    workers: int = 1,
    execution: str = "simulated",
) -> LikelihoodEngine:
    """Rebuild an engine from a checkpoint over the original alignment.

    The alignment itself is not stored in the checkpoint (it is the
    immutable input, exactly as in ExaML, whose restarts re-read the
    original PHYLIP file); taxon-set agreement is verified.  ``backend``
    picks the kernel implementation of the resumed engine — a restart
    may switch backends freely because the checkpoint stores no CLAs.

    Only the *engine* state is restored here; the driver-level progress
    (``lnl``/``stage``/``step``/SPR position) is threaded back into the
    search by :func:`repro.search.ml_search`'s ``resume_from`` so a
    resumed run continues its likelihood trajectory instead of
    repeating completed phases.
    """
    if checkpoint.tree_state is not None:
        # Exact structural restore (same node/edge ids and adjacency
        # order as the checkpointed process) so the resumed search
        # replays an identical floating-point trajectory.
        tree = Tree.from_state(checkpoint.tree_state)
    else:  # v1 checkpoints carry only the newick
        tree = Tree.from_newick(checkpoint.newick)
    if set(tree.leaf_names()) != set(patterns.taxa):
        raise ValueError(
            "checkpoint tree taxa do not match the supplied alignment"
        )
    model = SubstitutionModel(
        name=checkpoint.model_name,
        exchangeabilities=np.asarray(checkpoint.exchangeabilities),
        frequencies=np.asarray(checkpoint.frequencies),
    )
    gamma = GammaRates(
        alpha=checkpoint.alpha, n_categories=checkpoint.n_rate_categories
    )
    return make_engine(
        patterns,
        tree,
        model,
        gamma,
        backend=backend,
        workers=workers,
        execution=execution,
    )
