"""ISTA-style proximal-gradient branch-length optimisation.

Optimises the L1-penalised log-likelihood over *all* branch lengths

    F(t) = lnL(t) - lam * sum_i t_i

using the one-traversal :meth:`all_branch_gradients` primitive: each
sweep costs one bidirectional traversal, every branch takes a
diagonally-preconditioned gradient step (step size ``1 / |d2|``, the
scalar Newton metric), and the L1 penalty is applied in closed form by
the proximal operator — for positive branch lengths soft-thresholding
degenerates to ``t <- max(t + eta * (d1 - lam) ... MIN_BRANCH_LENGTH)``,
so penalised branches collapse *exactly* onto the minimum length instead
of merely shrinking toward it.  That makes the optimiser a practical
near-multifurcation detector: with ``lam > 0`` the set of branches pinned
at ``MIN_BRANCH_LENGTH`` (the ``sparsity``) identifies edges the data
cannot resolve.

A global backtracking line search on F keeps each sweep monotone, the
same damping discipline as the Newton smoother.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs import metrics as _obs_metrics
from ..obs import spans as _obs
from ..phylo.tree import MAX_BRANCH_LENGTH, MIN_BRANCH_LENGTH

__all__ = ["ProxGradResult", "proximal_smooth"]

#: Curvature floor for the diagonal preconditioner: branches with nearly
#: flat second derivatives would otherwise take unbounded steps.
CURVATURE_FLOOR = 1e-3


@dataclass
class ProxGradResult:
    """Outcome of a proximal-gradient smoothing run."""

    lnl: float  #: final (unpenalised) log-likelihood
    objective: float  #: final penalised objective F = lnL - lam * sum(t)
    lam: float  #: L1 penalty weight the run used
    sweeps: int  #: bidirectional gradient traversals performed
    sparsity: int  #: branches pinned at MIN_BRANCH_LENGTH
    converged: bool


def proximal_smooth(
    engine,
    lam: float = 0.0,
    max_sweeps: int = 32,
    tolerance: float = 1e-8,
    objective_epsilon: float = 1e-7,
) -> ProxGradResult:
    """Run ISTA over all branch lengths; returns a :class:`ProxGradResult`.

    ``lam = 0`` reduces to preconditioned gradient ascent on lnL (useful
    as a smoother); ``lam > 0`` trades likelihood for sparsity, driving
    unsupported branches exactly to ``MIN_BRANCH_LENGTH``.
    """
    if lam < 0.0:
        raise ValueError(f"lam must be >= 0, got {lam}")
    tree = engine.tree
    edge_ids = sorted(tree.edge_ids)

    def objective(lnl: float) -> float:
        return lnl - lam * sum(tree.edge(e).length for e in edge_ids)

    lnl = engine.log_likelihood()
    best = objective(lnl)
    sweeps = 0
    converged = False
    with _obs.span("search.proxgrad", lam=lam, max_sweeps=max_sweeps):
        for _ in range(max_sweeps):
            grads = engine.all_branch_gradients()
            sweeps += 1
            # Subgradient optimality: interior branches need |d1 - lam|
            # small; branches pinned at the lower clamp are optimal
            # whenever the penalised slope points further down.
            worst = 0.0
            for eid, (d1, _d2) in grads.items():
                g = d1 - lam
                if tree.edge(eid).length <= MIN_BRANCH_LENGTH and g < 0.0:
                    continue
                worst = max(worst, abs(g))
            if worst < tolerance:
                converged = True
                break
            old = {eid: tree.edge(eid).length for eid in grads}
            eta = {
                eid: 1.0 / max(abs(d2), CURVATURE_FLOOR)
                for eid, (_d1, d2) in grads.items()
            }
            scale = 1.0
            improved = False
            lnl_new, f_new = lnl, best
            for _ in range(30):
                for eid, t0 in old.items():
                    d1 = grads[eid][0]
                    step = scale * eta[eid]
                    # gradient ascent on lnL, then the prox of the L1
                    # penalty (soft-threshold toward zero, clamped)
                    t_new = t0 + step * d1 - step * lam
                    tree.edge(eid).length = float(
                        np.clip(t_new, MIN_BRANCH_LENGTH, MAX_BRANCH_LENGTH)
                    )
                lnl_new = engine.log_likelihood()
                f_new = objective(lnl_new)
                if f_new >= best - 1e-13:
                    improved = True
                    break
                scale *= 0.5
            if not improved:
                for eid, t0 in old.items():
                    tree.edge(eid).length = t0
                engine.log_likelihood()  # restore validity at old lengths
                converged = True
                break
            gain = f_new - best
            lnl, best = lnl_new, f_new
            if gain < objective_epsilon:
                converged = True
                break
    sparsity = sum(
        1 for e in edge_ids if tree.edge(e).length <= MIN_BRANCH_LENGTH
    )
    if _obs.ENABLED:
        reg = _obs_metrics.get_registry()
        reg.counter(
            "repro_proxgrad_sweeps_total",
            "proximal-gradient sweeps (one traversal each)",
        ).inc(sweeps)
        reg.gauge(
            "repro_proxgrad_sparsity",
            "branches pinned at MIN_BRANCH_LENGTH by the L1 penalty",
        ).set(sparsity)
    return ProxGradResult(
        lnl=lnl,
        objective=best,
        lam=lam,
        sweeps=sweeps,
        sparsity=sparsity,
        converged=converged,
    )
