"""Evolutionary Placement Algorithm (EPA) — the paper's Sec. VII outlook.

The paper closes by suggesting the MIC kernels be applied to the EPA
(Berger et al. 2011): placing *query* sequences (e.g. short
environmental reads) onto a fixed *reference* tree, evaluating every
(branch, query) pair independently — "allowing for efficient
parallelization with less communication overhead" than tree search.

This module implements the algorithm on the reproduction's engine:

1. the reference tree's CLAs are computed once,
2. for each query and each reference branch, the query is attached at
   the branch midpoint, the pendant branch length gets a few Newton
   iterations, and the insertion is scored with one ``evaluate``,
3. placements are reported ranked by log-likelihood with likelihood
   weight ratios (the standard EPA output).

The (branch x query) loop is embarrassingly parallel; the kernel trace
it generates contains *zero* required reductions per placement, which is
exactly the communication profile the paper expects to suit the MIC.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.backends import KernelBackend, get_backend, make_engine
from ..obs import server as _obs_server
from ..phylo.alignment import Alignment, PatternAlignment
from ..phylo.models import SubstitutionModel
from ..phylo.rates import GammaRates
from ..phylo.tree import Tree

__all__ = ["Placement", "PlacementResult", "place_queries", "to_jplace"]


@dataclass(frozen=True)
class Placement:
    """One candidate placement of a query on a reference branch."""

    edge_label: tuple[str, ...]  # smaller split side, identifies the branch
    log_likelihood: float
    pendant_length: float
    weight_ratio: float = 0.0


@dataclass
class PlacementResult:
    """Ranked placements of one query sequence."""

    query: str
    placements: list[Placement] = field(default_factory=list)

    @property
    def best(self) -> Placement:
        return self.placements[0]


def _merge_alignment(
    reference: PatternAlignment, queries: dict[str, str]
) -> Alignment:
    """Reference + query rows as one (uncompressed) alignment."""
    ref_seqs = {
        t: reference.states.decode(
            reference.data[reference.taxa.index(t)][reference.site_to_pattern]
        )
        for t in reference.taxa
    }
    width = len(next(iter(ref_seqs.values())))
    for name, seq in queries.items():
        if name in ref_seqs:
            raise ValueError(f"query {name!r} collides with a reference taxon")
        if len(seq) != width:
            raise ValueError(
                f"query {name!r} has {len(seq)} sites, reference has {width} "
                "(queries must be aligned to the reference alignment)"
            )
    return Alignment.from_sequences({**ref_seqs, **queries}, reference.states)


def _edge_label(tree: Tree, edge_id: int) -> tuple[str, ...]:
    """Stable branch identifier: the sorted smaller leaf-name side."""
    edge = tree.edge(edge_id)
    side = sorted(
        tree.name(n) for n in tree.subtree_leaves(edge.u, edge_id)
    )
    other = sorted(
        tree.name(n) for n in tree.subtree_leaves(edge.v, edge_id)
    )
    return tuple(min(side, other, key=lambda s: (len(s), s)))


def place_queries(
    reference_alignment: PatternAlignment | Alignment,
    reference_tree: Tree,
    queries: dict[str, str],
    model: SubstitutionModel,
    gamma: GammaRates | None = None,
    newton_iterations: int = 4,
    keep_best: int = 5,
    backend: str | KernelBackend | None = None,
    workers: int = 1,
    execution: str = "simulated",
) -> list[PlacementResult]:
    """Place each query sequence on its best reference branches.

    Parameters
    ----------
    reference_alignment:
        Alignment of the reference taxa (compressed or not).
    reference_tree:
        The fixed reference topology with branch lengths (not modified).
    queries:
        ``{name: aligned_sequence}`` — aligned to the reference columns.
    keep_best:
        How many top placements to report per query.
    backend:
        Kernel backend name or instance shared by every per-query engine
        (see :mod:`repro.core.backends`).
    workers / execution:
        ``workers > 1`` evaluates each per-query engine on a
        :class:`~repro.parallel.forkjoin.ForkJoinEngine` with that many
        site slices (``execution``: ``simulated``/``threads``/
        ``processes``); placements stay bit-identical to the serial
        run.  Engines are closed after each query, so no pool or
        shared-memory segment outlives the call.
    """
    if isinstance(reference_alignment, Alignment):
        reference_alignment = reference_alignment.compress()
    if not queries:
        raise ValueError("no query sequences given")
    # Parallel modes build per-worker backend instances from the *name*;
    # the serial path shares one resolved instance across queries.
    resolved = backend if workers > 1 else get_backend(backend)
    if _obs_server.ENABLED:
        _obs_server.progress_begin(
            "place",
            total_steps=len(queries),
            queries=len(queries),
            reference_taxa=reference_alignment.n_taxa,
            workers=workers,
        )
    results: list[PlacementResult] = []
    for name, seq in queries.items():
        merged = _merge_alignment(reference_alignment, {name: seq}).compress()
        tree = reference_tree.copy()
        engine = make_engine(
            merged,
            tree,
            model,
            gamma,
            backend=resolved,
            workers=workers,
            execution=execution,
        )
        # Candidate branches identified by endpoints (ids churn on edits).
        candidates = [(e.u, e.v) for e in tree.edges]
        placements: list[Placement] = []
        try:
            for u, v in candidates:
                eid = tree.find_edge(u, v)
                label = _edge_label(tree, eid)
                leaf, mid, pend = tree.attach_leaf(eid, name, pendant_length=0.1)
                sumbuf = engine.edge_sum_buffer(pend)
                t = 0.1
                for _ in range(newton_iterations):
                    _, d1, d2 = engine.branch_derivatives(sumbuf, t)
                    if d2 >= 0 or abs(d1) < 1e-9:
                        break
                    t = float(np.clip(t - d1 / d2, 1e-8, 50.0))
                tree.edge(pend).length = t
                lnl = engine.log_likelihood(pend)
                placements.append(
                    Placement(edge_label=label, log_likelihood=lnl, pendant_length=t)
                )
                # detach the query again
                tree.remove_edge(pend)
                tree.remove_node(leaf)
                tree.suppress_node(mid)
        finally:
            close = getattr(engine, "close", None)
            if callable(close):
                close()
        placements.sort(key=lambda p: p.log_likelihood, reverse=True)
        placements = placements[:keep_best]
        # likelihood weight ratios over the reported set
        lnls = np.array([p.log_likelihood for p in placements])
        weights = np.exp(lnls - lnls.max())
        weights /= weights.sum()
        placements = [
            Placement(
                edge_label=p.edge_label,
                log_likelihood=p.log_likelihood,
                pendant_length=p.pendant_length,
                weight_ratio=float(w),
            )
            for p, w in zip(placements, weights)
        ]
        results.append(PlacementResult(query=name, placements=placements))
        if _obs_server.ENABLED:
            _obs_server.progress_update(
                "place", lnl=placements[0].log_likelihood if placements else None
            )
    if _obs_server.ENABLED:
        _obs_server.progress_finish(
            results[-1].placements[0].log_likelihood
            if results and results[-1].placements
            else None
        )
    return results


def to_jplace(
    results: list[PlacementResult], reference_tree: Tree
) -> dict:
    """Serialise placements in the ``jplace`` interchange format.

    Emits the standard structure consumed by placement viewers
    (gappa/iTOL): a reference-tree Newick string with ``{edge_number}``
    annotations and per-query placement rows
    ``[edge_num, likelihood, like_weight_ratio, distal_length,
    pendant_length]``.  Edge numbers follow the branch labels used by
    :func:`place_queries`, re-derived from the live tree.

    Returns the jplace dictionary (pass to ``json.dump`` to write).
    """
    label_to_num: dict[tuple[str, ...], int] = {}
    edge_num: dict[int, int] = {}
    for i, e in enumerate(reference_tree.edges):
        label_to_num[_edge_label(reference_tree, e.id)] = i
        edge_num[e.id] = i

    # Newick with {N} edge annotations: rebuild via the tree's writer,
    # then annotate by walking the structure in the same traversal order.
    internals = reference_tree.internal_nodes()
    root_node = internals[0] if internals else reference_tree.leaves()[0]

    def build(node: int, up_edge: int | None) -> str:
        if reference_tree.is_leaf(node):
            body = reference_tree.name(node)
        else:
            parts = [
                build(reference_tree.edge(eid).other(node), eid)
                for eid in reference_tree.incident_edges(node)
                if eid != up_edge
            ]
            body = "(" + ",".join(parts) + ")"
        if up_edge is None:
            return body
        e = reference_tree.edge(up_edge)
        return f"{body}:{e.length:.6f}{{{edge_num[up_edge]}}}"

    tree_string = build(root_node, None) + ";"

    placements = []
    for result in results:
        rows = []
        for p in result.placements:
            num = label_to_num.get(p.edge_label)
            if num is None:  # pragma: no cover - defensive
                continue
            rows.append(
                [num, p.log_likelihood, p.weight_ratio, 0.5, p.pendant_length]
            )
        placements.append({"p": rows, "n": [result.query]})
    return {
        "version": 3,
        "tree": tree_string,
        "placements": placements,
        "fields": [
            "edge_num",
            "likelihood",
            "like_weight_ratio",
            "distal_length",
            "pendant_length",
        ],
        "metadata": {"invocation": "repro.search.epa.place_queries"},
    }
