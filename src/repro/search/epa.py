"""Evolutionary Placement Algorithm (EPA) — the paper's Sec. VII outlook.

The paper closes by suggesting the MIC kernels be applied to the EPA
(Berger et al. 2011): placing *query* sequences (e.g. short
environmental reads) onto a fixed *reference* tree, evaluating every
(branch, query) pair independently — "allowing for efficient
parallelization with less communication overhead" than tree search.

This module implements the algorithm on the reproduction's engine:

1. the reference tree's CLAs are computed once,
2. for each query and each reference branch, the query is attached at
   the branch midpoint, the pendant branch length gets a few Newton
   iterations, and the insertion is scored with one ``evaluate``,
3. placements are reported ranked by log-likelihood with likelihood
   weight ratios over the **full** candidate set, then truncated to
   ``keep_best`` (the standard EPA output).

The (branch x query) loop is embarrassingly parallel; the kernel trace
it generates contains *zero* required reductions per placement, which is
exactly the communication profile the paper expects to suit the MIC.

:class:`PlacementSession` is the warm-state form of the algorithm: it
compresses the reference once, caches the decoded reference rows and
per-branch labels/distal lengths, and places any number of query sets
against them.  The long-running placement server (:mod:`repro.serve`)
keeps one session resident per reference tree; the offline
:func:`place_queries` entry point is a thin wrapper that builds a
session, places, and tears it down.  When several queries arrive
together on the serial path the session runs them in *lockstep*
(:func:`repro.core.schedule.execute_lockstep`): every query's
per-candidate traversal levels are fused into single wave dispatches on
one shared backend, bit-identical to placing the queries one at a time.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field, replace

import numpy as np

from ..core.backends import (
    KernelBackend,
    get_backend,
    make_engine,
    resolve_backend_name,
)
from ..core.schedule import execute_lockstep
from ..obs import server as _obs_server
from ..phylo.alignment import Alignment, PatternAlignment
from ..phylo.models import SubstitutionModel
from ..phylo.rates import GammaRates
from ..phylo.tree import Tree

__all__ = [
    "Placement",
    "PlacementResult",
    "PlacementSession",
    "place_queries",
    "to_jplace",
]


@dataclass(frozen=True)
class Placement:
    """One candidate placement of a query on a reference branch."""

    edge_label: tuple[str, ...]  # smaller split side, identifies the branch
    log_likelihood: float
    pendant_length: float
    weight_ratio: float = 0.0
    distal_length: float = 0.0


@dataclass
class PlacementResult:
    """Ranked placements of one query sequence."""

    query: str
    placements: list[Placement] = field(default_factory=list)

    @property
    def best(self) -> Placement:
        return self.placements[0]


def _edge_label(tree: Tree, edge_id: int) -> tuple[str, ...]:
    """Stable branch identifier: the sorted smaller leaf-name side."""
    edge = tree.edge(edge_id)
    side = sorted(
        tree.name(n) for n in tree.subtree_leaves(edge.u, edge_id)
    )
    other = sorted(
        tree.name(n) for n in tree.subtree_leaves(edge.v, edge_id)
    )
    return tuple(min(side, other, key=lambda s: (len(s), s)))


def _resolve_session_backend(
    backend: "str | KernelBackend | None", workers: int, execution: str
):
    """Boundary validation for the backend spec (see ISSUE 9 satellite).

    Thread/process substrates ship backend *names* to workers; a raw
    instance would otherwise die deep inside :class:`WorkerPool`.
    Registered instances are translated back to their name here; ad-hoc
    instances get a clear error at the call boundary.  The serial path
    resolves to one shared instance so every per-query engine feeds a
    single profile (and so lockstep batching can fuse across engines).
    """
    if isinstance(backend, str) and backend == "auto":
        raise ValueError(
            "backend='auto' must be resolved before session construction "
            "(see PlacementSession; it needs the reference workload shape)"
        )
    if workers > 1:
        if (
            backend is not None
            and not isinstance(backend, str)
            and execution != "simulated"
        ):
            name = resolve_backend_name(backend)
            if name is None:
                raise ValueError(
                    f"execution={execution!r} with workers={workers} "
                    "requires a backend *name* (each worker builds its own "
                    "instance); got an unregistered "
                    f"{type(backend).__name__} instance"
                )
            return name
        return backend
    return get_backend(backend)


class PlacementSession:
    """Warm, reusable placement state for one reference tree.

    Construction does the per-reference work once — compress the
    alignment, decode the reference rows for fast query merging, copy
    the tree, precompute every candidate branch's stable label and
    midpoint distal length — so repeated :meth:`place` calls only pay
    per-query cost.  A bounded LRU keeps recently merged+compressed
    query pattern alignments (the dominant non-kernel cost) so repeated
    or retried queries are free.

    ``warm()`` additionally builds a resident reference engine (through
    the ``max_resident`` memory-saving machinery when requested) and
    computes the reference CLAs/log-likelihood once — the placement
    server calls it at tenant registration so first-query latency does
    not include the cold sweep.  Sessions holding a warm engine should
    be ``close()``d (or used as context managers).
    """

    #: Merged-pattern LRU capacity (per-query compressed alignments).
    MERGE_CACHE_MAX = 64

    def __init__(
        self,
        reference_alignment: PatternAlignment | Alignment,
        reference_tree: Tree,
        model: SubstitutionModel,
        gamma: GammaRates | None = None,
        *,
        newton_iterations: int = 4,
        backend: "str | KernelBackend | None" = None,
        workers: int = 1,
        execution: str = "simulated",
        max_resident: int | None = None,
    ) -> None:
        if isinstance(reference_alignment, Alignment):
            reference_alignment = reference_alignment.compress()
        self.reference = reference_alignment
        self.model = model
        self.gamma = gamma
        self.newton_iterations = newton_iterations
        self.workers = workers
        self.execution = execution
        self.max_resident = max_resident
        if isinstance(backend, str) and backend == "auto":
            from ..perf.autotune import resolve_auto_backend

            backend = resolve_auto_backend(
                reference_alignment.n_patterns,
                model.n_states,
                gamma.n_categories if gamma is not None else 4,
                prefer_name=workers > 1 and execution != "simulated",
            )
        self._backend = _resolve_session_backend(backend, workers, execution)
        self.tree = reference_tree.copy()  # pristine; never mutated
        # Decode reference rows once; _merge re-uses them per query.
        self._ref_seqs = {
            t: reference_alignment.states.decode(
                reference_alignment.data[reference_alignment.taxa.index(t)][
                    reference_alignment.site_to_pattern
                ]
            )
            for t in reference_alignment.taxa
        }
        self._width = len(next(iter(self._ref_seqs.values())))
        # Candidate branches by endpoints (edge ids churn on attach /
        # detach; node ids survive, and tree.copy() preserves both).
        # Labels and midpoint distal lengths depend only on the pristine
        # topology, so precompute them per candidate.
        self._candidates: list[tuple[int, int]] = []
        self._labels: dict[tuple[int, int], tuple[str, ...]] = {}
        self._distals: dict[tuple[int, int], float] = {}
        for e in self.tree.edges:
            key = (e.u, e.v)
            self._candidates.append(key)
            self._labels[key] = _edge_label(self.tree, e.id)
            # midpoint attachment: distal = L/2, clamped to the branch
            self._distals[key] = min(0.5 * e.length, e.length)
        self._merge_cache: OrderedDict[tuple[str, str], PatternAlignment] = (
            OrderedDict()
        )
        self._ref_engine = None
        self._reference_lnl: float | None = None
        self.queries_placed = 0

    # -- lifecycle -----------------------------------------------------
    def warm(self) -> float:
        """Build the resident reference engine and sweep its CLAs once.

        Returns the reference tree's log-likelihood.  Idempotent: the
        engine stays resident until :meth:`close`.
        """
        if self._ref_engine is None:
            self._ref_engine = make_engine(
                self.reference,
                self.tree,
                self.model,
                self.gamma,
                backend=self._backend,
                max_resident=self.max_resident,
            )
            root = self.tree.edges[0].id
            self._reference_lnl = float(self._ref_engine.log_likelihood(root))
        return self._reference_lnl

    @property
    def reference_lnl(self) -> float | None:
        """Reference-tree log-likelihood (``None`` before :meth:`warm`)."""
        return self._reference_lnl

    def close(self) -> None:
        if self._ref_engine is not None:
            closer = getattr(self._ref_engine, "close", None)
            if callable(closer):
                closer()
            self._ref_engine = None

    def __enter__(self) -> "PlacementSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- query preparation ---------------------------------------------
    def _merged_patterns(self, name: str, seq: str) -> PatternAlignment:
        """Reference + one query row, compressed (LRU-cached)."""
        if name in self._ref_seqs:
            raise ValueError(f"query {name!r} collides with a reference taxon")
        if len(seq) != self._width:
            raise ValueError(
                f"query {name!r} has {len(seq)} sites, reference has "
                f"{self._width} (queries must be aligned to the reference "
                "alignment)"
            )
        key = (name, seq)
        cached = self._merge_cache.get(key)
        if cached is not None:
            self._merge_cache.move_to_end(key)
            return cached
        merged = Alignment.from_sequences(
            {**self._ref_seqs, name: seq}, self.reference.states
        ).compress()
        self._merge_cache[key] = merged
        while len(self._merge_cache) > self.MERGE_CACHE_MAX:
            self._merge_cache.popitem(last=False)
        return merged

    # -- placement -----------------------------------------------------
    def place(
        self,
        queries: dict[str, str],
        *,
        keep_best: int = 5,
        batch_queries: bool | None = None,
        on_result=None,
    ) -> list[PlacementResult]:
        """Place every query; ranked, LWR-weighted results in query order.

        ``batch_queries=None`` (the default) fuses concurrent queries
        into lockstep wave dispatches whenever the session runs a single
        shared backend (``workers == 1``) and more than one query is
        given; ``False`` forces the one-query-at-a-time loop (the two
        paths are bit-identical).  ``on_result`` is called with each
        :class:`PlacementResult` as it completes (progress reporting).
        """
        if not queries:
            raise ValueError("no query sequences given")
        if batch_queries is None:
            batch_queries = self.workers == 1 and len(queries) > 1
        if batch_queries and self.workers == 1 and len(queries) > 1:
            results = self._place_batched(queries, keep_best, on_result)
        else:
            results = self._place_serial(queries, keep_best, on_result)
        self.queries_placed += len(results)
        return results

    def _make_query_engine(self, merged: PatternAlignment, tree: Tree):
        return make_engine(
            merged,
            tree,
            self.model,
            self.gamma,
            backend=self._backend,
            workers=self.workers,
            execution=self.execution,
        )

    def _evaluate_candidate(
        self, state: "_QueryState", key: tuple[int, int]
    ) -> None:
        """Attach, Newton-optimise the pendant, score, detach, record."""
        engine, tree = state.engine, state.tree
        eid = tree.find_edge(*key)
        leaf, mid, pend = tree.attach_leaf(eid, state.name, pendant_length=0.1)
        sumbuf = engine.edge_sum_buffer(pend)
        t = 0.1
        for _ in range(self.newton_iterations):
            _, d1, d2 = engine.branch_derivatives(sumbuf, t)
            if d2 >= 0 or abs(d1) < 1e-9:
                break
            t = float(np.clip(t - d1 / d2, 1e-8, 50.0))
        tree.edge(pend).length = t
        lnl = engine.log_likelihood(pend)
        state.placements.append(
            Placement(
                edge_label=self._labels[key],
                log_likelihood=lnl,
                pendant_length=t,
                distal_length=self._distals[key],
            )
        )
        # detach the query again
        tree.remove_edge(pend)
        tree.remove_node(leaf)
        tree.suppress_node(mid)

    def _rank(
        self, placements: list[Placement], keep_best: int
    ) -> list[Placement]:
        """Sort by lnl, softmax LWRs over ALL candidates, then truncate.

        The softmax must run over the full evaluated set *before*
        ``keep_best`` slicing — normalising after truncation inflates
        every reported ratio (ISSUE 9 satellite).
        """
        placements = sorted(
            placements, key=lambda p: p.log_likelihood, reverse=True
        )
        lnls = np.array([p.log_likelihood for p in placements])
        weights = np.exp(lnls - lnls.max())
        weights /= weights.sum()
        ranked = [
            replace(p, weight_ratio=float(w))
            for p, w in zip(placements, weights)
        ]
        return ranked[:keep_best]

    def _place_serial(
        self, queries: dict[str, str], keep_best: int, on_result
    ) -> list[PlacementResult]:
        results: list[PlacementResult] = []
        for name, seq in queries.items():
            merged = self._merged_patterns(name, seq)
            tree = self.tree.copy()
            state = _QueryState(
                name=name,
                tree=tree,
                engine=self._make_query_engine(merged, tree),
            )
            try:
                for key in self._candidates:
                    self._evaluate_candidate(state, key)
            finally:
                state.close()
            result = PlacementResult(
                query=name, placements=self._rank(state.placements, keep_best)
            )
            results.append(result)
            if on_result is not None:
                on_result(result)
        return results

    def _place_batched(
        self, queries: dict[str, str], keep_best: int, on_result
    ) -> list[PlacementResult]:
        """Cross-query lockstep: one fused wave dispatch per plan level.

        Each query keeps its own engine (its own merged compressed
        alignment) on the session's single shared backend instance.  Per
        candidate branch, every query attaches at the same (u, v) edge
        and the per-engine invalidation plans are executed in lockstep —
        level *k* of all plans becomes one stacked ``newview_batch``
        dispatch.  The subsequent per-query ``edge_sum_buffer`` finds
        its plan already satisfied, so Newton + scoring run exactly the
        serial code path: results are bit-identical to
        :meth:`_place_serial` by construction.
        """
        states = []
        try:
            for name, seq in queries.items():
                merged = self._merged_patterns(name, seq)
                tree = self.tree.copy()
                states.append(
                    _QueryState(
                        name=name,
                        tree=tree,
                        engine=self._make_query_engine(merged, tree),
                    )
                )
            for key in self._candidates:
                attached = []
                for st in states:
                    eid = st.tree.find_edge(*key)
                    leaf, mid, pend = st.tree.attach_leaf(
                        eid, st.name, pendant_length=0.1
                    )
                    attached.append((st, leaf, mid, pend))
                execute_lockstep(
                    [st.engine for st, _, _, _ in attached],
                    [
                        st.engine.plan_execution(pend)
                        for st, _, _, pend in attached
                    ],
                )
                for st, leaf, mid, pend in attached:
                    engine, tree = st.engine, st.tree
                    # The lockstep pass satisfied the plan; this finds
                    # no pending newviews and mirrors the serial path.
                    sumbuf = engine.edge_sum_buffer(pend)
                    t = 0.1
                    for _ in range(self.newton_iterations):
                        _, d1, d2 = engine.branch_derivatives(sumbuf, t)
                        if d2 >= 0 or abs(d1) < 1e-9:
                            break
                        t = float(np.clip(t - d1 / d2, 1e-8, 50.0))
                    tree.edge(pend).length = t
                    lnl = engine.log_likelihood(pend)
                    st.placements.append(
                        Placement(
                            edge_label=self._labels[key],
                            log_likelihood=lnl,
                            pendant_length=t,
                            distal_length=self._distals[key],
                        )
                    )
                    tree.remove_edge(pend)
                    tree.remove_node(leaf)
                    tree.suppress_node(mid)
        finally:
            for st in states:
                st.close()
        results = []
        for st in states:
            result = PlacementResult(
                query=st.name, placements=self._rank(st.placements, keep_best)
            )
            results.append(result)
            if on_result is not None:
                on_result(result)
        return results


@dataclass
class _QueryState:
    """Per-query working set during one :meth:`PlacementSession.place`."""

    name: str
    tree: Tree
    engine: object
    placements: list[Placement] = field(default_factory=list)

    def close(self) -> None:
        closer = getattr(self.engine, "close", None)
        if callable(closer):
            closer()


def place_queries(
    reference_alignment: PatternAlignment | Alignment,
    reference_tree: Tree,
    queries: dict[str, str],
    model: SubstitutionModel,
    gamma: GammaRates | None = None,
    newton_iterations: int = 4,
    keep_best: int = 5,
    backend: "str | KernelBackend | None" = None,
    workers: int = 1,
    execution: str = "simulated",
    batch_queries: bool | None = None,
) -> list[PlacementResult]:
    """Place each query sequence on its best reference branches.

    Parameters
    ----------
    reference_alignment:
        Alignment of the reference taxa (compressed or not).
    reference_tree:
        The fixed reference topology with branch lengths (not modified).
    queries:
        ``{name: aligned_sequence}`` — aligned to the reference columns.
    keep_best:
        How many top placements to report per query.  Likelihood weight
        ratios are normalised over the *full* candidate set before
        truncation, so reported LWRs are true posteriors of the kept
        branches (they sum to <= 1).
    backend:
        Kernel backend name or instance shared by every per-query engine
        (see :mod:`repro.core.backends`).
    workers / execution:
        ``workers > 1`` evaluates each per-query engine on a
        :class:`~repro.parallel.forkjoin.ForkJoinEngine` with that many
        site slices (``execution``: ``simulated``/``threads``/
        ``processes``); placements stay bit-identical to the serial
        run.  Engines are closed after each query, so no pool or
        shared-memory segment outlives the call.
    batch_queries:
        ``None`` (default) auto-fuses multi-query serial runs into
        cross-query lockstep dispatches; ``False`` forces the
        one-query-at-a-time loop.  Both paths are bit-identical.

    One-shot wrapper over :class:`PlacementSession`; long-running
    callers (the placement server) hold a session instead.
    """
    session = PlacementSession(
        reference_alignment,
        reference_tree,
        model,
        gamma,
        newton_iterations=newton_iterations,
        backend=backend,
        workers=workers,
        execution=execution,
    )
    if _obs_server.ENABLED:
        _obs_server.progress_begin(
            "place",
            total_steps=len(queries),
            queries=len(queries),
            reference_taxa=session.reference.n_taxa,
            workers=workers,
        )

    def _report(result: PlacementResult) -> None:
        if _obs_server.ENABLED:
            _obs_server.progress_update(
                "place",
                lnl=result.placements[0].log_likelihood
                if result.placements
                else None,
            )

    try:
        results = session.place(
            queries,
            keep_best=keep_best,
            batch_queries=batch_queries,
            on_result=_report,
        )
    except BaseException as exc:
        # /progress must not keep showing a stale in-flight run after a
        # failure (ISSUE 9 satellite): mark it failed, then re-raise.
        if _obs_server.ENABLED:
            _obs_server.progress_fail(f"{type(exc).__name__}: {exc}")
        raise
    finally:
        session.close()
    if _obs_server.ENABLED:
        _obs_server.progress_finish(
            results[-1].placements[0].log_likelihood
            if results and results[-1].placements
            else None
        )
    return results


def to_jplace(
    results: list[PlacementResult], reference_tree: Tree
) -> dict:
    """Serialise placements in the ``jplace`` interchange format.

    Emits the standard structure consumed by placement viewers
    (gappa/iTOL): a reference-tree Newick string with ``{edge_number}``
    annotations and per-query placement rows
    ``[edge_num, likelihood, like_weight_ratio, distal_length,
    pendant_length]``.  Edge numbers follow the branch labels used by
    :func:`place_queries`, re-derived from the live tree.

    Returns the jplace dictionary (pass to ``json.dump`` to write).
    """
    label_to_num: dict[tuple[str, ...], int] = {}
    edge_num: dict[int, int] = {}
    for i, e in enumerate(reference_tree.edges):
        label_to_num[_edge_label(reference_tree, e.id)] = i
        edge_num[e.id] = i

    # Newick with {N} edge annotations: rebuild via the tree's writer,
    # then annotate by walking the structure in the same traversal order.
    internals = reference_tree.internal_nodes()
    root_node = internals[0] if internals else reference_tree.leaves()[0]

    def build(node: int, up_edge: int | None) -> str:
        if reference_tree.is_leaf(node):
            body = reference_tree.name(node)
        else:
            parts = [
                build(reference_tree.edge(eid).other(node), eid)
                for eid in reference_tree.incident_edges(node)
                if eid != up_edge
            ]
            body = "(" + ",".join(parts) + ")"
        if up_edge is None:
            return body
        e = reference_tree.edge(up_edge)
        return f"{body}:{e.length:.6f}{{{edge_num[up_edge]}}}"

    tree_string = build(root_node, None) + ";"

    placements = []
    for result in results:
        rows = []
        for p in result.placements:
            num = label_to_num.get(p.edge_label)
            if num is None:  # pragma: no cover - defensive
                continue
            rows.append(
                [
                    num,
                    p.log_likelihood,
                    p.weight_ratio,
                    p.distal_length,
                    p.pendant_length,
                ]
            )
        placements.append({"p": rows, "n": [result.query]})
    return {
        "version": 3,
        "tree": tree_string,
        "placements": placements,
        "fields": [
            "edge_num",
            "likelihood",
            "like_weight_ratio",
            "distal_length",
            "pendant_length",
        ],
        "metadata": {"invocation": "repro.search.epa.place_queries"},
    }
