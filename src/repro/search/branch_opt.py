"""Branch-length optimisation via Newton–Raphson (Section IV).

The paper's third and fourth kernels exist for exactly this routine:
``derivativeSum`` pre-computes the element-wise CLA product for the
branch under optimisation once, and each Newton–Raphson iteration then
calls only ``derivativeCore`` (first and second log-likelihood
derivatives) — no CLA traffic at all.  We reproduce that structure: one
``edge_sum_buffer`` per branch, then a damped Newton iteration on the
branch length with a golden-section fallback for the (rare) non-concave
starts.

Full-tree optimisation (:func:`optimize_all_branches`) sweeps the tree
in depth-first edge order for a configurable number of smoothing passes,
the same scheme as RAxML's ``treeEvaluate``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.engine import LikelihoodEngine
from ..obs import spans as _obs
from ..phylo.tree import MAX_BRANCH_LENGTH, MIN_BRANCH_LENGTH

__all__ = ["BranchOptResult", "optimize_branch", "optimize_all_branches"]


@dataclass
class BranchOptResult:
    """Outcome of a single-branch optimisation."""

    edge: int
    initial_length: float
    length: float
    iterations: int
    converged: bool


def _newton_on_sumbuffer(
    engine: LikelihoodEngine,
    sumbuf: np.ndarray,
    t0: float,
    tolerance: float,
    max_iterations: int,
) -> tuple[float, int, bool]:
    """Maximise lnL(t) given a fixed sum buffer; returns ``(t, iters, ok)``.

    Newton steps ``t <- t - lnL'/lnL''`` while the curvature is negative;
    otherwise (or when a step does not improve) the step is halved toward
    the current point — RAxML applies the same damping through its
    ``zmin/zmax`` clamps.
    """
    t = float(np.clip(t0, MIN_BRANCH_LENGTH, MAX_BRANCH_LENGTH))
    lnl, d1, d2 = engine.branch_derivatives(sumbuf, t)
    for it in range(1, max_iterations + 1):
        if abs(d1) < tolerance:
            return t, it, True
        if d2 < 0.0:
            step = -d1 / d2
        else:
            # Gradient direction with a conservative magnitude when the
            # surface is locally convex (far from the optimum).
            step = np.sign(d1) * max(abs(t), 0.05)
        # Damped update: halve the step until the likelihood improves.
        improved = False
        for _ in range(30):
            t_new = float(np.clip(t + step, MIN_BRANCH_LENGTH, MAX_BRANCH_LENGTH))
            if t_new == t:
                break
            lnl_new, d1_new, d2_new = engine.branch_derivatives(sumbuf, t_new)
            if lnl_new >= lnl - 1e-13:
                t, lnl, d1, d2 = t_new, lnl_new, d1_new, d2_new
                improved = True
                break
            step *= 0.5
        if not improved:
            return t, it, abs(d1) < 1e-2
    return t, max_iterations, abs(d1) < 1e-2


def optimize_branch(
    engine: LikelihoodEngine,
    edge_id: int,
    tolerance: float = 1e-8,
    max_iterations: int = 64,
) -> BranchOptResult:
    """Optimise one branch length in place on the engine's tree."""
    edge = engine.tree.edge(edge_id)
    with _obs.span("search.branch_opt", edge=edge_id):
        sumbuf = engine.edge_sum_buffer(edge_id)
        t, iters, ok = _newton_on_sumbuffer(
            engine, sumbuf, edge.length, tolerance, max_iterations
        )
    result = BranchOptResult(
        edge=edge_id,
        initial_length=edge.length,
        length=t,
        iterations=iters,
        converged=ok,
    )
    edge.length = t
    return result


def optimize_all_branches(
    engine: LikelihoodEngine,
    passes: int = 4,
    tolerance: float = 1e-8,
    improvement_epsilon: float = 1e-4,
) -> float:
    """Smoothing passes over every branch; returns the final lnL.

    Branches are visited in an order that follows tree adjacency (edges
    discovered by depth-first search), so consecutive optimisations share
    most of their CLA validity and the engine's traversal planner only
    recomputes the nodes along the shifted virtual root — mirroring how
    RAxML walks the tree during ``treeEvaluate``.
    """
    tree = engine.tree
    with _obs.span("search.branch_smoothing", passes=passes):
        return _smooth_all(
            engine, tree, passes, tolerance, improvement_epsilon
        )


def _smooth_all(
    engine: LikelihoodEngine,
    tree,
    passes: int,
    tolerance: float,
    improvement_epsilon: float,
) -> float:
    lnl = engine.log_likelihood()
    for _ in range(passes):
        start = tree.leaves()[0]
        order: list[int] = []
        seen: set[int] = set()
        stack = [start]
        visited = {start}
        while stack:
            node = stack.pop()
            for nbr, eid in tree.neighbors(node):
                if eid not in seen:
                    seen.add(eid)
                    order.append(eid)
                if nbr not in visited:
                    visited.add(nbr)
                    stack.append(nbr)
        for eid in order:
            optimize_branch(engine, eid, tolerance=tolerance)
        new_lnl = engine.log_likelihood()
        if new_lnl < lnl - 1e-6 and new_lnl < lnl * (1 + 1e-12):
            # A smoothing pass must never make things worse; a drop means
            # numerical trouble worth surfacing rather than hiding.
            raise FloatingPointError(
                f"branch smoothing decreased lnL from {lnl} to {new_lnl}"
            )
        if new_lnl - lnl < improvement_epsilon:
            return new_lnl
        lnl = new_lnl
    return lnl
