"""Branch-length optimisation: Newton sweeps and all-branch gradients.

The paper's third and fourth kernels exist for exactly this routine:
``derivativeSum`` pre-computes the element-wise CLA product for the
branch under optimisation once, and each Newton–Raphson iteration then
calls only ``derivativeCore`` (first and second log-likelihood
derivatives) — no CLA traffic at all.  We reproduce that structure: one
``edge_sum_buffer`` per branch, then a damped Newton iteration on the
branch length with a golden-section fallback for the (rare) non-concave
starts.

Full-tree optimisation (:func:`optimize_all_branches`) offers three
methods:

``"newton"``
    The classic per-branch sweep in depth-first edge order (RAxML's
    ``treeEvaluate``), 2N - 3 re-rooted ``derivativeSum`` traversals per
    pass.  Kept as the parity oracle for the gradient path.
``"gradient"``
    A full-tree smoother over :func:`all_branch_gradients`: *one*
    bidirectional traversal yields every branch's ``(d1, d2)``, all
    branches take a simultaneous damped Newton step, and a global
    backtracking line search keeps each sweep monotone in lnL.
``"prox"``
    The ISTA-style proximal-gradient optimiser with an L1 branch-length
    penalty (:mod:`repro.search.proxgrad`) — for sparse /
    near-multifurcating trees.

Per-branch results that are fully determined by unchanged inputs are
skipped: the engine's structural subtree signatures (the same ones that
gate CLA invalidation) plus the branch length form a key that decides
whether a previous pass's converged Newton solve can be reused without
recomputing the sum buffer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.engine import LikelihoodEngine
from ..obs import metrics as _obs_metrics
from ..obs import spans as _obs
from ..phylo.tree import MAX_BRANCH_LENGTH, MIN_BRANCH_LENGTH

__all__ = [
    "BranchOptResult",
    "BRANCH_OPT_METHODS",
    "all_branch_gradients",
    "optimize_branch",
    "optimize_all_branches",
]

#: Full-tree smoothing methods accepted by :func:`optimize_all_branches`
#: (and the ``--branch-opt`` CLI flag).
BRANCH_OPT_METHODS = ("newton", "gradient", "prox")


@dataclass
class BranchOptResult:
    """Outcome of a single-branch optimisation."""

    edge: int
    initial_length: float
    length: float
    iterations: int
    converged: bool


def all_branch_gradients(
    engine, root_edge: int | None = None
) -> dict[int, tuple[float, float]]:
    """``{edge_id: (dlnL/dt, d²lnL/dt²)}`` for every branch at once.

    Search-level entry point for the engines' bidirectional sweep: one
    post-order plus one pre-order traversal instead of 2N - 3 re-rooted
    ``derivativeSum`` traversals.  Every engine flavour (serial, CAT,
    +I, memory-saving, partitioned, fork-join, distributed) provides the
    method; the values match the per-branch ``edge_sum_buffer`` +
    ``branch_derivatives`` pair bit-for-bit.
    """
    return engine.all_branch_gradients(root_edge)


def _newton_on_sumbuffer(
    engine: LikelihoodEngine,
    sumbuf: np.ndarray,
    t0: float,
    tolerance: float,
    max_iterations: int,
) -> tuple[float, int, bool]:
    """Maximise lnL(t) given a fixed sum buffer; returns ``(t, iters, ok)``.

    Newton steps ``t <- t - lnL'/lnL''`` while the curvature is negative;
    otherwise (or when a step does not improve) the step is halved toward
    the current point — RAxML applies the same damping through its
    ``zmin/zmax`` clamps.
    """
    t = float(np.clip(t0, MIN_BRANCH_LENGTH, MAX_BRANCH_LENGTH))
    lnl, d1, d2 = engine.branch_derivatives(sumbuf, t)
    for it in range(1, max_iterations + 1):
        if abs(d1) < tolerance:
            return t, it, True
        if d2 < 0.0:
            step = -d1 / d2
        else:
            # Gradient direction with a conservative magnitude when the
            # surface is locally convex (far from the optimum).
            step = np.sign(d1) * max(abs(t), 0.05)
        # Damped update: halve the step until the likelihood improves.
        improved = False
        for _ in range(30):
            t_new = float(np.clip(t + step, MIN_BRANCH_LENGTH, MAX_BRANCH_LENGTH))
            if t_new == t:
                break
            lnl_new, d1_new, d2_new = engine.branch_derivatives(sumbuf, t_new)
            if lnl_new >= lnl - 1e-13:
                t, lnl, d1, d2 = t_new, lnl_new, d1_new, d2_new
                improved = True
                break
            step *= 0.5
        if not improved:
            return t, it, abs(d1) < 1e-2
    return t, max_iterations, abs(d1) < 1e-2


def _branch_signature(engine, edge_id: int):
    """Key fully determining a per-branch Newton solve, or ``None``.

    Combines the branch length with the engine's structural subtree
    signatures of both directed endpoints (model version included) — the
    exact inputs ``edge_sum_buffer`` + Newton consume.  Engines that
    don't expose the signature machinery directly delegate to a
    representative sub-engine sharing the master tree; where none exists
    (process pools), the memo is simply disabled.
    """
    if hasattr(engine, "_signatures"):
        targets = [engine]
    elif getattr(engine, "workers", None):  # fork-join (simulated/threads)
        targets = [engine.workers[0]]
    elif getattr(engine, "ranks", None):  # distributed (simulated)
        targets = [engine.ranks[0]]
    elif getattr(engine, "engines", None):  # partitioned: every model counts
        targets = engine.engines
    else:
        return None
    if not all(hasattr(t, "_signatures") for t in targets):
        return None
    edge = engine.tree.edge(edge_id)
    parts: list = [edge.length]
    for t in targets:
        sigs = t._signatures(edge_id)
        parts.append(
            (t._model_version, sigs[(edge.u, edge_id)], sigs[(edge.v, edge_id)])
        )
    return tuple(parts)


def optimize_branch(
    engine: LikelihoodEngine,
    edge_id: int,
    tolerance: float = 1e-8,
    max_iterations: int = 64,
    memo: dict | None = None,
) -> BranchOptResult:
    """Optimise one branch length in place on the engine's tree.

    With ``memo`` (as passed by :func:`optimize_all_branches`), a branch
    whose length and endpoint subtree signatures are unchanged since its
    last solve (at the same tolerance and iteration budget) is skipped
    outright — no ``derivativeSum``, no Newton iterations — because the
    deterministic solve would reproduce the memoised result exactly.
    """
    edge = engine.tree.edge(edge_id)
    sig = _branch_signature(engine, edge_id) if memo is not None else None
    if sig is not None:
        # The solver parameters are part of what determines the result,
        # so they join the key: a retry at a different tolerance must
        # not be satisfied by a skip.
        sig = sig + (tolerance, max_iterations)
    if sig is not None and memo.get(edge_id) == sig:
        if _obs.ENABLED:
            _obs_metrics.get_registry().counter(
                "repro_branch_opt_skips_total",
                "per-branch Newton solves skipped (inputs unchanged)",
            ).inc()
        return BranchOptResult(
            edge=edge_id,
            initial_length=edge.length,
            length=edge.length,
            iterations=0,
            converged=True,
        )
    with _obs.span("search.branch_opt", edge=edge_id):
        sumbuf = engine.edge_sum_buffer(edge_id)
        t, iters, ok = _newton_on_sumbuffer(
            engine, sumbuf, edge.length, tolerance, max_iterations
        )
    result = BranchOptResult(
        edge=edge_id,
        initial_length=edge.length,
        length=t,
        iterations=iters,
        converged=ok,
    )
    edge.length = t
    if sig is not None:
        # The endpoint signatures exclude this branch's own length, so
        # the post-solve key is the old one with the length swapped in.
        # Stored even for non-converged solves: the solver is
        # deterministic in its keyed inputs, so re-running it on an
        # unchanged branch would reproduce this exact outcome.
        memo[edge_id] = (t,) + sig[1:]
    return result


def optimize_all_branches(
    engine: LikelihoodEngine,
    passes: int = 4,
    tolerance: float = 1e-8,
    improvement_epsilon: float = 1e-4,
    method: str = "newton",
) -> float:
    """Smoothing passes over every branch; returns the final lnL.

    ``method`` selects the full-tree smoother (:data:`BRANCH_OPT_METHODS`):
    the per-branch Newton sweep, the one-traversal gradient smoother, or
    the L1-penalised proximal-gradient optimiser.  For ``"newton"``,
    branches are visited in an order that follows tree adjacency (edges
    discovered by depth-first search), so consecutive optimisations share
    most of their CLA validity and the engine's traversal planner only
    recomputes the nodes along the shifted virtual root — mirroring how
    RAxML walks the tree during ``treeEvaluate``.
    """
    if method not in BRANCH_OPT_METHODS:
        raise ValueError(
            f"method must be one of {BRANCH_OPT_METHODS}, got {method!r}"
        )
    tree = engine.tree
    with _obs.span("search.branch_smoothing", passes=passes, method=method):
        if _obs.ENABLED:
            _obs_metrics.get_registry().counter(
                f"repro_branch_opt_method_{method}_total",
                "full-tree smoothing runs by method",
            ).inc()
        if method == "gradient":
            return _smooth_gradient(
                engine, tree, passes, tolerance, improvement_epsilon
            )
        if method == "prox":
            from .proxgrad import proximal_smooth

            return proximal_smooth(
                engine, max_sweeps=max(16, 8 * passes), tolerance=tolerance
            ).lnl
        return _smooth_all(
            engine, tree, passes, tolerance, improvement_epsilon
        )


def _smooth_all(
    engine: LikelihoodEngine,
    tree,
    passes: int,
    tolerance: float,
    improvement_epsilon: float,
) -> float:
    memo = engine.__dict__.setdefault("_branch_opt_memo", {})
    if len(memo) > 8 * len(tree.edge_ids):  # retired edges after topology moves
        memo.clear()
    lnl = engine.log_likelihood()
    for _ in range(passes):
        start = tree.leaves()[0]
        order: list[int] = []
        seen: set[int] = set()
        stack = [start]
        visited = {start}
        while stack:
            node = stack.pop()
            for nbr, eid in tree.neighbors(node):
                if eid not in seen:
                    seen.add(eid)
                    order.append(eid)
                if nbr not in visited:
                    visited.add(nbr)
                    stack.append(nbr)
        for eid in order:
            optimize_branch(engine, eid, tolerance=tolerance, memo=memo)
        new_lnl = engine.log_likelihood()
        if new_lnl < lnl - 1e-6 and new_lnl < lnl * (1 + 1e-12):
            # A smoothing pass must never make things worse; a drop means
            # numerical trouble worth surfacing rather than hiding.
            raise FloatingPointError(
                f"branch smoothing decreased lnL from {lnl} to {new_lnl}"
            )
        if new_lnl - lnl < improvement_epsilon:
            return new_lnl
        lnl = new_lnl
    return lnl


def _smooth_gradient(
    engine,
    tree,
    passes: int,
    tolerance: float,
    improvement_epsilon: float,
) -> float:
    """Simultaneous damped Newton over one-traversal gradients.

    Each sweep costs one bidirectional traversal (O(N) kernel calls)
    against the Newton sweep's 2N - 3 re-rooted traversals; because all
    branches move at once the step is guarded by a *global* backtracking
    line search (halve every step until lnL improves), and more, cheaper
    sweeps are run — the sweep budget is ``8 * passes`` so the smoother
    converges to the same optimum the sequential sweep finds.
    """
    lnl = engine.log_likelihood()
    max_sweeps = max(16, 8 * passes)
    for sweep in range(1, max_sweeps + 1):
        grads = all_branch_gradients(engine)
        if max(abs(d1) for d1, _ in grads.values()) < tolerance:
            break
        old = {eid: tree.edge(eid).length for eid in grads}
        steps = {}
        for eid, (d1, d2) in grads.items():
            if d2 < 0.0:
                steps[eid] = -d1 / d2
            else:
                steps[eid] = float(np.sign(d1)) * max(abs(old[eid]), 0.05)
        scale = 1.0
        improved = False
        lnl_new = lnl
        for _ in range(30):
            for eid, t0 in old.items():
                tree.edge(eid).length = float(
                    np.clip(
                        t0 + scale * steps[eid],
                        MIN_BRANCH_LENGTH,
                        MAX_BRANCH_LENGTH,
                    )
                )
            lnl_new = engine.log_likelihood()
            if lnl_new >= lnl - 1e-13:
                improved = True
                break
            scale *= 0.5
        if _obs.ENABLED:
            _obs_metrics.get_registry().counter(
                "repro_branch_opt_gradient_sweeps_total",
                "gradient-smoother sweeps (one traversal each)",
            ).inc()
        if not improved:
            for eid, t0 in old.items():
                tree.edge(eid).length = t0
            engine.log_likelihood()  # restore CLA validity at the old lengths
            break
        gain = lnl_new - lnl
        lnl = lnl_new
        # The per-sweep gain decays geometrically near the optimum; a
        # tighter cut than the Newton sweep's pass criterion keeps the
        # two methods' final lnL within 1e-6 of each other.
        if gain < improvement_epsilon * 1e-3:
            break
    return lnl
