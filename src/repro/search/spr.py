"""Lazy SPR tree search (RAxML's rearrangement strategy).

One SPR *round* visits every prunable subtree, regrafts it onto every
branch within the rearrangement ``radius``, scores the insertion
*lazily* — only the new pendant branch is re-optimised (a handful of
Newton iterations) before a single ``evaluate`` — and keeps the best
insertion if it improves the likelihood.  Accepted moves get a local
branch-length polish; rounds repeat until no move improves the tree.

This is the loop that generates the kernel-invocation mix the paper
measures: thousands of small ``newview``/``evaluate`` calls per second
interleaved with branch-optimisation kernels, which is precisely why
offload-mode invocation latency kills MIC performance (Sec. V-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.engine import LikelihoodEngine
from ..obs import metrics as _obs_metrics
from ..obs import spans as _obs
from .branch_opt import optimize_all_branches, optimize_branch

__all__ = ["SprRoundStats", "spr_round", "spr_search"]


@dataclass
class SprRoundStats:
    """Accounting for one SPR round."""

    moves_tried: int = 0
    moves_accepted: int = 0
    lnl_before: float = 0.0
    lnl_after: float = 0.0
    accepted: list[tuple[int, int]] = field(default_factory=list)


def _lazy_insertion_score(
    engine: LikelihoodEngine, pendant_edge: int, newton_iterations: int
) -> float:
    """Score a trial insertion: quick pendant-branch polish + evaluate."""
    edge = engine.tree.edge(pendant_edge)
    sumbuf = engine.edge_sum_buffer(pendant_edge)
    t = edge.length
    for _ in range(newton_iterations):
        _, d1, d2 = engine.branch_derivatives(sumbuf, t)
        if d2 >= 0.0 or abs(d1) < 1e-9:
            break
        t = min(max(t - d1 / d2, 1e-8), 50.0)
    edge.length = t
    return engine.log_likelihood(pendant_edge)


def spr_round(
    engine: LikelihoodEngine,
    radius: int,
    epsilon: float = 0.01,
    newton_iterations: int = 2,
) -> SprRoundStats:
    """One full round of lazy SPR over all prunable subtrees.

    A move is accepted immediately when its (lazily scored) likelihood
    beats the current best by ``epsilon``; after acceptance the three
    branches created by the regraft are optimised properly.  When
    tracing is enabled the round is recorded as one
    ``search.spr_round`` span with per-acceptance instants.
    """
    with _obs.span("search.spr_round", radius=radius):
        return _spr_round_impl(engine, radius, epsilon, newton_iterations)


def _spr_round_impl(
    engine: LikelihoodEngine,
    radius: int,
    epsilon: float,
    newton_iterations: int,
) -> SprRoundStats:
    tree = engine.tree
    stats = SprRoundStats(lnl_before=engine.log_likelihood())
    current = stats.lnl_before

    # Trial moves delete and recreate nodes and edges (both ids churn), so
    # a candidate pruning is identified purely semantically: by the
    # leaf-name set of the pruned subtree.  The live pendant edge and
    # subtree-root node are re-located from the leaf set before every
    # trial.  Candidates are re-enumerated from the live tree after each
    # processed subtree, since accepted moves create new prunable
    # subtrees.
    def enumerate_candidates() -> list[frozenset[str]]:
        out = []
        for e in tree.edges:
            for attach, sub in ((e.u, e.v), (e.v, e.u)):
                if not tree.is_leaf(attach) and tree.degree(attach) == 3:
                    out.append(
                        frozenset(
                            tree.name(n) for n in tree.subtree_leaves(sub, e.id)
                        )
                    )
        return out

    def locate(leafset: frozenset[str]) -> tuple[int, int] | None:
        """Current ``(pendant_edge, subtree_root)`` of a leaf set, if any."""
        for e in tree.edges:
            for attach, sub in ((e.u, e.v), (e.v, e.u)):
                if tree.is_leaf(attach) or tree.degree(attach) != 3:
                    continue
                side = frozenset(
                    tree.name(n) for n in tree.subtree_leaves(sub, e.id)
                )
                if side == leafset:
                    return e.id, sub
        return None

    processed: set[frozenset[str]] = set()
    while True:
        leafset = next(
            (c for c in enumerate_candidates() if c not in processed), None
        )
        if leafset is None:
            break
        processed.add(leafset)
        located = locate(leafset)
        if located is None:
            continue
        pendant, sub = located
        target_pairs = [
            (tree.edge(t).u, tree.edge(t).v)
            for t in tree.spr_candidates(pendant, radius, subtree_root=sub)
        ]
        best_pair = None
        best_lnl = current + epsilon
        for u, v in target_pairs:
            located = locate(leafset)
            if located is None:  # pragma: no cover - defensive
                break
            pendant, sub = located
            try:
                target = tree.find_edge(u, v)
            except KeyError:  # pragma: no cover - defensive
                continue
            new_pendant, undo = tree.spr(pendant, target, subtree_root=sub)
            stats.moves_tried += 1
            lnl = _lazy_insertion_score(engine, new_pendant, newton_iterations)
            undo()
            if lnl > best_lnl:
                best_lnl = lnl
                best_pair = (u, v)
        if best_pair is not None:
            pendant, sub = locate(leafset)
            best_target = tree.find_edge(*best_pair)
            new_pendant, _ = tree.spr(pendant, best_target, subtree_root=sub)
            # Polish the branches around the new junction.
            junction = tree.edge(new_pendant).other(sub)
            for _, eid in tree.neighbors(junction):
                optimize_branch(engine, eid)
            current = engine.log_likelihood()
            stats.moves_accepted += 1
            stats.accepted.append((sub, best_target))
            if _obs.ENABLED:
                _obs.instant(
                    "search.spr_accept", radius=radius, lnl=current
                )
                _obs_metrics.get_registry().counter(
                    "repro_spr_moves_accepted_total", "accepted SPR moves"
                ).inc()

    stats.lnl_after = current
    if _obs.ENABLED:
        _obs_metrics.get_registry().counter(
            "repro_spr_moves_tried_total", "trial SPR regrafts scored"
        ).inc(stats.moves_tried)
    return stats


def spr_search(
    engine: LikelihoodEngine,
    radii: tuple[int, ...] = (5, 10),
    max_rounds: int = 10,
    epsilon: float = 0.01,
    smooth_passes: int = 2,
    start_round: int = 0,
    start_radius_idx: int = 0,
    on_round=None,
) -> list[SprRoundStats]:
    """Iterated SPR rounds with an escalating radius schedule.

    Starts with the smallest radius; when a round yields no accepted
    moves the next radius is tried, and the search stops once the
    largest radius also yields none — RAxML-Light's hill-climbing
    schedule in miniature.  Each productive round is followed by
    branch-length smoothing.

    Restartability: ``start_round``/``start_radius_idx`` continue the
    schedule from a checkpointed position (a resumed search must not
    re-descend the radius ladder), and ``on_round(round_index,
    next_radius_idx, stats)`` — called after each round's smoothing,
    with the radius index the *next* round will use — is the seam the
    checkpointing driver snapshots through (it may raise
    :class:`~repro.faults.InjectedCrash` to simulate a mid-search kill).
    """
    history: list[SprRoundStats] = []
    radius_idx = start_radius_idx
    for round_index in range(start_round, max_rounds):
        if radius_idx >= len(radii):
            break
        stats = spr_round(engine, radii[radius_idx], epsilon=epsilon)
        history.append(stats)
        done = False
        if stats.moves_accepted == 0:
            radius_idx += 1
            done = radius_idx >= len(radii)
        else:
            optimize_all_branches(engine, passes=smooth_passes)
        if on_round is not None:
            on_round(round_index, radius_idx, stats)
        if done:
            break
    return history
