"""Model-parameter optimisation: Gamma shape and GTR exchangeabilities.

RAxML interleaves Brent-style one-dimensional optimisation of each free
model parameter with branch-length smoothing until the likelihood gain
drops below a threshold.  We follow the same coordinate-wise scheme
using :func:`scipy.optimize.minimize_scalar` (bounded Brent) per
parameter:

* the Gamma shape ``alpha`` on a log-scale bracket ``[0.02, 100]``,
* the five free GTR exchangeabilities (the sixth, GT, is the fixed
  reference = 1, RAxML's convention),
* optionally the base frequencies via softmax coordinates (empirical
  frequencies are the default, as in the paper's runs).

Each parameter change invalidates every CLA (the engine handles that via
its model version), so model optimisation is deliberately scheduled
*rarely* relative to branch/topology moves — as in RAxML.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import minimize_scalar

from ..core.engine import LikelihoodEngine
from .branch_opt import optimize_all_branches

__all__ = [
    "ModelOptResult",
    "optimize_alpha",
    "optimize_rates",
    "optimize_model",
    "optimize_pinv",
]

ALPHA_BOUNDS = (0.02, 100.0)
RATE_BOUNDS = (1e-4, 100.0)


@dataclass
class ModelOptResult:
    """Outcome of a model-optimisation round."""

    lnl: float
    alpha: float
    exchangeabilities: np.ndarray
    rounds: int


def _engine_lnl(engine: LikelihoodEngine) -> float:
    return engine.log_likelihood()


def optimize_alpha(engine: LikelihoodEngine, tolerance: float = 1e-4) -> float:
    """Brent-optimise the Gamma shape parameter; returns the new lnL."""

    def objective(log_alpha: float) -> float:
        engine.set_alpha(float(np.exp(log_alpha)))
        return -_engine_lnl(engine)

    res = minimize_scalar(
        objective,
        bounds=(np.log(ALPHA_BOUNDS[0]), np.log(ALPHA_BOUNDS[1])),
        method="bounded",
        options={"xatol": tolerance},
    )
    engine.set_alpha(float(np.exp(res.x)))
    return _engine_lnl(engine)


def optimize_pinv(engine, tolerance: float = 1e-4, max_pinv: float = 0.95) -> float:
    """Brent-optimise the invariable-sites proportion of a +I engine.

    ``engine`` must expose ``set_p_inv`` (see
    :class:`repro.core.invariant.InvariantSitesEngine`); returns the new
    lnL.
    """

    def objective(p: float) -> float:
        engine.set_p_inv(float(p))
        return -engine.log_likelihood()

    res = minimize_scalar(
        objective,
        bounds=(0.0, max_pinv),
        method="bounded",
        options={"xatol": tolerance},
    )
    engine.set_p_inv(float(res.x))
    return engine.log_likelihood()


def optimize_rates(engine: LikelihoodEngine, tolerance: float = 1e-6) -> float:
    """Joint optimisation of the free exchangeabilities; returns lnL.

    The last exchangeability is the reference rate pinned to 1 (RAxML
    normalises GT = 1 for DNA); the others are optimised jointly in log
    space with L-BFGS-B.  Joint optimisation matters here: the free
    rates are *ratios* against the pinned reference, so they are
    strongly correlated and one-at-a-time coordinate descent (RAxML's
    historical scheme) creeps toward the optimum — slowly enough to
    distort nested-model comparisons.
    """
    from scipy.optimize import minimize

    model = engine.model
    ex = model.exchangeabilities.copy()
    n_free = ex.shape[0] - 1
    if n_free == 0:
        return _engine_lnl(engine)

    def objective(log_rates: np.ndarray) -> float:
        trial = ex.copy()
        trial[:n_free] = np.exp(log_rates)
        engine.set_model(model.with_parameters(exchangeabilities=trial))
        return -_engine_lnl(engine)

    x0 = np.log(np.clip(ex[:n_free], RATE_BOUNDS[0], RATE_BOUNDS[1]))
    res = minimize(
        objective,
        x0,
        method="L-BFGS-B",
        bounds=[(np.log(RATE_BOUNDS[0]), np.log(RATE_BOUNDS[1]))] * n_free,
        options={"ftol": tolerance, "maxiter": 100},
    )
    final = ex.copy()
    final[:n_free] = np.exp(res.x)
    engine.set_model(model.with_parameters(exchangeabilities=final))
    return _engine_lnl(engine)


def optimize_model(
    engine: LikelihoodEngine,
    max_rounds: int = 3,
    epsilon: float = 0.1,
    optimize_exchangeabilities: bool = True,
    branch_passes: int = 2,
) -> ModelOptResult:
    """Alternate alpha / rates / branch-length optimisation to convergence.

    ``epsilon`` is the lnL-improvement threshold below which another
    round is not worth its (full-CLA-invalidation) cost — RAxML's
    ``likelihoodEpsilon`` plays the same role.
    """
    lnl = _engine_lnl(engine)
    rounds = 0
    for rounds in range(1, max_rounds + 1):
        lnl_new = optimize_alpha(engine)
        if optimize_exchangeabilities and engine.model.exchangeabilities.shape[0] == 6:
            lnl_new = optimize_rates(engine)
        lnl_new = optimize_all_branches(engine, passes=branch_passes)
        if lnl_new - lnl < epsilon:
            lnl = lnl_new
            break
        lnl = lnl_new
    return ModelOptResult(
        lnl=lnl,
        alpha=engine.rates_model.alpha,
        exchangeabilities=engine.model.exchangeabilities.copy(),
        rounds=rounds,
    )
