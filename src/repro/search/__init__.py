"""Maximum-likelihood tree search (RAxML-Light / ExaML algorithm layer).

Branch-length optimisation (Newton–Raphson on the ``derivativeSum`` /
``derivativeCore`` kernel pair), model-parameter optimisation (Brent),
lazy SPR rearrangements, and the full search driver whose kernel trace
feeds the performance model.
"""

from .bootstrap import BootstrapResult, bootstrap_analysis, bootstrap_weights, support_values
from .branch_opt import (
    BRANCH_OPT_METHODS,
    BranchOptResult,
    all_branch_gradients,
    optimize_all_branches,
    optimize_branch,
)
from .checkpoint import (
    Checkpoint,
    CheckpointWriter,
    load_checkpoint,
    load_latest_checkpoint,
    resume_engine,
    rotation_slots,
    save_checkpoint,
)
from .epa import Placement, PlacementResult, place_queries, to_jplace
from .model_opt import (
    ModelOptResult,
    optimize_alpha,
    optimize_model,
    optimize_pinv,
    optimize_rates,
)
from .model_select import ModelFit, candidate_models, select_model
from .nni import NniRoundStats, nni_round, nni_search
from .raxml_light import SearchConfig, SearchResult, empirical_frequencies, ml_search
from .proxgrad import ProxGradResult, proximal_smooth
from .spr import SprRoundStats, spr_round, spr_search

__all__ = [
    "BootstrapResult",
    "bootstrap_analysis",
    "bootstrap_weights",
    "support_values",
    "BRANCH_OPT_METHODS",
    "BranchOptResult",
    "all_branch_gradients",
    "optimize_all_branches",
    "optimize_branch",
    "ProxGradResult",
    "proximal_smooth",
    "Checkpoint",
    "CheckpointWriter",
    "load_checkpoint",
    "load_latest_checkpoint",
    "resume_engine",
    "rotation_slots",
    "save_checkpoint",
    "Placement",
    "PlacementResult",
    "place_queries",
    "to_jplace",
    "ModelOptResult",
    "optimize_alpha",
    "optimize_model",
    "optimize_pinv",
    "optimize_rates",
    "ModelFit",
    "candidate_models",
    "select_model",
    "NniRoundStats",
    "nni_round",
    "nni_search",
    "SearchConfig",
    "SearchResult",
    "empirical_frequencies",
    "ml_search",
    "SprRoundStats",
    "spr_round",
    "spr_search",
]
