"""CLA memory layouts for vectorized kernels (Section V-B2/V-B3).

The reference kernels hold CLAs as ``(patterns, rates, states)`` NumPy
arrays.  The vectorized kernels need them *flat and interleaved*: one
contiguous block of ``rates x states`` doubles per site, sites
consecutive, every per-site block starting on a vector-alignment
boundary.  For the paper's configuration (DNA, Gamma-4) a block is 16
doubles = 128 bytes — naturally 64-byte aligned, which is why that
configuration vectorizes so cleanly on the MIC.  For CAT (one rate per
site: 4 doubles = 32 bytes) blocks straddle alignment boundaries unless
padded; :class:`InterleavedLayout` computes the required padding, the
"special care" of Sec. V-B2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["InterleavedLayout"]


@dataclass(frozen=True)
class InterleavedLayout:
    """Flat per-site block layout with alignment padding.

    Parameters
    ----------
    n_sites:
        Number of site patterns.
    n_rates, n_states:
        Per-site block dimensions (block = ``n_rates * n_states``
        doubles).
    alignment:
        Required byte alignment of each per-site block (the ISA's vector
        alignment; 64 for MIC).
    """

    n_sites: int
    n_rates: int
    n_states: int
    alignment: int = 64

    @property
    def block_doubles(self) -> int:
        """Payload doubles per site."""
        return self.n_rates * self.n_states

    @property
    def padded_doubles(self) -> int:
        """Doubles per site after padding to the alignment boundary."""
        align_doubles = self.alignment // 8
        blocks = (self.block_doubles + align_doubles - 1) // align_doubles
        return blocks * align_doubles

    @property
    def padding_doubles(self) -> int:
        return self.padded_doubles - self.block_doubles

    @property
    def total_doubles(self) -> int:
        return self.n_sites * self.padded_doubles

    @property
    def bytes_per_site(self) -> int:
        return self.padded_doubles * 8

    def site_offset(self, site: int) -> int:
        """Byte offset of a site's block within the flat array."""
        if not 0 <= site < self.n_sites:
            raise IndexError(f"site {site} outside [0, {self.n_sites})")
        return site * self.padded_doubles * 8

    def to_flat(self, z: np.ndarray) -> np.ndarray:
        """Pack ``(sites, rates, states)`` into the padded flat layout."""
        if z.shape != (self.n_sites, self.n_rates, self.n_states):
            raise ValueError(
                f"expected {(self.n_sites, self.n_rates, self.n_states)}, "
                f"got {z.shape}"
            )
        flat = np.zeros(self.total_doubles, dtype=np.float64)
        view = flat.reshape(self.n_sites, self.padded_doubles)
        view[:, : self.block_doubles] = z.reshape(self.n_sites, -1)
        return flat

    def from_flat(self, flat: np.ndarray) -> np.ndarray:
        """Unpack the padded flat layout back to ``(sites, rates, states)``."""
        if flat.shape != (self.total_doubles,):
            raise ValueError(
                f"expected flat shape {(self.total_doubles,)}, got {flat.shape}"
            )
        view = flat.reshape(self.n_sites, self.padded_doubles)
        return view[:, : self.block_doubles].reshape(
            self.n_sites, self.n_rates, self.n_states
        ).copy()
