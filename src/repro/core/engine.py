"""The likelihood engine: CLAs, virtual roots, and kernel dispatch.

:class:`LikelihoodEngine` is the equivalent of RAxML's likelihood core:
it owns the conditional likelihood arrays (one per internal node), keeps
track of which are valid for which orientation, plans minimal traversals
when the tree changes, and dispatches the four kernels through a
pluggable :class:`~repro.core.backends.KernelBackend` (the NumPy
reference kernels of :mod:`repro.core.kernels` by default — select
others via the ``backend`` argument or the ``REPRO_BACKEND`` environment
variable).

Validity tracking uses structural *subtree signatures* instead of
explicit invalidation hooks: a CLA oriented toward edge ``e`` is valid
iff the topology and branch lengths below it (plus the model parameters)
are unchanged since it was computed.  The engine recomputes a signature
per node during traversal planning (O(n) per likelihood evaluation) and
recomputes exactly the stale CLAs — which makes it impossible for a
topology move or branch-length change to leave a stale CLA behind, a
classic source of silent likelihood bugs in hand-invalidated codes.

Every kernel dispatch is recorded in :class:`KernelCounters`; a tree
search run therefore leaves behind the invocation trace that drives the
paper's performance model (Sec. VI).
"""

from __future__ import annotations

import numpy as np

from ..obs import metrics as _obs_metrics
from ..obs import spans as _obs
from ..phylo.alignment import PatternAlignment
from ..phylo.models import SubstitutionModel
from ..phylo.rates import GammaRates
from ..phylo.tree import Tree
from . import kernels
from .backends import KernelBackend, KernelProfile, get_backend
from .schedule import NewviewCall, PlanExecutor, WaveStats, dispatch_wave
from .traversal import (
    EdgeGradientOp,
    ExecutionPlan,
    GradientDescriptor,
    GradientPlan,
    KernelCounters,
    KernelKind,
    NewviewOp,
    PreorderOp,
    TraversalDescriptor,
    levelize,
    levelize_upsweep,
)

__all__ = ["LikelihoodEngine"]


class LikelihoodEngine:
    """Phylogenetic likelihood function over a mutable tree.

    Parameters
    ----------
    patterns:
        Pattern-compressed alignment (see
        :meth:`repro.phylo.alignment.Alignment.compress`).
    tree:
        The tree the engine evaluates.  The engine holds a reference; the
        tree may be mutated freely (SPR/NNI/branch changes) between
        calls — stale CLAs are detected structurally.
    model:
        A reversible substitution model.
    rates:
        Discrete-Gamma heterogeneity (the paper's Gamma4 configuration is
        ``GammaRates(alpha, 4)``); ``None`` means a single unit rate.
    backend:
        Kernel implementation: a registered backend name
        (``"reference"``, ``"blocked"``, ``"shadow"``), an already
        constructed :class:`~repro.core.backends.KernelBackend`, or
        ``None`` for the process default (``REPRO_BACKEND`` environment
        variable, falling back to the reference kernels).
    """

    def __init__(
        self,
        patterns: PatternAlignment,
        tree: Tree,
        model: SubstitutionModel,
        rates: GammaRates | None = None,
        backend: str | KernelBackend | None = None,
    ) -> None:
        self.patterns = patterns
        self.tree = tree
        self.backend = get_backend(backend)
        self.counters = KernelCounters()
        #: Per-plan operand preparation cache: branch matrices and tip
        #: lookup tables keyed by branch *length* (the model is fixed
        #: within one plan execution), so same-length ops share operand
        #: arrays — the identity a batching backend groups on.
        self._prep_cache: dict[tuple, np.ndarray] = {}
        #: The wave executor: the default dispatch path for every plan.
        self.executor = PlanExecutor(self)
        self._model_version = 0
        self._clas: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._valid: dict[int, tuple[int, object]] = {}  # node -> (edge, signature)
        #: Pre-order partials of the current gradient up-sweep, keyed by
        #: edge id.  Unlike post-order CLAs these have no cross-call
        #: validity tracking: a partial depends on the *entire* rest of
        #: the tree, so the dict lives only for the duration of one
        #: :meth:`all_branch_gradients` call.
        self._pre: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._grad: dict[int, tuple[float, float]] = {}
        self._grad_terms: "dict[int, tuple] | None" = None
        self._tip_codes: dict[str, np.ndarray] = {
            name: patterns.row(name) for name in patterns.taxa
        }
        self.set_model(model, rates if rates is not None else GammaRates(1.0, 1))

    # ------------------------------------------------------------------
    # model handling
    # ------------------------------------------------------------------
    def set_model(self, model: SubstitutionModel, rates: GammaRates | None = None) -> None:
        """Install new model parameters; all CLAs become stale."""
        if model.n_states != self.patterns.states.n_states:
            raise ValueError(
                f"model has {model.n_states} states, alignment alphabet has "
                f"{self.patterns.states.n_states}"
            )
        self.model = model
        if rates is not None:
            self.rates_model = rates
        self.eigen = model.eigen()
        self.rate_values = self.rates_model.rates
        self.rate_weights = self.rates_model.weights
        self.n_rates = self.rate_values.shape[0]
        if self.patterns.states.n_states <= 8:
            tip_table = self.patterns.states.tip_table()
            self._tip_eigen = kernels.tip_eigen_table(self.eigen, tip_table)
        else:
            # Large alphabets (protein): build rows only for codes present.
            codes = np.unique(self.patterns.data)
            rows = self.patterns.states.tip_rows(codes)
            dense = np.zeros((int(codes.max()) + 1, model.n_states))
            dense[codes] = rows
            self._tip_eigen = dense @ self.eigen.u_inv.T
        self._model_version += 1
        self._valid.clear()
        self._prep_cache.clear()  # operand cache embeds the old model

    def set_alpha(self, alpha: float) -> None:
        """Convenience: replace the Gamma shape parameter."""
        self.set_model(self.model, self.rates_model.with_alpha(alpha))

    # ------------------------------------------------------------------
    # signatures (structural CLA validity)
    # ------------------------------------------------------------------
    def _signatures(self, root_edge: int) -> dict[tuple[int, int], object]:
        """Subtree signature of every directed (node, up_edge) below the root.

        The signature of a leaf is its name; an internal node's signature
        combines its children's signatures with the connecting edge ids
        and lengths, plus the global model version.  Two equal signatures
        imply equal subtree likelihood content.
        """
        tree = self.tree
        sigs: dict[tuple[int, int], object] = {}
        for node, _parent, up_edge in tree.postorder(root_edge):
            if tree.is_leaf(node):
                sigs[(node, up_edge)] = tree.name(node)
                continue
            parts = [self._model_version]
            for child, eid in tree.children(node, up_edge):
                parts.append((eid, tree.edge(eid).length, sigs[(child, eid)]))
            sigs[(node, up_edge)] = tuple(parts)
        return sigs

    # ------------------------------------------------------------------
    # traversal planning and execution
    # ------------------------------------------------------------------
    def _make_op(self, node: int, up_edge: int) -> NewviewOp:
        """Build the ``newview`` op descriptor for one directed node."""
        tree = self.tree
        (c1, e1), (c2, e2) = tree.children(node, up_edge)
        tips = tree.is_leaf(c1) + tree.is_leaf(c2)
        kind = (
            KernelKind.NEWVIEW_TIP_TIP
            if tips == 2
            else KernelKind.NEWVIEW_TIP_INNER
            if tips == 1
            else KernelKind.NEWVIEW_INNER_INNER
        )
        return NewviewOp(
            node=node, up_edge=up_edge, child1=c1, edge1=e1,
            child2=c2, edge2=e2, kind=kind,
        )

    def plan_traversal(self, root_edge: int) -> TraversalDescriptor:
        """List the ``newview`` ops needed to validate both root CLAs."""
        tree = self.tree
        sigs = self._signatures(root_edge)
        desc = TraversalDescriptor(root_edge=root_edge)
        for node, _parent, up_edge in tree.postorder(root_edge):
            if tree.is_leaf(node):
                continue
            cached = self._valid.get(node)
            if cached is not None and cached == (up_edge, sigs[(node, up_edge)]):
                continue
            desc.ops.append(self._make_op(node, up_edge))
        self._last_sigs = sigs
        return desc

    #: Entry cap on the per-plan preparation cache (distinct branch
    #: lengths met since the last clear); beyond it the cache is wiped
    #: wholesale, bounding memory across long searches.
    _PREP_CACHE_MAX = 512

    def _branch_a(self, edge_id: int) -> np.ndarray:
        """Per-rate branch matrices for an edge, cached by branch length.

        Valid because the model is fixed between :meth:`set_model` calls
        (which clear the cache) — so ops across a plan with equal branch
        lengths share one operand array, amortising P-matrix
        construction and letting a batching backend group them by
        operand identity.
        """
        key = ("a", self.tree.edge(edge_id).length)
        a = self._prep_cache.get(key)
        if a is None:
            if len(self._prep_cache) > self._PREP_CACHE_MAX:
                self._prep_cache.clear()
            a = kernels.branch_matrices(self.eigen, self.rate_values, key[1])
            self._prep_cache[key] = a
        return a

    def _tip_lookup(self, edge_id: int) -> np.ndarray:
        """Tip lookup table for an edge, cached alongside :meth:`_branch_a`."""
        key = ("lut", self.tree.edge(edge_id).length)
        lut = self._prep_cache.get(key)
        if lut is None:
            lut = kernels.tip_branch_lookup(
                self._branch_a(edge_id), self._tip_eigen
            )
            self._prep_cache[key] = lut
        return lut

    def _prepare_op(self, op: NewviewOp) -> NewviewCall:
        """Resolve one op's operands into a ready backend call.

        Ops are prepared wave-by-wave, so inner children's CLAs were
        produced by an earlier wave (or were already valid) by the time
        this runs.
        """
        tree = self.tree
        if op.kind is KernelKind.NEWVIEW_TIP_TIP:
            args = (
                self.eigen.u_inv,
                self._tip_lookup(op.edge1),
                self._tip_codes[tree.name(op.child1)],
                self._tip_lookup(op.edge2),
                self._tip_codes[tree.name(op.child2)],
            )
        elif op.kind is KernelKind.NEWVIEW_TIP_INNER:
            # orient: child1 may be the inner one
            if tree.is_leaf(op.child1):
                tip_child, tip_edge = op.child1, op.edge1
                inner_child, inner_edge = op.child2, op.edge2
            else:
                tip_child, tip_edge = op.child2, op.edge2
                inner_child, inner_edge = op.child1, op.edge1
            z2, sc2 = self._clas[inner_child]
            args = (
                self.eigen.u_inv,
                self._tip_lookup(tip_edge),
                self._tip_codes[tree.name(tip_child)],
                self._branch_a(inner_edge),
                z2, sc2,
            )
        else:
            z1, sc1 = self._clas[op.child1]
            z2, sc2 = self._clas[op.child2]
            args = (
                self.eigen.u_inv,
                self._branch_a(op.edge1), self._branch_a(op.edge2),
                z1, z2, sc1, sc2,
            )
        return NewviewCall(op=op, kind=op.kind, args=args)

    def _store_op(self, op: NewviewOp, z: np.ndarray, sc: np.ndarray) -> None:
        """Commit one op's result: CLA, validity entry, counters."""
        self._clas[op.node] = (z, sc)
        self._valid[op.node] = (op.up_edge, self._last_sigs[(op.node, op.up_edge)])
        self.counters.record(op.kind, self.patterns.n_patterns)

    def _run_ops(self, ops: tuple, *, batch: bool = True) -> None:
        """Prepare, dispatch and store one wave of independent ops.

        Down-sweep waves hold :class:`NewviewOp` only; gradient up-sweep
        waves may mix :class:`PreorderOp` partials with the
        :class:`EdgeGradientOp` reductions they unblock.  The wave is
        partitioned by op class and each group dispatched through its own
        path (partials batch exactly like ``newview``; gradients are
        per-edge scalar reductions).
        """
        nv = tuple(op for op in ops if isinstance(op, NewviewOp))
        pre = tuple(op for op in ops if isinstance(op, PreorderOp))
        grad = tuple(op for op in ops if isinstance(op, EdgeGradientOp))
        if nv:
            self._run_newview_ops(nv, batch=batch)
        if pre:
            self._run_preorder_ops(pre, batch=batch)
        if grad:
            self._run_gradient_ops(grad)

    def _run_newview_ops(
        self, ops: tuple[NewviewOp, ...], *, batch: bool = True
    ) -> None:
        calls = [self._prepare_op(op) for op in ops]
        results = dispatch_wave(self.backend, calls, batch=batch)
        for op, (z, sc) in zip(ops, results):
            self._store_op(op, z, sc)

    # ------------------------------------------------------------------
    # gradient up-sweep (pre-order partials + per-edge gradients)
    # ------------------------------------------------------------------
    def _prepare_preorder_op(self, op: PreorderOp) -> NewviewCall:
        """Resolve one pre-order partial into a ready backend call.

        The partial for edge ``e = (node -> child)`` is a ``newview`` at
        ``node`` combining (a) everything *across* the node's own up
        edge — the parent's partial when one exists, else the CLA/tip on
        the far side of the virtual root — and (b) the sibling subtree.
        Waves run in up-sweep level order, so the parent partial is
        already in ``self._pre`` by the time this op prepares.
        """
        tree = self.tree
        if op.across_is_partial:
            z1, sc1 = self._pre[op.up_edge]
            side1 = (self._branch_a(op.up_edge), z1, sc1)
        elif tree.is_leaf(op.across):
            side1 = (
                self._tip_lookup(op.up_edge),
                self._tip_codes[tree.name(op.across)],
            )
        else:
            z1, sc1 = self._clas[op.across]
            side1 = (self._branch_a(op.up_edge), z1, sc1)
        if tree.is_leaf(op.sibling):
            side2 = (
                self._tip_lookup(op.sibling_edge),
                self._tip_codes[tree.name(op.sibling)],
            )
        else:
            z2, sc2 = self._clas[op.sibling]
            side2 = (self._branch_a(op.sibling_edge), z2, sc2)
        if op.kind is KernelKind.PREORDER_TIP_TIP:
            args = (self.eigen.u_inv, *side1, *side2)
        elif op.kind is KernelKind.PREORDER_TIP_INNER:
            tip, inner = (side1, side2) if len(side1) == 2 else (side2, side1)
            a, z, sc = inner
            args = (self.eigen.u_inv, *tip, a, z, sc)
        else:
            a1, z1, sc1 = side1
            a2, z2, sc2 = side2
            args = (self.eigen.u_inv, a1, a2, z1, z2, sc1, sc2)
        return NewviewCall(op=op, kind=op.kind, args=args)

    def _store_preorder_op(
        self, op: PreorderOp, z: np.ndarray, sc: np.ndarray
    ) -> None:
        """Commit one pre-order partial (hook for eviction-aware engines)."""
        self._pre[op.edge] = (z, sc)
        self.counters.record(op.kind, self.patterns.n_patterns)

    def _run_preorder_ops(
        self, ops: tuple[PreorderOp, ...], *, batch: bool = True
    ) -> None:
        calls = [self._prepare_preorder_op(op) for op in ops]
        results = dispatch_wave(self.backend, calls, batch=batch)
        for op, (z, sc) in zip(ops, results):
            self._store_preorder_op(op, z, sc)

    def _node_side(self, node: int) -> tuple[np.ndarray, "np.ndarray | int"]:
        """``(z, scale)`` for one gradient operand: tip view or CLA."""
        if self.tree.is_leaf(node):
            codes = self._tip_codes[self.tree.name(node)]
            return self._tip_eigen[codes][:, None, :], 0
        return self._clas[node]

    def _edge_gradient(
        self,
        z_top: np.ndarray,
        z_bottom: np.ndarray,
        scales: "np.ndarray | int",
        t: float,
    ) -> tuple[float, float, float]:
        """Fused per-edge ``(lnL*, d1, d2)`` dispatch (overridable).

        ``scales`` (combined scale counts of the two operands) is unused
        here — the derivative ratios are scale-invariant — but engines
        whose mixture needs true per-site likelihoods (+I) override this
        hook and consume it.  Backends predating the fused kernel fall
        back to the paper's ``derivativeSum`` + ``derivativeCore`` pair.
        """
        eg = getattr(self.backend, "edge_gradient", None)
        if eg is None:
            sumbuf = self.backend.derivative_sum(z_top, z_bottom)
            return self.backend.derivative_core(
                sumbuf,
                self.eigen.eigenvalues,
                self.rate_values,
                self.rate_weights,
                t,
                self.patterns.weights,
            )
        return eg(
            z_top,
            z_bottom,
            self.eigen.eigenvalues,
            self.rate_values,
            self.rate_weights,
            t,
            self.patterns.weights,
        )

    def _edge_gradient_site_terms(
        self, z_top: np.ndarray, z_bottom: np.ndarray, t: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-pattern ``(l, l', l'')`` of one edge gradient (parallel path)."""
        f = getattr(self.backend, "edge_gradient_terms", None)
        if f is None:
            sumbuf = self.backend.derivative_sum(z_top, z_bottom)
            return kernels.derivative_site_terms(
                sumbuf, self.eigen.eigenvalues, self.rate_values,
                self.rate_weights, t,
            )
        return f(
            z_top, z_bottom, self.eigen.eigenvalues, self.rate_values,
            self.rate_weights, t,
        )

    def _run_gradient_ops(self, ops: tuple[EdgeGradientOp, ...]) -> None:
        tree = self.tree
        collect_terms = self._grad_terms is not None
        for op in ops:
            if op.top_is_partial:
                z_t, sc_t = self._pre[op.edge]
            else:
                z_t, sc_t = self._node_side(op.top)
            z_b, sc_b = self._node_side(op.bottom)
            t = tree.edge(op.edge).length
            if collect_terms:
                self._grad_terms[op.edge] = self._edge_gradient_site_terms(
                    z_t, z_b, t
                )
            else:
                _, d1, d2 = self._edge_gradient(z_t, z_b, sc_t + sc_b, t)
                self._grad[op.edge] = (d1, d2)
            self.counters.record(
                KernelKind.EDGE_GRADIENT, self.patterns.n_patterns
            )

    def plan_gradient(self, root_edge: int) -> GradientPlan:
        """Plan the bidirectional traversal for all-branch gradients.

        The down-sweep is the (signature-gated) post-order plan for the
        virtual root; the up-sweep computes one pre-order partial per
        directed non-root edge (``2N - 4`` of them) and one fused
        gradient per branch (``2N - 3``) — O(N) kernel calls total,
        against the O(N^2) of re-rooting ``derivativeSum`` at every
        branch.
        """
        tree = self.tree
        desc = GradientDescriptor(root_edge=root_edge)
        edge = tree.edge(root_edge)
        desc.grad_ops.append(
            EdgeGradientOp(
                edge=root_edge, top=edge.u, bottom=edge.v, top_is_partial=False
            )
        )
        stack: list[tuple[int, int, int, bool]] = []
        for node, other in ((edge.u, edge.v), (edge.v, edge.u)):
            if not tree.is_leaf(node):
                stack.append((node, root_edge, other, False))
        while stack:
            node, up_edge, across, across_partial = stack.pop()
            (c1, e1), (c2, e2) = tree.children(node, up_edge)
            for (child, eid), (sib, sib_eid) in (
                ((c1, e1), (c2, e2)),
                ((c2, e2), (c1, e1)),
            ):
                tips = int(not across_partial and tree.is_leaf(across))
                tips += int(tree.is_leaf(sib))
                kind = (
                    KernelKind.PREORDER_TIP_TIP
                    if tips == 2
                    else KernelKind.PREORDER_TIP_INNER
                    if tips == 1
                    else KernelKind.PREORDER_INNER_INNER
                )
                desc.pre_ops.append(
                    PreorderOp(
                        edge=eid, node=node, up_edge=up_edge, across=across,
                        across_is_partial=across_partial, sibling=sib,
                        sibling_edge=sib_eid, kind=kind,
                    )
                )
                desc.grad_ops.append(
                    EdgeGradientOp(
                        edge=eid, top=node, bottom=child, top_is_partial=True
                    )
                )
                if not tree.is_leaf(child):
                    stack.append((child, eid, node, True))
        return GradientPlan(
            root_edge=root_edge,
            down=self.plan_execution(root_edge),
            up=levelize_upsweep(desc),
        )

    def all_branch_gradients(
        self, root_edge: int | None = None, *, terms: bool = False
    ) -> dict[int, tuple]:
        """First and second lnL derivatives of **every** branch at once.

        One post-order down-sweep (reusing valid CLAs) plus one
        pre-order up-sweep yields ``{edge_id: (d1, d2)}`` for all
        ``2N - 3`` branches — the derivatives each match what
        ``edge_sum_buffer`` + ``branch_derivatives`` computes per branch,
        without re-rooting the traversal 2N - 3 times.

        With ``terms=True`` the result is ``{edge_id: (l0, l1, l2)}``
        per-pattern site terms instead — the form parallel drivers
        gather from each worker's slice and reduce in fixed pattern
        order (:func:`repro.core.kernels.derivative_reduce`) for
        bit-identical serial/parallel agreement.
        """
        if root_edge is None:
            root_edge = self.default_edge()
        plan = self.plan_gradient(root_edge)
        self._pre = {}
        self._grad = {}
        self._grad_terms = {} if terms else None
        n_edges = sum(
            1
            for w in plan.up.waves
            for op in w.ops
            if isinstance(op, EdgeGradientOp)
        )
        with _obs.span(
            "gradient.all_branches", edges=n_edges, up_waves=plan.up.depth
        ):
            self.executor.execute(plan.down)
            self.executor.execute(plan.up)
        if _obs.ENABLED:
            reg = _obs_metrics.get_registry()
            reg.counter(
                "repro_gradient_sweeps_total",
                "all-branch gradient up-sweeps",
            ).inc()
            reg.counter(
                "repro_gradient_upsweep_waves_total",
                "executed gradient up-sweep waves",
            ).inc(plan.up.depth)
        out = self._grad_terms if terms else self._grad
        self._pre = {}  # partials are single-sweep; release the memory
        self._grad_terms = None
        return out

    def plan_execution(self, root_edge: int) -> ExecutionPlan:
        """Plan and levelize the traversal for ``root_edge``."""
        return levelize(self.plan_traversal(root_edge))

    def execute_plan(self, plan: ExecutionPlan) -> None:
        """Run a levelized plan through the wave executor (default path)."""
        self.executor.execute(plan)

    def execute_traversal(self, desc: TraversalDescriptor) -> None:
        """Run the planned ``newview`` operations, updating CLAs in place.

        Compatibility wrapper: descriptors are levelized and executed as
        plans; the old per-op loop survives only as the batch fallback
        inside :mod:`repro.core.schedule`.
        """
        self.execute_plan(levelize(desc))

    def ensure_valid(self, root_edge: int) -> None:
        """Make both CLAs adjacent to ``root_edge`` valid."""
        self.execute_plan(self.plan_execution(root_edge))
        # Topology moves retire node ids; evict their CLAs once the cache
        # clearly outgrows the live tree (node ids are never reused, so a
        # dead entry can never come back to life).
        if len(self._clas) > 4 * self.tree.n_leaves:
            live = set(self.tree.nodes)
            for node in [n for n in self._clas if n not in live]:
                del self._clas[node]
                self._valid.pop(node, None)

    # ------------------------------------------------------------------
    # root-level quantities
    # ------------------------------------------------------------------
    def _root_sides(self, root_edge: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(z_left, z_right, scale_counts)`` for a validated root edge."""
        edge = self.tree.edge(root_edge)
        zs = []
        scales = np.zeros(self.patterns.n_patterns, dtype=np.int64)
        for node in (edge.u, edge.v):
            if self.tree.is_leaf(node):
                codes = self._tip_codes[self.tree.name(node)]
                zs.append(self._tip_eigen[codes][:, None, :])
            else:
                z, sc = self._clas[node]
                zs.append(z)
                scales = scales + sc
        return zs[0], zs[1], scales

    def default_edge(self) -> int:
        """A deterministic virtual-root branch (lowest edge id)."""
        return min(self.tree.edge_ids)

    def log_likelihood(self, root_edge: int | None = None) -> float:
        """Tree log-likelihood with the virtual root on ``root_edge``.

        Under reversibility the value is identical for every choice of
        root edge (the pulley principle) — a property the test suite
        checks exhaustively.
        """
        if root_edge is None:
            root_edge = self.default_edge()
        self.ensure_valid(root_edge)
        z_l, z_r, scales = self._root_sides(root_edge)
        exps = kernels.branch_exponentials(
            self.eigen, self.rate_values, self.tree.edge(root_edge).length
        )
        lnl = self.backend.evaluate_edge(
            z_l, z_r, exps, self.rate_weights, self.patterns.weights, scales
        )
        self.counters.record(KernelKind.EVALUATE, self.patterns.n_patterns)
        return lnl

    def site_log_likelihoods(self, root_edge: int | None = None) -> np.ndarray:
        """Per-pattern log-likelihoods (expand with ``patterns.expand``)."""
        if root_edge is None:
            root_edge = self.default_edge()
        self.ensure_valid(root_edge)
        z_l, z_r, scales = self._root_sides(root_edge)
        exps = kernels.branch_exponentials(
            self.eigen, self.rate_values, self.tree.edge(root_edge).length
        )
        self.counters.record(KernelKind.EVALUATE, self.patterns.n_patterns)
        return self.backend.site_log_likelihoods(
            z_l, z_r, exps, self.rate_weights, scales
        )

    def edge_sum_buffer(self, root_edge: int) -> np.ndarray:
        """The ``derivativeSum`` pre-computation for a branch.

        Valid for every trial length of *this* branch while the rest of
        the tree is unchanged — the reuse that makes Newton–Raphson
        iterations nearly free (Sec. IV).
        """
        self.ensure_valid(root_edge)
        z_l, z_r, _ = self._root_sides(root_edge)
        sumbuf = self.backend.derivative_sum(z_l, z_r)
        self.counters.record(KernelKind.DERIVATIVE_SUM, self.patterns.n_patterns)
        return sumbuf

    def branch_derivatives(
        self, sumbuf: np.ndarray, t: float
    ) -> tuple[float, float, float]:
        """``(lnL*, dlnL/dt, d2lnL/dt2)`` at trial branch length ``t``.

        ``lnL*`` omits the (t-independent) scaling correction; see
        :func:`repro.core.kernels.derivative_core`.
        """
        out = self.backend.derivative_core(
            sumbuf,
            self.eigen.eigenvalues,
            self.rate_values,
            self.rate_weights,
            t,
            self.patterns.weights,
        )
        self.counters.record(KernelKind.DERIVATIVE_CORE, self.patterns.n_patterns)
        return out

    def derivative_site_terms(
        self, sumbuf: np.ndarray, t: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-pattern ``(l, l', l'')`` of the ``derivativeCore`` site phase.

        Parallel engines call this on each worker's pattern slice, gather
        the three arrays in pattern order and reduce at the master with
        :func:`repro.core.kernels.derivative_reduce` — a fixed,
        worker-count-independent order, so the reduced derivatives are
        bit-identical to :meth:`branch_derivatives`.
        """
        site_terms = getattr(self.backend, "derivative_site_terms", None)
        if site_terms is None:  # protocol-minimal backends
            site_terms = lambda *a: kernels.derivative_site_terms(*a)  # noqa: E731
        out = site_terms(
            sumbuf,
            self.eigen.eigenvalues,
            self.rate_values,
            self.rate_weights,
            t,
        )
        self.counters.record(KernelKind.DERIVATIVE_CORE, self.patterns.n_patterns)
        return out

    # ------------------------------------------------------------------
    # housekeeping
    # ------------------------------------------------------------------
    @property
    def profile(self) -> KernelProfile:
        """The backend's measured per-kernel profile (wall time, bytes).

        Unlike :attr:`counters` (which tracks this engine's dispatches),
        the profile lives on the backend and aggregates across every
        engine sharing that backend instance — e.g. all ranks of a
        :class:`~repro.parallel.distributed.DistributedEngine`.
        """
        return self.backend.profile

    @property
    def wave_stats(self) -> WaveStats:
        """Cumulative wave-execution statistics of this engine's executor."""
        return self.executor.stats

    def reset_profile(self) -> None:
        """Zero counters, the backend profile, and wave statistics.

        Counters, profiles and wave stats are cumulative across repeated
        ``run()``/``log_likelihood()`` calls; call this between runs to
        obtain per-run measurements (e.g. before building a per-run
        :func:`repro.perf.trace.trace_from_profile`).
        """
        self.counters.reset()
        self.backend.profile.reset()
        self.executor.stats.reset()

    def reset_all_observability(self) -> None:
        """One-call reset of every cumulative measurement layer.

        Extends :meth:`reset_profile` (counters, backend profile, wave
        stats) with the process-wide :mod:`repro.obs` metrics registry
        and the live tracer's recorded spans/instants (when tracing is
        enabled), so a benchmark or traced search can start every run
        from a clean slate with a single call.
        """
        from ..obs import metrics as _obs_metrics
        from ..obs import spans as _obs

        self.reset_profile()
        _obs_metrics.get_registry().reset()
        if _obs.ENABLED:
            _obs.get_tracer().clear()

    def drop_caches(self) -> None:
        """Release all CLAs (memory-saving hook; they rebuild lazily)."""
        self._clas.clear()
        self._valid.clear()
        self._pre.clear()

    def cla_memory_bytes(self) -> int:
        """Current CLA memory footprint (the paper's 8 GB-per-card concern)."""
        return sum(z.nbytes + sc.nbytes for z, sc in self._clas.values())
