"""Reference implementations of the four PLF kernels (Section IV).

These are the NumPy ground-truth versions of the routines the paper
ports to the MIC:

* :func:`newview_inner_inner` / :func:`newview_tip_inner` /
  :func:`newview_tip_tip` — conditional likelihood array (CLA) update
  for a parent node from its two children,
* :func:`evaluate_edge` — tree log-likelihood at a virtual root,
* :func:`derivative_sum` — the ``derivativeSum`` pre-computation
  (element-wise product of the two root-adjacent CLAs),
* :func:`derivative_core` — first and second log-likelihood derivatives
  with respect to a branch length, consumed by Newton–Raphson.

Representation
--------------
CLAs are stored in **eigenbasis coordinates**: the stored vector ``z``
relates to the conditional likelihood vector ``w`` (probability of the
subtree data given each state) by ``w = U z``, where ``Q = U diag(lam)
U^-1`` is the pi-symmetrised eigendecomposition from
:mod:`repro.phylo.models`.  That decomposition gives the crucial
identity ``U^T diag(pi) U = I``, which collapses the virtual-root dot
product to

    L_site,c = sum_k  z_left[k] * z_right[k] * exp(lam_k * r_c * t)

— i.e. ``evaluate`` needs only an element-wise triple product,
``derivativeSum`` is *exactly* the paper's Figure 2 loop
(``sum[l] = left[l] * right[l]``, 16 doubles per site for DNA+Gamma4),
and branch-length derivatives act on the diagonal exponentials alone.
This is the same algebra RAxML exploits; it is why the paper's
derivative kernels exist as a separate pre-computation at all.

Shapes: ``z`` is ``(n_patterns, n_rates, n_states)``; tips are
``(n_patterns, 1, n_states)`` views (tip vectors don't depend on the
rate category and broadcast).  Branch matrices ``A(t)`` are
``(n_rates, n_states, n_states)`` with ``A = U diag(exp(lam r_c t))``,
so ``w_child_after_branch = A z_child`` and the transition matrix is
``P(t) = A(t) U^-1``.
"""

from __future__ import annotations

import numpy as np

from ..phylo.models import EigenSystem
from .scaling import rescale_clv

__all__ = [
    "branch_exponentials",
    "branch_matrices",
    "tip_eigen_table",
    "tip_branch_lookup",
    "newview_inner_inner",
    "newview_tip_inner",
    "newview_tip_tip",
    "evaluate_edge",
    "derivative_sum",
    "derivative_site_terms",
    "derivative_reduce",
    "derivative_core",
    "edge_gradient_terms",
    "edge_gradient",
    "site_log_likelihoods",
]


def branch_exponentials(
    eigen: EigenSystem, rates: np.ndarray, t: float
) -> np.ndarray:
    """``exp(lam_k * r_c * t)`` table, shape ``(n_rates, n_states)``.

    This is RAxML's ``diagptable`` — the only branch-length-dependent
    quantity ``evaluate`` and ``derivativeCore`` need.
    """
    if t < 0:
        raise ValueError(f"negative branch length {t}")
    rates = np.asarray(rates, dtype=np.float64)
    return np.exp(np.multiply.outer(rates * t, eigen.eigenvalues))


def branch_matrices(eigen: EigenSystem, rates: np.ndarray, t: float) -> np.ndarray:
    """Per-rate ``A(t) = U diag(exp(lam r_c t))``, shape ``(c, s, s)``.

    ``A(t) @ z`` maps a child CLA (eigen coordinates) to the state-space
    conditional likelihood vector *after* traversing the branch.
    """
    e = branch_exponentials(eigen, rates, t)  # (c, k)
    return eigen.u[None, :, :] * e[:, None, :]


def tip_eigen_table(eigen: EigenSystem, tip_table: np.ndarray) -> np.ndarray:
    """Eigen-coordinates of every tip state code: ``U^-1 @ chi_code``.

    ``tip_table`` is the ``(n_codes, n_states)`` 0/1 indicator table from
    :meth:`repro.phylo.states.StateSpace.tip_table`; the result is the
    RAxML ``tipVector`` lookup (16 x 4 doubles for DNA).
    """
    return tip_table @ eigen.u_inv.T


def tip_branch_lookup(a: np.ndarray, tip_eigen: np.ndarray) -> np.ndarray:
    """Precomputed ``A(t) @ tipVector[code]`` per rate and state code.

    Shape ``(n_rates, n_codes, n_states)``.  ``newview`` tip cases gather
    rows of this table instead of doing per-site matrix-vector products —
    the classic tip optimisation the paper inherits from RAxML (16 codes
    cover every possible DNA tip column).
    """
    return np.einsum("cik,mk->cmi", a, tip_eigen)


def newview_inner_inner(
    u_inv: np.ndarray,
    a1: np.ndarray,
    a2: np.ndarray,
    z1: np.ndarray,
    z2: np.ndarray,
    scale1: np.ndarray,
    scale2: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """``newview`` for two inner children; returns ``(z_out, scale_out)``.

    ``w_child = A_child z_child`` per rate, ``v = w1 * w2`` element-wise,
    ``z_out = U^-1 v`` — two dense mat-vecs plus a back-projection per
    site and rate, the paper's "1x4 vector times 4x4 matrix" inner loops
    (Sec. V-B3).
    """
    w1 = np.einsum("cik,pck->pci", a1, z1)
    w2 = np.einsum("cik,pck->pci", a2, z2)
    v = w1 * w2
    z_out = np.einsum("ki,pci->pck", u_inv, v)
    scale_out = scale1 + scale2
    rescale_clv(z_out, scale_out)
    return z_out, scale_out


def newview_tip_inner(
    u_inv: np.ndarray,
    lookup1: np.ndarray,
    codes1: np.ndarray,
    a2: np.ndarray,
    z2: np.ndarray,
    scale2: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """``newview`` with a tip left child (gathered from ``lookup1``)."""
    w1 = lookup1[:, codes1, :].transpose(1, 0, 2)  # (p, c, i)
    w2 = np.einsum("cik,pck->pci", a2, z2)
    v = w1 * w2
    z_out = np.einsum("ki,pci->pck", u_inv, v)
    scale_out = scale2.copy()
    rescale_clv(z_out, scale_out)
    return z_out, scale_out


def newview_tip_tip(
    u_inv: np.ndarray,
    lookup1: np.ndarray,
    codes1: np.ndarray,
    lookup2: np.ndarray,
    codes2: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """``newview`` with two tip children.

    Tip-tip parents can never underflow (entries are products of
    transition probabilities bounded well above the threshold), so no
    rescale check is needed — RAxML skips it here too.
    """
    w1 = lookup1[:, codes1, :].transpose(1, 0, 2)
    w2 = lookup2[:, codes2, :].transpose(1, 0, 2)
    v = w1 * w2
    z_out = np.einsum("ki,pci->pck", u_inv, v)
    scale_out = np.zeros(z_out.shape[0], dtype=np.int64)
    return z_out, scale_out


def site_log_likelihoods(
    z_left: np.ndarray,
    z_right: np.ndarray,
    exps: np.ndarray,
    rate_weights: np.ndarray,
    scale_counts: np.ndarray,
) -> np.ndarray:
    """Per-pattern log-likelihoods at a virtual root.

    ``exps`` is the :func:`branch_exponentials` table of the root branch;
    ``scale_counts`` is the summed scaling counter of both sides.  The
    identity ``U^T diag(pi) U = I`` reduces the root computation to

        L_p = sum_c w_c sum_k z_l[p,c,k] z_r[p,c,k] exps[c,k]
    """
    terms = z_left * z_right * exps[None, :, :]
    site_l = np.einsum("pck,c->p", terms, rate_weights)
    if np.any(site_l <= 0.0):
        bad = int(np.argmin(site_l))
        raise FloatingPointError(
            f"non-positive site likelihood {site_l[bad]:g} at pattern {bad}; "
            "tree or model is numerically degenerate"
        )
    from .scaling import LOG_SCALE_STEP

    return np.log(site_l) - scale_counts * LOG_SCALE_STEP


def evaluate_edge(
    z_left: np.ndarray,
    z_right: np.ndarray,
    exps: np.ndarray,
    rate_weights: np.ndarray,
    pattern_weights: np.ndarray,
    scale_counts: np.ndarray,
) -> float:
    """Total tree log-likelihood (the ``evaluate`` kernel).

    Weighted sum of per-pattern log-likelihoods over the compressed
    alignment.  In the distributed codes this is the reduction point:
    each worker evaluates its site range and an AllReduce sums the
    partial values (Sec. V-D).
    """
    lnl = site_log_likelihoods(z_left, z_right, exps, rate_weights, scale_counts)
    return float(np.dot(lnl, pattern_weights))


def derivative_sum(z_left: np.ndarray, z_right: np.ndarray) -> np.ndarray:
    """The ``derivativeSum`` kernel: element-wise CLA product.

    Computed once per branch under optimisation and reused by every
    Newton–Raphson iteration (the paper's motivation for splitting the
    derivative computation in two).  For DNA+Gamma4 this is the 16-wide
    ``sum[l] = left[l] * right[l]`` loop of Figure 2 — a pure streaming
    kernel, which is why it shows the best MIC speedup (2.8x, Fig. 3).
    """
    return z_left * z_right


def derivative_core(
    sumbuf: np.ndarray,
    eigenvalues: np.ndarray,
    rates: np.ndarray,
    rate_weights: np.ndarray,
    t: float,
    pattern_weights: np.ndarray,
) -> tuple[float, float, float]:
    """The ``derivativeCore`` kernel: ``(lnL, d lnL/dt, d2 lnL/dt2)``.

    With ``d = sumbuf`` and ``g_ck = lam_k r_c``:

        l_p(t)   = sum_c w_c sum_k d[p,c,k] exp(g_ck t)
        l'_p(t)  = ... g_ck exp(g_ck t),   l''_p with g_ck^2

        dlnL  = sum_p wt_p l'_p / l_p
        d2lnL = sum_p wt_p (l''_p / l_p - (l'_p / l_p)^2)

    Per-site scaling counters cancel in the log-derivatives (they are
    constant in ``t``), so they are not needed here; the returned ``lnL``
    is therefore *unscaled* and only valid for ratio comparisons within
    one optimisation — use ``evaluate_edge`` for reportable values.

    The per-site phase processes 16 doubles per site followed by a few
    scalar accumulations — the structure whose scalar tail the paper
    removes by blocking 8 sites at a time (Sec. V-B4).
    """
    l0, l1, l2 = derivative_site_terms(sumbuf, eigenvalues, rates, rate_weights, t)
    return derivative_reduce(l0, l1, l2, pattern_weights)


def derivative_site_terms(
    sumbuf: np.ndarray,
    eigenvalues: np.ndarray,
    rates: np.ndarray,
    rate_weights: np.ndarray,
    t: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-pattern ``(l, l', l'')`` of :func:`derivative_core`.

    Split out so parallel engines can compute the site phase on each
    worker's slice and perform the *reduction* (:func:`derivative_reduce`)
    at the master over the gathered full-length arrays — in a fixed,
    worker-count-independent order, which keeps the three returned scalars
    bit-identical to the sequential code path.

    The weight tables are associated as ``m0 = w*e``, ``m1 = m0*g``,
    ``m2 = m1*g`` — the same association the blocked backend's chunked
    path uses — so per-pattern values are bitwise identical whichever
    backend or slice width computed them.
    """
    g = np.multiply.outer(np.asarray(rates, dtype=np.float64), eigenvalues)
    e = np.exp(g * t)
    m0 = rate_weights[:, None] * e
    m1 = m0 * g
    m2 = m1 * g
    l0 = np.einsum("pck,ck->p", sumbuf, m0)
    l1 = np.einsum("pck,ck->p", sumbuf, m1)
    l2 = np.einsum("pck,ck->p", sumbuf, m2)
    return l0, l1, l2


def edge_gradient_terms(
    z_top: np.ndarray,
    z_bottom: np.ndarray,
    eigenvalues: np.ndarray,
    rates: np.ndarray,
    rate_weights: np.ndarray,
    t: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-pattern ``(l, l', l'')`` for one edge of the gradient up-sweep.

    Fuses ``derivativeSum`` with the site phase of ``derivativeCore``:
    ``z_top`` is the pre-order partial of the edge (the tree above it)
    and ``z_bottom`` the ordinary down CLA (the subtree below it), so the
    element-wise product is exactly the branch's sum buffer.  Per-pattern
    values are bitwise identical to ``derivative_site_terms(
    derivative_sum(z_top, z_bottom), ...)`` — the product is formed with
    the same operand order — which is what lets parallel engines gather
    per-slice terms and reduce at the master bit-identically.
    """
    return derivative_site_terms(
        z_top * z_bottom, eigenvalues, rates, rate_weights, t
    )


def edge_gradient(
    z_top: np.ndarray,
    z_bottom: np.ndarray,
    eigenvalues: np.ndarray,
    rates: np.ndarray,
    rate_weights: np.ndarray,
    t: float,
    pattern_weights: np.ndarray,
) -> tuple[float, float, float]:
    """The fused per-edge gradient kernel: ``(lnL, dlnL/dt, d2lnL/dt2)``.

    One invocation per branch during the up-sweep replaces the separate
    ``derivativeSum`` + ``derivativeCore`` pair of the per-branch Newton
    path.  As with :func:`derivative_core`, scaling counters cancel in
    the log-derivatives and the returned ``lnL`` is unscaled.
    """
    l0, l1, l2 = edge_gradient_terms(
        z_top, z_bottom, eigenvalues, rates, rate_weights, t
    )
    return derivative_reduce(l0, l1, l2, pattern_weights)


def derivative_reduce(
    l0: np.ndarray,
    l1: np.ndarray,
    l2: np.ndarray,
    pattern_weights: np.ndarray,
) -> tuple[float, float, float]:
    """Scalar phase of ``derivativeCore``: weighted reduction of site terms.

    Deterministic regardless of how the ``l*`` arrays were produced
    (sequential, per-worker slices gathered in pattern order, ...) —
    ``np.dot`` over the same full-length arrays always reduces in the
    same order, so parallel results match sequential ones bit-for-bit.
    """
    if np.any(l0 <= 0.0):
        bad = int(np.argmin(l0))
        raise FloatingPointError(
            f"non-positive site likelihood {l0[bad]:g} at pattern {bad} "
            "during branch-length derivative evaluation"
        )
    r1 = l1 / l0
    lnl = float(np.dot(np.log(l0), pattern_weights))
    d1 = float(np.dot(r1, pattern_weights))
    d2 = float(np.dot(l2 / l0 - r1 * r1, pattern_weights))
    return lnl, d1, d2
