"""CAT (per-site rate) likelihood engine — the paper's named extension.

The paper's MIC port supports only the Gamma model; Sec. VII lists "the
CAT model of rate heterogeneity" as planned future work, and Sec. V-B2
explains why it is awkward on the MIC: one rate per site means 4 doubles
per site (32 bytes), which straddles the 64-byte alignment boundary
unless padded (handled by :class:`repro.core.layouts.InterleavedLayout`).

Under CAT (Stamatakis 2006), every site pattern is assigned to one of a
small number of rate categories, so a site's CLA is a single
``n_states`` vector and every branch-dependent table becomes per-site:

    P_p(t) = U diag(exp(lam * r_p * t)) U^-1

:class:`CatLikelihoodEngine` subclasses the Gamma engine, keeping its
traversal/validity machinery (CLAs stay ``(patterns, 1, states)`` so the
caching and scaling plumbing is shared) and overriding exactly the
branch-dependent kernels.
"""

from __future__ import annotations

import numpy as np

from ..phylo.alignment import PatternAlignment
from ..phylo.models import SubstitutionModel
from ..phylo.rates import CatRates, discrete_gamma_rates
from ..phylo.tree import Tree
from .backends import KernelBackend
from .engine import LikelihoodEngine
from .scaling import LOG_SCALE_STEP, rescale_clv
from .traversal import KernelKind

__all__ = ["CatLikelihoodEngine", "assign_categories_by_likelihood"]


def assign_categories_by_likelihood(
    engine: "CatLikelihoodEngine",
    n_iterations: int = 3,
    root_edge: int | None = None,
) -> "CatLikelihoodEngine":
    """Likelihood-driven CAT category assignment (Stamatakis 2006).

    RAxML's CAT procedure assigns each site to the rate category that
    maximises that site's likelihood, then renormalises the rates so the
    weighted mean stays 1, iterating a few times.  This replaces the
    random assignment of :meth:`repro.phylo.rates.CatRates.from_gamma`
    with the data-driven one, and (like RAxML) typically raises the
    total log-likelihood substantially.

    Modifies ``engine.cat`` in place (via ``set_model``); returns the
    engine for chaining.
    """
    from ..phylo.rates import CatRates

    if root_edge is None:
        root_edge = engine.default_edge()
    for _ in range(n_iterations):
        rates = engine.cat.category_rates
        per_cat = np.empty((rates.shape[0], engine.patterns.n_patterns))
        original = engine.cat
        for c in range(rates.shape[0]):
            trial = CatRates(
                category_rates=rates,
                site_categories=np.full(
                    engine.patterns.n_patterns, c, dtype=np.int64
                ),
            )
            engine.cat = trial
            engine.set_model(engine.model)
            per_cat[c] = engine.site_log_likelihoods(root_edge)
        best = per_cat.argmax(axis=0)
        if np.array_equal(best, original.site_categories):
            engine.cat = original
            engine.set_model(engine.model)
            break
        mean = float(
            np.average(rates[best], weights=engine.patterns.weights)
        )
        engine.cat = CatRates(
            category_rates=rates / mean, site_categories=best
        )
        engine.set_model(engine.model)
    return engine


class CatLikelihoodEngine(LikelihoodEngine):
    """PLF engine with one substitution rate per site pattern.

    Exposes the same public surface as :class:`LikelihoodEngine`; the
    branch-length optimiser, model optimiser, and SPR search from
    :mod:`repro.search` run on it unchanged.
    """

    def __init__(
        self,
        patterns: PatternAlignment,
        tree: Tree,
        model: SubstitutionModel,
        cat: CatRates,
        backend: str | KernelBackend | None = None,
    ) -> None:
        if cat.site_categories.shape[0] != patterns.n_patterns:
            raise ValueError(
                f"CAT assignment covers {cat.site_categories.shape[0]} "
                f"patterns, alignment has {patterns.n_patterns}"
            )
        self.cat = cat
        self._alpha = 1.0
        super().__init__(patterns, tree, model, rates=None, backend=backend)

    # ------------------------------------------------------------------
    # model handling
    # ------------------------------------------------------------------
    def set_model(self, model: SubstitutionModel, rates=None) -> None:  # noqa: ARG002
        from ..phylo.rates import GammaRates

        # The Gamma plumbing of the base engine is bypassed; a unit
        # single-category GammaRates keeps its bookkeeping satisfied.
        super().set_model(model, rates=GammaRates(1.0, 1))
        # Per-site rate vector; the single pseudo 'rate category' axis of
        # the CLA arrays stays length 1.
        self.site_rates = self.cat.site_rates()
        self.n_rates = 1

    def set_alpha(self, alpha: float) -> None:
        """Re-derive the category rates from a Gamma shape (keeps the
        per-site category assignment)."""
        rates = discrete_gamma_rates(alpha, self.cat.n_categories)
        mean = float(
            np.average(
                rates[self.cat.site_categories], weights=self.patterns.weights
            )
        )
        self.cat = CatRates(
            category_rates=rates / mean,
            site_categories=self.cat.site_categories,
        )
        self._alpha = alpha
        self.set_model(self.model)

    @property
    def alpha(self) -> float:
        return self._alpha

    # ------------------------------------------------------------------
    # per-site branch tables
    # ------------------------------------------------------------------
    def _site_exponentials(self, t: float) -> np.ndarray:
        """``exp(lam_k r_p t)`` per pattern, shape ``(patterns, states)``."""
        if t < 0:
            raise ValueError(f"negative branch length {t}")
        cat_exp = np.exp(
            np.multiply.outer(
                self.cat.category_rates * t, self.eigen.eigenvalues
            )
        )  # (C, s)
        return cat_exp[self.cat.site_categories]

    def _site_a(self, edge_id: int) -> np.ndarray:
        """Per-site ``A(t) = U diag(exp(...))``, shape ``(patterns, s, s)``."""
        e = self._site_exponentials(self.tree.edge(edge_id).length)
        return self.eigen.u[None, :, :] * e[:, None, :]

    def _site_tip_lookup(self, edge_id: int, codes: np.ndarray) -> np.ndarray:
        """``A_p(t) @ tipVector[code_p]`` per site, shape ``(p, s)``.

        Per-category lookup tables are built once per branch and gathered
        by (category, code) — the CAT equivalent of the tip table trick.
        """
        cat_exp = np.exp(
            np.multiply.outer(
                self.cat.category_rates * self.tree.edge(edge_id).length,
                self.eigen.eigenvalues,
            )
        )  # (C, s)
        a = self.eigen.u[None, :, :] * cat_exp[:, None, :]  # (C, s, s)
        lut = np.einsum("cik,mk->cmi", a, self._tip_eigen)  # (C, codes, s)
        return lut[self.cat.site_categories, codes]

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------
    def _run_newview_ops(self, ops, *, batch: bool = True) -> None:  # noqa: ARG002
        """CAT ``newview`` for one wave of independent ops.

        The per-site branch tables bypass the backend kernels, so there
        is no stacked dispatch here; the wave executor still drives the
        schedule (and collects wave statistics) unchanged.
        """
        tree = self.tree
        for op in ops:
            if op.kind is KernelKind.NEWVIEW_TIP_TIP:
                w1 = self._site_tip_lookup(
                    op.edge1, self._tip_codes[tree.name(op.child1)]
                )
                w2 = self._site_tip_lookup(
                    op.edge2, self._tip_codes[tree.name(op.child2)]
                )
                sc = np.zeros(self.patterns.n_patterns, dtype=np.int64)
            elif op.kind is KernelKind.NEWVIEW_TIP_INNER:
                if tree.is_leaf(op.child1):
                    tip_child, tip_edge = op.child1, op.edge1
                    inner_child, inner_edge = op.child2, op.edge2
                else:
                    tip_child, tip_edge = op.child2, op.edge2
                    inner_child, inner_edge = op.child1, op.edge1
                w1 = self._site_tip_lookup(
                    tip_edge, self._tip_codes[tree.name(tip_child)]
                )
                z2, sc2 = self._clas[inner_child]
                w2 = np.einsum("pik,pk->pi", self._site_a(inner_edge), z2[:, 0, :])
                sc = sc2.copy()
            else:
                z1, sc1 = self._clas[op.child1]
                z2, sc2 = self._clas[op.child2]
                w1 = np.einsum("pik,pk->pi", self._site_a(op.edge1), z1[:, 0, :])
                w2 = np.einsum("pik,pk->pi", self._site_a(op.edge2), z2[:, 0, :])
                sc = sc1 + sc2
            v = w1 * w2
            z_out = (v @ self.eigen.u_inv.T)[:, None, :]
            if op.kind is not KernelKind.NEWVIEW_TIP_TIP:
                rescale_clv(z_out, sc)
            self._store_op(op, z_out, sc)

    def _run_preorder_ops(self, ops, *, batch: bool = True) -> None:  # noqa: ARG002
        """CAT pre-order partials (same per-site math as the newview path)."""
        tree = self.tree
        for op in ops:
            if op.across_is_partial:
                z1, sc1 = self._pre[op.up_edge]
                w1 = np.einsum(
                    "pik,pk->pi", self._site_a(op.up_edge), z1[:, 0, :]
                )
                sc = sc1.copy()
            elif tree.is_leaf(op.across):
                w1 = self._site_tip_lookup(
                    op.up_edge, self._tip_codes[tree.name(op.across)]
                )
                sc = np.zeros(self.patterns.n_patterns, dtype=np.int64)
            else:
                z1, sc1 = self._clas[op.across]
                w1 = np.einsum(
                    "pik,pk->pi", self._site_a(op.up_edge), z1[:, 0, :]
                )
                sc = sc1.copy()
            if tree.is_leaf(op.sibling):
                w2 = self._site_tip_lookup(
                    op.sibling_edge, self._tip_codes[tree.name(op.sibling)]
                )
            else:
                z2, sc2 = self._clas[op.sibling]
                w2 = np.einsum(
                    "pik,pk->pi", self._site_a(op.sibling_edge), z2[:, 0, :]
                )
                sc = sc + sc2
            v = w1 * w2
            z_out = (v @ self.eigen.u_inv.T)[:, None, :]
            if op.kind is not KernelKind.PREORDER_TIP_TIP:
                rescale_clv(z_out, sc)
            self._store_preorder_op(op, z_out, sc)

    def _edge_gradient_site_terms(self, z_top, z_bottom, t):
        """CAT per-pattern gradient terms (per-site rates, no categories)."""
        sumbuf = (z_top * z_bottom)[:, 0, :]
        g = self.site_rates[:, None] * self.eigen.eigenvalues[None, :]
        e = np.exp(g * t)
        l0 = (sumbuf * e).sum(axis=1)
        l1 = (sumbuf * g * e).sum(axis=1)
        l2 = (sumbuf * g * g * e).sum(axis=1)
        return l0, l1, l2

    def _edge_gradient(self, z_top, z_bottom, scales, t):  # noqa: ARG002
        from .kernels import derivative_reduce

        return derivative_reduce(
            *self._edge_gradient_site_terms(z_top, z_bottom, t),
            self.patterns.weights,
        )

    # ------------------------------------------------------------------
    # root-level quantities
    # ------------------------------------------------------------------
    def _site_likelihoods_at(self, root_edge: int) -> tuple[np.ndarray, np.ndarray]:
        z_l, z_r, scales = self._root_sides(root_edge)
        e = self._site_exponentials(self.tree.edge(root_edge).length)
        terms = z_l[:, 0, :] * z_r[:, 0, :] * e
        return terms.sum(axis=1), scales

    def log_likelihood(self, root_edge: int | None = None) -> float:
        if root_edge is None:
            root_edge = self.default_edge()
        self.ensure_valid(root_edge)
        site_l, scales = self._site_likelihoods_at(root_edge)
        if np.any(site_l <= 0.0):
            raise FloatingPointError("non-positive CAT site likelihood")
        lnl = np.log(site_l) - scales * LOG_SCALE_STEP
        self.counters.record(KernelKind.EVALUATE, self.patterns.n_patterns)
        return float(np.dot(lnl, self.patterns.weights))

    def site_log_likelihoods(self, root_edge: int | None = None) -> np.ndarray:
        if root_edge is None:
            root_edge = self.default_edge()
        self.ensure_valid(root_edge)
        site_l, scales = self._site_likelihoods_at(root_edge)
        self.counters.record(KernelKind.EVALUATE, self.patterns.n_patterns)
        return np.log(site_l) - scales * LOG_SCALE_STEP

    def edge_sum_buffer(self, root_edge: int) -> np.ndarray:
        self.ensure_valid(root_edge)
        z_l, z_r, _ = self._root_sides(root_edge)
        sumbuf = self.backend.derivative_sum(z_l, z_r)[:, 0, :]
        self.counters.record(KernelKind.DERIVATIVE_SUM, self.patterns.n_patterns)
        return sumbuf

    def derivative_site_terms(
        self, sumbuf: np.ndarray, t: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-pattern ``(l, l', l'')`` with per-site CAT rates.

        Each pattern's terms depend only on that pattern's ``sumbuf`` row
        and rate, so worker slices reproduce the full-alignment values
        bit-for-bit — the property the parallel engines' fixed-order
        master reduction relies on.
        """
        g = self.site_rates[:, None] * self.eigen.eigenvalues[None, :]  # (p, s)
        e = np.exp(g * t)
        l0 = (sumbuf * e).sum(axis=1)
        l1 = (sumbuf * g * e).sum(axis=1)
        l2 = (sumbuf * g * g * e).sum(axis=1)
        self.counters.record(KernelKind.DERIVATIVE_CORE, self.patterns.n_patterns)
        return l0, l1, l2

    def branch_derivatives(self, sumbuf: np.ndarray, t: float) -> tuple[float, float, float]:
        from .kernels import derivative_reduce

        return derivative_reduce(
            *self.derivative_site_terms(sumbuf, t), self.patterns.weights
        )
