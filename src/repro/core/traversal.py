"""Traversal descriptors, the execution-plan IR, and kernel accounting.

ExaML replicates the tree-search state on every rank and drives the PLF
through *traversal descriptors* — ordered lists of ``newview``
operations that make a virtual root's two CLAs valid.  We keep the same
structure: the engine plans a traversal (only the stale nodes), executes
it, and records every kernel invocation in a :class:`KernelCounters`
object.

On top of the flat descriptor sits the **execution-plan IR**: the
:func:`levelize` planner folds a descriptor into dependency *waves*
(:class:`Wave`), where every op's inner children were produced by an
earlier wave (or were already valid) and the ops within one wave are
mutually independent.  The plan is the unit of optimisation for batched
kernel dispatch (:mod:`repro.core.schedule`), fork-join wave pickup, and
distributed sync placement — BEAGLE's ``updatePartials`` operation queue
generalised into a levelized schedule.

The counters are the bridge to the performance model: a full tree search
run yields, per kernel, the number of calls and the number of
(site-pattern x call) units processed, which
:class:`repro.perf.trace.KernelTrace` scales to the paper's dataset
sizes and feeds to the platform cost models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

__all__ = [
    "KernelKind",
    "MERGED_KERNEL_KEYS",
    "PAPER_KERNEL_KEYS",
    "merged_kernel_key",
    "NewviewOp",
    "PreorderOp",
    "EdgeGradientOp",
    "TraversalDescriptor",
    "GradientDescriptor",
    "Wave",
    "ExecutionPlan",
    "GradientPlan",
    "levelize",
    "levelize_upsweep",
    "KernelCounters",
]


class KernelKind(str, Enum):
    """The PLF kernels of Section IV, split by ``newview`` tip cases.

    RAxML implements (and the paper vectorises) distinct code paths for
    the tip-tip / tip-inner / inner-inner ``newview`` cases; we count
    them separately because their arithmetic intensity differs, then the
    cost model aggregates them back into the paper's four kernels.

    The ``PREORDER_*`` kinds are the up-sweep mirror of ``newview``: the
    pre-order partial toward an edge combines the partial across the
    parent edge with the sibling CLA — arithmetically the same kernel,
    counted separately because it belongs to the derivative phase.
    ``EDGE_GRADIENT`` fuses ``derivativeSum`` + ``derivativeCore`` for
    one branch of the one-traversal all-branch gradient.
    """

    NEWVIEW_TIP_TIP = "newview_tip_tip"
    NEWVIEW_TIP_INNER = "newview_tip_inner"
    NEWVIEW_INNER_INNER = "newview_inner_inner"
    EVALUATE = "evaluate"
    DERIVATIVE_SUM = "derivative_sum"
    DERIVATIVE_CORE = "derivative_core"
    PREORDER_TIP_TIP = "preorder_tip_tip"
    PREORDER_TIP_INNER = "preorder_tip_inner"
    PREORDER_INNER_INNER = "preorder_inner_inner"
    EDGE_GRADIENT = "edge_gradient"

    @property
    def newview_like(self) -> bool:
        return self.value.startswith("newview")

    @property
    def preorder_like(self) -> bool:
        return self.value.startswith("preorder")


#: Aggregated kernel names: the paper's four plus the two up-sweep
#: families introduced by the bidirectional plan.  Consumers that only
#: understand the paper's kernels (cost model calibration, trace replay)
#: keep iterating their own four-name tuple and are unaffected.
MERGED_KERNEL_KEYS = (
    "newview",
    "evaluate",
    "derivative_sum",
    "derivative_core",
    "preorder",
    "edge_gradient",
)

#: The paper's original kernel families.  Aggregated counter dicts are
#: seeded with exactly these; the up-sweep families appear only once
#: observed, so workloads that never run a gradient sweep report the
#: same keys they always did.
PAPER_KERNEL_KEYS = MERGED_KERNEL_KEYS[:4]


def merged_kernel_key(kind: KernelKind) -> str:
    """Collapse a :class:`KernelKind` to its aggregated counter name."""
    if kind.newview_like:
        return "newview"
    if kind.preorder_like:
        return "preorder"
    return kind.value


@dataclass(frozen=True)
class NewviewOp:
    """One planned CLA update: parent from two children across two edges."""

    node: int
    up_edge: int
    child1: int
    edge1: int
    child2: int
    edge2: int
    kind: KernelKind


@dataclass(frozen=True)
class PreorderOp:
    """One planned pre-order partial: the tree *above* ``edge``.

    Computes ``P[edge]``, the eigen-CLA of everything on the far side of
    ``edge`` as seen from its top endpoint ``node``.  The two operands
    mirror a ``newview``: the view across the parent edge ``up_edge``
    (either the already-computed partial ``P[up_edge]`` when
    ``across_is_partial``, or — at the up-sweep roots — the down CLA /
    tip of ``across``, the node on the far side of the virtual root) and
    the sibling subtree's down CLA / tip through ``sibling_edge``.
    """

    edge: int
    node: int
    up_edge: int
    across: int
    across_is_partial: bool
    sibling: int
    sibling_edge: int
    kind: KernelKind


@dataclass(frozen=True)
class EdgeGradientOp:
    """One planned per-edge derivative: lnL', lnL'' for ``edge``.

    The sum buffer is the element-wise product of the two views of the
    branch: the pre-order partial ``P[edge]`` (when ``top_is_partial``)
    or the down CLA / tip of ``top`` (at the virtual root edge, where
    both views are down CLAs), and the down CLA / tip of ``bottom``.
    """

    edge: int
    top: int
    bottom: int
    top_is_partial: bool
    kind: KernelKind = KernelKind.EDGE_GRADIENT


@dataclass
class TraversalDescriptor:
    """An ordered batch of ``newview`` operations for one virtual root.

    ``root_edge`` is where ``evaluate`` (or a derivative computation)
    will be performed once the listed operations have run.
    """

    root_edge: int
    ops: list[NewviewOp] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.ops)


@dataclass
class GradientDescriptor:
    """The up-sweep op batch for one-traversal all-branch gradients.

    ``pre_ops`` list the pre-order partials in root-to-tip order
    (parents before children); ``grad_ops`` carry one
    :class:`EdgeGradientOp` per branch — ``2N - 3`` of them on an
    unrooted binary tree, including the virtual root edge itself.
    """

    root_edge: int
    pre_ops: list[PreorderOp] = field(default_factory=list)
    grad_ops: list[EdgeGradientOp] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.pre_ops) + len(self.grad_ops)


@dataclass(frozen=True)
class Wave:
    """One dependency level of an :class:`ExecutionPlan`.

    Every op in a wave reads only CLAs produced by *earlier* waves (or
    tips / already-valid CLAs), so the ops are mutually independent and
    may be dispatched as one batched kernel call, farmed out to
    fork-join workers, or executed in any order.  Down-sweep waves hold
    :class:`NewviewOp`; up-sweep waves mix :class:`PreorderOp` and
    :class:`EdgeGradientOp` (a branch's gradient becomes ready one level
    after its partial, alongside the next level of partials).
    """

    index: int
    ops: tuple

    @property
    def width(self) -> int:
        return len(self.ops)

    def kernel_mix(self) -> dict[KernelKind, int]:
        mix: dict[KernelKind, int] = {}
        for op in self.ops:
            mix[op.kind] = mix.get(op.kind, 0) + 1
        return mix

    def __len__(self) -> int:
        return len(self.ops)


@dataclass
class ExecutionPlan:
    """A levelized schedule: the IR between planning and dispatch.

    Produced by :func:`levelize` from a :class:`TraversalDescriptor`;
    consumed by :class:`repro.core.schedule.PlanExecutor`.  ``depth``
    (number of waves) bounds the serial critical path; ``max_width``
    bounds the exploitable batch/thread parallelism; both feed the
    analytic cost model's serial-depth vs. parallel-width split.
    """

    root_edge: int
    waves: list[Wave] = field(default_factory=list)
    #: ``"down"`` for post-order (newview) plans, ``"up"`` for the
    #: pre-order + gradient sweep of a :class:`GradientPlan`.
    direction: str = "down"

    @property
    def n_ops(self) -> int:
        return sum(len(w) for w in self.waves)

    @property
    def depth(self) -> int:
        return len(self.waves)

    @property
    def max_width(self) -> int:
        return max((w.width for w in self.waves), default=0)

    @property
    def mean_width(self) -> float:
        return self.n_ops / self.depth if self.waves else 0.0

    def kernel_mix(self) -> dict[KernelKind, int]:
        mix: dict[KernelKind, int] = {}
        for wave in self.waves:
            for kind, n in wave.kernel_mix().items():
                mix[kind] = mix.get(kind, 0) + n
        return mix

    def iter_ops(self):
        """Flat op iteration in a valid (topological) execution order."""
        for wave in self.waves:
            yield from wave.ops

    def __len__(self) -> int:
        return self.n_ops


def levelize(desc: TraversalDescriptor) -> ExecutionPlan:
    """Fold a traversal descriptor into dependency waves.

    An op's *level* is ``max(level(child1), level(child2)) + 1`` where
    children not updated by this descriptor (tips, or CLAs that are
    already valid) sit at level ``-1``.  Descriptors list ops in
    postorder (children before parents), so a single forward pass
    assigns final levels; ops sharing a level are mutually independent
    by construction and become one :class:`Wave`.
    """

    level: dict[int, int] = {}
    buckets: dict[int, list[NewviewOp]] = {}
    for op in desc.ops:
        lvl = max(level.get(op.child1, -1), level.get(op.child2, -1)) + 1
        level[op.node] = lvl
        buckets.setdefault(lvl, []).append(op)
    waves = [
        Wave(index=i, ops=tuple(buckets[lvl]))
        for i, lvl in enumerate(sorted(buckets))
    ]
    return ExecutionPlan(root_edge=desc.root_edge, waves=waves)


@dataclass
class GradientPlan:
    """The bidirectional plan: one down-sweep, one mixed-kind up-sweep.

    ``down`` is the ordinary post-order plan that validates every CLA
    toward ``root_edge``; ``up`` is the root-to-tip sweep whose waves
    interleave pre-order partials with the per-edge gradient ops that
    become ready as the partials land.  Executing both yields first and
    second log-likelihood derivatives for all ``2N - 3`` branches in
    O(N) kernel calls — the linear-time alternative to ``2N - 3``
    independent ``derivativeSum`` re-traversals.
    """

    root_edge: int
    down: ExecutionPlan
    up: ExecutionPlan

    @property
    def n_ops(self) -> int:
        return self.down.n_ops + self.up.n_ops

    @property
    def depth(self) -> int:
        return self.down.depth + self.up.depth

    def kernel_mix(self) -> dict[KernelKind, int]:
        mix = self.down.kernel_mix()
        for kind, n in self.up.kernel_mix().items():
            mix[kind] = mix.get(kind, 0) + n
        return mix


def levelize_upsweep(desc: GradientDescriptor) -> ExecutionPlan:
    """Fold a gradient descriptor into root-to-tip dependency waves.

    A pre-order partial's level is one past its parent partial's level
    (partials fed by the virtual root's down CLAs sit at level 0); an
    edge's gradient op runs one level after the partial it consumes, so
    it shares a wave with the *next* generation of partials — the mixed
    kernel-kind waves the dispatcher batches per kind.  The virtual root
    edge's gradient needs only down CLAs and joins wave 0.
    """

    plevel: dict[int, int] = {}
    buckets: dict[int, list] = {}
    for op in desc.pre_ops:
        lvl = plevel[op.up_edge] + 1 if op.across_is_partial else 0
        plevel[op.edge] = lvl
        buckets.setdefault(lvl, []).append(op)
    for op in desc.grad_ops:
        lvl = plevel[op.edge] + 1 if op.top_is_partial else 0
        buckets.setdefault(lvl, []).append(op)
    waves = [
        Wave(index=i, ops=tuple(buckets[lvl]))
        for i, lvl in enumerate(sorted(buckets))
    ]
    return ExecutionPlan(root_edge=desc.root_edge, waves=waves, direction="up")


@dataclass
class KernelCounters:
    """Running totals of kernel invocations and processed site units.

    ``calls[k]`` counts invocations of kernel ``k``; ``site_units[k]``
    counts ``calls x n_patterns`` work units, the quantity per-site cost
    models multiply by their per-site time.  ``reductions`` counts the
    scalar all-reduce points (one per ``evaluate``, one per
    ``derivativeCore`` batch) that dominate distributed overhead in
    Sec. VI-B3.
    """

    calls: dict[KernelKind, int] = field(default_factory=dict)
    site_units: dict[KernelKind, int] = field(default_factory=dict)
    reductions: int = 0

    def record(self, kind: KernelKind, n_patterns: int, calls: int = 1) -> None:
        self.calls[kind] = self.calls.get(kind, 0) + calls
        self.site_units[kind] = self.site_units.get(kind, 0) + calls * n_patterns
        if kind in (KernelKind.EVALUATE, KernelKind.DERIVATIVE_CORE):
            self.reductions += calls

    def total_calls(self) -> int:
        return sum(self.calls.values())

    def merged(self) -> dict[str, int]:
        """Calls aggregated to the :data:`MERGED_KERNEL_KEYS` names.

        Seeded with the paper's four families; "preorder" and
        "edge_gradient" appear only once a gradient sweep has run.
        """
        out = {key: 0 for key in PAPER_KERNEL_KEYS}
        for kind, n in self.calls.items():
            key = merged_kernel_key(kind)
            out[key] = out.get(key, 0) + n
        return out

    def merged_site_units(self) -> dict[str, int]:
        """Site units aggregated like :meth:`merged`."""
        out = {key: 0 for key in PAPER_KERNEL_KEYS}
        for kind, n in self.site_units.items():
            key = merged_kernel_key(kind)
            out[key] = out.get(key, 0) + n
        return out

    def copy(self) -> "KernelCounters":
        c = KernelCounters()
        c.calls = dict(self.calls)
        c.site_units = dict(self.site_units)
        c.reductions = self.reductions
        return c

    def merge(self, other: "KernelCounters") -> None:
        """Accumulate ``other``'s totals into this object (in place).

        Used to combine per-worker counters into one engine-wide view;
        callers are responsible for not merging the same source twice
        (see ``ForkJoinEngine.counters`` for the dedup-by-identity rule).
        """
        for kind, n in other.calls.items():
            self.calls[kind] = self.calls.get(kind, 0) + n
        for kind, n in other.site_units.items():
            self.site_units[kind] = self.site_units.get(kind, 0) + n
        self.reductions += other.reductions

    def reset(self) -> None:
        """Zero all totals.

        Counters are **cumulative across runs** by default: repeated
        ``run()`` / ``log_likelihood()`` calls on the same engine keep
        adding to the same object.  Call ``reset()`` (or
        ``engine.reset_profile()``) between runs when you need
        per-run numbers, e.g. before building a per-run
        :class:`repro.perf.trace.KernelTrace`.
        """
        self.calls.clear()
        self.site_units.clear()
        self.reductions = 0

    def diff(self, earlier: "KernelCounters") -> "KernelCounters":
        """Counters accumulated since ``earlier`` (a prior :meth:`copy`)."""
        c = KernelCounters()
        keys = set(self.calls) | set(earlier.calls)
        c.calls = {
            k: self.calls.get(k, 0) - earlier.calls.get(k, 0)
            for k in keys
            if self.calls.get(k, 0) != earlier.calls.get(k, 0)
        }
        keys = set(self.site_units) | set(earlier.site_units)
        c.site_units = {
            k: self.site_units.get(k, 0) - earlier.site_units.get(k, 0)
            for k in keys
            if self.site_units.get(k, 0) != earlier.site_units.get(k, 0)
        }
        c.reductions = self.reductions - earlier.reductions
        return c
