"""Traversal descriptors and kernel-invocation accounting.

ExaML replicates the tree-search state on every rank and drives the PLF
through *traversal descriptors* — ordered lists of ``newview``
operations that make a virtual root's two CLAs valid.  We keep the same
structure: the engine plans a traversal (only the stale nodes), executes
it, and records every kernel invocation in a :class:`KernelCounters`
object.

The counters are the bridge to the performance model: a full tree search
run yields, per kernel, the number of calls and the number of
(site-pattern x call) units processed, which
:class:`repro.perf.trace.KernelTrace` scales to the paper's dataset
sizes and feeds to the platform cost models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

__all__ = ["KernelKind", "NewviewOp", "TraversalDescriptor", "KernelCounters"]


class KernelKind(str, Enum):
    """The four PLF kernels of Section IV, split by ``newview`` tip cases.

    RAxML implements (and the paper vectorises) distinct code paths for
    the tip-tip / tip-inner / inner-inner ``newview`` cases; we count
    them separately because their arithmetic intensity differs, then the
    cost model aggregates them back into the paper's four kernels.
    """

    NEWVIEW_TIP_TIP = "newview_tip_tip"
    NEWVIEW_TIP_INNER = "newview_tip_inner"
    NEWVIEW_INNER_INNER = "newview_inner_inner"
    EVALUATE = "evaluate"
    DERIVATIVE_SUM = "derivative_sum"
    DERIVATIVE_CORE = "derivative_core"

    @property
    def newview_like(self) -> bool:
        return self.value.startswith("newview")


@dataclass(frozen=True)
class NewviewOp:
    """One planned CLA update: parent from two children across two edges."""

    node: int
    up_edge: int
    child1: int
    edge1: int
    child2: int
    edge2: int
    kind: KernelKind


@dataclass
class TraversalDescriptor:
    """An ordered batch of ``newview`` operations for one virtual root.

    ``root_edge`` is where ``evaluate`` (or a derivative computation)
    will be performed once the listed operations have run.
    """

    root_edge: int
    ops: list[NewviewOp] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.ops)


@dataclass
class KernelCounters:
    """Running totals of kernel invocations and processed site units.

    ``calls[k]`` counts invocations of kernel ``k``; ``site_units[k]``
    counts ``calls x n_patterns`` work units, the quantity per-site cost
    models multiply by their per-site time.  ``reductions`` counts the
    scalar all-reduce points (one per ``evaluate``, one per
    ``derivativeCore`` batch) that dominate distributed overhead in
    Sec. VI-B3.
    """

    calls: dict[KernelKind, int] = field(default_factory=dict)
    site_units: dict[KernelKind, int] = field(default_factory=dict)
    reductions: int = 0

    def record(self, kind: KernelKind, n_patterns: int, calls: int = 1) -> None:
        self.calls[kind] = self.calls.get(kind, 0) + calls
        self.site_units[kind] = self.site_units.get(kind, 0) + calls * n_patterns
        if kind in (KernelKind.EVALUATE, KernelKind.DERIVATIVE_CORE):
            self.reductions += calls

    def total_calls(self) -> int:
        return sum(self.calls.values())

    def merged(self) -> dict[str, int]:
        """Calls aggregated to the paper's four kernel names."""
        out = {"newview": 0, "evaluate": 0, "derivative_sum": 0, "derivative_core": 0}
        for kind, n in self.calls.items():
            key = "newview" if kind.newview_like else kind.value
            out[key] += n
        return out

    def merged_site_units(self) -> dict[str, int]:
        """Site units aggregated to the paper's four kernel names."""
        out = {"newview": 0, "evaluate": 0, "derivative_sum": 0, "derivative_core": 0}
        for kind, n in self.site_units.items():
            key = "newview" if kind.newview_like else kind.value
            out[key] += n
        return out

    def copy(self) -> "KernelCounters":
        c = KernelCounters()
        c.calls = dict(self.calls)
        c.site_units = dict(self.site_units)
        c.reductions = self.reductions
        return c

    def diff(self, earlier: "KernelCounters") -> "KernelCounters":
        """Counters accumulated since ``earlier`` (a prior :meth:`copy`)."""
        c = KernelCounters()
        keys = set(self.calls) | set(earlier.calls)
        c.calls = {
            k: self.calls.get(k, 0) - earlier.calls.get(k, 0)
            for k in keys
            if self.calls.get(k, 0) != earlier.calls.get(k, 0)
        }
        keys = set(self.site_units) | set(earlier.site_units)
        c.site_units = {
            k: self.site_units.get(k, 0) - earlier.site_units.get(k, 0)
            for k in keys
            if self.site_units.get(k, 0) != earlier.site_units.get(k, 0)
        }
        c.reductions = self.reductions - earlier.reductions
        return c
