"""The PLF kernels as vector programs — the simulated "MIC port".

Each ``emit_*`` function reproduces one of Section V-B's optimised
kernels as an explicit instruction stream for a given ISA, applying the
paper's techniques:

* **loop re-organisation** (V-B3): ``newview``'s 1x4-by-4x4 mat-vecs are
  fused across the four Gamma rates into 16-wide blocks computed with
  shuffle + FMA pairs;
* **streaming stores** (V-B5): ``newview`` and ``derivativeSum`` write
  their outputs with non-temporal stores;
* **software prefetching** (V-B6): a tunable prefetch distance issues
  ``PREFETCH`` for future per-site blocks of every streamed input;
* **site blocking** (V-B4): ``derivativeCore`` stages 8 per-site scalar
  results in a buffer and replaces 8 scalar divisions with one vector
  division.

Programs execute on :class:`~repro.mic.vm.VectorMachine` and compute the
*actual numerics*, so every generator is validated lane-for-lane against
the NumPy reference kernels in the test suite.  Per-site underflow
scaling is omitted here (it never triggers at benchmark-window sizes and
costs ~2 instructions/site); the reference kernels remain the source of
truth for full-tree likelihoods.

All generators assume the DNA + Gamma-4 configuration the paper's MIC
port supports (16 doubles per site), with the vector width dividing 16
(MIC: 8, AVX: 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mic.isa import Instruction, Op, VectorISA
from ..mic.memory import CACHE_LINE
from ..mic.vm import VectorMachine, VectorProgram
from ..phylo.models import EigenSystem
from .kernels import branch_exponentials, branch_matrices

__all__ = [
    "GammaDnaBuffers",
    "setup_buffers",
    "emit_derivative_sum",
    "emit_evaluate",
    "emit_newview_inner_inner",
    "emit_newview_tip_tip",
    "emit_cat_derivative_sum",
    "emit_derivative_core",
    "prepare_evaluate_consts",
    "prepare_newview_consts",
    "prepare_tip_consts",
    "prepare_derivative_consts",
    "BLOCK_DOUBLES",
]

#: DNA x Gamma-4: 16 doubles per site (the paper's fixed configuration).
BLOCK_DOUBLES = 16
N_STATES = 4
N_RATES = 4


@dataclass
class GammaDnaBuffers:
    """Simulated-memory addresses for one kernel invocation's operands."""

    n_sites: int
    left: int  # CLA (z) of left child / left root side
    right: int  # CLA of right child / right root side
    out: int  # output CLA / sum buffer
    consts: dict[str, int]  # named constant tables (matrices, exps, weights)
    scalar_out: int  # where scalar results (lnL, derivatives) are stored


def setup_buffers(
    vm: VectorMachine,
    z_left: np.ndarray,
    z_right: np.ndarray,
    weights: np.ndarray | None = None,
) -> GammaDnaBuffers:
    """Allocate and fill VM memory for a pair of site-blocked CLAs.

    ``z_left``/``z_right`` are reference-layout ``(sites, 4, 4)`` arrays
    (tips may be broadcast to that shape first).
    """
    n_sites = z_left.shape[0]
    if z_left.shape != (n_sites, N_RATES, N_STATES):
        raise ValueError(f"expected (sites, 4, 4) CLA, got {z_left.shape}")
    if z_right.shape != z_left.shape:
        raise ValueError("left/right CLA shapes differ")
    n = n_sites * BLOCK_DOUBLES
    left = vm.alloc(n)
    right = vm.alloc(n)
    out = vm.alloc(n)
    vm.write_array(left, z_left.reshape(-1))
    vm.write_array(right, z_right.reshape(-1))
    consts: dict[str, int] = {}
    if weights is not None:
        if weights.shape != (n_sites,):
            raise ValueError("pattern weights must be per-site")
        addr = vm.alloc(n_sites, align=64)
        vm.write_array(addr, weights)
        consts["weights"] = addr
    scalar_out = vm.alloc(8, align=64)
    return GammaDnaBuffers(
        n_sites=n_sites, left=left, right=right, out=out,
        consts=consts, scalar_out=scalar_out,
    )


def _chunks(isa: VectorISA, need_shuffles: bool = True) -> int:
    if BLOCK_DOUBLES % isa.width:
        raise ValueError(
            f"vector width {isa.width} does not divide the {BLOCK_DOUBLES}-"
            "double site block; the Gamma-4 DNA kernels need width in "
            "{2, 4, 8, 16}"
        )
    if need_shuffles and isa.width not in (4, 8):
        raise ValueError(
            "shuffle-based mat-vec kernels are implemented for widths 4 "
            "(AVX) and 8 (MIC)"
        )
    if not need_shuffles and isa.width not in (2, 4, 8):
        raise ValueError(
            "streaming kernels are implemented for widths 2 (SSE), 4 "
            "(AVX) and 8 (MIC)"
        )
    return BLOCK_DOUBLES // isa.width


def _emit_prefetches(
    prog: VectorProgram,
    bufs: list[int],
    site: int,
    n_sites: int,
    distance: int,
) -> None:
    """Prefetch the per-site blocks ``distance`` sites ahead (V-B6)."""
    if distance <= 0:
        return
    target = site + distance
    if target >= n_sites:
        return
    off = target * BLOCK_DOUBLES * 8
    for base in bufs:
        for line in range(0, BLOCK_DOUBLES * 8, CACHE_LINE):
            prog.emit(Instruction(Op.PREFETCH, addr=base + off + line))


def emit_derivative_sum(
    isa: VectorISA,
    bufs: GammaDnaBuffers,
    prefetch_distance: int = 8,
    nontemporal: bool = True,
) -> VectorProgram:
    """``derivativeSum``: ``sum[l] = left[l] * right[l]`` (Figure 2).

    The pure streaming kernel: per site, load two 16-double blocks,
    multiply, streaming-store the product.  Bandwidth-bound on every
    platform, which is why it shows the paper's best MIC speedup (2.8x).
    """
    prog = VectorProgram(name=f"derivative_sum[{isa.name}]")
    chunks = _chunks(isa, need_shuffles=False)
    step = isa.width * 8
    store = Op.VSTORE_NT if nontemporal else Op.VSTORE
    for site in range(bufs.n_sites):
        _emit_prefetches(
            prog, [bufs.left, bufs.right], site, bufs.n_sites, prefetch_distance
        )
        base = site * BLOCK_DOUBLES * 8
        for ch in range(chunks):
            off = base + ch * step
            prog.emit(Instruction(Op.VLOAD, dest="v0", addr=bufs.left + off))
            prog.emit(Instruction(Op.VLOAD, dest="v1", addr=bufs.right + off))
            prog.emit(Instruction(Op.VMUL, dest="v2", srcs=("v0", "v1")))
            prog.emit(Instruction(store, srcs=("v2",), addr=bufs.out + off))
    return prog


def emit_cat_derivative_sum(
    isa: VectorISA,
    layout,
    left: int,
    right: int,
    out: int,
) -> VectorProgram:
    """``derivativeSum`` over a CAT-layout buffer (Sec. V-B2's hazard).

    Under CAT a site block is 4 doubles (32 bytes).  On the MIC
    (64-byte vector alignment) every other site block starts mid-vector
    unless the layout pads blocks to 64 bytes — exactly the "special
    care must be taken to keep accesses aligned" warning.  This kernel
    loads whole padded blocks (the pad lanes are multiplied harmlessly),
    so:

    * with a padded :class:`~repro.core.layouts.InterleavedLayout` the
      program runs on any ISA;
    * with an *unpadded* layout on the MIC, the VM rejects the generated
      program with its misalignment error — the demonstration the test
      suite pins down.  (On AVX, 32-byte alignment, the unpadded CAT
      block is naturally aligned — CAT is only a problem on the MIC.)

    ``layout`` is the :class:`InterleavedLayout` describing both input
    buffers and the output; ``left``/``right``/``out`` are their VM base
    addresses.
    """
    prog = VectorProgram(name=f"cat_derivative_sum[{isa.name}]")
    step = isa.width * 8
    block_bytes = layout.padded_doubles * 8
    for site in range(layout.n_sites):
        base = site * block_bytes
        for off in range(0, block_bytes, step):
            prog.emit(Instruction(Op.VLOAD, dest="v0", addr=left + base + off))
            prog.emit(Instruction(Op.VLOAD, dest="v1", addr=right + base + off))
            prog.emit(Instruction(Op.VMUL, dest="v2", srcs=("v0", "v1")))
            store = Op.VSTORE_NT if isa.has_streaming_stores else Op.VSTORE
            prog.emit(Instruction(store, srcs=("v2",), addr=out + base + off))
    return prog


def _write_const_block(vm: VectorMachine, values: np.ndarray) -> int:
    addr = vm.alloc(values.size, align=64)
    vm.write_array(addr, values.reshape(-1))
    return addr


def prepare_evaluate_consts(
    vm: VectorMachine,
    bufs: GammaDnaBuffers,
    eigen: EigenSystem,
    rates: np.ndarray,
    rate_weights: np.ndarray,
    t: float,
) -> None:
    """Write the weighted ``diagptable`` for :func:`emit_evaluate`."""
    exps = branch_exponentials(eigen, rates, t)  # (4, 4)
    weighted = (rate_weights[:, None] * exps).reshape(-1)  # 16
    bufs.consts["wexps"] = _write_const_block(vm, weighted)


def emit_evaluate(isa: VectorISA, bufs: GammaDnaBuffers) -> VectorProgram:
    """``evaluate``: per-site triple product, log, weighted reduction.

    Requires :func:`prepare_evaluate_consts` (the ``wexps`` table) and
    per-site pattern weights in ``bufs.consts['weights']``.  The total
    log-likelihood is stored to ``bufs.scalar_out``.
    """
    if "wexps" not in bufs.consts or "weights" not in bufs.consts:
        raise ValueError("call prepare_evaluate_consts and supply weights")
    prog = VectorProgram(name=f"evaluate[{isa.name}]")
    chunks = _chunks(isa)
    step = isa.width * 8
    # load the weighted exponentials once into persistent registers
    for ch in range(chunks):
        prog.emit(
            Instruction(Op.VLOAD, dest=f"e{ch}", addr=bufs.consts["wexps"] + ch * step)
        )
    prog.emit(Instruction(Op.VSET, dest="zero", values=(0.0,) * isa.width))
    prog.emit(Instruction(Op.HADD, dest="acc", srcs=("zero",)))
    for site in range(bufs.n_sites):
        _emit_prefetches(prog, [bufs.left, bufs.right], site, bufs.n_sites, 8)
        base = site * BLOCK_DOUBLES * 8
        first = True
        for ch in range(chunks):
            off = base + ch * step
            prog.emit(Instruction(Op.VLOAD, dest="v0", addr=bufs.left + off))
            prog.emit(Instruction(Op.VLOAD, dest="v1", addr=bufs.right + off))
            prog.emit(Instruction(Op.VMUL, dest="v2", srcs=("v0", "v1")))
            if first:
                prog.emit(Instruction(Op.VMUL, dest="tacc", srcs=("v2", f"e{ch}")))
                first = False
            else:
                prog.emit(
                    Instruction(Op.VFMA, dest="tacc", srcs=("v2", f"e{ch}", "tacc"))
                )
        prog.emit(Instruction(Op.HADD, dest="site_l", srcs=("tacc",)))
        prog.emit(Instruction(Op.SLOG, dest="lnl", srcs=("site_l",)))
        prog.emit(
            Instruction(Op.SLOAD, dest="w", addr=bufs.consts["weights"] + site * 8)
        )
        prog.emit(Instruction(Op.SMUL, dest="wl", srcs=("lnl", "w")))
        prog.emit(Instruction(Op.SADD, dest="acc", srcs=("acc", "wl")))
    prog.emit(Instruction(Op.SSTORE, srcs=("acc",), addr=bufs.scalar_out))
    return prog


def prepare_newview_consts(
    vm: VectorMachine,
    bufs: GammaDnaBuffers,
    eigen: EigenSystem,
    rates: np.ndarray,
    t1: float,
    t2: float,
) -> None:
    """Write the rearranged branch matrices for :func:`emit_newview_inner_inner`.

    This is the paper's Sec. V-B3 "re-arrange the input arrays": the
    per-rate ``A(t)`` matrices are stored as four 16-wide vectors
    ``A_k[(c,i)] = A[c,i,k]`` so the mat-vec inner loop becomes shuffle +
    FMA over full vectors; likewise for the ``U^-1`` back-projection
    (``UI_i[(c,k)] = U^-1[k,i]``).
    """
    a1 = branch_matrices(eigen, rates, t1)  # (4, 4, 4): [c, i, k]
    a2 = branch_matrices(eigen, rates, t2)
    for name, a in (("a1", a1), ("a2", a2)):
        for k in range(N_STATES):
            bufs.consts[f"{name}_{k}"] = _write_const_block(
                vm, a[:, :, k]
            )  # (c, i) order, 16 values
    u_inv = eigen.u_inv  # (k, i)
    for i in range(N_STATES):
        # UI_i[(c, k)] = u_inv[k, i], repeated for each rate c
        block = np.tile(u_inv[:, i], N_RATES)
        bufs.consts[f"ui_{i}"] = _write_const_block(vm, block)


def _shuffle_pattern(isa: VectorISA, select: int) -> tuple[int, ...]:
    """Lane pattern replicating element ``select`` of each 4-lane group."""
    pattern = []
    for lane in range(isa.width):
        group = lane // N_STATES
        pattern.append(group * N_STATES + select)
    return tuple(pattern)


def emit_newview_inner_inner(
    isa: VectorISA,
    bufs: GammaDnaBuffers,
    prefetch_distance: int = 4,
) -> VectorProgram:
    """``newview`` (inner/inner): fused mat-vecs + product + projection.

    Per site and chunk: ``w1 = A1 z1`` and ``w2 = A2 z2`` via 4 shuffle +
    FMA pairs each, ``v = w1 * w2``, ``z_out = U^-1 v`` via 4 more
    shuffle + FMA pairs, then a streaming store — two FMA-dominated
    16-iteration inner loops exactly as Sec. V-B3 describes.
    """
    chunks = _chunks(isa)
    for k in range(N_STATES):
        if f"a1_{k}" not in bufs.consts:
            raise ValueError("call prepare_newview_consts first")
    prog = VectorProgram(name=f"newview_inner_inner[{isa.name}]")
    step = isa.width * 8
    # Constant tables live in registers across the whole call.
    for ch in range(chunks):
        for k in range(N_STATES):
            prog.emit(Instruction(
                Op.VLOAD, dest=f"A1_{k}_{ch}",
                addr=bufs.consts[f"a1_{k}"] + ch * step,
            ))
            prog.emit(Instruction(
                Op.VLOAD, dest=f"A2_{k}_{ch}",
                addr=bufs.consts[f"a2_{k}"] + ch * step,
            ))
        for i in range(N_STATES):
            prog.emit(Instruction(
                Op.VLOAD, dest=f"UI_{i}_{ch}",
                addr=bufs.consts[f"ui_{i}"] + ch * step,
            ))
    for site in range(bufs.n_sites):
        _emit_prefetches(
            prog, [bufs.left, bufs.right], site, bufs.n_sites, prefetch_distance
        )
        base = site * BLOCK_DOUBLES * 8
        for ch in range(chunks):
            off = base + ch * step
            prog.emit(Instruction(Op.VLOAD, dest="z1", addr=bufs.left + off))
            prog.emit(Instruction(Op.VLOAD, dest="z2", addr=bufs.right + off))
            for child, zreg in (("A1", "z1"), ("A2", "z2")):
                wreg = "w1" if child == "A1" else "w2"
                for k in range(N_STATES):
                    prog.emit(Instruction(
                        Op.VSHUF, dest=f"b{k}", srcs=(zreg,),
                        pattern=_shuffle_pattern(isa, k),
                    ))
                    if k == 0:
                        prog.emit(Instruction(
                            Op.VMUL, dest=wreg, srcs=(f"A{child[1]}_{k}_{ch}", f"b{k}")
                        ))
                    else:
                        prog.emit(Instruction(
                            Op.VFMA, dest=wreg,
                            srcs=(f"A{child[1]}_{k}_{ch}", f"b{k}", wreg),
                        ))
            prog.emit(Instruction(Op.VMUL, dest="vv", srcs=("w1", "w2")))
            for i in range(N_STATES):
                prog.emit(Instruction(
                    Op.VSHUF, dest=f"c{i}", srcs=("vv",),
                    pattern=_shuffle_pattern(isa, i),
                ))
                if i == 0:
                    prog.emit(Instruction(
                        Op.VMUL, dest="zo", srcs=(f"UI_{i}_{ch}", f"c{i}")
                    ))
                else:
                    prog.emit(Instruction(
                        Op.VFMA, dest="zo", srcs=(f"UI_{i}_{ch}", f"c{i}", "zo")
                    ))
            prog.emit(Instruction(Op.VSTORE_NT, srcs=("zo",), addr=bufs.out + off))
    return prog


def prepare_tip_consts(
    vm: VectorMachine,
    bufs: GammaDnaBuffers,
    eigen: EigenSystem,
    rates: np.ndarray,
    tip_eigen: np.ndarray,
    t1: float,
    t2: float,
) -> None:
    """Write the per-branch tip lookup tables for the tip-tip kernel.

    ``tip_eigen`` is the 16 x 4 ``tipVector`` table
    (:func:`repro.core.kernels.tip_eigen_table`); each branch gets the
    precomputed ``A(t) @ tipVector[code]`` table of shape
    ``(4 rates, 16 codes, 4 states)`` — 256 doubles, the classic RAxML
    tip optimisation the paper's kernels index with gathers.
    """
    from .kernels import tip_branch_lookup

    for name, t in (("lut1", t1), ("lut2", t2)):
        a = branch_matrices(eigen, rates, t)
        lut = tip_branch_lookup(a, tip_eigen)  # (c, m, i)
        bufs.consts[name] = _write_const_block(vm, lut)
        bufs.consts[f"{name}_shape"] = lut.shape[1]  # codes per rate
    # U^-1 back-projection rows (shared with the inner-inner kernel)
    for i in range(N_STATES):
        block = np.tile(eigen.u_inv[:, i], N_RATES)
        bufs.consts[f"ui_{i}"] = _write_const_block(vm, block)


def _tip_gather_addrs(
    base: int, code: int, chunk: int, width: int, n_codes: int
) -> tuple[int, ...]:
    """Byte addresses of lanes ``(c, i)`` in a ``(c, code, i)`` table."""
    addrs = []
    for lane in range(width):
        flat = chunk * width + lane  # position within the 16-double block
        c, i = divmod(flat, N_STATES)
        index = (c * n_codes + code) * N_STATES + i
        addrs.append(base + index * 8)
    return tuple(addrs)


def emit_newview_tip_tip(
    isa: VectorISA,
    bufs: GammaDnaBuffers,
    codes1: np.ndarray,
    codes2: np.ndarray,
) -> VectorProgram:
    """``newview`` with two tip children: gathered lookups + projection.

    Per site, both 16-wide post-branch vectors come from the per-branch
    lookup tables via gather (MIC has hardware ``vgatherd``; on AVX the
    gather is emulated as scalar loads, which the ISA cost table charges
    accordingly — part of why tip-heavy traversals vectorise better on
    the MIC).  Requires :func:`prepare_tip_consts`.
    """
    if "lut1" not in bufs.consts:
        raise ValueError("call prepare_tip_consts first")
    if codes1.shape[0] != bufs.n_sites or codes2.shape[0] != bufs.n_sites:
        raise ValueError("per-site tip codes must match the site count")
    prog = VectorProgram(name=f"newview_tip_tip[{isa.name}]")
    chunks = _chunks(isa)
    step = isa.width * 8
    n_codes = bufs.consts["lut1_shape"]
    for ch in range(chunks):
        for i in range(N_STATES):
            prog.emit(Instruction(
                Op.VLOAD, dest=f"UI_{i}_{ch}",
                addr=bufs.consts[f"ui_{i}"] + ch * step,
            ))
    for site in range(bufs.n_sites):
        c1 = int(codes1[site])
        c2 = int(codes2[site])
        base = site * BLOCK_DOUBLES * 8
        for ch in range(chunks):
            prog.emit(Instruction(
                Op.VGATHER, dest="w1",
                addrs=_tip_gather_addrs(
                    bufs.consts["lut1"], c1, ch, isa.width, n_codes
                ),
            ))
            prog.emit(Instruction(
                Op.VGATHER, dest="w2",
                addrs=_tip_gather_addrs(
                    bufs.consts["lut2"], c2, ch, isa.width, n_codes
                ),
            ))
            prog.emit(Instruction(Op.VMUL, dest="vv", srcs=("w1", "w2")))
            for i in range(N_STATES):
                prog.emit(Instruction(
                    Op.VSHUF, dest=f"c{i}", srcs=("vv",),
                    pattern=_shuffle_pattern(isa, i),
                ))
                if i == 0:
                    prog.emit(Instruction(
                        Op.VMUL, dest="zo", srcs=(f"UI_{i}_{ch}", f"c{i}")
                    ))
                else:
                    prog.emit(Instruction(
                        Op.VFMA, dest="zo", srcs=(f"UI_{i}_{ch}", f"c{i}", "zo")
                    ))
            prog.emit(Instruction(
                Op.VSTORE_NT, srcs=("zo",), addr=bufs.out + base + ch * step
            ))
    return prog


def prepare_derivative_consts(
    vm: VectorMachine,
    bufs: GammaDnaBuffers,
    eigen: EigenSystem,
    rates: np.ndarray,
    rate_weights: np.ndarray,
    t: float,
) -> None:
    """Write the three weighted exponential tables for ``derivativeCore``."""
    g = np.multiply.outer(rates, eigen.eigenvalues)  # (c, k)
    e = np.exp(g * t)
    wc = rate_weights[:, None]
    bufs.consts["d_e"] = _write_const_block(vm, (wc * e))
    bufs.consts["d_ge"] = _write_const_block(vm, (wc * g * e))
    bufs.consts["d_gge"] = _write_const_block(vm, (wc * g * g * e))
    # staging area for the site-blocked scalar phase (3 x width doubles)
    bufs.consts["staging"] = vm.alloc(3 * vm.isa.width, align=64)


def emit_derivative_core(
    isa: VectorISA,
    bufs: GammaDnaBuffers,
    site_block: int = 8,
    prefetch_distance: int = 8,
) -> VectorProgram:
    """``derivativeCore``: per-site reductions + blocked scalar phase.

    Phase 1 per site: three 16-wide weighted reductions of the sum
    buffer against the ``exp``-tables give ``l0, l1, l2``.  Phase 2 (the
    scalar tail the paper blocks, Sec. V-B4): ``l1/l0`` and ``l2/l0`` are
    needed per site — we stage ``site_block`` sites' scalars in buffers
    and replace the per-site divisions with two vector divisions per
    block.  Outputs ``(dlnL, d2lnL)`` are stored at ``scalar_out`` and
    ``scalar_out + 8``.

    ``site_block=1`` degenerates to the unblocked scalar version (used
    by the ablation benchmark to show the blocking win).
    """
    for key in ("d_e", "d_ge", "d_gge"):
        if key not in bufs.consts:
            raise ValueError("call prepare_derivative_consts first")
    if "weights" not in bufs.consts:
        raise ValueError("pattern weights required")
    if site_block not in (1, isa.width):
        raise ValueError("site_block must be 1 or the vector width")
    prog = VectorProgram(name=f"derivative_core[{isa.name},block={site_block}]")
    chunks = _chunks(isa)
    step = isa.width * 8
    vm_alloc_staging = bufs.consts.get("staging")
    if vm_alloc_staging is None:
        raise ValueError("staging buffer required (alloc 3*width doubles)")
    stage_l0 = vm_alloc_staging
    stage_l1 = vm_alloc_staging + isa.width * 8
    stage_l2 = vm_alloc_staging + 2 * isa.width * 8

    for name, key in (("E0", "d_e"), ("E1", "d_ge"), ("E2", "d_gge")):
        for ch in range(chunks):
            prog.emit(Instruction(
                Op.VLOAD, dest=f"{name}_{ch}", addr=bufs.consts[key] + ch * step
            ))
    prog.emit(Instruction(Op.VSET, dest="zero", values=(0.0,) * isa.width))
    prog.emit(Instruction(Op.HADD, dest="acc1", srcs=("zero",)))
    prog.emit(Instruction(Op.HADD, dest="acc2", srcs=("zero",)))

    def flush_block(count: int, first_site: int) -> None:
        """Vector phase over ``count`` staged sites."""
        if count == 0:
            return
        if site_block == 1 or count < isa.width:
            # scalar fallback (tail or unblocked mode)
            for j in range(count):
                prog.emit(Instruction(Op.SLOAD, dest="l0", addr=stage_l0 + j * 8))
                prog.emit(Instruction(Op.SLOAD, dest="l1", addr=stage_l1 + j * 8))
                prog.emit(Instruction(Op.SLOAD, dest="l2", addr=stage_l2 + j * 8))
                prog.emit(Instruction(Op.SDIV, dest="r1", srcs=("l1", "l0")))
                prog.emit(Instruction(Op.SDIV, dest="r2", srcs=("l2", "l0")))
                prog.emit(Instruction(
                    Op.SLOAD, dest="w",
                    addr=bufs.consts["weights"] + (first_site + j) * 8,
                ))
                prog.emit(Instruction(Op.SMUL, dest="wr1", srcs=("w", "r1")))
                prog.emit(Instruction(Op.SADD, dest="acc1", srcs=("acc1", "wr1")))
                prog.emit(Instruction(Op.SMUL, dest="r1sq", srcs=("r1", "r1")))
                # d2 term: w * (r2 - r1^2)
                prog.emit(Instruction(Op.SMUL, dest="nr1sq", srcs=("r1sq", "mone")))
                prog.emit(Instruction(Op.SADD, dest="t2", srcs=("r2", "nr1sq")))
                prog.emit(Instruction(Op.SMUL, dest="wt2", srcs=("w", "t2")))
                prog.emit(Instruction(Op.SADD, dest="acc2", srcs=("acc2", "wt2")))
            return
        # full vector block (Sec. V-B4): 2 VDIVs replace 2*width SDIVs
        prog.emit(Instruction(Op.VLOAD, dest="vl0", addr=stage_l0))
        prog.emit(Instruction(Op.VLOAD, dest="vl1", addr=stage_l1))
        prog.emit(Instruction(Op.VLOAD, dest="vl2", addr=stage_l2))
        prog.emit(Instruction(Op.VDIV, dest="vr1", srcs=("vl1", "vl0")))
        prog.emit(Instruction(Op.VDIV, dest="vr2", srcs=("vl2", "vl0")))
        prog.emit(Instruction(
            Op.VLOAD, dest="vw", addr=bufs.consts["weights"] + first_site * 8
        ))
        prog.emit(Instruction(Op.VMUL, dest="vwr1", srcs=("vw", "vr1")))
        prog.emit(Instruction(Op.HADD, dest="h1", srcs=("vwr1",)))
        prog.emit(Instruction(Op.SADD, dest="acc1", srcs=("acc1", "h1")))
        prog.emit(Instruction(Op.VMUL, dest="vr1sq", srcs=("vr1", "vr1")))
        prog.emit(Instruction(Op.VSUB, dest="vt2", srcs=("vr2", "vr1sq")))
        prog.emit(Instruction(Op.VMUL, dest="vwt2", srcs=("vw", "vt2")))
        prog.emit(Instruction(Op.HADD, dest="h2", srcs=("vwt2",)))
        prog.emit(Instruction(Op.SADD, dest="acc2", srcs=("acc2", "h2")))

    # constant -1 scalar for the unblocked path (HADD of a one-hot vector)
    prog.emit(Instruction(
        Op.VSET, dest="vmone", values=(-1.0,) + (0.0,) * (isa.width - 1)
    ))
    prog.emit(Instruction(Op.HADD, dest="mone", srcs=("vmone",)))

    staged = 0
    block_start = 0
    for site in range(bufs.n_sites):
        _emit_prefetches(prog, [bufs.left], site, bufs.n_sites, prefetch_distance)
        base = site * BLOCK_DOUBLES * 8
        for qi, ereg in enumerate(("E0", "E1", "E2")):
            first = True
            for ch in range(chunks):
                off = base + ch * step
                prog.emit(Instruction(Op.VLOAD, dest="d", addr=bufs.left + off))
                if first:
                    prog.emit(Instruction(
                        Op.VMUL, dest="q", srcs=("d", f"{ereg}_{ch}")
                    ))
                    first = False
                else:
                    prog.emit(Instruction(
                        Op.VFMA, dest="q", srcs=("d", f"{ereg}_{ch}", "q")
                    ))
            prog.emit(Instruction(Op.HADD, dest=f"l{qi}s", srcs=("q",)))
            prog.emit(Instruction(
                Op.SSTORE, srcs=(f"l{qi}s",),
                addr=[stage_l0, stage_l1, stage_l2][qi] + staged * 8,
            ))
        staged += 1
        if staged == site_block or (site == bufs.n_sites - 1):
            flush_block(staged, block_start)
            block_start = site + 1
            staged = 0
    prog.emit(Instruction(Op.SSTORE, srcs=("acc1",), addr=bufs.scalar_out))
    prog.emit(Instruction(Op.SSTORE, srcs=("acc2",), addr=bufs.scalar_out + 8))
    return prog
