"""Pluggable kernel backends: one dispatch seam for every PLF variant.

The paper's contribution is swapping PLF kernel *implementations*
(scalar vs pragma-vectorized vs intrinsics, CPU vs MIC, Sec. IV-V)
underneath an unchanged tree-search driver.  BEAGLE formalises the same
idea as a runtime-selectable "implementation" layer behind a stable
kernel API; this module is that layer for the reproduction.

A :class:`KernelBackend` provides the four PLF kernels of Section IV
(``newview`` in its three tip cases, ``evaluate``, ``derivativeSum``,
``derivativeCore``).  :class:`~repro.core.engine.LikelihoodEngine` — and
every engine built on it (memsave, CAT, +I, partitioned, fork-join,
distributed) — dispatches exclusively through its backend, so a new
implementation (JIT-compiled, process-parallel, GPU-style batched) is a
drop-in: implement the protocol, call :func:`register_backend`.

Shipped backends
----------------
``reference``
    The NumPy ground-truth kernels from :mod:`repro.core.kernels`,
    behavior-identical to the pre-seam engine.
``blocked``
    Site-chunked execution over preallocated scratch buffers — the
    paper's Sec. V-B cache-blocking.  The reference kernels materialise
    three ``(patterns, rates, states)`` temporaries per ``newview``
    (~38 MB at 100K DNA+Gamma4 patterns); the blocked backend streams
    the site dimension in L2-sized chunks so the temporaries stay
    cache-resident, which wins measurably at Table III widths >= 100K.
``shadow``
    Runs *two* backends per dispatch and asserts their CLAs, scale
    counters, log-likelihoods and derivatives agree — turning every
    test and search run into a cross-backend correctness oracle
    (``REPRO_BACKEND=shadow pytest`` checks blocked-vs-reference parity
    end-to-end).

Every backend records a per-kernel :class:`KernelProfile` (calls, wall
seconds, bytes moved) extending
:class:`~repro.core.traversal.KernelCounters`; measured per-kernel
times/intensities feed :mod:`repro.perf.trace` and
:mod:`repro.perf.costmodel` to calibrate the Figure 3 / Table III
predictions against reality instead of analytic constants alone.

The environment variable :data:`DEFAULT_BACKEND_ENV` (``REPRO_BACKEND``)
selects the process-wide default backend for engines constructed without
an explicit one.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Protocol, runtime_checkable

import numpy as np

from ..obs import metrics as _obs_metrics
from ..obs import spans as _obs
from . import kernels
from .scaling import LOG_SCALE_STEP, rescale_clv
from .traversal import (
    PAPER_KERNEL_KEYS,
    KernelCounters,
    KernelKind,
    merged_kernel_key,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..phylo.alignment import PatternAlignment
    from ..phylo.models import SubstitutionModel
    from ..phylo.rates import CatRates, GammaRates
    from ..phylo.tree import Tree
    from .engine import LikelihoodEngine

__all__ = [
    "DEFAULT_BACKEND_ENV",
    "KernelProfile",
    "KernelBackend",
    "BackendInfo",
    "ReferenceBackend",
    "BlockedBackend",
    "ShadowBackend",
    "BackendMismatchError",
    "register_backend",
    "available_backends",
    "get_backend",
    "resolve_backend_name",
    "make_engine",
]

#: Environment variable naming the default backend for engines built
#: without an explicit one (e.g. ``REPRO_BACKEND=shadow pytest``).
DEFAULT_BACKEND_ENV = "REPRO_BACKEND"


# ----------------------------------------------------------------------
# profiling
# ----------------------------------------------------------------------
def _observe_kernel(
    kind: KernelKind,
    backend_name: str,
    n_patterns: int,
    t_start: float,
    elapsed_s: float,
    nbytes: int,
) -> None:
    """Mirror one kernel dispatch into the obs layer (tracer + metrics).

    Callers gate on :data:`repro.obs.spans.ENABLED` *before* calling, so
    disabled runs pay only that flag check.  The span rides on the
    interval the dispatcher already measured for its
    :class:`KernelProfile` — the two views of kernel time are therefore
    identical by construction, which is what lets
    :func:`repro.perf.trace.trace_from_spans` feed the measured-costs
    calibration path from a saved trace alone.
    """
    _obs.get_tracer().add_complete(
        "kernel." + kind.value,
        t_start,
        t_start + elapsed_s,
        args={
            "patterns": int(n_patterns),
            "bytes": int(nbytes),
            "backend": backend_name,
        },
    )
    reg = _obs_metrics.get_registry()
    reg.counter(
        "repro_kernel_dispatch_total", "PLF kernel dispatches"
    ).inc()
    key = merged_kernel_key(kind)
    reg.histogram(
        "repro_kernel_seconds_" + key,
        f"wall seconds per {key} dispatch",
    ).observe(elapsed_s)



@dataclass
class KernelProfile(KernelCounters):
    """Kernel counters extended with measured wall time and bytes moved.

    ``seconds[k]`` accumulates wall-clock time spent inside kernel ``k``;
    ``bytes_moved[k]`` accumulates the sizes of the arrays each call read
    and wrote (a traffic *lower bound* — NumPy temporaries are not
    counted).  Together with the inherited ``site_units`` these yield
    measured per-site times and effective intensities, the quantities the
    analytic cost model (:mod:`repro.perf.costmodel`) otherwise supplies
    from VM constants.
    """

    seconds: dict[KernelKind, float] = field(default_factory=dict)
    bytes_moved: dict[KernelKind, int] = field(default_factory=dict)

    def record_timed(
        self, kind: KernelKind, n_patterns: int, elapsed_s: float, nbytes: int
    ) -> None:
        self.record(kind, n_patterns)
        self.seconds[kind] = self.seconds.get(kind, 0.0) + elapsed_s
        self.bytes_moved[kind] = self.bytes_moved.get(kind, 0) + int(nbytes)

    def reset(self) -> None:
        """Zero the profile (counters, wall times, traffic).

        Profiles are **cumulative**: a backend instance keeps
        accumulating across every run (and every engine) that dispatches
        through it.  Reset between runs for per-run measurements.
        """
        super().reset()
        self.seconds.clear()
        self.bytes_moved.clear()

    def merge(self, other: "KernelCounters") -> None:
        """Accumulate another profile's totals into this one (in place).

        Accepts a plain :class:`KernelCounters` too (seconds/bytes are
        then left untouched).  Callers aggregating across workers must
        dedupe *shared* backend instances by identity first — merging the
        same backend's profile once per worker would multiply every
        dispatch by the worker count (the double-counting bug fixed in
        the parallel-execution PR).
        """
        super().merge(other)
        if isinstance(other, KernelProfile):
            for kind, s in other.seconds.items():
                self.seconds[kind] = self.seconds.get(kind, 0.0) + s
            for kind, b in other.bytes_moved.items():
                self.bytes_moved[kind] = self.bytes_moved.get(kind, 0) + b

    def to_dict(self) -> dict:
        """Picklable plain-dict form (for cross-process profile reports)."""
        return {
            "calls": {k.value: v for k, v in self.calls.items()},
            "site_units": {k.value: v for k, v in self.site_units.items()},
            "reductions": self.reductions,
            "seconds": {k.value: v for k, v in self.seconds.items()},
            "bytes_moved": {k.value: v for k, v in self.bytes_moved.items()},
        }

    @classmethod
    def from_dict(cls, d: dict) -> "KernelProfile":
        p = cls()
        p.calls = {KernelKind(k): int(v) for k, v in d.get("calls", {}).items()}
        p.site_units = {
            KernelKind(k): int(v) for k, v in d.get("site_units", {}).items()
        }
        p.reductions = int(d.get("reductions", 0))
        p.seconds = {KernelKind(k): float(v) for k, v in d.get("seconds", {}).items()}
        p.bytes_moved = {
            KernelKind(k): int(v) for k, v in d.get("bytes_moved", {}).items()
        }
        return p

    # -- aggregation to the merged kernel names ------------------------
    def merged_seconds(self) -> dict[str, float]:
        """Wall seconds aggregated to the merged kernel names.

        Like :meth:`KernelCounters.merged`, seeded with the paper's four
        families only; up-sweep families appear once observed.
        """
        out = {k: 0.0 for k in PAPER_KERNEL_KEYS}
        for kind, s in self.seconds.items():
            key = merged_kernel_key(kind)
            out[key] = out.get(key, 0.0) + s
        return out

    def merged_bytes(self) -> dict[str, int]:
        """Bytes moved aggregated like :meth:`merged_seconds`."""
        out = {k: 0 for k in PAPER_KERNEL_KEYS}
        for kind, b in self.bytes_moved.items():
            key = merged_kernel_key(kind)
            out[key] = out.get(key, 0) + b
        return out

    def seconds_per_site_unit(self) -> dict[str, float]:
        """Measured seconds per (pattern x call) unit, per paper kernel."""
        units = self.merged_site_units()
        return {
            k: (s / units[k] if units[k] else 0.0)
            for k, s in self.merged_seconds().items()
        }

    def bytes_per_site_unit(self) -> dict[str, float]:
        """Measured bytes per (pattern x call) unit, per paper kernel."""
        units = self.merged_site_units()
        return {
            k: (b / units[k] if units[k] else 0.0)
            for k, b in self.merged_bytes().items()
        }


# ----------------------------------------------------------------------
# the backend protocol
# ----------------------------------------------------------------------
@runtime_checkable
class KernelBackend(Protocol):
    """The stable kernel API every PLF implementation provides.

    Signatures mirror the reference kernels in :mod:`repro.core.kernels`;
    ``profile`` accumulates per-kernel measurements across the backend's
    lifetime (a backend instance may be shared by several engines — e.g.
    the per-rank sub-engines of a distributed run — in which case the
    profile aggregates across them).

    Backends may additionally implement the **optional** stacked-wave
    method (deliberately not part of the runtime-checkable protocol, so
    plain per-op backends keep satisfying ``isinstance`` checks)::

        def newview_batch(self, calls) -> list[tuple[ndarray, ndarray]]

    where ``calls`` is a sequence of
    :class:`repro.core.schedule.NewviewCall` — one wave of mutually
    independent ``newview`` ops with prepared operands.  The plan
    executor uses it for whole-wave dispatch when present and falls back
    to a per-op loop otherwise, so implementing it is purely an
    optimisation (see :class:`BlockedBackend` for a real stacked
    implementation).
    """

    name: str
    description: str
    profile: KernelProfile

    def newview_tip_tip(
        self,
        u_inv: np.ndarray,
        lookup1: np.ndarray,
        codes1: np.ndarray,
        lookup2: np.ndarray,
        codes2: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]: ...

    def newview_tip_inner(
        self,
        u_inv: np.ndarray,
        lookup1: np.ndarray,
        codes1: np.ndarray,
        a2: np.ndarray,
        z2: np.ndarray,
        scale2: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]: ...

    def newview_inner_inner(
        self,
        u_inv: np.ndarray,
        a1: np.ndarray,
        a2: np.ndarray,
        z1: np.ndarray,
        z2: np.ndarray,
        scale1: np.ndarray,
        scale2: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]: ...

    def site_log_likelihoods(
        self,
        z_left: np.ndarray,
        z_right: np.ndarray,
        exps: np.ndarray,
        rate_weights: np.ndarray,
        scale_counts: np.ndarray,
    ) -> np.ndarray: ...

    def evaluate_edge(
        self,
        z_left: np.ndarray,
        z_right: np.ndarray,
        exps: np.ndarray,
        rate_weights: np.ndarray,
        pattern_weights: np.ndarray,
        scale_counts: np.ndarray,
    ) -> float: ...

    def derivative_sum(
        self, z_left: np.ndarray, z_right: np.ndarray
    ) -> np.ndarray: ...

    def derivative_core(
        self,
        sumbuf: np.ndarray,
        eigenvalues: np.ndarray,
        rates: np.ndarray,
        rate_weights: np.ndarray,
        t: float,
        pattern_weights: np.ndarray,
    ) -> tuple[float, float, float]: ...

    # -- bidirectional-plan kernels (gradient up-sweep) ----------------
    # Pre-order partials share the newview signatures (the arithmetic is
    # identical; only the counted KernelKind differs), and the fused
    # edge-gradient kernel replaces a derivativeSum + derivativeCore
    # pair.  Engines fall back to the newview / derivative kernels when
    # a third-party backend predates these methods.
    def preorder_tip_tip(
        self,
        u_inv: np.ndarray,
        lookup1: np.ndarray,
        codes1: np.ndarray,
        lookup2: np.ndarray,
        codes2: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]: ...

    def preorder_tip_inner(
        self,
        u_inv: np.ndarray,
        lookup1: np.ndarray,
        codes1: np.ndarray,
        a2: np.ndarray,
        z2: np.ndarray,
        scale2: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]: ...

    def preorder_inner_inner(
        self,
        u_inv: np.ndarray,
        a1: np.ndarray,
        a2: np.ndarray,
        z1: np.ndarray,
        z2: np.ndarray,
        scale1: np.ndarray,
        scale2: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]: ...

    def edge_gradient(
        self,
        z_top: np.ndarray,
        z_bottom: np.ndarray,
        eigenvalues: np.ndarray,
        rates: np.ndarray,
        rate_weights: np.ndarray,
        t: float,
        pattern_weights: np.ndarray,
    ) -> tuple[float, float, float]: ...


class _BackendBase:
    """Shared profiling plumbing for concrete backends."""

    name = "base"
    description = ""

    def __init__(self) -> None:
        self.profile = KernelProfile()

    def _finish(
        self, kind: KernelKind, n_patterns: int, t0: float, *arrays
    ) -> None:
        elapsed = time.perf_counter() - t0
        nbytes = sum(
            a.nbytes for a in arrays if isinstance(a, np.ndarray)
        )
        self.profile.record_timed(kind, n_patterns, elapsed, nbytes)
        if _obs.ENABLED:
            _observe_kernel(kind, self.name, n_patterns, t0, elapsed, nbytes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} name={self.name!r}>"


# ----------------------------------------------------------------------
# reference backend
# ----------------------------------------------------------------------
class ReferenceBackend(_BackendBase):
    """NumPy ground-truth kernels (:mod:`repro.core.kernels`), unchanged."""

    name = "reference"
    description = "NumPy reference kernels, whole-array (ground truth)"

    def newview_tip_tip(self, u_inv, lookup1, codes1, lookup2, codes2):
        t0 = time.perf_counter()
        z, sc = kernels.newview_tip_tip(u_inv, lookup1, codes1, lookup2, codes2)
        self._finish(
            KernelKind.NEWVIEW_TIP_TIP, z.shape[0], t0,
            lookup1, lookup2, codes1, codes2, z, sc,
        )
        return z, sc

    def newview_tip_inner(self, u_inv, lookup1, codes1, a2, z2, scale2):
        t0 = time.perf_counter()
        z, sc = kernels.newview_tip_inner(u_inv, lookup1, codes1, a2, z2, scale2)
        self._finish(
            KernelKind.NEWVIEW_TIP_INNER, z.shape[0], t0,
            lookup1, codes1, a2, z2, scale2, z, sc,
        )
        return z, sc

    def newview_inner_inner(self, u_inv, a1, a2, z1, z2, scale1, scale2):
        t0 = time.perf_counter()
        z, sc = kernels.newview_inner_inner(u_inv, a1, a2, z1, z2, scale1, scale2)
        self._finish(
            KernelKind.NEWVIEW_INNER_INNER, z.shape[0], t0,
            a1, a2, z1, z2, scale1, scale2, z, sc,
        )
        return z, sc

    def site_log_likelihoods(self, z_left, z_right, exps, rate_weights, scale_counts):
        t0 = time.perf_counter()
        out = kernels.site_log_likelihoods(
            z_left, z_right, exps, rate_weights, scale_counts
        )
        self._finish(
            KernelKind.EVALUATE, z_left.shape[0], t0,
            z_left, z_right, exps, scale_counts, out,
        )
        return out

    def evaluate_edge(
        self, z_left, z_right, exps, rate_weights, pattern_weights, scale_counts
    ):
        t0 = time.perf_counter()
        lnl = kernels.evaluate_edge(
            z_left, z_right, exps, rate_weights, pattern_weights, scale_counts
        )
        self._finish(
            KernelKind.EVALUATE, z_left.shape[0], t0,
            z_left, z_right, exps, pattern_weights, scale_counts,
        )
        return lnl

    def derivative_sum(self, z_left, z_right):
        t0 = time.perf_counter()
        out = kernels.derivative_sum(z_left, z_right)
        self._finish(
            KernelKind.DERIVATIVE_SUM, z_left.shape[0], t0, z_left, z_right, out
        )
        return out

    def derivative_core(
        self, sumbuf, eigenvalues, rates, rate_weights, t, pattern_weights
    ):
        t0 = time.perf_counter()
        out = kernels.derivative_core(
            sumbuf, eigenvalues, rates, rate_weights, t, pattern_weights
        )
        self._finish(
            KernelKind.DERIVATIVE_CORE, sumbuf.shape[0], t0, sumbuf, pattern_weights
        )
        return out

    def derivative_site_terms(self, sumbuf, eigenvalues, rates, rate_weights, t):
        """Site phase of ``derivativeCore`` (per-pattern ``l, l', l''``).

        Used by parallel engines: workers compute their slice's terms,
        the master gathers and reduces (:func:`kernels.derivative_reduce`)
        in a fixed order, so results match sequential bit-for-bit.
        """
        t0 = time.perf_counter()
        out = kernels.derivative_site_terms(
            sumbuf, eigenvalues, rates, rate_weights, t
        )
        self._finish(
            KernelKind.DERIVATIVE_CORE, sumbuf.shape[0], t0, sumbuf, *out
        )
        return out

    # -- bidirectional-plan kernels ------------------------------------
    def preorder_tip_tip(self, u_inv, lookup1, codes1, lookup2, codes2):
        t0 = time.perf_counter()
        z, sc = kernels.newview_tip_tip(u_inv, lookup1, codes1, lookup2, codes2)
        self._finish(
            KernelKind.PREORDER_TIP_TIP, z.shape[0], t0,
            lookup1, lookup2, codes1, codes2, z, sc,
        )
        return z, sc

    def preorder_tip_inner(self, u_inv, lookup1, codes1, a2, z2, scale2):
        t0 = time.perf_counter()
        z, sc = kernels.newview_tip_inner(u_inv, lookup1, codes1, a2, z2, scale2)
        self._finish(
            KernelKind.PREORDER_TIP_INNER, z.shape[0], t0,
            lookup1, codes1, a2, z2, scale2, z, sc,
        )
        return z, sc

    def preorder_inner_inner(self, u_inv, a1, a2, z1, z2, scale1, scale2):
        t0 = time.perf_counter()
        z, sc = kernels.newview_inner_inner(u_inv, a1, a2, z1, z2, scale1, scale2)
        self._finish(
            KernelKind.PREORDER_INNER_INNER, z.shape[0], t0,
            a1, a2, z1, z2, scale1, scale2, z, sc,
        )
        return z, sc

    def edge_gradient(
        self, z_top, z_bottom, eigenvalues, rates, rate_weights, t, pattern_weights
    ):
        t0 = time.perf_counter()
        out = kernels.edge_gradient(
            z_top, z_bottom, eigenvalues, rates, rate_weights, t, pattern_weights
        )
        self._finish(
            KernelKind.EDGE_GRADIENT, z_top.shape[0], t0,
            z_top, z_bottom, pattern_weights,
        )
        return out

    def edge_gradient_terms(
        self, z_top, z_bottom, eigenvalues, rates, rate_weights, t
    ):
        """Site phase of the fused gradient kernel (per-pattern terms).

        The parallel mirror of :meth:`edge_gradient`: workers compute
        their slice's terms, the master gathers in pattern order and
        reduces (:func:`kernels.derivative_reduce`) — bit-identical to
        the sequential fused kernel.
        """
        t0 = time.perf_counter()
        out = kernels.edge_gradient_terms(
            z_top, z_bottom, eigenvalues, rates, rate_weights, t
        )
        self._finish(
            KernelKind.EDGE_GRADIENT, z_top.shape[0], t0, z_top, z_bottom, *out
        )
        return out


# ----------------------------------------------------------------------
# blocked backend (Sec. V-B cache blocking)
# ----------------------------------------------------------------------
class BlockedBackend(_BackendBase):
    """Site-chunked kernels over preallocated scratch (Sec. V-B blocking).

    The reference ``newview`` materialises three full-width
    ``(patterns, rates, states)`` float64 temporaries; at 100K DNA+Gamma4
    patterns that is 3 x 12.8 MB streamed through memory four times.
    This backend processes the site dimension in chunks of
    ``block_sites`` patterns, reusing per-chunk scratch buffers that fit
    in L2, and writes results straight into the preallocated output —
    the same transformation the paper applies to the MIC kernels
    (process 8 sites per 512-bit register block, keep working sets
    on-chip).

    Per-site arithmetic is performed in the same order as the reference
    kernels, so CLAs are bit-identical; only cross-site reductions
    (``evaluate``/``derivativeCore`` accumulations) may differ at the
    last few ulps from summation reordering.

    Small inputs (``<= block_sites`` patterns) fall through to the
    whole-array path — blocking only pays once the temporaries outgrow
    the cache.
    """

    name = "blocked"
    description = (
        "site-chunked kernels over preallocated scratch (cache blocking); "
        "stacked tip-tip pair tables for whole-wave dispatch"
    )

    def __init__(self, block_sites: int = 2048, pair_table_max: int = 4096) -> None:
        if block_sites < 1:
            raise ValueError("block_sites must be positive")
        super().__init__()
        self.block_sites = int(block_sites)
        #: Largest ``codes1 x codes2`` pair-table the stacked tip-tip
        #: path will materialise (DNA ambiguity alphabet: 16 x 16 = 256).
        self.pair_table_max = int(pair_table_max)
        self._scratch: dict[tuple, np.ndarray] = {}

    # -- scratch management -------------------------------------------
    def _buf(self, key: str, shape: tuple[int, ...]) -> np.ndarray:
        """A reusable scratch buffer for one (role, shape) slot."""
        full = (key, *shape)
        buf = self._scratch.get(full)
        if buf is None:
            buf = np.empty(shape)
            self._scratch[full] = buf
        return buf

    def _chunks(self, n: int):
        b = self.block_sites
        for start in range(0, n, b):
            yield start, min(start + b, n)

    # -- newview -------------------------------------------------------
    # The chunked arithmetic lives in private ``_*_impl`` helpers so the
    # pre-order partial kernels (identical math, different KernelKind)
    # share code and scratch with the post-order ones.
    def _tip_tip_impl(self, u_inv, lookup1, codes1, lookup2, codes2):
        p = codes1.shape[0]
        c, _, k = lookup1.shape
        if p <= self.block_sites:
            return kernels.newview_tip_tip(
                u_inv, lookup1, codes1, lookup2, codes2
            )
        z = np.empty((p, c, k))
        w1 = self._buf("w1", (self.block_sites, c, k))
        for start, stop in self._chunks(p):
            n = stop - start
            v = w1[:n]
            np.copyto(
                v, lookup1[:, codes1[start:stop], :].transpose(1, 0, 2)
            )
            v *= lookup2[:, codes2[start:stop], :].transpose(1, 0, 2)
            np.einsum("ki,pci->pck", u_inv, v, out=z[start:stop])
        sc = np.zeros(p, dtype=np.int64)
        return z, sc

    def _tip_inner_impl(self, u_inv, lookup1, codes1, a2, z2, scale2):
        p, c, k = z2.shape
        if p <= self.block_sites:
            return kernels.newview_tip_inner(
                u_inv, lookup1, codes1, a2, z2, scale2
            )
        z = np.empty((p, c, k))
        sc = scale2.copy()
        w1 = self._buf("w1", (self.block_sites, c, k))
        w2 = self._buf("w2", (self.block_sites, c, k))
        for start, stop in self._chunks(p):
            n = stop - start
            v1, v2 = w1[:n], w2[:n]
            np.copyto(
                v1, lookup1[:, codes1[start:stop], :].transpose(1, 0, 2)
            )
            np.einsum("cik,pck->pci", a2, z2[start:stop], out=v2)
            v1 *= v2
            np.einsum("ki,pci->pck", u_inv, v1, out=z[start:stop])
        rescale_clv(z, sc)
        return z, sc

    def _inner_inner_impl(self, u_inv, a1, a2, z1, z2, scale1, scale2):
        p, c, k = z1.shape
        if p <= self.block_sites:
            return kernels.newview_inner_inner(
                u_inv, a1, a2, z1, z2, scale1, scale2
            )
        z = np.empty((p, c, k))
        sc = scale1 + scale2
        w1 = self._buf("w1", (self.block_sites, c, k))
        w2 = self._buf("w2", (self.block_sites, c, k))
        for start, stop in self._chunks(p):
            n = stop - start
            v1, v2 = w1[:n], w2[:n]
            np.einsum("cik,pck->pci", a1, z1[start:stop], out=v1)
            np.einsum("cik,pck->pci", a2, z2[start:stop], out=v2)
            v1 *= v2
            np.einsum("ki,pci->pck", u_inv, v1, out=z[start:stop])
        rescale_clv(z, sc)
        return z, sc

    def newview_tip_tip(self, u_inv, lookup1, codes1, lookup2, codes2):
        t0 = time.perf_counter()
        z, sc = self._tip_tip_impl(u_inv, lookup1, codes1, lookup2, codes2)
        self._finish(
            KernelKind.NEWVIEW_TIP_TIP, codes1.shape[0], t0,
            lookup1, lookup2, codes1, codes2, z, sc,
        )
        return z, sc

    def newview_tip_inner(self, u_inv, lookup1, codes1, a2, z2, scale2):
        t0 = time.perf_counter()
        z, sc = self._tip_inner_impl(u_inv, lookup1, codes1, a2, z2, scale2)
        self._finish(
            KernelKind.NEWVIEW_TIP_INNER, z2.shape[0], t0,
            lookup1, codes1, a2, z2, scale2, z, sc,
        )
        return z, sc

    def newview_inner_inner(self, u_inv, a1, a2, z1, z2, scale1, scale2):
        t0 = time.perf_counter()
        z, sc = self._inner_inner_impl(u_inv, a1, a2, z1, z2, scale1, scale2)
        self._finish(
            KernelKind.NEWVIEW_INNER_INNER, z1.shape[0], t0,
            a1, a2, z1, z2, scale1, scale2, z, sc,
        )
        return z, sc

    # -- pre-order partials (gradient up-sweep) ------------------------
    def preorder_tip_tip(self, u_inv, lookup1, codes1, lookup2, codes2):
        t0 = time.perf_counter()
        z, sc = self._tip_tip_impl(u_inv, lookup1, codes1, lookup2, codes2)
        self._finish(
            KernelKind.PREORDER_TIP_TIP, codes1.shape[0], t0,
            lookup1, lookup2, codes1, codes2, z, sc,
        )
        return z, sc

    def preorder_tip_inner(self, u_inv, lookup1, codes1, a2, z2, scale2):
        t0 = time.perf_counter()
        z, sc = self._tip_inner_impl(u_inv, lookup1, codes1, a2, z2, scale2)
        self._finish(
            KernelKind.PREORDER_TIP_INNER, z2.shape[0], t0,
            lookup1, codes1, a2, z2, scale2, z, sc,
        )
        return z, sc

    def preorder_inner_inner(self, u_inv, a1, a2, z1, z2, scale1, scale2):
        t0 = time.perf_counter()
        z, sc = self._inner_inner_impl(u_inv, a1, a2, z1, z2, scale1, scale2)
        self._finish(
            KernelKind.PREORDER_INNER_INNER, z1.shape[0], t0,
            a1, a2, z1, z2, scale1, scale2, z, sc,
        )
        return z, sc

    # -- stacked wave dispatch (optional backend extension) ------------
    def newview_batch(self, calls) -> list[tuple[np.ndarray, np.ndarray]]:
        """Stacked ``newview`` dispatch for one wave of independent ops.

        The real win is the **tip-tip pair table**: within a wave, all
        tip-tip ops sharing the same two tip-lookup operands (the engine
        caches operands per branch *length*, so equal-length cherries
        share them — this is where P-matrix construction amortises)
        reduce to gathers from one precomputed table

            T[m, n, c, k] = sum_i u_inv[k, i] lut1[c, m, i] lut2[c, n, i]

        over the (tiny) code alphabet, turning four memory passes per op
        into a single contiguous gather ``z = T[codes1, codes2]``.  The
        per-site arithmetic (``(l1 * l2)`` then the ``u_inv``
        contraction, summed over ``i`` in ascending order) matches the
        reference kernel's association, so CLAs agree to round-off.

        Tip-inner / inner-inner ops and tables that would not pay
        (``m1 * m2`` beyond :attr:`pair_table_max`, or fewer patterns
        than table entries) fall back to the per-op kernels.  Results
        are returned in call order.
        """
        results: list = [None] * len(calls)
        groups: dict[tuple, list[int]] = {}
        for i, call in enumerate(calls):
            case = call.kind.value.rsplit("_", 2)  # ("newview"|"preorder", x, y)
            if case[-2:] == ["tip", "tip"]:
                u_inv, lut1, codes1, lut2, codes2 = call.args
                m1, m2 = lut1.shape[1], lut2.shape[1]
                if m1 * m2 <= self.pair_table_max and codes1.shape[0] >= m1 * m2:
                    groups.setdefault(
                        (call.kind, id(u_inv), id(lut1), id(lut2)), []
                    ).append(i)
                else:
                    results[i] = (
                        self.newview_tip_tip(*call.args)
                        if call.kind is KernelKind.NEWVIEW_TIP_TIP
                        else self.preorder_tip_tip(*call.args)
                    )
            elif case[-1] == "inner" and case[-2] == "tip":
                results[i] = (
                    self.newview_tip_inner(*call.args)
                    if call.kind is KernelKind.NEWVIEW_TIP_INNER
                    else self.preorder_tip_inner(*call.args)
                )
            else:
                results[i] = (
                    self.newview_inner_inner(*call.args)
                    if call.kind is KernelKind.NEWVIEW_INNER_INNER
                    else self.preorder_inner_inner(*call.args)
                )
        for (kind, *_ids), idxs in groups.items():
            u_inv, lut1, _, lut2, _ = calls[idxs[0]].args
            t_table0 = time.perf_counter()
            # (c, m, n, i): (l1 * l2) exactly as the per-op kernels
            # associate, then the u_inv contraction -> (m, n, c, k).
            prod = lut1[:, :, None, :] * lut2[:, None, :, :]
            table = np.einsum("ki,cmni->mnck", u_inv, prod)
            table_s = time.perf_counter() - t_table0
            for j, i in enumerate(idxs):
                codes1, codes2 = calls[i].args[2], calls[i].args[4]
                t0 = time.perf_counter()
                z = table[codes1, codes2]
                sc = np.zeros(codes1.shape[0], dtype=np.int64)
                elapsed = time.perf_counter() - t0
                if j == 0:  # charge the shared table build to the group head
                    elapsed += table_s
                nbytes = codes1.nbytes + codes2.nbytes + z.nbytes + sc.nbytes
                self.profile.record_timed(
                    kind,
                    codes1.shape[0],
                    elapsed,
                    nbytes,
                )
                if _obs.ENABLED:
                    _observe_kernel(
                        kind,
                        self.name,
                        codes1.shape[0],
                        t_table0 if j == 0 else t0,
                        elapsed,
                        nbytes,
                    )
                results[i] = (z, sc)
        return results

    # -- evaluate ------------------------------------------------------
    def _site_likelihoods(self, z_left, z_right, exps, rate_weights) -> np.ndarray:
        """Chunked ``L_p = sum_c w_c sum_k zl zr exp`` (linear scale)."""
        # Tip root sides broadcast a length-1 rate axis against the
        # inner side's full one — size scratch for the broadcast shape.
        p, c, k = np.broadcast_shapes(
            z_left.shape, z_right.shape, (1, *exps.shape)
        )
        site_l = np.empty(p)
        tmp = self._buf("ev", (min(self.block_sites, p), c, k))
        # ufunc out= is usable when the product already has the full rate
        # axis (at most one side is a broadcast tip view).
        direct = np.broadcast_shapes(z_left.shape, z_right.shape)[1] == c
        for start, stop in self._chunks(p):
            n = stop - start
            v = tmp[:n]
            if direct:
                np.multiply(z_left[start:stop], z_right[start:stop], out=v)
            else:  # two-tip root (2-taxon tree): broadcast on assignment
                v[:] = z_left[start:stop] * z_right[start:stop]
            v *= exps[None, :, :]
            np.einsum("pck,c->p", v, rate_weights, out=site_l[start:stop])
        return site_l

    def site_log_likelihoods(self, z_left, z_right, exps, rate_weights, scale_counts):
        t0 = time.perf_counter()
        p = z_left.shape[0]
        if p <= self.block_sites:
            out = kernels.site_log_likelihoods(
                z_left, z_right, exps, rate_weights, scale_counts
            )
        else:
            site_l = self._site_likelihoods(z_left, z_right, exps, rate_weights)
            if np.any(site_l <= 0.0):
                bad = int(np.argmin(site_l))
                raise FloatingPointError(
                    f"non-positive site likelihood {site_l[bad]:g} at pattern "
                    f"{bad}; tree or model is numerically degenerate"
                )
            out = np.log(site_l)
            out -= scale_counts * LOG_SCALE_STEP
        self._finish(
            KernelKind.EVALUATE, p, t0, z_left, z_right, exps, scale_counts, out
        )
        return out

    def evaluate_edge(
        self, z_left, z_right, exps, rate_weights, pattern_weights, scale_counts
    ):
        t0 = time.perf_counter()
        p = z_left.shape[0]
        if p <= self.block_sites:
            lnl = kernels.evaluate_edge(
                z_left, z_right, exps, rate_weights, pattern_weights, scale_counts
            )
        else:
            site_l = self._site_likelihoods(z_left, z_right, exps, rate_weights)
            if np.any(site_l <= 0.0):
                bad = int(np.argmin(site_l))
                raise FloatingPointError(
                    f"non-positive site likelihood {site_l[bad]:g} at pattern "
                    f"{bad}; tree or model is numerically degenerate"
                )
            lnls = np.log(site_l)
            lnls -= scale_counts * LOG_SCALE_STEP
            lnl = float(np.dot(lnls, pattern_weights))
        self._finish(
            KernelKind.EVALUATE, p, t0,
            z_left, z_right, exps, pattern_weights, scale_counts,
        )
        return lnl

    # -- derivatives ---------------------------------------------------
    def derivative_sum(self, z_left, z_right):
        t0 = time.perf_counter()
        out = np.empty(np.broadcast_shapes(z_left.shape, z_right.shape))
        np.multiply(z_left, z_right, out=out)
        self._finish(
            KernelKind.DERIVATIVE_SUM, out.shape[0], t0, z_left, z_right, out
        )
        return out

    def _site_terms(self, sumbuf, eigenvalues, rates, rate_weights, t):
        """Chunked per-pattern ``(l, l', l'')`` (same association as reference)."""
        p = sumbuf.shape[0]
        if p <= self.block_sites:
            return kernels.derivative_site_terms(
                sumbuf, eigenvalues, rates, rate_weights, t
            )
        g = np.multiply.outer(
            np.asarray(rates, dtype=np.float64), eigenvalues
        )  # (c, k)
        e = np.exp(g * t)
        wc = rate_weights[:, None]
        m0 = wc * e
        m1 = m0 * g
        m2 = m1 * g
        l0 = np.empty(p)
        l1 = np.empty(p)
        l2 = np.empty(p)
        for start, stop in self._chunks(p):
            chunk = sumbuf[start:stop]
            np.einsum("pck,ck->p", chunk, m0, out=l0[start:stop])
            np.einsum("pck,ck->p", chunk, m1, out=l1[start:stop])
            np.einsum("pck,ck->p", chunk, m2, out=l2[start:stop])
        return l0, l1, l2

    def derivative_site_terms(self, sumbuf, eigenvalues, rates, rate_weights, t):
        """Site phase of ``derivativeCore`` (see the reference backend)."""
        t0 = time.perf_counter()
        out = self._site_terms(sumbuf, eigenvalues, rates, rate_weights, t)
        self._finish(
            KernelKind.DERIVATIVE_CORE, sumbuf.shape[0], t0, sumbuf, *out
        )
        return out

    def derivative_core(
        self, sumbuf, eigenvalues, rates, rate_weights, t, pattern_weights
    ):
        t0 = time.perf_counter()
        p = sumbuf.shape[0]
        l0, l1, l2 = self._site_terms(sumbuf, eigenvalues, rates, rate_weights, t)
        out = kernels.derivative_reduce(l0, l1, l2, pattern_weights)
        self._finish(
            KernelKind.DERIVATIVE_CORE, p, t0, sumbuf, pattern_weights
        )
        return out

    # -- fused edge gradient (up-sweep) --------------------------------
    def _gradient_site_terms(
        self, z_top, z_bottom, eigenvalues, rates, rate_weights, t
    ):
        """Chunked fused ``(z_top * z_bottom)`` product + site terms.

        The element-wise CLA product never materialises at full width:
        each chunk's product lands in scratch and is contracted against
        the same ``m0/m1/m2`` factor matrices the reference kernel uses,
        so per-site values are bit-identical to
        :func:`kernels.edge_gradient_terms`.
        """
        p = np.broadcast_shapes(z_top.shape, z_bottom.shape)[0]
        if p <= self.block_sites:
            return kernels.edge_gradient_terms(
                z_top, z_bottom, eigenvalues, rates, rate_weights, t
            )
        _, c, k = np.broadcast_shapes(z_top.shape, z_bottom.shape)
        g = np.multiply.outer(
            np.asarray(rates, dtype=np.float64), eigenvalues
        )  # (c, k)
        e = np.exp(g * t)
        wc = rate_weights[:, None]
        m0 = wc * e
        m1 = m0 * g
        m2 = m1 * g
        l0 = np.empty(p)
        l1 = np.empty(p)
        l2 = np.empty(p)
        tmp = self._buf("eg", (min(self.block_sites, p), c, k))
        direct = np.broadcast_shapes(z_top.shape, z_bottom.shape) == z_top.shape == z_bottom.shape
        for start, stop in self._chunks(p):
            n = stop - start
            v = tmp[:n]
            if direct:
                np.multiply(z_top[start:stop], z_bottom[start:stop], out=v)
            else:  # a tip side broadcasts its length-1 rate axis
                v[:] = z_top[start:stop] * z_bottom[start:stop]
            np.einsum("pck,ck->p", v, m0, out=l0[start:stop])
            np.einsum("pck,ck->p", v, m1, out=l1[start:stop])
            np.einsum("pck,ck->p", v, m2, out=l2[start:stop])
        return l0, l1, l2

    def edge_gradient(
        self, z_top, z_bottom, eigenvalues, rates, rate_weights, t, pattern_weights
    ):
        t0 = time.perf_counter()
        l0, l1, l2 = self._gradient_site_terms(
            z_top, z_bottom, eigenvalues, rates, rate_weights, t
        )
        out = kernels.derivative_reduce(l0, l1, l2, pattern_weights)
        self._finish(
            KernelKind.EDGE_GRADIENT, l0.shape[0], t0,
            z_top, z_bottom, pattern_weights,
        )
        return out

    def edge_gradient_terms(
        self, z_top, z_bottom, eigenvalues, rates, rate_weights, t
    ):
        t0 = time.perf_counter()
        out = self._gradient_site_terms(
            z_top, z_bottom, eigenvalues, rates, rate_weights, t
        )
        self._finish(
            KernelKind.EDGE_GRADIENT, out[0].shape[0], t0, z_top, z_bottom, *out
        )
        return out


# ----------------------------------------------------------------------
# shadow backend (cross-implementation oracle)
# ----------------------------------------------------------------------
class BackendMismatchError(AssertionError):
    """Two shadowed backends disagreed on a kernel result."""


class ShadowBackend(_BackendBase):
    """Run two backends per dispatch; assert they agree; return primary's.

    Turns any workload — the tier-1 test suite, a full tree search, an
    EPA placement run — into a cross-backend differential test: every
    CLA, scale-counter vector, log-likelihood and derivative triple is
    compared between ``primary`` and ``reference`` with ``allclose``
    tolerances, and a :class:`BackendMismatchError` names the first
    kernel that diverges.

    The shadow's own :class:`KernelProfile` times the *combined*
    dispatch; the wrapped backends keep their individual profiles (so
    ``shadow.primary.profile`` still measures the primary alone).
    """

    name = "shadow"
    description = "runs blocked + reference per dispatch, asserts parity"

    def __init__(
        self,
        primary: KernelBackend | None = None,
        reference: KernelBackend | None = None,
        rtol: float = 1e-9,
        atol: float = 1e-12,
    ) -> None:
        super().__init__()
        self.primary = primary if primary is not None else BlockedBackend()
        self.reference = (
            reference if reference is not None else ReferenceBackend()
        )
        self.rtol = rtol
        self.atol = atol
        self.checks = 0  # dispatches verified so far

    # -- comparison helpers -------------------------------------------
    def _fail(self, kernel: str, detail: str) -> None:
        raise BackendMismatchError(
            f"backend {self.primary.name!r} disagrees with "
            f"{self.reference.name!r} on {kernel}: {detail}"
        )

    def _check_arrays(self, kernel: str, a: np.ndarray, b: np.ndarray, what: str) -> None:
        if a.shape != b.shape:
            self._fail(kernel, f"{what} shape {a.shape} vs {b.shape}")
        if not np.allclose(a, b, rtol=self.rtol, atol=self.atol):
            dev = float(np.max(np.abs(a - b)))
            self._fail(kernel, f"{what} max |delta| = {dev:g}")

    def _check_scalars(self, kernel: str, a, b, what: str) -> None:
        for i, (x, y) in enumerate(zip(np.atleast_1d(a), np.atleast_1d(b))):
            if not np.isclose(x, y, rtol=self.rtol, atol=self.atol):
                self._fail(
                    kernel, f"{what}[{i}] = {x!r} vs {y!r}"
                )

    def _check_newview(self, kernel, zp, scp, zr, scr):
        self._check_arrays(kernel, zp, zr, "CLA")
        if not np.array_equal(scp, scr):
            self._fail(kernel, "scale counters differ")
        self.checks += 1

    # -- dispatch ------------------------------------------------------
    def newview_tip_tip(self, u_inv, lookup1, codes1, lookup2, codes2):
        t0 = time.perf_counter()
        zp, scp = self.primary.newview_tip_tip(
            u_inv, lookup1, codes1, lookup2, codes2
        )
        zr, scr = self.reference.newview_tip_tip(
            u_inv, lookup1, codes1, lookup2, codes2
        )
        self._check_newview("newview_tip_tip", zp, scp, zr, scr)
        self._finish(KernelKind.NEWVIEW_TIP_TIP, zp.shape[0], t0, zp, scp)
        return zp, scp

    def newview_tip_inner(self, u_inv, lookup1, codes1, a2, z2, scale2):
        t0 = time.perf_counter()
        zp, scp = self.primary.newview_tip_inner(
            u_inv, lookup1, codes1, a2, z2, scale2
        )
        zr, scr = self.reference.newview_tip_inner(
            u_inv, lookup1, codes1, a2, z2, scale2
        )
        self._check_newview("newview_tip_inner", zp, scp, zr, scr)
        self._finish(KernelKind.NEWVIEW_TIP_INNER, zp.shape[0], t0, zp, scp)
        return zp, scp

    def newview_inner_inner(self, u_inv, a1, a2, z1, z2, scale1, scale2):
        t0 = time.perf_counter()
        zp, scp = self.primary.newview_inner_inner(
            u_inv, a1, a2, z1, z2, scale1, scale2
        )
        zr, scr = self.reference.newview_inner_inner(
            u_inv, a1, a2, z1, z2, scale1, scale2
        )
        self._check_newview("newview_inner_inner", zp, scp, zr, scr)
        self._finish(KernelKind.NEWVIEW_INNER_INNER, zp.shape[0], t0, zp, scp)
        return zp, scp

    def site_log_likelihoods(self, z_left, z_right, exps, rate_weights, scale_counts):
        t0 = time.perf_counter()
        lp = self.primary.site_log_likelihoods(
            z_left, z_right, exps, rate_weights, scale_counts
        )
        lr = self.reference.site_log_likelihoods(
            z_left, z_right, exps, rate_weights, scale_counts
        )
        self._check_arrays("site_log_likelihoods", lp, lr, "site lnL")
        self.checks += 1
        self._finish(KernelKind.EVALUATE, lp.shape[0], t0, lp)
        return lp

    def evaluate_edge(
        self, z_left, z_right, exps, rate_weights, pattern_weights, scale_counts
    ):
        t0 = time.perf_counter()
        lp = self.primary.evaluate_edge(
            z_left, z_right, exps, rate_weights, pattern_weights, scale_counts
        )
        lr = self.reference.evaluate_edge(
            z_left, z_right, exps, rate_weights, pattern_weights, scale_counts
        )
        self._check_scalars("evaluate_edge", lp, lr, "lnL")
        self.checks += 1
        self._finish(KernelKind.EVALUATE, z_left.shape[0], t0)
        return lp

    def derivative_sum(self, z_left, z_right):
        t0 = time.perf_counter()
        sp = self.primary.derivative_sum(z_left, z_right)
        sr = self.reference.derivative_sum(z_left, z_right)
        self._check_arrays("derivative_sum", sp, sr, "sum buffer")
        self.checks += 1
        self._finish(KernelKind.DERIVATIVE_SUM, sp.shape[0], t0, sp)
        return sp

    def derivative_core(
        self, sumbuf, eigenvalues, rates, rate_weights, t, pattern_weights
    ):
        t0 = time.perf_counter()
        dp = self.primary.derivative_core(
            sumbuf, eigenvalues, rates, rate_weights, t, pattern_weights
        )
        dr = self.reference.derivative_core(
            sumbuf, eigenvalues, rates, rate_weights, t, pattern_weights
        )
        self._check_scalars("derivative_core", dp, dr, "derivatives")
        self.checks += 1
        self._finish(KernelKind.DERIVATIVE_CORE, sumbuf.shape[0], t0)
        return dp

    def derivative_site_terms(self, sumbuf, eigenvalues, rates, rate_weights, t):
        t0 = time.perf_counter()
        tp = self.primary.derivative_site_terms(
            sumbuf, eigenvalues, rates, rate_weights, t
        )
        tr = self.reference.derivative_site_terms(
            sumbuf, eigenvalues, rates, rate_weights, t
        )
        for name, ap, ar in zip(("l0", "l1", "l2"), tp, tr):
            self._check_arrays("derivative_site_terms", ap, ar, name)
        self.checks += 1
        self._finish(KernelKind.DERIVATIVE_CORE, sumbuf.shape[0], t0)
        return tp

    # -- bidirectional-plan kernels ------------------------------------
    def preorder_tip_tip(self, u_inv, lookup1, codes1, lookup2, codes2):
        t0 = time.perf_counter()
        zp, scp = self.primary.preorder_tip_tip(
            u_inv, lookup1, codes1, lookup2, codes2
        )
        zr, scr = self.reference.preorder_tip_tip(
            u_inv, lookup1, codes1, lookup2, codes2
        )
        self._check_newview("preorder_tip_tip", zp, scp, zr, scr)
        self._finish(KernelKind.PREORDER_TIP_TIP, zp.shape[0], t0, zp, scp)
        return zp, scp

    def preorder_tip_inner(self, u_inv, lookup1, codes1, a2, z2, scale2):
        t0 = time.perf_counter()
        zp, scp = self.primary.preorder_tip_inner(
            u_inv, lookup1, codes1, a2, z2, scale2
        )
        zr, scr = self.reference.preorder_tip_inner(
            u_inv, lookup1, codes1, a2, z2, scale2
        )
        self._check_newview("preorder_tip_inner", zp, scp, zr, scr)
        self._finish(KernelKind.PREORDER_TIP_INNER, zp.shape[0], t0, zp, scp)
        return zp, scp

    def preorder_inner_inner(self, u_inv, a1, a2, z1, z2, scale1, scale2):
        t0 = time.perf_counter()
        zp, scp = self.primary.preorder_inner_inner(
            u_inv, a1, a2, z1, z2, scale1, scale2
        )
        zr, scr = self.reference.preorder_inner_inner(
            u_inv, a1, a2, z1, z2, scale1, scale2
        )
        self._check_newview("preorder_inner_inner", zp, scp, zr, scr)
        self._finish(KernelKind.PREORDER_INNER_INNER, zp.shape[0], t0, zp, scp)
        return zp, scp

    def edge_gradient(
        self, z_top, z_bottom, eigenvalues, rates, rate_weights, t, pattern_weights
    ):
        t0 = time.perf_counter()
        dp = self.primary.edge_gradient(
            z_top, z_bottom, eigenvalues, rates, rate_weights, t, pattern_weights
        )
        dr = self.reference.edge_gradient(
            z_top, z_bottom, eigenvalues, rates, rate_weights, t, pattern_weights
        )
        self._check_scalars("edge_gradient", dp, dr, "derivatives")
        self.checks += 1
        self._finish(KernelKind.EDGE_GRADIENT, z_top.shape[0], t0)
        return dp

    def edge_gradient_terms(
        self, z_top, z_bottom, eigenvalues, rates, rate_weights, t
    ):
        t0 = time.perf_counter()
        tp = self.primary.edge_gradient_terms(
            z_top, z_bottom, eigenvalues, rates, rate_weights, t
        )
        tr = self.reference.edge_gradient_terms(
            z_top, z_bottom, eigenvalues, rates, rate_weights, t
        )
        for name, ap, ar in zip(("l0", "l1", "l2"), tp, tr):
            self._check_arrays("edge_gradient_terms", ap, ar, name)
        self.checks += 1
        self._finish(KernelKind.EDGE_GRADIENT, tp[0].shape[0], t0)
        return tp


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BackendInfo:
    """Registry entry: construction recipe plus a one-line description."""

    name: str
    factory: Callable[[], KernelBackend]
    description: str


_REGISTRY: dict[str, BackendInfo] = {}


def register_backend(
    name: str, factory: Callable[[], KernelBackend], description: str = ""
) -> None:
    """Register (or replace) a backend under ``name``.

    ``factory`` is called afresh for every :func:`get_backend` resolution
    so each engine stack gets its own profile/scratch state.
    """
    _REGISTRY[name] = BackendInfo(
        name=name, factory=factory, description=description
    )


def available_backends() -> list[BackendInfo]:
    """Registered backends in registration order."""
    return list(_REGISTRY.values())


def get_backend(spec: "str | KernelBackend | None" = None) -> KernelBackend:
    """Resolve a backend spec to a live instance.

    ``None`` reads :data:`DEFAULT_BACKEND_ENV` (default ``reference``);
    a string is looked up in the registry (fresh instance per call); an
    already-constructed backend passes through unchanged — which is how
    multi-engine drivers (partitioned, fork-join, distributed) share one
    instance and hence one aggregated profile.
    """
    if spec is None:
        spec = os.environ.get(DEFAULT_BACKEND_ENV, "reference")
    if isinstance(spec, str):
        info = _REGISTRY.get(spec)
        if info is None:
            names = ", ".join(sorted(_REGISTRY))
            raise KeyError(f"unknown backend {spec!r} (registered: {names})")
        return info.factory()
    return spec


def resolve_backend_name(backend: "KernelBackend") -> str | None:
    """Map a backend *instance* back to its registry name, if registered.

    Worker pools and process-based engines ship backend *names* across
    the fork boundary (each worker builds its own instance), so call
    sites that accept instances use this to translate before spawning.
    Only exact-type matches against registrations whose factory *is* the
    class count; subclasses and ad-hoc instances return ``None``.
    """
    for name, info in _REGISTRY.items():
        if isinstance(info.factory, type) and type(backend) is info.factory:
            return name
    return None


register_backend(
    "reference", ReferenceBackend, ReferenceBackend.description
)
register_backend("blocked", BlockedBackend, BlockedBackend.description)
register_backend("shadow", ShadowBackend, ShadowBackend.description)

# Imported after the base classes exist (ckernels.backend subclasses
# _BackendBase); registering the class itself keeps resolve_backend_name
# working across the worker-pool fork boundary.
from .ckernels.backend import CompiledBackend  # noqa: E402

register_backend("compiled", CompiledBackend, CompiledBackend.description)


# ----------------------------------------------------------------------
# engine factory
# ----------------------------------------------------------------------
def make_engine(
    patterns: "PatternAlignment",
    tree: "Tree",
    model: "SubstitutionModel",
    rates: "GammaRates | None" = None,
    *,
    backend: "str | KernelBackend | None" = None,
    max_resident: int | None = None,
    cat: "CatRates | None" = None,
    p_inv: float | None = None,
    workers: int = 1,
    execution: str = "simulated",
    auto: bool = False,
) -> "LikelihoodEngine":
    """Single construction point for every engine flavour.

    Composes the orthogonal options in one place — the kernel backend,
    CLA memory saving (``max_resident``), CAT per-site rates (``cat``),
    the invariant-sites mixture (``p_inv``) and real parallel execution
    (``workers`` / ``execution``) — so call sites never hand-assemble
    engine subclasses.

    ``workers > 1`` returns a
    :class:`~repro.parallel.forkjoin.ForkJoinEngine` running ``workers``
    site slices on the given ``execution`` substrate (``simulated``,
    ``threads`` or ``processes``); results stay bit-identical to the
    serial engine.  The parallel engines own OS resources — call
    ``close()`` (or use them as context managers) when done.

    ``auto=True`` (equivalently ``backend="auto"``) asks the autotuner
    (:mod:`repro.perf.autotune`) for the backend / execution / workers /
    block-size combination its cost model predicts fastest for this
    workload shape; the decision is cached per machine, so only the
    first call for a given shape pays the probe cost.  Explicitly
    passing ``workers > 1`` alongside ``auto`` keeps your worker count
    and tunes only the backend.

    Mutually exclusive combinations raise ``ValueError`` rather than
    silently picking one behaviour.
    """
    from .cat import CatLikelihoodEngine
    from .engine import LikelihoodEngine
    from .invariant import InvariantSitesEngine
    from .memsave import MemorySavingEngine

    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if isinstance(backend, str) and backend == "auto":
        backend, auto = None, True
    if auto:
        if backend is not None:
            raise ValueError("auto=True picks the backend; pass backend=None")
        # Lazy import: repro.perf imports repro.core, not vice versa.
        from ..perf.autotune import WorkloadSignature, autotune, build_backend

        if cat is not None:
            n_rates = int(np.asarray(cat.category_rates).shape[0])
        elif rates is not None:
            n_rates = int(rates.n_categories)
        else:
            n_rates = 4  # engine default (Gamma, four categories)
        signature = WorkloadSignature.from_workload(
            patterns.n_patterns, model.n_states, n_rates
        )
        chosen = autotune(signature).chosen
        if workers == 1 and chosen.workers > 1:
            workers, execution = chosen.workers, chosen.execution
        if workers > 1 and execution != "simulated":
            # Per-worker instances are built from a registry *name*;
            # a tuned block size cannot cross the fork boundary.
            backend = chosen.backend
        else:
            backend = build_backend(chosen)
    if workers > 1:
        if max_resident is not None or p_inv is not None:
            raise ValueError(
                "workers > 1 cannot be combined with max_resident or p_inv"
            )
        # Lazy import: repro.parallel imports repro.core, not vice versa.
        from ..parallel.forkjoin import ForkJoinEngine

        if cat is not None and rates is not None:
            raise ValueError("cat replaces Gamma rates; pass rates=None")
        # Thread/process substrates build per-worker instances from a
        # *name*; translate registered instances here so callers get a
        # boundary error instead of a failure deep inside the pool.
        if backend is not None and not isinstance(backend, str):
            if execution != "simulated":
                name = resolve_backend_name(backend)
                if name is None:
                    raise ValueError(
                        f"execution={execution!r} with workers={workers} "
                        "requires a backend *name* (each worker builds its "
                        "own instance); got an unregistered "
                        f"{type(backend).__name__} instance — pass one of: "
                        + ", ".join(sorted(_REGISTRY))
                    )
                backend = name
        return ForkJoinEngine(
            patterns,
            tree,
            model,
            rates,
            n_threads=workers,
            backend=backend,
            execution=execution,
            cat=cat,
        )

    resolved = get_backend(backend)
    if cat is not None:
        if max_resident is not None or p_inv is not None:
            raise ValueError(
                "cat cannot be combined with max_resident or p_inv"
            )
        if rates is not None:
            raise ValueError("cat replaces Gamma rates; pass rates=None")
        return CatLikelihoodEngine(patterns, tree, model, cat, backend=resolved)
    if p_inv is not None:
        if max_resident is not None:
            raise ValueError("p_inv cannot be combined with max_resident")
        return InvariantSitesEngine(
            patterns, tree, model, rates, p_inv=p_inv, backend=resolved
        )
    if max_resident is not None:
        return MemorySavingEngine(
            patterns, tree, model, rates,
            max_resident=max_resident, backend=resolved,
        )
    return LikelihoodEngine(patterns, tree, model, rates, backend=resolved)
