"""Memory-saving likelihood engine: CLA recomputation under a budget.

The paper's Sec. V-A lists "advanced memory saving techniques, which
rely on CLA recomputations [23]" (Izquierdo-Carrasco, Gagneur,
Stamatakis 2012) among the features its MIC port does *not* yet support
— a gap that matters on the Phi, whose 8 GB of on-card RAM is the
binding constraint for the 4000K-site dataset (Sec. VI-B2).  This module
supplies that extension: :class:`MemorySavingEngine` keeps at most
``max_resident`` conditional likelihood arrays alive and transparently
*recomputes* evicted ones when a traversal needs them again — trading
additional ``newview`` work for memory, exactly the paper-[23] tradeoff.

The implementation leans on the base engine's structural validity
tracking: an evicted CLA simply looks stale to the traversal planner, so
the recomputation logic is the ordinary planner and no separate
dependency bookkeeping is needed.  Eviction is least-recently-used,
which keeps the CLAs around the active virtual root resident (RAxML's
vector-pinning heuristic approximates the same behaviour).

Theoretical floor: a post-order recomputation only ever needs one CLA
per tree level, so ``max_resident >= ceil(log2(n_taxa)) + 2`` always
makes progress; we enforce a conservative minimum of 3.
"""

from __future__ import annotations

from itertools import count

import numpy as np

from ..obs import metrics as _obs_metrics
from ..obs import spans as _obs
from ..phylo.alignment import PatternAlignment
from ..phylo.models import SubstitutionModel
from ..phylo.rates import GammaRates
from ..phylo.tree import Tree
from .backends import KernelBackend
from .engine import LikelihoodEngine
from .traversal import EdgeGradientOp, NewviewOp, PreorderOp

__all__ = ["MemorySavingEngine"]


def _note_recompute(node: int) -> None:
    """Trace one eviction-caused CLA recomputation (obs must be enabled)."""
    _obs.instant("cla_recompute", node=node)
    _obs_metrics.get_registry().counter(
        "repro_cla_recomputes_total",
        "extra newview dispatches caused by CLA eviction",
    ).inc()


class MemorySavingEngine(LikelihoodEngine):
    """Likelihood engine with a hard cap on resident CLAs.

    Parameters
    ----------
    max_resident:
        Maximum number of internal-node CLAs kept in memory (>= 3).
        With ``n`` taxa the full engine holds ``n - 2``; the memory
        fraction used is roughly ``max_resident / (n - 2)``.
    """

    def __init__(
        self,
        patterns: PatternAlignment,
        tree: Tree,
        model: SubstitutionModel,
        rates: GammaRates | None = None,
        max_resident: int = 8,
        backend: str | KernelBackend | None = None,
    ) -> None:
        if max_resident < 3:
            raise ValueError("max_resident must be at least 3")
        self.max_resident = max_resident
        self._clock = count()
        self._last_used: dict[int, int] = {}
        # Counted pins: the same node can be pinned by nested scopes
        # (e.g. as a root endpoint *and* as an operand), so membership
        # alone would let an inner unpin clobber an outer pin.
        self._pin_counts: dict[int, int] = {}
        self.recomputed_clas = 0  # extra newview work caused by eviction
        self._computed_once: set[int] = set()
        # Pre-order partials share the CLA budget: their own LRU stamps,
        # pins, and op descriptors (for eviction-driven recomputation).
        self._pre_last_used: dict[int, int] = {}
        self._pre_pin_counts: dict[int, int] = {}
        self._pre_ops: dict[int, PreorderOp] = {}
        self.recomputed_pre = 0  # extra pre-order work caused by eviction
        super().__init__(patterns, tree, model, rates, backend=backend)

    # ------------------------------------------------------------------
    def _touch(self, node: int) -> None:
        self._last_used[node] = next(self._clock)

    def _pin(self, node: int) -> None:
        self._pin_counts[node] = self._pin_counts.get(node, 0) + 1

    def _unpin(self, node: int) -> None:
        remaining = self._pin_counts.get(node, 0) - 1
        if remaining <= 0:
            self._pin_counts.pop(node, None)
        else:
            self._pin_counts[node] = remaining

    def _touch_pre(self, edge: int) -> None:
        self._pre_last_used[edge] = next(self._clock)

    def _pin_pre(self, edge: int) -> None:
        self._pre_pin_counts[edge] = self._pre_pin_counts.get(edge, 0) + 1

    def _unpin_pre(self, edge: int) -> None:
        remaining = self._pre_pin_counts.get(edge, 0) - 1
        if remaining <= 0:
            self._pre_pin_counts.pop(edge, None)
        else:
            self._pre_pin_counts[edge] = remaining

    def _store_op(self, op: NewviewOp, z: np.ndarray, sc: np.ndarray) -> None:
        super()._store_op(op, z, sc)
        self._touch(op.node)
        self._computed_once.add(op.node)

    def _store_preorder_op(self, op, z: np.ndarray, sc: np.ndarray) -> None:
        super()._store_preorder_op(op, z, sc)
        self._touch_pre(op.edge)

    def _run_newview_ops(
        self, ops: tuple[NewviewOp, ...], *, batch: bool = True
    ) -> None:
        """Wave execution with CLA slot recycling.

        A wave may be wider than the CLA budget, so it is processed in
        sub-batches of at most ``max_resident // 3`` ops (each op can
        pin up to three slots: its two operands and its result).  Before
        a sub-batch dispatches, any operand evicted since its producing
        wave is transparently rematerialised; the operands and fresh
        results stay pinned until the sub-batch commits, then the LRU
        sweep reclaims slots for the next one.
        """
        limit = max(1, self.max_resident // 3)
        for start in range(0, len(ops), limit):
            chunk = ops[start:start + limit]
            pinned: list[int] = []
            try:
                for op in chunk:
                    for child, edge in (
                        (op.child1, op.edge1), (op.child2, op.edge2)
                    ):
                        if not self.tree.is_leaf(child):
                            self._materialize(child, edge)
                            self._pin(child)
                            pinned.append(child)
                    self._pin(op.node)
                    pinned.append(op.node)
                    # Extra newview work caused by eviction: the node was
                    # computed before but its CLA slot has been recycled.
                    if op.node in self._computed_once and op.node not in self._clas:
                        self.recomputed_clas += 1
                        if _obs.ENABLED:
                            _note_recompute(op.node)
                super()._run_newview_ops(tuple(chunk), batch=batch)
            finally:
                for node in pinned:
                    self._unpin(node)
            self._evict()

    def _run_preorder_ops(self, ops: tuple[PreorderOp, ...], *, batch: bool = True) -> None:
        """Up-sweep partials under the CLA budget.

        Partials join the post-order CLAs in one shared eviction pool:
        each sub-batch pins its operands (the parent's partial, the
        across/sibling down CLAs — rematerialised if recycled) and its
        fresh results, then releases them to the LRU sweep.
        """
        limit = max(1, self.max_resident // 3)
        for start in range(0, len(ops), limit):
            chunk = ops[start:start + limit]
            pinned: list[int] = []
            pinned_pre: list[int] = []
            try:
                for op in chunk:
                    self._pre_ops[op.edge] = op
                    if op.across_is_partial:
                        self._materialize_pre(op.up_edge)
                        self._pin_pre(op.up_edge)
                        pinned_pre.append(op.up_edge)
                    elif not self.tree.is_leaf(op.across):
                        self._materialize(op.across, op.up_edge)
                        self._pin(op.across)
                        pinned.append(op.across)
                    if not self.tree.is_leaf(op.sibling):
                        self._materialize(op.sibling, op.sibling_edge)
                        self._pin(op.sibling)
                        pinned.append(op.sibling)
                    self._pin_pre(op.edge)
                    pinned_pre.append(op.edge)
                super()._run_preorder_ops(tuple(chunk), batch=batch)
            finally:
                for node in pinned:
                    self._unpin(node)
                for edge in pinned_pre:
                    self._unpin_pre(edge)
            self._evict()

    def _materialize_pre(self, edge: int) -> None:
        """Rematerialise one (possibly evicted) pre-order partial.

        Recursive toward the virtual root, mirroring :meth:`_materialize`
        for post-order CLAs; each recomputation is a single per-op
        dispatch with its operands pinned.
        """
        if edge in self._pre:
            self._touch_pre(edge)
            return
        op = self._pre_ops[edge]
        self.recomputed_pre += 1
        if _obs.ENABLED:
            _obs.instant("pre_recompute", edge=edge)
            _obs_metrics.get_registry().counter(
                "repro_pre_recomputes_total",
                "extra pre-order dispatches caused by eviction",
            ).inc()
        self._pin_pre(edge)
        pinned: list[int] = []
        pinned_pre: list[int] = []
        try:
            if op.across_is_partial:
                self._materialize_pre(op.up_edge)
                self._pin_pre(op.up_edge)
                pinned_pre.append(op.up_edge)
            elif not self.tree.is_leaf(op.across):
                self._materialize(op.across, op.up_edge)
                self._pin(op.across)
                pinned.append(op.across)
            if not self.tree.is_leaf(op.sibling):
                self._materialize(op.sibling, op.sibling_edge)
                self._pin(op.sibling)
                pinned.append(op.sibling)
            LikelihoodEngine._run_preorder_ops(self, (op,), batch=False)
            self._evict()
        finally:
            for node in pinned:
                self._unpin(node)
            for e in pinned_pre:
                self._unpin_pre(e)
            self._unpin_pre(edge)

    def _run_gradient_ops(self, ops: tuple[EdgeGradientOp, ...]) -> None:
        """Per-edge gradients with operand rematerialisation + pinning."""
        for op in ops:
            pinned: list[int] = []
            pinned_pre: list[int] = []
            try:
                if op.top_is_partial:
                    self._materialize_pre(op.edge)
                    self._pin_pre(op.edge)
                    pinned_pre.append(op.edge)
                elif not self.tree.is_leaf(op.top):
                    self._materialize(op.top, op.edge)
                    self._pin(op.top)
                    pinned.append(op.top)
                if not self.tree.is_leaf(op.bottom):
                    self._materialize(op.bottom, op.edge)
                    self._pin(op.bottom)
                    pinned.append(op.bottom)
                super()._run_gradient_ops((op,))
            finally:
                for node in pinned:
                    self._unpin(node)
                for edge in pinned_pre:
                    self._unpin_pre(edge)
        self._evict()

    def ensure_valid(self, root_edge: int) -> None:
        """Execute the plan, pinning the two root CLAs against each other.

        Without the pin, later waves (or the second root side) could
        evict the first root CLA under a tight budget, leaving
        ``_root_sides`` nothing to read.
        """
        plan = self.plan_execution(root_edge)  # refreshes signature table
        edge = self.tree.edge(root_edge)
        pins = [n for n in (edge.u, edge.v) if not self.tree.is_leaf(n)]
        for node in pins:
            self._pin(node)
        try:
            self.execute_plan(plan)
            # A root side that was valid at plan time may have been
            # recycled earlier; rematerialise on demand.
            for node in pins:
                self._materialize(node, root_edge)
        finally:
            for node in pins:
                self._unpin(node)
        self._evict()
        # drop CLAs of nodes removed by topology moves (as in the base)
        live = set(self.tree.nodes)
        for node in [n for n in self._clas if n not in live]:
            del self._clas[node]
            self._valid.pop(node, None)
            self._last_used.pop(node, None)

    def _materialize(self, node: int, up_edge: int) -> None:
        """Depth-first rematerialisation of one (possibly evicted) CLA.

        Recursive with pinning: while a node's op runs, its children are
        pinned so the LRU eviction cannot drop an operand between its
        (re)computation and its use.  Dispatch goes straight through the
        base per-op path — a recompute is a single op, not a wave.
        """
        tree = self.tree
        if tree.is_leaf(node):
            return
        sig = self._last_sigs.get((node, up_edge))
        cached = self._valid.get(node)
        if node in self._clas and sig is not None and cached == (up_edge, sig):
            self._touch(node)
            return
        op = self._make_op(node, up_edge)
        if node in self._computed_once and node not in self._clas:
            self.recomputed_clas += 1
            if _obs.ENABLED:
                _note_recompute(node)
        self._pin(node)
        try:
            self._materialize(op.child1, op.edge1)
            self._pin(op.child1)
            try:
                self._materialize(op.child2, op.edge2)
                self._pin(op.child2)
                try:
                    LikelihoodEngine._run_ops(self, (op,), batch=False)
                finally:
                    self._unpin(op.child2)
            finally:
                self._unpin(op.child1)
            # Evict while the fresh result is still pinned: when pinned
            # entries alone exceed the budget, the LRU sweep would
            # otherwise consume the node we just produced.
            self._evict()
        finally:
            self._unpin(node)

    def _evict(self) -> None:
        """Drop least-recently-used buffers beyond the budget.

        Post-order CLAs and pre-order partials share one pool under the
        same ``max_resident`` cap and one LRU clock.  Pinned entries are
        never evicted, so during deep recomputations the cap is exceeded
        by at most the recursion path length (the log-depth floor of the
        recomputation strategy).
        """
        while len(self._clas) + len(self._pre) > self.max_resident:
            victims = [
                ("cla", n) for n in self._clas if n not in self._pin_counts
            ] + [
                ("pre", e) for e in self._pre if e not in self._pre_pin_counts
            ]
            if not victims:
                return
            pool, victim = min(
                victims,
                key=lambda kv: (
                    self._last_used if kv[0] == "cla" else self._pre_last_used
                ).get(kv[1], -1),
            )
            if pool == "cla":
                del self._clas[victim]
                self._valid.pop(victim, None)
                self._last_used.pop(victim, None)
            else:
                del self._pre[victim]
                self._pre_last_used.pop(victim, None)
            if _obs.ENABLED:
                _obs.instant("cla_evict", node=victim, pool=pool)
                _obs_metrics.get_registry().counter(
                    "repro_cla_evictions_total", "CLA slots recycled by LRU"
                ).inc()

    def _root_sides(self, root_edge: int):
        edge = self.tree.edge(root_edge)
        for node in (edge.u, edge.v):
            if not self.tree.is_leaf(node):
                self._touch(node)
        return super()._root_sides(root_edge)

    def all_branch_gradients(
        self, root_edge: int | None = None, *, terms: bool = False
    ):
        """All-branch gradients under the CLA budget (see the base class).

        Pre-order bookkeeping (LRU stamps, op descriptors) is scoped to
        one sweep, exactly like the partials themselves.
        """
        self._pre_last_used.clear()
        self._pre_pin_counts.clear()
        self._pre_ops.clear()
        try:
            return super().all_branch_gradients(root_edge, terms=terms)
        finally:
            self._pre_last_used.clear()
            self._pre_ops.clear()

    # ------------------------------------------------------------------
    def resident_clas(self) -> int:
        return len(self._clas)

    def memory_fraction(self) -> float:
        """Resident CLA memory relative to the full (uncapped) engine."""
        full = max(1, self.tree.n_leaves - 2)
        return min(1.0, self.max_resident / full)
