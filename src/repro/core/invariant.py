"""Proportion-of-invariant-sites model: GTR + I + Gamma.

The classic extension of the paper's GTR+Gamma configuration: a fraction
``p_inv`` of sites is assumed strictly invariable (substitution rate 0),
the remainder evolves under the discrete Gamma, with the variable-class
rates rescaled by ``1/(1 - p_inv)`` so the expected rate stays 1 and
branch lengths keep their units.  Per site,

    L = p_inv * I(site) + (1 - p_inv) * L_Gamma(site)

where the invariant mass ``I`` is the stationary probability of a state
compatible with *every* tip character — a branch-length- and
topology-independent constant per pattern (the rate-0 transition matrix
is the identity), which is why the derivative kernels only need a
reweighting of the Gamma terms.

Numerically the mixture is combined in log space so the per-site scaling
counters of deep trees never have to be un-scaled (``exp(256 c ln 2)``
overflows immediately); the derivative path uses the identity
``d lnL/dt = (G/L) * d lnG/dt`` with the Gamma fraction ``G/L`` computed
from log quantities.
"""

from __future__ import annotations

import numpy as np

from ..phylo.alignment import PatternAlignment
from ..phylo.models import SubstitutionModel
from ..phylo.rates import GammaRates
from ..phylo.tree import Tree
from .backends import KernelBackend
from .engine import LikelihoodEngine
from .scaling import LOG_SCALE_STEP
from .traversal import KernelKind

__all__ = ["InvariantSitesEngine"]


class InvariantSitesEngine(LikelihoodEngine):
    """Likelihood engine under GTR(+Gamma)+I."""

    def __init__(
        self,
        patterns: PatternAlignment,
        tree: Tree,
        model: SubstitutionModel,
        rates: GammaRates | None = None,
        p_inv: float = 0.1,
        backend: str | KernelBackend | None = None,
    ) -> None:
        self._p_inv = None  # set_model runs before validation can happen
        super().__init__(patterns, tree, model, rates, backend=backend)
        self.set_p_inv(p_inv)

    # ------------------------------------------------------------------
    @property
    def p_inv(self) -> float:
        return self._p_inv if self._p_inv is not None else 0.0

    def set_p_inv(self, p_inv: float) -> None:
        """Set the invariable proportion; rescales the variable rates."""
        if not 0.0 <= p_inv < 1.0:
            raise ValueError(f"p_inv must be in [0, 1), got {p_inv}")
        self._p_inv = p_inv
        # re-derive rate_values with the new scaling (invalidates CLAs)
        self.set_model(self.model, self.rates_model)

    def set_model(self, model: SubstitutionModel, rates: GammaRates | None = None) -> None:
        super().set_model(model, rates)
        p = self.p_inv
        if p > 0.0:
            self.rate_values = self.rate_values / (1.0 - p)
        # invariant mass per pattern: pi-weighted compatibility of a
        # constant column (AND of all tip bitmask codes)
        mask = self.patterns.data[0].astype(np.uint64)
        for row in self.patterns.data[1:]:
            mask = mask & row.astype(np.uint64)
        compat = self.patterns.states.tip_rows(mask)  # (p, states)
        self._inv_mass = compat @ model.frequencies
        with np.errstate(divide="ignore"):
            self._log_inv_mass = np.log(self._inv_mass)

    # ------------------------------------------------------------------
    def site_log_likelihoods(self, root_edge: int | None = None) -> np.ndarray:
        lg = super().site_log_likelihoods(root_edge)  # true Gamma lnL
        p = self.p_inv
        if p == 0.0:
            return lg
        with np.errstate(divide="ignore"):
            log_inv = np.log(p) + self._log_inv_mass
        return np.logaddexp(log_inv, np.log1p(-p) + lg)

    def log_likelihood(self, root_edge: int | None = None) -> float:
        lnl = self.site_log_likelihoods(root_edge)
        return float(np.dot(lnl, self.patterns.weights))

    # ------------------------------------------------------------------
    def edge_sum_buffer(self, root_edge: int):
        """Sum buffer plus the root scale counters (both needed by +I)."""
        self.ensure_valid(root_edge)
        z_l, z_r, scales = self._root_sides(root_edge)
        sumbuf = self.backend.derivative_sum(z_l, z_r)
        self.counters.record(KernelKind.DERIVATIVE_SUM, self.patterns.n_patterns)
        return sumbuf, scales

    def _edge_gradient(self, z_top, z_bottom, scales, t):
        """Per-edge gradient under +I: reuse the mixture derivative math.

        The combined scale counters of the two partials give the true
        per-site Gamma magnitude the mixture weighting needs — which is
        exactly why the gradient op threads ``scales`` through.
        """
        sumbuf = self.backend.derivative_sum(z_top, z_bottom)
        return self.branch_derivatives((sumbuf, scales), t)

    def _edge_gradient_site_terms(self, z_top, z_bottom, t):
        raise NotImplementedError(
            "+I all-branch gradients are serial-only: the invariant mixture "
            "needs per-site scale counters, which the plain three-term "
            "parallel reduction does not carry"
        )

    def branch_derivatives(self, sumbuf_scales, t: float) -> tuple[float, float, float]:
        sumbuf, scales = sumbuf_scales
        g = np.multiply.outer(self.rate_values, self.eigen.eigenvalues)
        e = np.exp(g * t)
        wc = self.rate_weights[:, None]
        l0 = np.einsum("pck,ck->p", sumbuf, wc * e)
        l1 = np.einsum("pck,ck->p", sumbuf, wc * g * e)
        l2 = np.einsum("pck,ck->p", sumbuf, wc * g * g * e)
        if np.any(l0 <= 0.0):
            raise FloatingPointError("non-positive site likelihood in +I model")
        self.counters.record(KernelKind.DERIVATIVE_CORE, self.patterns.n_patterns)
        w = self.patterns.weights
        p = self.p_inv
        if p == 0.0:
            r1 = l1 / l0
            return (
                float(np.dot(np.log(l0), w)),
                float(np.dot(r1, w)),
                float(np.dot(l2 / l0 - r1 * r1, w)),
            )
        # Gamma fraction G/L per site, scale-count safe (log space):
        # log G = log(1-p) + log(l0_computed) - scales * LOG_SCALE_STEP
        with np.errstate(divide="ignore"):
            log_g = np.log1p(-p) + np.log(l0) - scales * LOG_SCALE_STEP
            log_inv = np.log(p) + self._log_inv_mass
        log_total = np.logaddexp(log_g, log_inv)
        g_frac = np.exp(log_g - log_total)
        r1 = g_frac * (l1 / l0)
        d2 = g_frac * (l2 / l0) - r1 * r1
        return (
            float(np.dot(log_total, w)),
            float(np.dot(r1, w)),
            float(np.dot(d2, w)),
        )
