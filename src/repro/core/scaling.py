"""Numerical underflow protection for conditional likelihood arrays.

Per-site conditional likelihoods shrink multiplicatively with tree depth
and branch length; on trees of realistic size they underflow double
precision.  RAxML's remedy — which our kernels replicate — is *per-site
scaling*: whenever every entry of a site's CLA block drops below
``2**-256``, the block is multiplied by ``2**256`` and a per-site scaling
counter is incremented.  ``evaluate`` then subtracts
``count * 256 * ln 2`` from the site log-likelihood.

The constants live here so the reference kernels, the MIC-vectorised
kernels, and the tests all agree bit-for-bit on the thresholds.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "SCALE_THRESHOLD",
    "SCALE_FACTOR",
    "LOG_SCALE_STEP",
    "rescale_clv",
]

#: Trigger threshold: scale when max |entry| of a site block is below this.
SCALE_THRESHOLD: float = 2.0**-256

#: Multiplier applied on a scaling event.
SCALE_FACTOR: float = 2.0**256

#: ``log(SCALE_FACTOR)`` — per-event correction subtracted from site lnL.
LOG_SCALE_STEP: float = 256.0 * float(np.log(2.0))


def rescale_clv(z: np.ndarray, scale_counts: np.ndarray) -> None:
    """Scale underflowing site blocks of ``z`` in place.

    ``z`` has shape ``(n_patterns, n_rates, n_states)`` (eigenbasis
    coordinates, so entries may be negative — the trigger uses absolute
    values).  ``scale_counts`` is an ``int64`` per-pattern counter,
    incremented for each pattern that gets multiplied by
    :data:`SCALE_FACTOR`.
    """
    mx = np.abs(z).max(axis=(1, 2))
    mask = mx < SCALE_THRESHOLD
    if np.any(mask):
        z[mask] *= SCALE_FACTOR
        scale_counts[mask] += 1
