"""Execution-plan scheduling: wave-batched kernel dispatch.

The planner (:func:`repro.core.traversal.levelize`) folds a traversal
descriptor into an :class:`~repro.core.traversal.ExecutionPlan` of
dependency *waves*; this module executes such plans.  The
:class:`PlanExecutor` is the single dispatch loop shared by every engine
flavour: for each wave it prepares the kernel operands
(:meth:`LikelihoodEngine._prepare_op`), hands the whole wave to the
backend — as **one stacked call** when the backend implements the
optional ``newview_batch`` method, falling back to a per-op loop
otherwise — and stores the results.  The per-op path of the pre-IR
engine survives only as that fallback, exactly as BEAGLE's
``updatePartials`` hides whether an implementation consumes its
operation queue one entry or one batch at a time.

Every executed wave is measured (:class:`WaveProfile`: width, kernel
mix, seconds, bytes) and folded into the executor's :class:`WaveStats`,
the quantity :mod:`repro.perf.trace` attaches to kernel traces so the
analytic cost model can separate serial-depth cost (one per wave) from
parallel-width cost (one per op).

:func:`fuse_plans` merges per-partition plans into one cross-partition
schedule (used by :class:`repro.core.partitioned.PartitionedEngine`),
so a multi-gene evaluation exposes a single wave sequence instead of
per-partition dribbles.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from ..obs import metrics as _obs_metrics
from ..obs import spans as _obs
from .traversal import ExecutionPlan, KernelKind, NewviewOp, Wave

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from .engine import LikelihoodEngine

__all__ = [
    "NewviewCall",
    "dispatch_call",
    "dispatch_wave",
    "WaveProfile",
    "WaveStats",
    "PlanExecutor",
    "FusedWave",
    "FusedPlan",
    "fuse_plans",
    "execute_lockstep",
]

#: Backend method name per CLA-producing kernel kind.  Post-order
#: ``newview`` and pre-order partial kinds share argument signatures
#: (the arithmetic is identical; only the counted kind differs), so one
#: table serves both sweep directions.
NEWVIEW_METHODS: dict[KernelKind, str] = {
    KernelKind.NEWVIEW_TIP_TIP: "newview_tip_tip",
    KernelKind.NEWVIEW_TIP_INNER: "newview_tip_inner",
    KernelKind.NEWVIEW_INNER_INNER: "newview_inner_inner",
    KernelKind.PREORDER_TIP_TIP: "preorder_tip_tip",
    KernelKind.PREORDER_TIP_INNER: "preorder_tip_inner",
    KernelKind.PREORDER_INNER_INNER: "preorder_inner_inner",
}


@dataclass(frozen=True)
class NewviewCall:
    """One prepared kernel invocation: an op plus its ready operands.

    ``op`` is the plan op the call realises — a
    :class:`~repro.core.traversal.NewviewOp` on the down-sweep, a
    :class:`~repro.core.traversal.PreorderOp` on the gradient up-sweep.
    ``args`` matches the positional signature of the backend method named
    by :data:`NEWVIEW_METHODS` for ``kind``.  Operand arrays obtained
    from the engine's per-plan preparation cache are *shared* between
    calls with equal branch lengths — which is what lets a batching
    backend group same-edge-length ops by operand identity.
    """

    op: "NewviewOp | object"
    kind: KernelKind
    args: tuple


def dispatch_call(backend, call: NewviewCall):
    """Run one prepared ``newview`` through the backend (per-op path)."""
    return getattr(backend, NEWVIEW_METHODS[call.kind])(*call.args)


def dispatch_wave(
    backend, calls: Sequence[NewviewCall], batch: bool = True
) -> list:
    """Dispatch one wave of mutually independent calls.

    If ``batch`` is set and the backend provides the optional
    ``newview_batch`` method, the whole wave goes down in one stacked
    call; otherwise (and for single-op waves, where stacking cannot pay)
    each call is dispatched individually — the retained per-op path.
    Returns ``(z, scale)`` per call, in call order.
    """
    if batch and len(calls) > 1:
        stacked = getattr(backend, "newview_batch", None)
        if stacked is not None:
            return list(stacked(calls))
    return [dispatch_call(backend, call) for call in calls]


# ----------------------------------------------------------------------
# wave measurement
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WaveProfile:
    """Measurement of one executed wave."""

    index: int
    width: int
    kernel_mix: dict[str, int]
    seconds: float
    bytes_moved: int
    batched: bool


@dataclass
class WaveStats:
    """Running totals over every wave an executor has run.

    ``plans``/``waves``/``ops`` count executed plans (non-empty only),
    their waves and ops; ``max_width`` is the widest wave seen (the
    exploitable batch/thread parallelism); ``batched_ops`` counts ops
    that went through a stacked ``newview_batch`` dispatch;
    ``seconds``/``bytes_moved`` accumulate wall time and backend traffic
    attributed to wave execution.  Like the kernel counters, the totals
    are **cumulative across runs** — call :meth:`reset` (or
    ``engine.reset_profile()``) for per-run numbers.

    ``last_plan`` holds the per-wave profiles of the most recent plan.
    Drivers that call :meth:`PlanExecutor.run_wave` directly (fork-join
    lock-step, distributed replay) never pass through
    :meth:`PlanExecutor.execute`'s clear, so the list is additionally
    capped at :data:`LAST_PLAN_CAP` entries (oldest dropped) to keep
    long-running parallel searches from growing it without bound.
    """

    #: Upper bound on retained :class:`WaveProfile` entries in ``last_plan``.
    LAST_PLAN_CAP = 512

    plans: int = 0
    waves: int = 0
    ops: int = 0
    max_width: int = 0
    batched_ops: int = 0
    seconds: float = 0.0
    bytes_moved: int = 0
    kernel_mix: dict[str, int] = field(default_factory=dict)
    last_plan: list[WaveProfile] = field(default_factory=list)

    @property
    def mean_width(self) -> float:
        return self.ops / self.waves if self.waves else 0.0

    def record(self, profile: WaveProfile) -> None:
        self.waves += 1
        self.ops += profile.width
        self.max_width = max(self.max_width, profile.width)
        if profile.batched:
            self.batched_ops += profile.width
        self.seconds += profile.seconds
        self.bytes_moved += profile.bytes_moved
        for kind, n in profile.kernel_mix.items():
            self.kernel_mix[kind] = self.kernel_mix.get(kind, 0) + n
        self.last_plan.append(profile)
        if len(self.last_plan) > self.LAST_PLAN_CAP:
            del self.last_plan[: -self.LAST_PLAN_CAP]

    def merge(self, other: "WaveStats") -> "WaveStats":
        """Fold another executor's stats into this one (in place)."""
        self.plans += other.plans
        self.waves += other.waves
        self.ops += other.ops
        self.max_width = max(self.max_width, other.max_width)
        self.batched_ops += other.batched_ops
        self.seconds += other.seconds
        self.bytes_moved += other.bytes_moved
        for kind, n in other.kernel_mix.items():
            self.kernel_mix[kind] = self.kernel_mix.get(kind, 0) + n
        return self

    def reset(self) -> None:
        self.plans = 0
        self.waves = 0
        self.ops = 0
        self.max_width = 0
        self.batched_ops = 0
        self.seconds = 0.0
        self.bytes_moved = 0
        self.kernel_mix.clear()
        self.last_plan.clear()

    def to_dict(self) -> dict:
        """JSON-ready summary (attached to kernel traces)."""
        return {
            "plans": self.plans,
            "waves": self.waves,
            "ops": self.ops,
            "max_width": self.max_width,
            "mean_width": self.mean_width,
            "batched_ops": self.batched_ops,
            "seconds": self.seconds,
            "bytes_moved": self.bytes_moved,
            "kernel_mix": dict(self.kernel_mix),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "WaveStats":
        stats = cls(
            plans=int(d.get("plans", 0)),
            waves=int(d.get("waves", 0)),
            ops=int(d.get("ops", 0)),
            max_width=int(d.get("max_width", 0)),
            batched_ops=int(d.get("batched_ops", 0)),
            seconds=float(d.get("seconds", 0.0)),
            bytes_moved=int(d.get("bytes_moved", 0)),
        )
        stats.kernel_mix = {
            str(k): int(v) for k, v in d.get("kernel_mix", {}).items()
        }
        return stats


# ----------------------------------------------------------------------
# the executor
# ----------------------------------------------------------------------
class PlanExecutor:
    """Executes :class:`ExecutionPlan` waves through an engine's backend.

    Owned by the engine (``engine.executor``); parallel drivers
    (fork-join, distributed, partitioned) call :meth:`run_wave` directly
    to interleave their own synchronisation accounting between waves.

    ``batch`` selects stacked dispatch (the default); with ``batch=False``
    every wave runs through the per-op loop — the pre-IR behaviour,
    retained as the fallback and as the baseline the scheduler benchmark
    compares against.
    """

    def __init__(self, engine: "LikelihoodEngine", batch: bool = True) -> None:
        self.engine = engine
        self.batch = batch
        self.stats = WaveStats()

    def execute(self, plan: ExecutionPlan) -> None:
        """Run a whole plan, wave by wave."""
        if not plan.waves:
            return
        self.stats.plans += 1
        self.stats.last_plan.clear()
        self.engine._prep_cache.clear()
        with _obs.span("plan", waves=len(plan.waves), ops=plan.n_ops):
            for wave in plan.waves:
                self.run_wave(wave)

    def run_wave(self, wave: Wave) -> None:
        """Run one wave and record its :class:`WaveProfile`."""
        if not wave.ops:
            return
        profile = getattr(self.engine.backend, "profile", None)
        b0 = sum(profile.bytes_moved.values()) if profile is not None else 0
        t0 = time.perf_counter()
        self.engine._run_ops(wave.ops, batch=self.batch)
        elapsed = time.perf_counter() - t0
        b1 = sum(profile.bytes_moved.values()) if profile is not None else 0
        mix = wave.kernel_mix()
        batched = (
            self.batch
            and wave.width > 1
            and getattr(self.engine.backend, "newview_batch", None) is not None
            and any(k.newview_like or k.preorder_like for k in mix)
        )
        self.stats.record(
            WaveProfile(
                index=wave.index,
                width=wave.width,
                kernel_mix={k.value: n for k, n in mix.items()},
                seconds=elapsed,
                bytes_moved=b1 - b0,
                batched=batched,
            )
        )
        if _obs.ENABLED:
            _obs.get_tracer().add_complete(
                "wave",
                t0,
                t0 + elapsed,
                args={
                    "wave": wave.index,
                    "width": wave.width,
                    "batched": batched,
                },
            )
            reg = _obs_metrics.get_registry()
            reg.counter("repro_waves_total", "executed waves").inc()
            reg.histogram(
                "repro_wave_width",
                "ops per executed wave",
                bounds=_obs_metrics.log_buckets(1.0, 4096.0, per_decade=3),
            ).observe(wave.width)
            reg.histogram(
                "repro_wave_seconds", "wall seconds per wave"
            ).observe(elapsed)


# ----------------------------------------------------------------------
# cross-partition fusion
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FusedWave:
    """One cross-partition wave: same-level waves of several plans."""

    index: int
    parts: tuple[tuple[int, Wave], ...]  # (partition index, wave)

    @property
    def width(self) -> int:
        return sum(w.width for _, w in self.parts)


@dataclass
class FusedPlan:
    """Per-partition plans merged into one levelized schedule.

    Wave ``k`` of the fused plan holds wave ``k`` of every partition
    plan deep enough to have one; all its ops remain mutually
    independent (partitions never share CLAs), so the fused wave is the
    batching/synchronisation unit for multi-gene evaluation.
    """

    waves: list[FusedWave] = field(default_factory=list)

    @property
    def depth(self) -> int:
        return len(self.waves)

    @property
    def n_ops(self) -> int:
        return sum(w.width for w in self.waves)

    @property
    def max_width(self) -> int:
        return max((w.width for w in self.waves), default=0)


def fuse_plans(plans: Iterable[ExecutionPlan]) -> FusedPlan:
    """Merge per-partition plans level-by-level into one schedule."""
    plans = list(plans)
    depth = max((p.depth for p in plans), default=0)
    fused = FusedPlan()
    for k in range(depth):
        parts = tuple(
            (i, p.waves[k]) for i, p in enumerate(plans) if k < p.depth
        )
        if parts:
            fused.waves.append(FusedWave(index=k, parts=parts))
    return fused


# ----------------------------------------------------------------------
# cross-engine lockstep (cross-query batching)
# ----------------------------------------------------------------------
def execute_lockstep(
    engines: Sequence["LikelihoodEngine"],
    plans: Sequence[ExecutionPlan],
    *,
    batch: bool = True,
) -> None:
    """Run one plan per engine in lockstep, fusing same-level waves.

    The cross-**query** analogue of :func:`fuse_plans`: where the
    partitioned engine fuses per-partition plans *inside* one engine,
    this fuses per-engine plans *across* engines sharing one backend
    instance — each fused level dispatches the concatenation of every
    engine's prepared calls as a single wave (one ``newview_batch`` call
    when the backend stacks).  The placement server uses it to turn N
    concurrent queries' per-candidate traversals into single dispatches.

    Bit-parity guarantee: per-call results are unchanged by the
    concatenation.  Stacking backends group calls by operand *identity*
    (each engine prepares its own operand arrays, so cross-engine calls
    never share a group), and the per-call fallback path is the same
    kernels either way — so every engine's CLAs come out bit-identical
    to running its plan alone through :meth:`PlanExecutor.execute`.

    Only down-sweep (``NewviewOp``) plans are supported; a plan carrying
    pre-order/gradient ops raises ``ValueError``.
    """
    engines = list(engines)
    plans = list(plans)
    if len(engines) != len(plans):
        raise ValueError(
            f"one plan per engine required ({len(engines)} engines, "
            f"{len(plans)} plans)"
        )
    if not engines:
        return
    backend = engines[0].backend
    for engine in engines[1:]:
        if engine.backend is not backend:
            raise ValueError(
                "lockstep execution needs every engine on the same backend "
                "instance (one stacked dispatch per fused level)"
            )
    live = [(e, p) for e, p in zip(engines, plans) if p.waves]
    if not live:
        return
    for _, plan in live:
        for wave in plan.waves:
            if any(not isinstance(op, NewviewOp) for op in wave.ops):
                raise ValueError(
                    "execute_lockstep fuses down-sweep (newview) plans only"
                )
    for engine, _ in live:
        engine._prep_cache.clear()
    depth = max(p.depth for _, p in live)
    with _obs.span(
        "plan.lockstep",
        engines=len(live),
        waves=depth,
        ops=sum(p.n_ops for _, p in live),
    ):
        for k in range(depth):
            groups = [
                (engine, plan.waves[k])
                for engine, plan in live
                if k < plan.depth and plan.waves[k].ops
            ]
            if not groups:
                continue
            t0 = time.perf_counter()
            calls: list[NewviewCall] = []
            for engine, wave in groups:
                calls.extend(engine._prepare_op(op) for op in wave.ops)
            results = dispatch_wave(backend, calls, batch=batch)
            pos = 0
            for engine, wave in groups:
                for op in wave.ops:
                    z, sc = results[pos]
                    engine._store_op(op, z, sc)
                    pos += 1
            elapsed = time.perf_counter() - t0
            if _obs.ENABLED:
                _obs.get_tracer().add_complete(
                    "lockstep_wave",
                    t0,
                    t0 + elapsed,
                    args={
                        "level": k,
                        "engines": len(groups),
                        "width": len(calls),
                    },
                )
                reg = _obs_metrics.get_registry()
                reg.counter(
                    "repro_crossquery_waves_total",
                    "fused cross-engine waves dispatched in lockstep",
                ).inc()
                reg.histogram(
                    "repro_crossquery_wave_width",
                    "calls per fused cross-engine wave",
                    bounds=_obs_metrics.log_buckets(1.0, 4096.0, per_decade=3),
                ).observe(len(calls))
