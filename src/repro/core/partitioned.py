"""Partitioned (multi-gene) likelihood evaluation — paper extension.

The paper's MIC port "supports multiple data partitions" but was neither
optimised nor evaluated for them, warning that many partitions shrink
the parallel block size and grow communication (Sec. V-A); per-partition
load balancing is listed as future work (Sec. VII).

:class:`PartitionedEngine` evaluates a shared tree under independent
substitution models per partition (the standard multi-gene setup): the
total log-likelihood is the sum of the per-partition values, branch
lengths are shared (proportional branch lengths are a further extension)
and branch derivatives add across partitions — so the whole
:mod:`repro.search` layer again runs unchanged.

:func:`partition_workers` implements the load-balancing question the
paper raises: distributing whole partitions over workers (cheap, but
imbalanced for skewed partition sizes) versus splitting every partition
cyclically over all workers (balanced, but more synchronisation blocks).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..phylo.alignment import PatternAlignment
from ..phylo.models import SubstitutionModel
from ..phylo.rates import GammaRates
from ..phylo.tree import Tree
from .backends import KernelBackend, KernelProfile, get_backend
from .engine import LikelihoodEngine
from .schedule import FusedPlan, WaveStats, fuse_plans

__all__ = ["Partition", "PartitionedEngine", "partition_workers"]


@dataclass
class Partition:
    """One alignment partition: its data and its model configuration."""

    name: str
    patterns: PatternAlignment
    model: SubstitutionModel
    gamma: GammaRates


class PartitionedEngine:
    """Sum-of-partitions likelihood over one shared tree.

    Duck-types the single-partition :class:`LikelihoodEngine` surface
    used by the optimisers (``log_likelihood``, ``edge_sum_buffer``,
    ``branch_derivatives``, ``tree``), so branch-length optimisation and
    SPR search operate on partitioned data unchanged.
    """

    def __init__(
        self,
        partitions: list[Partition],
        tree: Tree,
        backend: str | KernelBackend | None = None,
    ) -> None:
        if not partitions:
            raise ValueError("need at least one partition")
        taxa = set(partitions[0].patterns.taxa)
        for p in partitions[1:]:
            if set(p.patterns.taxa) != taxa:
                raise ValueError(
                    f"partition {p.name!r} has a different taxon set"
                )
        self.partitions = partitions
        self.tree = tree
        # One backend instance shared by every per-partition engine, so
        # its profile aggregates the whole multi-gene workload.
        self.backend = get_backend(backend)
        self.engines = [
            LikelihoodEngine(p.patterns, tree, p.model, p.gamma, backend=self.backend)
            for p in partitions
        ]

    @property
    def n_partitions(self) -> int:
        return len(self.partitions)

    @property
    def rates_model(self) -> GammaRates:
        return self.engines[0].rates_model

    @property
    def model(self) -> SubstitutionModel:
        return self.engines[0].model

    def default_edge(self) -> int:
        return self.engines[0].default_edge()

    def set_alpha(self, alpha: float) -> None:
        """Shared-alpha convenience (per-partition alphas via engines)."""
        for engine in self.engines:
            engine.set_alpha(alpha)

    def plan_execution(self, root_edge: int) -> FusedPlan:
        """Per-partition plans fused into one cross-partition schedule.

        Wave ``k`` of the fused plan carries wave ``k`` of every
        partition, so the whole multi-gene update advances as a single
        levelized schedule instead of partition-by-partition dribbles —
        the batching (and, under a parallel driver, synchronisation)
        unit spans partitions.
        """
        return fuse_plans(e.plan_execution(root_edge) for e in self.engines)

    def execute_plan(self, fused: FusedPlan) -> None:
        for wave in fused.waves:
            for part_idx, sub in wave.parts:
                self.engines[part_idx].executor.run_wave(sub)

    def ensure_valid(self, root_edge: int) -> None:
        """Validate every partition's root CLAs via the fused schedule."""
        self.execute_plan(self.plan_execution(root_edge))

    def log_likelihood(self, root_edge: int | None = None) -> float:
        if root_edge is None:
            root_edge = self.default_edge()
        self.ensure_valid(root_edge)
        return sum(e.log_likelihood(root_edge) for e in self.engines)

    def edge_sum_buffer(self, root_edge: int) -> list[np.ndarray]:
        return [e.edge_sum_buffer(root_edge) for e in self.engines]

    def branch_derivatives(
        self, sumbufs: list[np.ndarray], t: float
    ) -> tuple[float, float, float]:
        totals = np.zeros(3)
        for engine, sb in zip(self.engines, sumbufs):
            totals += np.array(engine.branch_derivatives(sb, t))
        return float(totals[0]), float(totals[1]), float(totals[2])

    def all_branch_gradients(
        self, root_edge: int | None = None
    ) -> dict[int, tuple[float, float]]:
        """All-branch gradients summed across partitions.

        Branch lengths are shared, so each branch's lnL derivative is the
        sum of the per-partition derivatives — the same additivity
        :meth:`branch_derivatives` uses, now for every branch in one
        bidirectional sweep per partition.
        """
        if root_edge is None:
            root_edge = self.default_edge()
        totals: dict[int, tuple[float, float]] = {}
        for engine in self.engines:
            for eid, (d1, d2) in engine.all_branch_gradients(root_edge).items():
                t1, t2 = totals.get(eid, (0.0, 0.0))
                totals[eid] = (t1 + d1, t2 + d2)
        return totals

    def drop_caches(self) -> None:
        for engine in self.engines:
            engine.drop_caches()

    @property
    def counters(self):
        """Aggregated counters across partitions."""
        total = self.engines[0].counters.copy()
        for engine in self.engines[1:]:
            c = engine.counters
            for k, v in c.calls.items():
                total.calls[k] = total.calls.get(k, 0) + v
            for k, v in c.site_units.items():
                total.site_units[k] = total.site_units.get(k, 0) + v
            total.reductions += c.reductions
        return total

    @property
    def profile(self) -> KernelProfile:
        """Measured per-kernel profile of the shared backend."""
        return self.backend.profile

    @property
    def wave_stats(self) -> WaveStats:
        """Wave statistics aggregated across every partition's executor."""
        total = WaveStats()
        for engine in self.engines:
            total.merge(engine.wave_stats)
        return total

    def reset_profile(self) -> None:
        """Zero counters, the shared backend profile, and wave stats."""
        self.backend.profile.reset()
        for engine in self.engines:
            engine.counters.reset()
            engine.executor.stats.reset()

    def per_site_log_likelihoods(self) -> dict[str, np.ndarray]:
        """Per-partition pattern log-likelihood vectors."""
        return {
            p.name: e.site_log_likelihoods()
            for p, e in zip(self.partitions, self.engines)
        }


def partition_workers(
    partition_sizes: list[int], n_workers: int, scheme: str = "cyclic"
) -> list[list[tuple[int, int]]]:
    """Distribute partitioned sites over workers (Sec. VII's concern).

    Returns per-worker lists of ``(partition_index, n_sites)`` blocks.

    ``scheme="whole"`` assigns entire partitions greedily to the least
    loaded worker (longest-processing-time heuristic); ``"cyclic"``
    splits every partition across all workers.  The imbalance of the two
    schemes is compared by the partitioned-alignment tests.
    """
    if n_workers < 1:
        raise ValueError("need at least one worker")
    assignment: list[list[tuple[int, int]]] = [[] for _ in range(n_workers)]
    if scheme == "whole":
        loads = [0] * n_workers
        order = sorted(
            range(len(partition_sizes)),
            key=lambda i: partition_sizes[i],
            reverse=True,
        )
        for idx in order:
            w = loads.index(min(loads))
            assignment[w].append((idx, partition_sizes[idx]))
            loads[w] += partition_sizes[idx]
        return assignment
    if scheme == "cyclic":
        for idx, size in enumerate(partition_sizes):
            base = size // n_workers
            extra = size % n_workers
            for w in range(n_workers):
                share = base + (1 if w < extra else 0)
                if share:
                    assignment[w].append((idx, share))
        return assignment
    raise ValueError(f"unknown scheme {scheme!r}")
