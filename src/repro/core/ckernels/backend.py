"""``compiled`` kernel backend: generated C behind the stable kernel API.

:class:`CompiledBackend` implements the full :class:`~repro.core.
backends.KernelBackend` protocol (plus the optional ``newview_batch``
wave hook and the parallel-engine ``*_terms`` site phases) by
dispatching into shared objects built on demand by
:mod:`repro.core.ckernels.build` from :mod:`~repro.core.ckernels.
codegen` source — one object per ``(n_states, n_rates)`` pair, resolved
from operand shapes at call time.

Division of labour per kernel:

* all per-site arithmetic (CLA contractions, scaling, site-likelihood
  and derivative site phases, element-wise products) runs in C;
* transcendental *tables* (``exp`` factors) and final reductions
  (``np.log``/``np.dot``/:func:`repro.core.kernels.derivative_reduce`)
  stay in NumPy, so reduction order — and hence every scalar the
  engines compare — is produced by exactly the same code path as the
  reference backend.

ctypes releases the GIL for the duration of each call, so the
``threads`` worker substrate gets genuine parallel speedup from this
backend (NumPy kernels already release it inside ufuncs; here the whole
kernel body runs GIL-free).

When no C toolchain is available (or a compile fails), the instance
permanently degrades to a private :class:`~repro.core.backends.
BlockedBackend` that shares this backend's profile, emits a one-time
``RuntimeWarning``, and records the reason for ``repro backends``.
"""

from __future__ import annotations

import functools
import time
import warnings

import numpy as np

from ..backends import BlockedBackend, _BackendBase
from ..traversal import KernelKind
from .. import kernels
from ..scaling import LOG_SCALE_STEP
from .build import CompilerUnavailable, ProbeStatus, load_kernels, probe_status

__all__ = ["CompiledBackend"]

_warned_fallback = False


def _f64(a: np.ndarray) -> np.ndarray:
    """C-contiguous float64 view/copy (no copy on the engine hot path)."""
    return np.ascontiguousarray(a, dtype=np.float64)


def _i64(a: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(a, dtype=np.int64)


def _u32(a: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(a, dtype=np.uint32)


def _estrides(a: np.ndarray) -> tuple[int, ...]:
    """Strides in elements (broadcast axes contribute 0)."""
    return tuple(s // a.itemsize for s in a.strides)


def _guarded(method):
    """Route through the fallback delegate; degrade on compile failure."""

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        if self._delegate is not None:
            return getattr(self._delegate, method.__name__)(*args, **kwargs)
        try:
            return method(self, *args, **kwargs)
        except CompilerUnavailable as exc:
            self._activate_fallback(str(exc))
            return getattr(self._delegate, method.__name__)(*args, **kwargs)

    return wrapper


class CompiledBackend(_BackendBase):
    """Generated-C kernels loaded via ctypes (``backend="compiled"``)."""

    name = "compiled"
    description = (
        "C kernels generated per (states, rates), compiled at first use "
        "with the system compiler and loaded via ctypes; falls back to "
        "blocked when no toolchain is available"
    )

    def __init__(self, pair_table_max: int = 4096) -> None:
        super().__init__()
        self.pair_table_max = int(pair_table_max)
        self._libs: dict[tuple[int, int], object] = {}
        self._delegate: BlockedBackend | None = None
        self.fallback_reason: str | None = None
        try:
            from .build import probe_toolchain

            probe_toolchain()
        except CompilerUnavailable as exc:
            self._activate_fallback(str(exc))

    # -- toolchain plumbing -------------------------------------------
    def _activate_fallback(self, reason: str) -> None:
        global _warned_fallback
        self.fallback_reason = reason
        delegate = BlockedBackend(pair_table_max=self.pair_table_max)
        delegate.profile = self.profile  # one shared accounting stream
        self._delegate = delegate
        if not _warned_fallback:
            _warned_fallback = True
            warnings.warn(
                f"compiled kernels unavailable ({reason}); "
                "falling back to the blocked backend",
                RuntimeWarning,
                stacklevel=3,
            )

    def _lib(self, states: int, rates: int):
        key = (states, rates)
        lib = self._libs.get(key)
        if lib is None:
            lib = load_kernels(states, rates)
            self._libs[key] = lib
        return lib

    @staticmethod
    def probe() -> ProbeStatus:
        """Toolchain availability report (for ``repro backends``)."""
        return probe_status()

    # -- newview -------------------------------------------------------
    def _tip_tip_impl(self, u_inv, lookup1, codes1, lookup2, codes2):
        lookup1, lookup2 = _f64(lookup1), _f64(lookup2)
        codes1, codes2 = _u32(codes1), _u32(codes2)
        c, m1, k = lookup1.shape
        m2 = lookup2.shape[1]
        lib = self._lib(k, c)
        p = codes1.shape[0]
        z = np.empty((p, c, k))
        u_inv = np.asarray(u_inv, dtype=np.float64)
        s0, s1 = _estrides(u_inv)
        lib.nv_tip_tip(
            p, u_inv.ctypes.data, s0, s1,
            lookup1.ctypes.data, m1, codes1.ctypes.data,
            lookup2.ctypes.data, m2, codes2.ctypes.data,
            z.ctypes.data,
        )
        return z, np.zeros(p, dtype=np.int64)

    def _tip_inner_impl(self, u_inv, lookup1, codes1, a2, z2, scale2):
        lookup1, a2, z2 = _f64(lookup1), _f64(a2), _f64(z2)
        codes1 = _u32(codes1)
        p, c, k = z2.shape
        m1 = lookup1.shape[1]
        lib = self._lib(k, c)
        z = np.empty((p, c, k))
        sc = np.empty(p, dtype=np.int64)
        u_inv = np.asarray(u_inv, dtype=np.float64)
        s0, s1 = _estrides(u_inv)
        lib.nv_tip_inner(
            p, u_inv.ctypes.data, s0, s1,
            lookup1.ctypes.data, m1, codes1.ctypes.data,
            a2.ctypes.data, z2.ctypes.data,
            _i64(scale2).ctypes.data,
            z.ctypes.data, sc.ctypes.data,
        )
        return z, sc

    def _inner_inner_impl(self, u_inv, a1, a2, z1, z2, scale1, scale2):
        a1, a2, z1, z2 = _f64(a1), _f64(a2), _f64(z1), _f64(z2)
        p, c, k = z1.shape
        lib = self._lib(k, c)
        z = np.empty((p, c, k))
        sc = np.empty(p, dtype=np.int64)
        u_inv = np.asarray(u_inv, dtype=np.float64)
        s0, s1 = _estrides(u_inv)
        lib.nv_inner_inner(
            p, u_inv.ctypes.data, s0, s1,
            a1.ctypes.data, a2.ctypes.data,
            z1.ctypes.data, z2.ctypes.data,
            _i64(scale1).ctypes.data, _i64(scale2).ctypes.data,
            z.ctypes.data, sc.ctypes.data,
        )
        return z, sc

    @_guarded
    def newview_tip_tip(self, u_inv, lookup1, codes1, lookup2, codes2):
        t0 = time.perf_counter()
        z, sc = self._tip_tip_impl(u_inv, lookup1, codes1, lookup2, codes2)
        self._finish(
            KernelKind.NEWVIEW_TIP_TIP, codes1.shape[0], t0,
            lookup1, lookup2, codes1, codes2, z, sc,
        )
        return z, sc

    @_guarded
    def newview_tip_inner(self, u_inv, lookup1, codes1, a2, z2, scale2):
        t0 = time.perf_counter()
        z, sc = self._tip_inner_impl(u_inv, lookup1, codes1, a2, z2, scale2)
        self._finish(
            KernelKind.NEWVIEW_TIP_INNER, z2.shape[0], t0,
            lookup1, codes1, a2, z2, scale2, z, sc,
        )
        return z, sc

    @_guarded
    def newview_inner_inner(self, u_inv, a1, a2, z1, z2, scale1, scale2):
        t0 = time.perf_counter()
        z, sc = self._inner_inner_impl(u_inv, a1, a2, z1, z2, scale1, scale2)
        self._finish(
            KernelKind.NEWVIEW_INNER_INNER, z1.shape[0], t0,
            a1, a2, z1, z2, scale1, scale2, z, sc,
        )
        return z, sc

    # -- pre-order partials (identical math, different KernelKind) -----
    @_guarded
    def preorder_tip_tip(self, u_inv, lookup1, codes1, lookup2, codes2):
        t0 = time.perf_counter()
        z, sc = self._tip_tip_impl(u_inv, lookup1, codes1, lookup2, codes2)
        self._finish(
            KernelKind.PREORDER_TIP_TIP, codes1.shape[0], t0,
            lookup1, lookup2, codes1, codes2, z, sc,
        )
        return z, sc

    @_guarded
    def preorder_tip_inner(self, u_inv, lookup1, codes1, a2, z2, scale2):
        t0 = time.perf_counter()
        z, sc = self._tip_inner_impl(u_inv, lookup1, codes1, a2, z2, scale2)
        self._finish(
            KernelKind.PREORDER_TIP_INNER, z2.shape[0], t0,
            lookup1, codes1, a2, z2, scale2, z, sc,
        )
        return z, sc

    @_guarded
    def preorder_inner_inner(self, u_inv, a1, a2, z1, z2, scale1, scale2):
        t0 = time.perf_counter()
        z, sc = self._inner_inner_impl(u_inv, a1, a2, z1, z2, scale1, scale2)
        self._finish(
            KernelKind.PREORDER_INNER_INNER, z1.shape[0], t0,
            a1, a2, z1, z2, scale1, scale2, z, sc,
        )
        return z, sc

    # -- stacked wave dispatch ----------------------------------------
    @_guarded
    def newview_batch(self, calls) -> list[tuple[np.ndarray, np.ndarray]]:
        """Wave dispatch with a C-built tip-tip pair table.

        Mirrors :meth:`BlockedBackend.newview_batch`: tip-tip ops that
        share lookup operands gather from one all-pairs table.  The
        table is built by the same C arithmetic as the per-op tip-tip
        kernel, so gathered CLAs are bit-identical to per-op dispatch.
        """
        results: list = [None] * len(calls)
        groups: dict[tuple, list[int]] = {}
        for i, call in enumerate(calls):
            case = call.kind.value.rsplit("_", 2)
            if case[-2:] == ["tip", "tip"]:
                u_inv, lut1, codes1, lut2, codes2 = call.args
                m1, m2 = lut1.shape[1], lut2.shape[1]
                if m1 * m2 <= self.pair_table_max and codes1.shape[0] >= m1 * m2:
                    groups.setdefault(
                        (call.kind, id(u_inv), id(lut1), id(lut2)), []
                    ).append(i)
                else:
                    results[i] = (
                        self.newview_tip_tip(*call.args)
                        if call.kind is KernelKind.NEWVIEW_TIP_TIP
                        else self.preorder_tip_tip(*call.args)
                    )
            elif case[-1] == "inner" and case[-2] == "tip":
                results[i] = (
                    self.newview_tip_inner(*call.args)
                    if call.kind is KernelKind.NEWVIEW_TIP_INNER
                    else self.preorder_tip_inner(*call.args)
                )
            else:
                results[i] = (
                    self.newview_inner_inner(*call.args)
                    if call.kind is KernelKind.NEWVIEW_INNER_INNER
                    else self.preorder_inner_inner(*call.args)
                )
        for (kind, *_ids), idxs in groups.items():
            u_inv, lut1, _, lut2, _ = calls[idxs[0]].args
            t_table0 = time.perf_counter()
            lut1c, lut2c = _f64(lut1), _f64(lut2)
            c, m1, k = lut1c.shape
            m2 = lut2c.shape[1]
            lib = self._lib(k, c)
            table = np.empty((m1, m2, c, k))
            ui = np.asarray(u_inv, dtype=np.float64)
            s0, s1 = _estrides(ui)
            lib.tip_pair_table(
                ui.ctypes.data, s0, s1,
                lut1c.ctypes.data, m1, lut2c.ctypes.data, m2,
                table.ctypes.data,
            )
            table_s = time.perf_counter() - t_table0
            for j, i in enumerate(idxs):
                codes1, codes2 = calls[i].args[2], calls[i].args[4]
                t0 = time.perf_counter()
                z = table[codes1, codes2]
                sc = np.zeros(codes1.shape[0], dtype=np.int64)
                elapsed = time.perf_counter() - t0
                if j == 0:  # charge the shared table build to the head
                    elapsed += table_s
                nbytes = codes1.nbytes + codes2.nbytes + z.nbytes + sc.nbytes
                self.profile.record_timed(
                    kind, codes1.shape[0], elapsed, nbytes
                )
                results[i] = (z, sc)
        return results

    # -- evaluate ------------------------------------------------------
    def _site_linear(self, z_left, z_right, exps, rate_weights):
        """Linear-scale per-site likelihoods via the C site loop."""
        exps = _f64(exps)
        rate_weights = _f64(rate_weights)
        c, k = exps.shape
        p = np.broadcast_shapes(z_left.shape, z_right.shape, (1, c, k))[0]
        zl = np.broadcast_to(np.asarray(z_left, dtype=np.float64), (p, c, k))
        zr = np.broadcast_to(np.asarray(z_right, dtype=np.float64), (p, c, k))
        lib = self._lib(k, c)
        out = np.empty(p)
        lib.evaluate_site(
            p, zl.ctypes.data, *_estrides(zl),
            zr.ctypes.data, *_estrides(zr),
            exps.ctypes.data, rate_weights.ctypes.data, out.ctypes.data,
        )
        return out

    @staticmethod
    def _check_positive(site_l: np.ndarray) -> None:
        if np.any(site_l <= 0.0):
            bad = int(np.argmin(site_l))
            raise FloatingPointError(
                f"non-positive site likelihood {site_l[bad]:g} at pattern "
                f"{bad}; tree or model is numerically degenerate"
            )

    @_guarded
    def site_log_likelihoods(
        self, z_left, z_right, exps, rate_weights, scale_counts
    ):
        t0 = time.perf_counter()
        site_l = self._site_linear(z_left, z_right, exps, rate_weights)
        self._check_positive(site_l)
        out = np.log(site_l)
        out -= scale_counts * LOG_SCALE_STEP
        self._finish(
            KernelKind.EVALUATE, out.shape[0], t0,
            z_left, z_right, exps, scale_counts, out,
        )
        return out

    @_guarded
    def evaluate_edge(
        self, z_left, z_right, exps, rate_weights, pattern_weights, scale_counts
    ):
        t0 = time.perf_counter()
        site_l = self._site_linear(z_left, z_right, exps, rate_weights)
        self._check_positive(site_l)
        lnls = np.log(site_l)
        lnls -= scale_counts * LOG_SCALE_STEP
        lnl = float(np.dot(lnls, pattern_weights))
        self._finish(
            KernelKind.EVALUATE, site_l.shape[0], t0,
            z_left, z_right, exps, pattern_weights, scale_counts,
        )
        return lnl

    # -- derivatives ---------------------------------------------------
    @_guarded
    def derivative_sum(self, z_left, z_right):
        t0 = time.perf_counter()
        p, c, k = np.broadcast_shapes(z_left.shape, z_right.shape)
        zl = np.broadcast_to(np.asarray(z_left, dtype=np.float64), (p, c, k))
        zr = np.broadcast_to(np.asarray(z_right, dtype=np.float64), (p, c, k))
        lib = self._lib(k, c)
        out = np.empty((p, c, k))
        lib.ew_product(
            p, zl.ctypes.data, *_estrides(zl),
            zr.ctypes.data, *_estrides(zr), out.ctypes.data,
        )
        self._finish(
            KernelKind.DERIVATIVE_SUM, p, t0, z_left, z_right, out
        )
        return out

    @staticmethod
    def _factor_tables(eigenvalues, rates, rate_weights, t):
        """The reference kernels' ``m0/m1/m2`` weight tables (NumPy exp)."""
        g = np.multiply.outer(np.asarray(rates, dtype=np.float64), eigenvalues)
        e = np.exp(g * t)
        m0 = rate_weights[:, None] * e
        m1 = m0 * g
        m2 = m1 * g
        return _f64(m0), _f64(m1), _f64(m2)

    def _site_terms(self, sumbuf, eigenvalues, rates, rate_weights, t):
        m0, m1, m2 = self._factor_tables(eigenvalues, rates, rate_weights, t)
        c, k = m0.shape
        p = np.broadcast_shapes(sumbuf.shape, (1, c, k))[0]
        sb = np.broadcast_to(np.asarray(sumbuf, dtype=np.float64), (p, c, k))
        lib = self._lib(k, c)
        l0, l1, l2 = np.empty(p), np.empty(p), np.empty(p)
        lib.deriv_site_terms(
            p, sb.ctypes.data, *_estrides(sb),
            m0.ctypes.data, m1.ctypes.data, m2.ctypes.data,
            l0.ctypes.data, l1.ctypes.data, l2.ctypes.data,
        )
        return l0, l1, l2

    @_guarded
    def derivative_site_terms(self, sumbuf, eigenvalues, rates, rate_weights, t):
        t0 = time.perf_counter()
        out = self._site_terms(sumbuf, eigenvalues, rates, rate_weights, t)
        self._finish(
            KernelKind.DERIVATIVE_CORE, sumbuf.shape[0], t0, sumbuf, *out
        )
        return out

    @_guarded
    def derivative_core(
        self, sumbuf, eigenvalues, rates, rate_weights, t, pattern_weights
    ):
        t0 = time.perf_counter()
        l0, l1, l2 = self._site_terms(sumbuf, eigenvalues, rates, rate_weights, t)
        out = kernels.derivative_reduce(l0, l1, l2, pattern_weights)
        self._finish(
            KernelKind.DERIVATIVE_CORE, sumbuf.shape[0], t0,
            sumbuf, pattern_weights,
        )
        return out

    # -- fused edge gradient (up-sweep) --------------------------------
    def _gradient_terms(
        self, z_top, z_bottom, eigenvalues, rates, rate_weights, t
    ):
        m0, m1, m2 = self._factor_tables(eigenvalues, rates, rate_weights, t)
        c, k = m0.shape
        p = np.broadcast_shapes(z_top.shape, z_bottom.shape, (1, c, k))[0]
        zt = np.broadcast_to(np.asarray(z_top, dtype=np.float64), (p, c, k))
        zb = np.broadcast_to(np.asarray(z_bottom, dtype=np.float64), (p, c, k))
        lib = self._lib(k, c)
        l0, l1, l2 = np.empty(p), np.empty(p), np.empty(p)
        lib.grad_site_terms(
            p, zt.ctypes.data, *_estrides(zt),
            zb.ctypes.data, *_estrides(zb),
            m0.ctypes.data, m1.ctypes.data, m2.ctypes.data,
            l0.ctypes.data, l1.ctypes.data, l2.ctypes.data,
        )
        return l0, l1, l2

    @_guarded
    def edge_gradient(
        self, z_top, z_bottom, eigenvalues, rates, rate_weights, t, pattern_weights
    ):
        t0 = time.perf_counter()
        l0, l1, l2 = self._gradient_terms(
            z_top, z_bottom, eigenvalues, rates, rate_weights, t
        )
        out = kernels.derivative_reduce(l0, l1, l2, pattern_weights)
        self._finish(
            KernelKind.EDGE_GRADIENT, l0.shape[0], t0,
            z_top, z_bottom, pattern_weights,
        )
        return out

    @_guarded
    def edge_gradient_terms(
        self, z_top, z_bottom, eigenvalues, rates, rate_weights, t
    ):
        t0 = time.perf_counter()
        out = self._gradient_terms(
            z_top, z_bottom, eigenvalues, rates, rate_weights, t
        )
        self._finish(
            KernelKind.EDGE_GRADIENT, out[0].shape[0], t0,
            z_top, z_bottom, *out,
        )
        return out
