"""Compile-and-cache layer for the generated PLF kernels.

Turns the C source from :mod:`repro.core.ckernels.codegen` into a
loadable shared object using only the standard library and the system
compiler — no build-system or packaging dependency, no network:

* the compiler comes from ``$CC`` when set, else the first of ``cc``,
  ``gcc``, ``clang`` found on ``PATH``;
* base flags are ``-O3 -fPIC -shared -ffp-contract=off`` (the contract
  flag is load-bearing: GCC's default FMA contraction would change
  results at the last ulp and break the parity contract in
  ``codegen``); ``-march=native`` is added when a one-shot probe
  compile accepts it;
* shared objects land in a cache directory (``$REPRO_CKERNEL_CACHE``,
  default ``~/.cache/repro/ckernels``) keyed by
  source-hash x compiler x flags x NumPy version, compiled to a
  temporary name and published with an atomic ``os.replace`` so
  concurrent processes never observe a half-written ``.so``;
* every failure mode (no compiler, compile error, unloadable object)
  raises :class:`CompilerUnavailable` with a reason the backend turns
  into its one-time fallback warning and ``repro backends`` displays
  verbatim.
"""

from __future__ import annotations

import ctypes
import os
import shutil
import subprocess
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .codegen import render_source, source_digest

__all__ = [
    "CACHE_ENV",
    "CompilerUnavailable",
    "BuildSpec",
    "ProbeStatus",
    "default_cache_dir",
    "find_compiler",
    "probe_toolchain",
    "probe_status",
    "load_kernels",
]

#: Environment variable overriding the shared-object cache directory.
CACHE_ENV = "REPRO_CKERNEL_CACHE"

_BASE_FLAGS = ("-O3", "-fPIC", "-shared", "-ffp-contract=off")

_PROBE_SOURCE = "int repro_probe(void) { return 42; }\n"


class CompilerUnavailable(RuntimeError):
    """No usable C toolchain (missing compiler, failed compile, ...)."""


def default_cache_dir() -> Path:
    """Cache directory for compiled kernels (honours :data:`CACHE_ENV`)."""
    override = os.environ.get(CACHE_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "ckernels"


def find_compiler() -> str:
    """The C compiler command, or raise :class:`CompilerUnavailable`.

    ``$CC`` wins when set — including when it points at a nonexistent
    path, which is how CI exercises the fallback (``CC=/nonexistent``):
    an explicit-but-broken setting must *not* silently fall through to
    a working system compiler.
    """
    cc = os.environ.get("CC")
    if cc:
        resolved = shutil.which(cc)
        if resolved is None:
            raise CompilerUnavailable(
                f"$CC={cc!r} is not an executable compiler"
            )
        return resolved
    for cand in ("cc", "gcc", "clang"):
        resolved = shutil.which(cand)
        if resolved is not None:
            return resolved
    raise CompilerUnavailable(
        "no C compiler found (tried $CC, cc, gcc, clang)"
    )


@dataclass(frozen=True)
class BuildSpec:
    """Resolved toolchain: compiler plus the final flag set."""

    compiler: str
    flags: tuple[str, ...]

    def cache_key_extra(self) -> str:
        """Non-source part of the shared-object cache key."""
        return "|".join(
            (self.compiler, *self.flags, "numpy=" + np.__version__)
        )


@dataclass
class ProbeStatus:
    """What ``repro backends`` reports about the compiled toolchain."""

    available: bool
    compiler: str | None = None
    flags: tuple[str, ...] = ()
    cache_dir: str = ""
    cached_objects: list[str] = field(default_factory=list)
    reason: str | None = None  # fallback reason when unavailable

    def to_dict(self) -> dict:
        return {
            "available": self.available,
            "compiler": self.compiler,
            "flags": list(self.flags),
            "cache_dir": self.cache_dir,
            "cached_objects": list(self.cached_objects),
            "reason": self.reason,
        }


def _try_compile(
    compiler: str, flags: tuple[str, ...], source: str, out_path: Path
) -> tuple[bool, str]:
    """Compile ``source`` to ``out_path``; return (ok, stderr)."""
    with tempfile.TemporaryDirectory(prefix="repro-cc-") as tmp:
        src = Path(tmp) / "kernel.c"
        src.write_text(source)
        cmd = [compiler, *flags, str(src), "-o", str(out_path), "-lm"]
        try:
            proc = subprocess.run(
                cmd, capture_output=True, text=True, timeout=120
            )
        except (OSError, subprocess.TimeoutExpired) as exc:
            return False, str(exc)
        if proc.returncode != 0:
            return False, proc.stderr.strip() or f"exit {proc.returncode}"
        return True, ""


_spec_cache: BuildSpec | None = None


def probe_toolchain(refresh: bool = False) -> BuildSpec:
    """Resolve compiler + flags, probing ``-march=native`` support once.

    The result is memoised per process (a probe costs one tiny compile);
    pass ``refresh=True`` after changing ``$CC`` mid-process (tests).
    """
    global _spec_cache
    if _spec_cache is not None and not refresh:
        return _spec_cache
    compiler = find_compiler()
    flags = _BASE_FLAGS
    with tempfile.TemporaryDirectory(prefix="repro-cc-") as tmp:
        probe_so = Path(tmp) / "probe.so"
        ok, err = _try_compile(compiler, flags, _PROBE_SOURCE, probe_so)
        if not ok:
            raise CompilerUnavailable(
                f"compiler {compiler!r} failed a probe compile: {err}"
            )
        native = (*flags, "-march=native")
        ok, _ = _try_compile(compiler, native, _PROBE_SOURCE, probe_so)
        if ok:
            flags = native
    _spec_cache = BuildSpec(compiler=compiler, flags=flags)
    return _spec_cache


def _object_path(states: int, rates: int, digest: str, cache_dir: Path) -> Path:
    return cache_dir / f"plf_{states}s_{rates}r_{digest}.so"


def load_kernels(
    states: int,
    rates: int,
    spec: BuildSpec | None = None,
    cache_dir: Path | None = None,
) -> ctypes.CDLL:
    """Compile (or reuse) and load the kernels for one (states, rates).

    Cache hits skip the compiler entirely; misses compile into the cache
    under a temporary name and publish atomically, so parallel workers
    racing on a cold cache each produce a valid object and the last
    rename wins (the contents are identical by construction).
    """
    if spec is None:
        spec = probe_toolchain()
    if cache_dir is None:
        cache_dir = default_cache_dir()
    source = render_source(states, rates)
    digest = source_digest(source, spec.cache_key_extra())
    so_path = _object_path(states, rates, digest, cache_dir)
    if not so_path.exists():
        cache_dir.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(cache_dir), prefix=so_path.stem + ".", suffix=".tmp"
        )
        os.close(fd)
        tmp_path = Path(tmp_name)
        try:
            ok, err = _try_compile(spec.compiler, spec.flags, source, tmp_path)
            if not ok:
                raise CompilerUnavailable(
                    f"compiling PLF kernels ({states} states, {rates} rates) "
                    f"failed: {err}"
                )
            os.replace(tmp_path, so_path)
        finally:
            if tmp_path.exists():
                tmp_path.unlink()
    try:
        lib = ctypes.CDLL(str(so_path))
    except OSError as exc:
        raise CompilerUnavailable(
            f"cached kernel object {so_path} failed to load: {exc}"
        ) from exc
    _declare(lib)
    return lib


def probe_status() -> ProbeStatus:
    """Availability report for ``repro backends`` (never raises)."""
    cache_dir = default_cache_dir()
    cached = (
        sorted(p.name for p in cache_dir.glob("plf_*.so"))
        if cache_dir.is_dir()
        else []
    )
    try:
        spec = probe_toolchain()
    except CompilerUnavailable as exc:
        return ProbeStatus(
            available=False,
            cache_dir=str(cache_dir),
            cached_objects=cached,
            reason=str(exc),
        )
    return ProbeStatus(
        available=True,
        compiler=spec.compiler,
        flags=spec.flags,
        cache_dir=str(cache_dir),
        cached_objects=cached,
    )


def _declare(lib: ctypes.CDLL) -> None:
    """Attach argtypes: pointers travel as raw addresses (c_void_p)."""
    i64 = ctypes.c_int64
    ptr = ctypes.c_void_p
    lib.nv_inner_inner.argtypes = [i64, ptr, i64, i64] + [ptr] * 4 + [
        ptr, ptr, ptr, ptr
    ]
    lib.nv_inner_inner.restype = None
    lib.nv_tip_inner.argtypes = [
        i64, ptr, i64, i64, ptr, i64, ptr, ptr, ptr, ptr, ptr, ptr
    ]
    lib.nv_tip_inner.restype = None
    lib.nv_tip_tip.argtypes = [
        i64, ptr, i64, i64, ptr, i64, ptr, ptr, i64, ptr, ptr
    ]
    lib.nv_tip_tip.restype = None
    lib.tip_pair_table.argtypes = [ptr, i64, i64, ptr, i64, ptr, i64, ptr]
    lib.tip_pair_table.restype = None
    lib.evaluate_site.argtypes = [
        i64, ptr, i64, i64, i64, ptr, i64, i64, i64, ptr, ptr, ptr
    ]
    lib.evaluate_site.restype = None
    lib.deriv_site_terms.argtypes = [
        i64, ptr, i64, i64, i64, ptr, ptr, ptr, ptr, ptr, ptr
    ]
    lib.deriv_site_terms.restype = None
    lib.grad_site_terms.argtypes = [
        i64, ptr, i64, i64, i64, ptr, i64, i64, i64,
        ptr, ptr, ptr, ptr, ptr, ptr,
    ]
    lib.grad_site_terms.restype = None
    lib.ew_product.argtypes = [
        i64, ptr, i64, i64, i64, ptr, i64, i64, i64, ptr
    ]
    lib.ew_product.restype = None
