"""Compiled C kernel backend (codegen + build cache + ctypes shim).

See :mod:`repro.core.ckernels.codegen` for the numerical contract,
:mod:`repro.core.ckernels.build` for the toolchain/cache layer, and
:mod:`repro.core.ckernels.backend` for the :class:`CompiledBackend`
that registers as ``backend="compiled"``.
"""

from .backend import CompiledBackend
from .build import (
    CACHE_ENV,
    CompilerUnavailable,
    ProbeStatus,
    default_cache_dir,
    probe_status,
    probe_toolchain,
)
from .codegen import render_source, source_digest

__all__ = [
    "CompiledBackend",
    "CACHE_ENV",
    "CompilerUnavailable",
    "ProbeStatus",
    "default_cache_dir",
    "probe_status",
    "probe_toolchain",
    "render_source",
    "source_digest",
]
