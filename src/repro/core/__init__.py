"""The paper's core contribution: the PLF kernels and likelihood engine.

``kernels`` holds the NumPy reference implementations of ``newview``,
``evaluate``, ``derivativeSum`` and ``derivativeCore``; ``engine`` wires
them to trees and alignments with structural CLA validity tracking;
``traversal``/``schedule`` levelize traversal descriptors into
dependency waves and execute them with batched kernel dispatch;
``vectorized`` re-expresses the kernels as vector programs for the
simulated MIC (:mod:`repro.mic`); ``layouts`` implements the
interleaved memory layout of Sec. V-B3.
"""

from .backends import (
    BackendInfo,
    BackendMismatchError,
    BlockedBackend,
    KernelBackend,
    KernelProfile,
    ReferenceBackend,
    ShadowBackend,
    available_backends,
    get_backend,
    make_engine,
    register_backend,
)
from .cat import CatLikelihoodEngine
from .engine import LikelihoodEngine
from .layouts import InterleavedLayout
from .memsave import MemorySavingEngine
from .partitioned import Partition, PartitionedEngine, partition_workers
from .schedule import (
    FusedPlan,
    FusedWave,
    NewviewCall,
    PlanExecutor,
    WaveProfile,
    WaveStats,
    dispatch_wave,
    fuse_plans,
)
from .traversal import (
    ExecutionPlan,
    KernelCounters,
    KernelKind,
    NewviewOp,
    TraversalDescriptor,
    Wave,
    levelize,
)

__all__ = [
    "BackendInfo",
    "BackendMismatchError",
    "BlockedBackend",
    "KernelBackend",
    "KernelProfile",
    "ReferenceBackend",
    "ShadowBackend",
    "available_backends",
    "get_backend",
    "make_engine",
    "register_backend",
    "CatLikelihoodEngine",
    "LikelihoodEngine",
    "InterleavedLayout",
    "MemorySavingEngine",
    "Partition",
    "PartitionedEngine",
    "partition_workers",
    "FusedPlan",
    "FusedWave",
    "NewviewCall",
    "PlanExecutor",
    "WaveProfile",
    "WaveStats",
    "dispatch_wave",
    "fuse_plans",
    "ExecutionPlan",
    "KernelCounters",
    "KernelKind",
    "NewviewOp",
    "TraversalDescriptor",
    "Wave",
    "levelize",
]
