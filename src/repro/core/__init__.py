"""The paper's core contribution: the PLF kernels and likelihood engine.

``kernels`` holds the NumPy reference implementations of ``newview``,
``evaluate``, ``derivativeSum`` and ``derivativeCore``; ``engine`` wires
them to trees and alignments with structural CLA validity tracking;
``vectorized`` re-expresses the kernels as vector programs for the
simulated MIC (:mod:`repro.mic`); ``layouts`` implements the
interleaved memory layout of Sec. V-B3.
"""

from .backends import (
    BackendInfo,
    BackendMismatchError,
    BlockedBackend,
    KernelBackend,
    KernelProfile,
    ReferenceBackend,
    ShadowBackend,
    available_backends,
    get_backend,
    make_engine,
    register_backend,
)
from .cat import CatLikelihoodEngine
from .engine import LikelihoodEngine
from .layouts import InterleavedLayout
from .memsave import MemorySavingEngine
from .partitioned import Partition, PartitionedEngine, partition_workers
from .traversal import KernelCounters, KernelKind, NewviewOp, TraversalDescriptor

__all__ = [
    "BackendInfo",
    "BackendMismatchError",
    "BlockedBackend",
    "KernelBackend",
    "KernelProfile",
    "ReferenceBackend",
    "ShadowBackend",
    "available_backends",
    "get_backend",
    "make_engine",
    "register_backend",
    "CatLikelihoodEngine",
    "LikelihoodEngine",
    "InterleavedLayout",
    "MemorySavingEngine",
    "Partition",
    "PartitionedEngine",
    "partition_workers",
    "KernelCounters",
    "KernelKind",
    "NewviewOp",
    "TraversalDescriptor",
]
