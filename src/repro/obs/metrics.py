"""Metrics registry: counters, gauges, and log-bucketed histograms.

The tracer (:mod:`repro.obs.spans`) answers "*when* did time go where";
this module answers "*how much*, in aggregate": how many kernels were
dispatched, how wide the waves were, how many CLA slots were recycled,
how many AllReduces of how many bytes were simulated.  Instrumented
code updates metrics through the process-wide default registry
(:func:`get_registry`), gated on the same enabled flag as the tracer so
disabled runs pay nothing.

Three instrument kinds, mirroring the Prometheus data model:

* :class:`Counter` — monotonically increasing totals,
* :class:`Gauge` — last-written values,
* :class:`Histogram` — distributions over **fixed log-scale buckets**
  (geometric bucket bounds, e.g. half-decade steps), the right shape
  for kernel durations spanning six orders of magnitude.

Exporters: :meth:`MetricsRegistry.to_prometheus` (text exposition
format) and :meth:`MetricsRegistry.snapshot` (plain JSON-ready dict, as
embedded in Chrome traces and printed by ``repro backends``/``repro
plan`` when tracing is on).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "log_buckets",
    "escape_help",
    "exposition_name",
    "sanitize_metric_component",
    "lint_metric_names",
    "parse_prometheus_text",
]


def escape_help(text: str) -> str:
    """Escape a HELP string per the Prometheus text exposition format.

    Backslash first (so escapes don't double-escape), then newline —
    the only two characters the format requires escaping in HELP text.
    """
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def exposition_name(name: str, metric) -> str:
    """The name a metric is exposed under on ``/metrics``.

    Counters get the conventional ``_total`` suffix appended when the
    registered name lacks it; gauges and histograms pass through.  The
    internal registry name is untouched — snapshots and Chrome traces
    keep the registered spelling.
    """
    if isinstance(metric, Counter) and not name.endswith("_total"):
        return name + "_total"
    return name


def sanitize_metric_component(text: str) -> str:
    """Make arbitrary text (a tenant name, a label) embeddable in a
    metric name.

    The registry has no label support, so multi-tenant lanes embed the
    tenant in the name itself (``repro_serve_<tenant>_queries_total``).
    Anything outside ``[a-zA-Z0-9_]`` becomes ``_``; a leading digit
    gets a ``_`` prefix so the result stays a valid identifier
    component.  Empty input sanitises to ``_``.
    """
    import re

    out = re.sub(r"[^a-zA-Z0-9_]", "_", text)
    if not out:
        return "_"
    if out[0].isdigit():
        out = "_" + out
    return out


def lint_metric_names(registry: "MetricsRegistry") -> list[str]:
    """Exposition-format problems in a registry's metric names.

    Returns one human-readable complaint per issue (empty = clean):
    counters not ending in ``_total``, names that are not valid
    Prometheus identifiers, and reserved suffixes (``_bucket``,
    ``_sum``, ``_count``) on non-histogram metrics, which would collide
    with histogram sample lines.
    """
    import re

    ident = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
    problems: list[str] = []
    for name in registry.names():
        m = registry.get(name)
        if not ident.match(name):
            problems.append(f"{name}: not a valid metric identifier")
        if isinstance(m, Counter) and not name.endswith("_total"):
            problems.append(
                f"{name}: counter should end in _total "
                f"(exposed as {exposition_name(name, m)})"
            )
        if not isinstance(m, Histogram) and name.endswith(
            ("_bucket", "_sum", "_count")
        ):
            problems.append(
                f"{name}: reserved histogram suffix on a "
                f"{type(m).__name__.lower()}"
            )
    return problems


def parse_prometheus_text(text: str) -> dict[str, dict]:
    """Strict parser for the text exposition format we emit.

    Returns ``{metric_name: {"type", "help", "samples": [(name, labels,
    value), ...]}}`` and raises ``ValueError`` on anything malformed:
    unknown comment keywords, samples with no preceding TYPE, TYPE
    re-declarations, counters without ``_total``, out-of-order
    histogram buckets, or unparsable values.  Used by the round-trip
    unit tests and the CI ``obs-live`` job to validate a real scrape.
    """
    import re

    sample_re = re.compile(
        r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})?\s+(\S+)$"
    )
    families: dict[str, dict] = {}
    current: str | None = None

    def family_of(sample_name: str) -> str | None:
        if sample_name in families:
            return sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            if sample_name.endswith(suffix):
                base = sample_name[: -len(suffix)]
                if base in families and families[base]["type"] == "histogram":
                    return base
        return None

    for ln, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"line {ln}: malformed comment: {raw!r}")
            keyword, name = parts[1], parts[2]
            if keyword == "HELP":
                fam = families.setdefault(
                    name, {"type": None, "help": None, "samples": []}
                )
                if fam["help"] is not None:
                    raise ValueError(f"line {ln}: duplicate HELP for {name}")
                fam["help"] = parts[3] if len(parts) > 3 else ""
            else:
                if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"
                ):
                    raise ValueError(f"line {ln}: bad TYPE line: {raw!r}")
                fam = families.setdefault(
                    name, {"type": None, "help": None, "samples": []}
                )
                if fam["type"] is not None:
                    raise ValueError(f"line {ln}: duplicate TYPE for {name}")
                fam["type"] = parts[3]
                current = name
            continue
        m = sample_re.match(line)
        if not m:
            raise ValueError(f"line {ln}: malformed sample: {raw!r}")
        sname, rawlabels, rawvalue = m.groups()
        try:
            value = float(rawvalue)
        except ValueError as exc:
            raise ValueError(f"line {ln}: bad value {rawvalue!r}") from exc
        labels: dict[str, str] = {}
        if rawlabels:
            body = rawlabels[1:-1].rstrip(",")
            if body:
                for pair in body.split(","):
                    k, _, v = pair.partition("=")
                    if not (len(v) >= 2 and v[0] == '"' and v[-1] == '"'):
                        raise ValueError(
                            f"line {ln}: unquoted label value in {raw!r}"
                        )
                    labels[k.strip()] = v[1:-1]
        fam_name = family_of(sname)
        if fam_name is None or fam_name != current:
            raise ValueError(
                f"line {ln}: sample {sname!r} outside its TYPE block"
            )
        fam = families[fam_name]
        if fam["type"] == "counter" and not sname.endswith("_total"):
            raise ValueError(f"line {ln}: counter sample without _total")
        fam["samples"].append((sname, labels, value))

    for name, fam in families.items():
        if fam["type"] is None:
            raise ValueError(f"metric {name}: HELP without TYPE")
        if fam["type"] == "histogram":
            buckets = [
                (labels.get("le"), value)
                for sname, labels, value in fam["samples"]
                if sname.endswith("_bucket")
            ]
            if not buckets or buckets[-1][0] != "+Inf":
                raise ValueError(f"metric {name}: histogram missing +Inf")
            counts = [v for _, v in buckets]
            if counts != sorted(counts):
                raise ValueError(
                    f"metric {name}: bucket counts not cumulative"
                )
    return families


def log_buckets(
    lo: float = 1e-7, hi: float = 100.0, per_decade: int = 2
) -> tuple[float, ...]:
    """Geometric histogram bucket upper bounds from ``lo`` to >= ``hi``.

    Bounds are ``lo * 10**(i / per_decade)`` — fixed log-scale steps, so
    a value's bucket is a pure ``bisect`` with no dynamic resizing.  The
    defaults (100 ns .. 100 s at half-decade resolution) cover every
    duration this codebase measures.
    """
    if lo <= 0 or hi <= lo:
        raise ValueError("need 0 < lo < hi")
    if per_decade < 1:
        raise ValueError("per_decade must be >= 1")
    bounds = []
    i = 0
    while True:
        b = lo * 10.0 ** (i / per_decade)
        bounds.append(b)
        if b >= hi:
            return tuple(bounds)
        i += 1


@dataclass
class Counter:
    """A monotonically increasing total."""

    name: str
    help: str = ""
    value: float = 0.0

    def inc(self, n: float = 1.0) -> None:
        """Add ``n`` (must be non-negative) to the counter."""
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n

    def reset(self) -> None:
        """Zero the counter (registration survives)."""
        self.value = 0.0

    def to_dict(self) -> dict:
        """JSON-ready snapshot entry."""
        return {"type": "counter", "value": self.value}


@dataclass
class Gauge:
    """A value that goes up and down (last write wins)."""

    name: str
    help: str = ""
    value: float = 0.0

    def set(self, v: float) -> None:
        """Overwrite the gauge value."""
        self.value = float(v)

    def inc(self, n: float = 1.0) -> None:
        """Add ``n`` (may be negative) to the gauge."""
        self.value += n

    def reset(self) -> None:
        """Zero the gauge (registration survives)."""
        self.value = 0.0

    def to_dict(self) -> dict:
        """JSON-ready snapshot entry."""
        return {"type": "gauge", "value": self.value}


@dataclass
class Histogram:
    """Distribution over fixed log-scale buckets.

    ``bucket_counts[i]`` counts observations ``v`` with
    ``v <= bounds[i]`` and ``v > bounds[i-1]``; the final implicit
    ``+Inf`` bucket (``overflow``) catches everything beyond the last
    bound.  ``count``/``total``/``vmin``/``vmax`` summarise the raw
    stream, so mean and range survive the bucketing.
    """

    name: str
    help: str = ""
    bounds: tuple[float, ...] = field(default_factory=log_buckets)
    bucket_counts: list[int] = field(default_factory=list)
    overflow: int = 0
    count: int = 0
    total: float = 0.0
    vmin: float = float("inf")
    vmax: float = float("-inf")

    def __post_init__(self) -> None:
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("histogram bounds must be strictly increasing")
        if not self.bucket_counts:
            self.bucket_counts = [0] * len(self.bounds)
        elif len(self.bucket_counts) != len(self.bounds):
            raise ValueError("bucket_counts length mismatch")

    def observe(self, v: float) -> None:
        """Record one observation."""
        i = bisect_left(self.bounds, v)
        if i < len(self.bounds):
            self.bucket_counts[i] += 1
        else:
            self.overflow += 1
        self.count += 1
        self.total += v
        self.vmin = min(self.vmin, v)
        self.vmax = max(self.vmax, v)

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def cumulative(self) -> list[int]:
        """Prometheus-style cumulative counts per bound (plus +Inf last)."""
        out = []
        running = 0
        for c in self.bucket_counts:
            running += c
            out.append(running)
        out.append(running + self.overflow)
        return out

    def reset(self) -> None:
        """Zero every bucket and summary stat (bounds survive)."""
        self.bucket_counts = [0] * len(self.bounds)
        self.overflow = 0
        self.count = 0
        self.total = 0.0
        self.vmin = float("inf")
        self.vmax = float("-inf")

    def to_dict(self) -> dict:
        """JSON-ready snapshot entry."""
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.vmin if self.count else None,
            "max": self.vmax if self.count else None,
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "overflow": self.overflow,
        }


class MetricsRegistry:
    """Name-keyed collection of instruments with get-or-create access.

    Instrument accessors are idempotent: the first call registers, later
    calls return the existing instrument (and raise ``TypeError`` if the
    name is already bound to a different kind — silent type morphing is
    how metric bugs hide).
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, cls, name: str, help_: str, **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {name!r} is a {type(existing).__name__}, "
                    f"not a {cls.__name__}"
                )
            return existing
        metric = cls(name=name, help=help_, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the counter ``name``."""
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", bounds: tuple[float, ...] | None = None
    ) -> Histogram:
        """Get or create the histogram ``name`` (default log buckets)."""
        if bounds is None:
            return self._get_or_create(Histogram, name, help)
        return self._get_or_create(Histogram, name, help, bounds=bounds)

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> list[str]:
        """Registered metric names, sorted."""
        return sorted(self._metrics)

    def get(self, name: str):
        """The instrument registered under ``name``, or ``None``."""
        return self._metrics.get(name)

    def snapshot(self) -> dict[str, dict]:
        """JSON-ready dump of every instrument, keyed by name."""
        return {name: m.to_dict() for name, m in sorted(self._metrics.items())}

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (one block per metric).

        Counter names are normalised to the ``_total`` convention via
        :func:`exposition_name` and HELP text is escaped via
        :func:`escape_help`; the output round-trips through the strict
        :func:`parse_prometheus_text` parser (a unit test holds it to
        that).
        """
        lines: list[str] = []
        for name, m in sorted(self._metrics.items()):
            exposed = exposition_name(name, m)
            if m.help:
                lines.append(f"# HELP {exposed} {escape_help(m.help)}")
            if isinstance(m, Counter):
                lines.append(f"# TYPE {exposed} counter")
                lines.append(f"{exposed} {m.value:g}")
            elif isinstance(m, Gauge):
                lines.append(f"# TYPE {exposed} gauge")
                lines.append(f"{exposed} {m.value:g}")
            else:
                lines.append(f"# TYPE {exposed} histogram")
                cumulative = m.cumulative()
                for bound, c in zip(m.bounds, cumulative):
                    lines.append(f'{exposed}_bucket{{le="{bound:g}"}} {c}')
                lines.append(
                    f'{exposed}_bucket{{le="+Inf"}} {cumulative[-1]}'
                )
                lines.append(f"{exposed}_sum {m.total:g}")
                lines.append(f"{exposed}_count {m.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        """Zero every instrument's state; registrations survive."""
        for m in self._metrics.values():
            m.reset()

    def clear(self) -> None:
        """Forget every registered instrument."""
        self._metrics.clear()


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry instrumented code writes to."""
    return _REGISTRY
