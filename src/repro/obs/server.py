"""Live observability plane: a scrapeable metrics/health/progress endpoint.

Everything :mod:`repro.obs` records today becomes visible only *after* a
run writes its Chrome trace.  This module makes the same signals
inspectable **while the run is alive**, the way BEAGLE keeps long-lived
instances inspectable behind a stable API: an opt-in, stdlib-only HTTP
server on a background thread answering three routes:

* ``/metrics``  — the default :class:`~repro.obs.metrics.MetricsRegistry`
  in Prometheus text exposition format (scrapeable as-is);
* ``/healthz``  — JSON liveness: worker-pool state (alive/dead/adopted
  workers of every registered pool), the shared-memory arena-leak probe,
  last-checkpoint age, and any degradation events (worker/rank deaths)
  reported by the fault-recovery paths.  HTTP 200 while healthy, 503
  once degraded — a dying rank shows up here *before* the run ends;
* ``/progress`` — JSON from the search driver's step clock: current
  stage / SPR round, the likelihood trajectory, and an ETA extrapolated
  from the measured per-step costs.

**Zero cost when disabled.**  Instrumented code (the search driver, EPA
placement, checkpoint writer, worker pool, distributed engine) funnels
through module-level gate functions (:func:`progress_begin`,
:func:`progress_update`, :func:`health_event`, …) that first read the
module-level :data:`ENABLED` flag — the same ~20 ns guard discipline as
:mod:`repro.obs.spans`, enforced by the quality gates.  The flag only
turns on when :func:`serve` starts a server (``--serve-metrics PORT`` on
the CLI, or the :data:`SERVE_ENV` environment variable).

Quickstart::

    repro search big.phy --serve-metrics 8765 &
    curl localhost:8765/progress   # stage, lnL trajectory, ETA
    curl localhost:8765/healthz    # pools, arenas, checkpoint age
    curl localhost:8765/metrics    # Prometheus exposition
"""

from __future__ import annotations

import json
import os
import threading
import time
import weakref
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import urlsplit

from .metrics import get_registry

__all__ = [
    "SERVE_ENV",
    "ENABLED",
    "ProgressState",
    "HealthState",
    "ObsServer",
    "serve",
    "get_server",
    "env_port",
    "progress",
    "health",
    "progress_begin",
    "progress_update",
    "progress_finish",
    "progress_fail",
    "health_event",
    "checkpoint_written",
    "register_pool",
]

#: Environment variable naming the port to serve on; when set, the CLI
#: starts the observability server for any subcommand.
SERVE_ENV = "REPRO_METRICS_PORT"

#: Module-level master switch.  Gate functions check this flag before
#: doing *any* work; while it is ``False`` every hook is a single
#: attribute load and branch.
ENABLED: bool = False


class ProgressState:
    """The live view of one long-running task's step clock.

    The search driver (:func:`repro.search.ml_search`) and EPA placement
    (:func:`repro.search.epa.place_queries`) report their checkpointable
    steps here; ``/progress`` renders the state as JSON.  The ETA is
    extrapolated from the *measured* per-step costs (the same step clock
    that drives checkpointing): with ``k`` of ``n`` steps done in
    ``elapsed`` seconds, ``eta = elapsed / k * (n - k)`` — never
    negative, and strictly decreasing while per-step cost is constant.

    All mutators take an optional ``now`` (``time.monotonic`` seconds)
    so tests can drive a deterministic clock; reads and writes are
    lock-protected because the HTTP thread polls while the run mutates.
    """

    #: lnL trajectory entries kept (oldest dropped beyond this).
    MAX_TRAJECTORY = 512

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.reset()

    def reset(self) -> None:
        """Forget everything; the next :meth:`begin` starts fresh."""
        with self._lock:
            self.task: str = ""
            self.started_at: float | None = None
            self.finished_at: float | None = None
            self.total_steps: int | None = None
            self.steps_done: int = 0
            self.last_step_at: float | None = None
            self.stage: str = ""
            self.spr_round: int = 0
            self.spr_radius_idx: int = 0
            self.lnl: float | None = None
            self.trajectory: list[tuple[str, float | None, float]] = []
            self.info: dict = {}

    def begin(
        self,
        task: str,
        total_steps: int | None = None,
        now: float | None = None,
        **info,
    ) -> None:
        """Start a new task's clock (clears any previous task)."""
        self.reset()
        with self._lock:
            self.task = task
            self.total_steps = total_steps
            self.started_at = now if now is not None else time.monotonic()
            self.last_step_at = self.started_at
            self.stage = "start"
            self.info = dict(info)

    def update(
        self,
        stage: str,
        lnl: float | None = None,
        step_done: bool = True,
        spr_round: int = 0,
        spr_radius_idx: int = 0,
        now: float | None = None,
    ) -> None:
        """Record one completed step (or a stage change without one)."""
        now = now if now is not None else time.monotonic()
        with self._lock:
            if self.started_at is None:  # update without begin: self-start
                self.started_at = now
                self.last_step_at = now
            self.stage = stage
            if lnl is not None:
                self.lnl = float(lnl)
            self.spr_round = spr_round
            self.spr_radius_idx = spr_radius_idx
            if step_done:
                self.steps_done += 1
                self.last_step_at = now
            self.trajectory.append(
                (stage, None if lnl is None else float(lnl), now)
            )
            del self.trajectory[: -self.MAX_TRAJECTORY]

    def finish(self, lnl: float | None = None, now: float | None = None) -> None:
        """Mark the task complete; ETA pins to zero."""
        now = now if now is not None else time.monotonic()
        with self._lock:
            self.finished_at = now
            if lnl is not None:
                self.lnl = float(lnl)
            self.stage = "done"

    def fail(self, error: str, now: float | None = None) -> None:
        """Mark the task failed — never leave ``/progress`` in-flight.

        The snapshot reports ``done: true`` with ``stage: "failed"`` and
        the error string under ``info["error"]``, so a poller (or the
        placement server) can distinguish a crash from a stale run.
        """
        now = now if now is not None else time.monotonic()
        with self._lock:
            self.finished_at = now
            self.stage = "failed"
            self.info = {**self.info, "error": error}

    def eta_seconds(self, now: float | None = None) -> float | None:
        """Projected remaining seconds; ``None`` while unknown.

        Unknown until at least one step has been measured (or when no
        ``total_steps`` target was declared).  Never negative: remaining
        steps clamp at zero, and per-step cost is a mean of measured
        non-negative durations.
        """
        now = now if now is not None else time.monotonic()
        with self._lock:
            return self._eta_locked(now)

    def _eta_locked(self, now: float) -> float | None:
        if self.finished_at is not None:
            return 0.0
        if (
            self.started_at is None
            or self.total_steps is None
            or self.steps_done == 0
        ):
            return None
        remaining = max(self.total_steps - self.steps_done, 0)
        measured = max((self.last_step_at or now) - self.started_at, 0.0)
        per_step = measured / self.steps_done
        return per_step * remaining

    def snapshot(self, now: float | None = None) -> dict:
        """JSON-ready dump of the live progress state."""
        now = now if now is not None else time.monotonic()
        with self._lock:
            started = self.started_at
            return {
                "task": self.task,
                "stage": self.stage,
                "spr_round": self.spr_round,
                "spr_radius_idx": self.spr_radius_idx,
                "steps_done": self.steps_done,
                "total_steps": self.total_steps,
                "lnl": self.lnl,
                "lnl_trajectory": [
                    {
                        "stage": stage,
                        "lnl": lnl,
                        "t_s": round(t - started, 6) if started else 0.0,
                    }
                    for stage, lnl, t in self.trajectory
                ],
                "elapsed_s": (now - started) if started is not None else None,
                "eta_s": self._eta_locked(now),
                "done": self.finished_at is not None,
                **({"info": self.info} if self.info else {}),
            }


class HealthState:
    """Aggregated liveness: pools, arenas, checkpoints, degradations.

    The fault-recovery paths (worker-pool adoption, distributed rank
    death) report :meth:`event`\\ s here; the checkpoint writer stamps
    every snapshot it lands; worker pools register themselves (weakly)
    so ``/healthz`` can show per-pool alive/dead counts.  The status is
    ``"degraded"`` once any degradation event has fired or any live pool
    reports dead workers — visible to a poller *before* the run ends.
    """

    #: Degradation events kept (oldest dropped beyond this).
    MAX_EVENTS = 128

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pools: "weakref.WeakSet" = weakref.WeakSet()
        self.reset()

    def reset(self) -> None:
        """Clear events and checkpoint stamps (pool registry survives)."""
        with self._lock:
            self.events: list[dict] = []
            self.last_checkpoint_at: float | None = None
            self.last_checkpoint: dict = {}

    def register_pool(self, pool) -> None:
        """Track a worker pool (weakly) for per-pool liveness reporting."""
        with self._lock:
            self._pools.add(pool)

    def event(self, kind: str, now: float | None = None, **details) -> None:
        """Record one degradation event (worker death, rank death, …)."""
        now = now if now is not None else time.monotonic()
        with self._lock:
            self.events.append({"kind": kind, "t": now, **details})
            del self.events[: -self.MAX_EVENTS]

    def checkpoint_written(
        self, path: str, step: int, now: float | None = None
    ) -> None:
        """Stamp the most recent checkpoint write (for the age probe)."""
        now = now if now is not None else time.monotonic()
        with self._lock:
            self.last_checkpoint_at = now
            self.last_checkpoint = {"path": path, "step": step}

    def _pool_report(self) -> list[dict]:
        out = []
        for pool in list(self._pools):
            try:
                out.append(
                    {
                        "label": getattr(pool, "label", ""),
                        "workers": pool.n_workers,
                        "alive": len(pool.alive),
                        "dead": sorted(pool.dead),
                        "adoptions": {
                            str(g): a for g, a in sorted(pool.adoptions.items())
                        },
                        "closed": bool(getattr(pool, "_closed", False)),
                        "regions": pool.barrier_stats.regions,
                    }
                )
            except Exception:  # a pool torn down mid-probe is not a crash
                continue
        return out

    def snapshot(self, now: float | None = None) -> dict:
        """JSON-ready liveness report (the ``/healthz`` body)."""
        now = now if now is not None else time.monotonic()
        from ..parallel.shm import active_arena_segments

        arenas = active_arena_segments()
        with self._lock:
            pools = self._pool_report()
            events = list(self.events)
            ck_at = self.last_checkpoint_at
            ck = dict(self.last_checkpoint)
        open_pools = [p for p in pools if not p["closed"]]
        degraded = bool(events) or any(p["dead"] for p in open_pools)
        # Arena segments belonging to no open pool are a leak.
        leak = bool(arenas) and not open_pools
        return {
            "status": "degraded" if degraded else "ok",
            "degradation_events": events,
            "worker_pools": pools,
            "arena_segments": arenas,
            "arena_leak": leak,
            "last_checkpoint": (
                {**ck, "age_s": max(now - ck_at, 0.0)} if ck_at is not None else None
            ),
        }


_PROGRESS = ProgressState()
_HEALTH = HealthState()


def progress() -> ProgressState:
    """The process-wide progress state the gate functions write to."""
    return _PROGRESS


def health() -> HealthState:
    """The process-wide health state the gate functions write to."""
    return _HEALTH


def progress_begin(
    task: str, total_steps: int | None = None, **info
) -> None:
    """Gate entry point: start the progress clock; no-op while disabled."""
    if ENABLED:
        _PROGRESS.begin(task, total_steps=total_steps, **info)


def progress_update(
    stage: str,
    lnl: float | None = None,
    step_done: bool = True,
    spr_round: int = 0,
    spr_radius_idx: int = 0,
) -> None:
    """Gate entry point: record one step/stage; no-op while disabled."""
    if ENABLED:
        _PROGRESS.update(
            stage,
            lnl=lnl,
            step_done=step_done,
            spr_round=spr_round,
            spr_radius_idx=spr_radius_idx,
        )


def progress_finish(lnl: float | None = None) -> None:
    """Gate entry point: mark the task done; no-op while disabled."""
    if ENABLED:
        _PROGRESS.finish(lnl=lnl)


def progress_fail(error: str) -> None:
    """Gate entry point: mark the task failed; no-op while disabled."""
    if ENABLED:
        _PROGRESS.fail(error)


def health_event(kind: str, **details) -> None:
    """Gate entry point for degradation events; no-op while disabled."""
    if ENABLED:
        _HEALTH.event(kind, **details)


def checkpoint_written(path: str, step: int) -> None:
    """Gate entry point for checkpoint stamps; no-op while disabled."""
    if ENABLED:
        _HEALTH.checkpoint_written(path, step)


def register_pool(pool) -> None:
    """Gate entry point for worker-pool liveness; no-op while disabled."""
    if ENABLED:
        _HEALTH.register_pool(pool)


class _Handler(BaseHTTPRequestHandler):
    """Routes GET requests to the three observability documents."""

    server_version = "repro-obs/1.0"
    protocol_version = "HTTP/1.1"

    def _send(self, code: int, body: str, content_type: str) -> None:
        data = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = urlsplit(self.path).path
        if path == "/metrics":
            self._send(
                200,
                get_registry().to_prometheus(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        elif path == "/healthz":
            snap = _HEALTH.snapshot()
            code = 200 if snap["status"] == "ok" else 503
            self._send(code, json.dumps(snap, indent=1), "application/json")
        elif path == "/progress":
            self._send(
                200,
                json.dumps(_PROGRESS.snapshot(), indent=1),
                "application/json",
            )
        elif path == "/":
            self._send(
                200,
                json.dumps({"routes": ["/metrics", "/healthz", "/progress"]}),
                "application/json",
            )
        else:
            self._send(404, json.dumps({"error": f"no route {path}"}),
                       "application/json")

    def log_message(self, fmt: str, *args) -> None:
        """Silence per-request stderr logging (the run's stdout is sacred)."""


class ObsServer:
    """A running observability HTTP server on a daemon thread.

    Binding to port 0 picks an ephemeral port; :attr:`port` always holds
    the actual bound port.  :meth:`stop` shuts the listener down and
    clears the module :data:`ENABLED` gate.  Usable as a context
    manager.
    """

    def __init__(self, port: int = 0, host: str = "127.0.0.1") -> None:
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self.host = host
        self.port = int(self._httpd.server_address[1])
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"repro-obs-server:{self.port}",
            daemon=True,
        )
        self._thread.start()

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return f"http://{self.host}:{self.port}"

    def stop(self) -> None:
        """Shut the listener down and disable the gate flag."""
        global ENABLED, _SERVER
        ENABLED = False
        if _SERVER is self:
            _SERVER = None
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5)

    def __enter__(self) -> "ObsServer":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


_SERVER: ObsServer | None = None


def serve(port: int = 0, host: str = "127.0.0.1") -> ObsServer:
    """Start the observability server and turn the hook gate on.

    Returns the running :class:`ObsServer` (its ``port`` attribute holds
    the bound port — pass ``port=0`` for an ephemeral one).  Starting a
    new server stops any previous one.  Progress and health state are
    reset so the served documents describe this session.
    """
    global ENABLED, _SERVER
    if _SERVER is not None:
        _SERVER.stop()
    server = ObsServer(port=port, host=host)
    _PROGRESS.reset()
    _HEALTH.reset()
    _SERVER = server
    ENABLED = True
    return server


def get_server() -> ObsServer | None:
    """The currently running server, or ``None``."""
    return _SERVER


def env_port() -> int | None:
    """The :data:`SERVE_ENV` port, or ``None`` when unset/empty/invalid."""
    raw = os.environ.get(SERVE_ENV, "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        return None
