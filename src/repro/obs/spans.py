"""Low-overhead span tracer: nestable timed scopes on named tracks.

The paper's whole argument is a set of *timelines*: per-kernel wall
times (Fig. 3), end-to-end search decompositions (Table III), AllReduce
latencies and wave-boundary costs (Fig. 4).  This module records such
timelines from the live system: a :class:`Tracer` accumulates completed
:class:`SpanRecord` intervals (begin/end wall-clock pairs with free-form
attributes) and point-in-time :class:`InstantRecord` markers, each tagged
with a *track* — the lane it renders on, mapped to simulated threads and
MPI ranks by the parallel drivers.

Three usage styles, all funnelled through the same module-level gate:

* context manager — ``with span("spr_round", radius=5): ...``
* decorator — ``@traced("model_opt")`` on any function
* fast path — ``add_complete(name, t0, t1, ...)`` for code that already
  measured its own interval (the kernel dispatch seam), costing one
  flag check and one list append per event.

**Zero cost when disabled.**  Tracing is off by default; every entry
point first reads the module-level :data:`ENABLED` flag and returns a
shared no-op singleton without allocating a span object.  The residual
per-dispatch cost is a single attribute load and branch — the obs
benchmark (``benchmarks/bench_obs.py``) and a quality gate hold it
below 2% of kernel dispatch time.

Enable with :func:`enable` (library), ``--trace out.json`` on
``repro search``/``repro place``, or the ``REPRO_TRACE=/path.json``
environment variable (CLI-wide); export via :mod:`repro.obs.export`.
"""

from __future__ import annotations

import functools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = [
    "TRACE_ENV",
    "ENABLED",
    "SpanRecord",
    "InstantRecord",
    "Tracer",
    "enable",
    "disable",
    "is_enabled",
    "get_tracer",
    "span",
    "instant",
    "add_complete",
    "track_scope",
    "traced",
    "env_trace_path",
    "current_span_stack",
]

#: Environment variable naming the Chrome-trace output path; when set,
#: the CLI enables tracing for any subcommand and writes there on exit.
TRACE_ENV = "REPRO_TRACE"

#: Module-level master switch.  Instrumented call sites check this flag
#: (via :func:`is_enabled` or directly) before doing *any* work; while
#: it is ``False`` no span object is ever allocated.
ENABLED: bool = False

#: The track new records land on when no :func:`track_scope` is active.
DEFAULT_TRACK = "main"


@dataclass(frozen=True)
class SpanRecord:
    """One completed timed interval on a track.

    ``t_start``/``t_end`` are ``time.perf_counter`` seconds; ``seq`` is
    the tracer-wide append index, which makes sorting stable and ties
    deterministic.  Parent/child structure is *implied* by interval
    containment within a track (spans produced by nested context
    managers always nest properly, because the child exits first).
    """

    name: str
    track: str
    t_start: float
    t_end: float
    args: dict[str, Any] | None
    seq: int

    @property
    def duration(self) -> float:
        """Span length in seconds (never negative for recorded spans)."""
        return self.t_end - self.t_start


@dataclass(frozen=True)
class InstantRecord:
    """A point-in-time marker (barrier, AllReduce, eviction, progress)."""

    name: str
    track: str
    ts: float
    args: dict[str, Any] | None
    seq: int


#: Per-thread stacks of the *currently open* context-manager spans,
#: keyed by ``threading.get_ident()``.  Maintained only while tracing is
#: on (``_LiveSpan`` objects only exist then) and read by the sampling
#: profiler (:mod:`repro.obs.profiler`) to attribute wall-clock samples
#: to the innermost instrumented scope.
_OPEN_STACKS: dict[int, list[str]] = {}


def current_span_stack(thread_id: int | None = None) -> tuple[str, ...]:
    """Names of the open context-manager spans of one thread, outermost
    first (empty while tracing is off or nothing is open).

    The pre-measured ``add_complete`` fast path never *opens* a span, so
    kernel-dispatch intervals do not appear here — by design: the
    sampling profiler uses this stack to attribute time *between* the
    instrumented spans.
    """
    if thread_id is None:
        thread_id = threading.get_ident()
    return tuple(_OPEN_STACKS.get(thread_id, ()))


class _LiveSpan:
    """Context manager recording one span into a tracer on exit."""

    __slots__ = ("_tracer", "_name", "_args", "_t0", "_stack")

    def __init__(self, tracer: "Tracer", name: str, args: dict | None) -> None:
        self._tracer = tracer
        self._name = name
        self._args = args

    def __enter__(self) -> "_LiveSpan":
        stack = _OPEN_STACKS.setdefault(threading.get_ident(), [])
        stack.append(self._name)
        self._stack = stack
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        t1 = time.perf_counter()
        if self._stack and self._stack[-1] == self._name:
            self._stack.pop()
        self._tracer.add_complete(
            self._name, self._t0, t1, args=self._args
        )


class _NullSpan:
    """Shared no-op stand-in returned by every gate while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _TrackScope:
    """Context manager switching the tracer's current track."""

    __slots__ = ("_tracer", "_track", "_prev")

    def __init__(self, tracer: "Tracer", track: str) -> None:
        self._tracer = tracer
        self._track = track

    def __enter__(self) -> "_TrackScope":
        self._prev = self._tracer.current_track
        self._tracer.current_track = self._track
        return self

    def __exit__(self, *exc) -> None:
        self._tracer.current_track = self._prev


class Tracer:
    """Accumulates span and instant records for one tracing session.

    A tracer is cheap, append-only state: two record lists, a sequence
    counter, and the current track name.  The simulated-parallel drivers
    switch tracks around each worker's wave (``track_scope("rank-3")``)
    so a single-process simulation still renders as a multi-lane
    timeline, the way a real hybrid run would.
    """

    def __init__(self, description: str = "") -> None:
        self.description = description
        self.spans: list[SpanRecord] = []
        self.instants: list[InstantRecord] = []
        self.current_track: str = DEFAULT_TRACK
        self.created_at = time.perf_counter()
        self._seq = 0

    # -- recording -----------------------------------------------------
    def span(self, name: str, **args: Any) -> _LiveSpan:
        """A context manager timing one nested scope on the current track."""
        return _LiveSpan(self, name, args or None)

    def add_complete(
        self,
        name: str,
        t_start: float,
        t_end: float,
        args: dict[str, Any] | None = None,
        track: str | None = None,
    ) -> None:
        """Record an already-measured interval (the kernel fast path)."""
        self.spans.append(
            SpanRecord(
                name=name,
                track=track if track is not None else self.current_track,
                t_start=t_start,
                t_end=max(t_end, t_start),
                args=args,
                seq=self._seq,
            )
        )
        self._seq += 1

    def instant(
        self, name: str, args: dict[str, Any] | None = None,
        track: str | None = None, ts: float | None = None,
    ) -> None:
        """Record a point event (barrier, AllReduce, eviction, progress)."""
        self.instants.append(
            InstantRecord(
                name=name,
                track=track if track is not None else self.current_track,
                ts=ts if ts is not None else time.perf_counter(),
                args=args,
                seq=self._seq,
            )
        )
        self._seq += 1

    def track_scope(self, track: str) -> _TrackScope:
        """Switch the current track for the duration of a ``with`` block."""
        return _TrackScope(self, track)

    # -- housekeeping --------------------------------------------------
    @property
    def n_events(self) -> int:
        """Total recorded events (spans + instants)."""
        return len(self.spans) + len(self.instants)

    def tracks(self) -> list[str]:
        """Track names in order of first appearance."""
        seen: dict[str, None] = {}
        for rec in sorted(
            [*self.spans, *self.instants], key=lambda r: r.seq
        ):
            seen.setdefault(rec.track, None)
        return list(seen)

    def clear(self) -> None:
        """Drop all recorded events (the session stays enabled)."""
        self.spans.clear()
        self.instants.clear()
        self._seq = 0


# ----------------------------------------------------------------------
# module-level gate
# ----------------------------------------------------------------------
_TRACER: Tracer | None = None


def enable(description: str = "") -> Tracer:
    """Turn tracing on with a fresh :class:`Tracer`; returns it.

    Re-enabling replaces the previous tracer, so every session starts
    from an empty event list.
    """
    global ENABLED, _TRACER
    _TRACER = Tracer(description=description)
    ENABLED = True
    return _TRACER


def disable() -> None:
    """Turn tracing off; the last tracer stays readable via :func:`get_tracer`."""
    global ENABLED
    ENABLED = False


def is_enabled() -> bool:
    """Whether spans are currently being recorded."""
    return ENABLED


def get_tracer() -> Tracer:
    """The active (or most recent) tracer; raises if none was ever enabled."""
    if _TRACER is None:
        raise RuntimeError(
            "tracing was never enabled; call repro.obs.enable() first"
        )
    return _TRACER


def span(name: str, **args: Any):
    """Gate entry point: a live span when enabled, a shared no-op otherwise."""
    if not ENABLED:
        return _NULL_SPAN
    return _TRACER.span(name, **args)


def instant(name: str, **args: Any) -> None:
    """Gate entry point for point events; no-op while disabled."""
    if ENABLED:
        _TRACER.instant(name, args or None)


def add_complete(
    name: str, t_start: float, t_end: float,
    args: dict[str, Any] | None = None, track: str | None = None,
) -> None:
    """Gate entry point for pre-measured intervals; no-op while disabled."""
    if ENABLED:
        _TRACER.add_complete(name, t_start, t_end, args=args, track=track)


def track_scope(track: str):
    """Gate entry point for track switching; a no-op scope while disabled."""
    if not ENABLED:
        return _NULL_SPAN
    return _TRACER.track_scope(track)


def traced(name: str | None = None, **attrs: Any) -> Callable:
    """Decorator tracing every call of a function as one span.

    ``@traced()`` uses the function's qualified name; keyword attributes
    are attached to every recorded span.  While tracing is disabled the
    wrapper adds one flag check per call.
    """

    def decorate(fn: Callable) -> Callable:
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*a, **kw):
            if not ENABLED:
                return fn(*a, **kw)
            with _TRACER.span(label, **attrs):
                return fn(*a, **kw)

        return wrapper

    return decorate


def env_trace_path() -> str | None:
    """The :data:`TRACE_ENV` output path, or ``None`` when unset/empty."""
    path = os.environ.get(TRACE_ENV, "").strip()
    return path or None
