"""Trace exporters: Chrome ``trace_event`` JSON and text flamegraphs.

:func:`to_chrome` turns a :class:`~repro.obs.spans.Tracer`'s recorded
span/instant records into the Chrome tracing JSON object format —
loadable in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.
Each obs *track* becomes one thread lane (a ``thread_name`` metadata
event names it); spans are emitted as matched ``B``/``E`` duration-event
pairs produced by an interval stack sweep, so the output is well-nested
per track and globally sorted by timestamp — the two properties the
``repro trace`` validator (and tests) assert.

:func:`flame_text` renders the same data as a collapsed-stack flamegraph
summary (Brendan Gregg's ``folded`` format, one ``a;b;c weight`` line
per unique stack, weights in microseconds of *self* time) plus a bar
chart — the quick terminal answer to "where did the time go".
"""

from __future__ import annotations

import json
from pathlib import Path

from .metrics import get_registry
from .spans import InstantRecord, SpanRecord, Tracer

__all__ = [
    "to_chrome",
    "write_chrome",
    "flame_folded",
    "flame_text",
    "render_folded",
    "write_folded",
]

#: Synthetic process id for the single simulated process.
PID = 1


def _track_events(
    spans: list[SpanRecord], instants: list[InstantRecord], tid: int
) -> list[dict]:
    """B/E/i events of one track via an interval stack sweep.

    Spans are sorted by ``(start, -end, seq)`` so parents precede their
    children; an explicit stack closes every span that ends before the
    next one begins, which yields matched, properly nested ``B``/``E``
    pairs with non-decreasing timestamps.  A child whose recorded end
    strays past its parent's (impossible for context-manager spans,
    conceivable for hand-fed intervals) is clamped to the parent.
    """
    events: list[dict] = []
    stack: list[SpanRecord] = []  # open spans, outermost first

    def emit(phase: str, name: str, ts: float, args: dict | None) -> None:
        ev: dict = {
            "ph": phase,
            "name": name,
            "pid": PID,
            "tid": tid,
            "ts": ts * 1e6,  # seconds -> microseconds
            "cat": "repro",
        }
        if args:
            ev["args"] = dict(args)
        events.append(ev)

    def close_until(t: float) -> None:
        while stack and stack[-1].t_end <= t:
            top = stack.pop()
            end = top.t_end
            if stack:  # clamp to the enclosing span
                end = min(end, stack[-1].t_end)
            emit("E", top.name, end, None)

    ordered = sorted(spans, key=lambda s: (s.t_start, -s.t_end, s.seq))
    pending = sorted(instants, key=lambda i: (i.ts, i.seq))
    pi = 0
    for rec in ordered:
        close_until(rec.t_start)
        while pi < len(pending) and pending[pi].ts <= rec.t_start:
            emit("i", pending[pi].name, pending[pi].ts, pending[pi].args)
            pi += 1
        start = rec.t_start
        if stack:  # clamp a straying child into its parent
            start = min(max(start, stack[-1].t_start), stack[-1].t_end)
        emit("B", rec.name, start, rec.args)
        stack.append(rec)
    close_until(float("inf"))
    for rec in pending[pi:]:
        emit("i", rec.name, rec.ts, rec.args)
    return events


def to_chrome(tracer: Tracer, include_metrics: bool = True) -> dict:
    """Chrome tracing *JSON object format* payload for a tracer's records.

    Timestamps are microseconds relative to the earliest recorded event.
    When ``include_metrics`` is set, the current default metrics-registry
    snapshot rides along under ``otherData.metrics`` so a saved trace
    also carries the aggregate counters of the run that produced it.
    """
    all_records = [*tracer.spans, *tracer.instants]
    origin = min(
        (r.t_start if isinstance(r, SpanRecord) else r.ts for r in all_records),
        default=tracer.created_at,
    )
    events: list[dict] = []
    for tid, track in enumerate(tracer.tracks()):
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": PID,
                "tid": tid,
                "ts": 0.0,
                "args": {"name": track},
            }
        )
        track_spans = [s for s in tracer.spans if s.track == track]
        track_instants = [i for i in tracer.instants if i.track == track]
        events.extend(_track_events(track_spans, track_instants, tid))
    # Rebase to the origin and sort globally (metadata events first).
    meta = [e for e in events if e["ph"] == "M"]
    timed = [e for e in events if e["ph"] != "M"]
    for e in timed:
        e["ts"] = round(e["ts"] - origin * 1e6, 3)
    timed.sort(key=lambda e: e["ts"])  # stable: per-track order survives
    payload: dict = {
        "traceEvents": meta + timed,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.obs",
            "description": tracer.description,
            "n_spans": len(tracer.spans),
            "n_instants": len(tracer.instants),
        },
    }
    if include_metrics:
        payload["otherData"]["metrics"] = get_registry().snapshot()
    return payload


def write_chrome(tracer: Tracer, path: str | Path) -> Path:
    """Serialise :func:`to_chrome` output to ``path``; returns the path.

    The write is atomic (tmp + fsync + rename): trace export runs on
    the way out of possibly-crashing CLI runs, and a half-written trace
    is worse than the previous one.
    """
    from ..util import atomic_write_text

    path = Path(path)
    atomic_write_text(path, json.dumps(to_chrome(tracer), indent=1))
    return path


def flame_folded(tracer: Tracer) -> dict[str, float]:
    """Collapsed stacks -> *self*-time microseconds (folded format).

    Keys are ``track;outer;inner`` stack strings; values are the stack's
    own time with all child-span time subtracted, so the values sum to
    the total traced span time per track.
    """
    out: dict[str, float] = {}
    for track in tracer.tracks():
        spans = sorted(
            (s for s in tracer.spans if s.track == track),
            key=lambda s: (s.t_start, -s.t_end, s.seq),
        )
        stack: list[SpanRecord] = []
        child_time: list[float] = []  # per open span, time covered by children

        def close_until(t: float) -> None:
            while stack and stack[-1].t_end <= t:
                top = stack.pop()
                covered = child_time.pop()
                key = ";".join([track, *[s.name for s in stack], top.name])
                self_us = max(0.0, (top.duration - covered)) * 1e6
                out[key] = out.get(key, 0.0) + self_us
                if child_time:
                    child_time[-1] += top.duration

        for rec in spans:
            close_until(rec.t_start)
            stack.append(rec)
            child_time.append(0.0)
        close_until(float("inf"))
    return out


def render_folded(
    folded: dict[str, float], width: int = 40, top: int = 25
) -> str:
    """Text flamegraph of any collapsed-stack dict (weights in μs).

    Shared by the span flamegraph (:func:`flame_text`), the sampling
    profiler's report, and ``repro trace --top``: one ``stack  self
    bar`` line per ranked stack plus a totals footer.
    """
    if not folded:
        return "(no stacks recorded)\n"
    total = sum(folded.values()) or 1.0
    ranked = sorted(folded.items(), key=lambda kv: -kv[1])[:top]
    longest = max(len(k) for k, _ in ranked)
    lines = [f"{'stack':<{longest}}  {'self':>12}  share"]
    for key, us in ranked:
        bar = "#" * max(1, round(width * us / total))
        lines.append(f"{key:<{longest}}  {us / 1e3:>10.3f}ms  {bar}")
    lines.append(
        f"{len(folded)} unique stacks, {total / 1e3:.3f} ms total self time"
    )
    return "\n".join(lines) + "\n"


def flame_text(tracer: Tracer, width: int = 40, top: int = 25) -> str:
    """Flamegraph-style text summary: top collapsed stacks with bars."""
    folded = flame_folded(tracer)
    if not folded:
        return "(no spans recorded)\n"
    return render_folded(folded, width=width, top=top)


def write_folded(folded: dict[str, float], path: str | Path) -> Path:
    """Write a collapsed-stack dict in Brendan Gregg's folded format.

    One ``stack weight`` line per entry with integer-rounded μs weights,
    heaviest first — the input format of ``flamegraph.pl`` and
    speedscope.  Atomic for the same reason as :func:`write_chrome`.
    """
    from ..util import atomic_write_text

    path = Path(path)
    lines = [
        f"{key} {max(0, round(us))}"
        for key, us in sorted(folded.items(), key=lambda kv: -kv[1])
    ]
    atomic_write_text(path, "\n".join(lines) + ("\n" if lines else ""))
    return path
