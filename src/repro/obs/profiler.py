"""Sampling wall-clock profiler attributing time between the spans.

The span tracer (:mod:`repro.obs.spans`) answers "how long did the
*instrumented* scopes take"; this module answers "where inside (and
between) them does the wall clock actually go".  A background daemon
thread wakes at a configurable rate, reads every live thread's current
Python frame via ``sys._current_frames()``, and folds each sample into
a collapsed-stack histogram:

    <lane>;<open spans, outermost first>;<python frames, outermost first>

The *lane* is the obs track for the tracer-owning thread (so simulated
MPI ranks driven through ``track_scope`` keep their per-rank identity)
and the thread name otherwise; the span part is the thread's currently
open context-manager span stack (:func:`~repro.obs.spans
.current_span_stack`); the frame part is the innermost
``max_py_frames`` Python functions — the hot-path attribution the spans
alone cannot give.  Output is Brendan Gregg's ``folded`` format through
the flamegraph exporter (:func:`repro.obs.export.render_folded` /
:func:`~repro.obs.export.write_folded`), so ``flamegraph.pl`` and
speedscope both load it.

**Cost model.**  While no profiler is running there is *nothing* — no
thread, no hook, no allocation; the only standing cost anywhere is the
span-stack bookkeeping inside live spans, which itself only exists
while tracing is enabled (the quality gates hold the disabled-path cost
under the same 2% bound as the tracer's guards).  While running, the
profiler costs one frame walk per live thread per sample — at the
default 97 Hz well under 1% of a busy interpreter.

Enable from the CLI with ``--profile OUT.folded [--profile-hz HZ]`` on
``repro search``/``repro place``, or the :data:`PROFILE_ENV` /
:data:`PROFILE_HZ_ENV` environment variables (any subcommand).
"""

from __future__ import annotations

import os
import sys
import threading
import time

from . import spans as _spans

__all__ = [
    "PROFILE_ENV",
    "PROFILE_HZ_ENV",
    "DEFAULT_HZ",
    "SamplingProfiler",
    "env_profile_path",
    "env_profile_hz",
]

#: Environment variable naming the folded-stack output path; when set,
#: the CLI profiles any subcommand and writes there on exit.
PROFILE_ENV = "REPRO_PROFILE"

#: Environment variable overriding the sampling rate (samples/second).
PROFILE_HZ_ENV = "REPRO_PROFILE_HZ"

#: Default sampling rate.  Prime, so the sampler cannot phase-lock onto
#: periodic work (the classic 100 Hz vs 10 ms-timer resonance).
DEFAULT_HZ = 97.0


class SamplingProfiler:
    """Background wall-clock sampler with span-stack attribution.

    Parameters
    ----------
    hz:
        Samples per second (wall clock).  Each sample sweeps *every*
        live thread, so blocked threads accumulate wall time too — this
        is a wall-clock profiler, not a CPU profiler.
    max_py_frames:
        Innermost Python frames kept per sample (deeper callers are
        dropped, keeping folded keys bounded).
    include_idle:
        When ``False``, samples whose innermost frame is the profiler's
        own wait loop or a known idle wait (``Thread._bootstrap`` level
        waits) are still counted — only the profiler's own thread is
        ever excluded.  Kept as a knob for tests.

    Use as a context manager or via :meth:`start`/:meth:`stop`.  Sample
    counts accumulate across start/stop cycles until :meth:`reset`.
    """

    def __init__(
        self,
        hz: float = DEFAULT_HZ,
        max_py_frames: int = 8,
        include_idle: bool = True,
    ) -> None:
        if hz <= 0:
            raise ValueError("sampling rate must be positive")
        if max_py_frames < 0:
            raise ValueError("max_py_frames must be >= 0")
        self.hz = float(hz)
        self.max_py_frames = int(max_py_frames)
        self.include_idle = include_idle
        self.samples: dict[str, int] = {}
        self.n_sweeps = 0
        self.n_samples = 0
        self.started_at: float | None = None
        self.wall_seconds = 0.0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()

    # -- lifecycle ------------------------------------------------------
    @property
    def running(self) -> bool:
        """Whether the sampling thread is currently live."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        """Launch the sampling thread (idempotent while running)."""
        if self.running:
            return self
        self._stop.clear()
        self.started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._loop, name="repro-obs-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        """Stop sampling and join the thread; totals stay readable."""
        if self._thread is None:
            return self
        self._stop.set()
        self._thread.join(timeout=5)
        self._thread = None
        if self.started_at is not None:
            self.wall_seconds += time.perf_counter() - self.started_at
            self.started_at = None
        return self

    def reset(self) -> None:
        """Drop all accumulated samples (a running thread keeps going)."""
        with self._lock:
            self.samples.clear()
            self.n_sweeps = 0
            self.n_samples = 0
            self.wall_seconds = 0.0

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- sampling -------------------------------------------------------
    def _loop(self) -> None:
        period = 1.0 / self.hz
        while not self._stop.wait(period):
            self._sample_once()

    def _thread_lanes(self) -> dict[int, str]:
        """ident -> lane name for every live thread."""
        lanes = {t.ident: t.name for t in threading.enumerate() if t.ident}
        if _spans.ENABLED:
            # The tracer's current track names the lane of the thread
            # driving it (simulated ranks ride the main thread).
            main = threading.main_thread().ident
            if main in lanes:
                lanes[main] = _spans.get_tracer().current_track
        else:
            main = threading.main_thread().ident
            if main in lanes:
                lanes[main] = "main"
        return lanes

    def _sample_once(self) -> None:
        own = threading.get_ident()
        lanes = self._thread_lanes()
        frames = sys._current_frames()
        now_keys: list[str] = []
        for tid, frame in frames.items():
            if tid == own:
                continue
            parts = [lanes.get(tid, f"thread-{tid}")]
            parts.extend(_spans.current_span_stack(tid))
            if self.max_py_frames:
                py: list[str] = []
                f = frame
                while f is not None and len(py) < self.max_py_frames:
                    code = f.f_code
                    if code.co_filename != __file__:
                        py.append(getattr(code, "co_qualname", code.co_name))
                    f = f.f_back
                parts.extend(reversed(py))  # outermost first
            now_keys.append(";".join(parts))
        del frames
        with self._lock:
            self.n_sweeps += 1
            self.n_samples += len(now_keys)
            for key in now_keys:
                self.samples[key] = self.samples.get(key, 0) + 1

    # -- output ---------------------------------------------------------
    def folded(self) -> dict[str, float]:
        """Collapsed stacks -> sampled wall microseconds.

        Weights are ``count / hz`` seconds expressed in microseconds, so
        they are directly comparable with the span flamegraph's
        self-time weights.
        """
        period_us = 1e6 / self.hz
        with self._lock:
            return {k: n * period_us for k, n in self.samples.items()}

    def report(self, width: int = 40, top: int = 25) -> str:
        """Terminal flamegraph summary of the accumulated samples."""
        from .export import render_folded

        head = (
            f"sampling profiler: {self.n_samples} samples over "
            f"{self.n_sweeps} sweeps at {self.hz:g} Hz\n"
        )
        return head + render_folded(self.folded(), width=width, top=top)

    def write(self, path) -> "os.PathLike | str":
        """Write the accumulated samples in folded format; returns path."""
        from .export import write_folded

        return write_folded(self.folded(), path)


def env_profile_path() -> str | None:
    """The :data:`PROFILE_ENV` output path, or ``None`` when unset."""
    path = os.environ.get(PROFILE_ENV, "").strip()
    return path or None


def env_profile_hz() -> float:
    """The :data:`PROFILE_HZ_ENV` rate, or :data:`DEFAULT_HZ`."""
    raw = os.environ.get(PROFILE_HZ_ENV, "").strip()
    if not raw:
        return DEFAULT_HZ
    try:
        hz = float(raw)
    except ValueError:
        return DEFAULT_HZ
    return hz if hz > 0 else DEFAULT_HZ
