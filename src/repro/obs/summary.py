"""Saved-trace analysis: validation and summarisation for ``repro trace``.

Operates on a Chrome ``trace_event`` JSON payload (the on-disk format
produced by :mod:`repro.obs.export`), *not* on a live tracer — so any
trace a user saved yesterday can be validated and summarised today.

:func:`validate_chrome` checks the structural invariants Perfetto
relies on: globally sorted timestamps, per-track matched ``B``/``E``
pairs with LIFO name discipline, non-negative implied durations.
:func:`summarize_chrome` reduces the event stream to a
:class:`TraceSummary`: per-span-name totals with *self* time (the
flamegraph quantity), per-kernel duration statistics bucketed on a
fixed log scale, the wave timeline, and instant-event counts
(AllReduces, barriers, CLA recycling).  :func:`render_summary` prints
it the way ``repro trace`` shows it.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from dataclasses import dataclass, field
from pathlib import Path

from .metrics import log_buckets

__all__ = [
    "SpanAggregate",
    "TraceSummary",
    "load_chrome",
    "validate_chrome",
    "summarize_chrome",
    "render_summary",
    "render_hot_paths",
]

#: Prefix the kernel dispatch seam uses for its span names.
KERNEL_PREFIX = "kernel."


def load_chrome(path: str | Path) -> dict:
    """Read a Chrome-trace JSON file (object format) from disk."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError(f"{path}: not a Chrome trace (no traceEvents)")
    return payload


def _timed_events(payload: dict) -> list[dict]:
    """All non-metadata events, in file order."""
    return [e for e in payload["traceEvents"] if e.get("ph") != "M"]


def _track_names(payload: dict) -> dict[tuple[int, int], str]:
    """(pid, tid) -> human track name from thread_name metadata."""
    names: dict[tuple[int, int], str] = {}
    for e in payload["traceEvents"]:
        if e.get("ph") == "M" and e.get("name") == "thread_name":
            names[(e.get("pid", 0), e.get("tid", 0))] = e["args"]["name"]
    return names


def validate_chrome(payload: dict) -> list[str]:
    """Structural problems of a trace payload (empty list = valid).

    Checks, in order of severity:

    * every event has a phase, name, and numeric ``ts``;
    * timestamps are globally non-decreasing in file order (what the
      exporter guarantees and stream viewers rely on);
    * per ``(pid, tid)`` the ``B``/``E`` events match like brackets —
      every ``E`` closes the most recent open ``B`` *of the same name*,
      and no span stays open at the end of the stream.
    """
    problems: list[str] = []
    events = _timed_events(payload)
    last_ts = float("-inf")
    stacks: dict[tuple[int, int], list[tuple[str, float]]] = {}
    for i, e in enumerate(events):
        ph, name, ts = e.get("ph"), e.get("name"), e.get("ts")
        if ph not in ("B", "E", "i", "I", "X"):
            problems.append(f"event {i}: unknown phase {ph!r}")
            continue
        if not isinstance(name, str) or not name:
            problems.append(f"event {i}: missing name")
            continue
        if not isinstance(ts, (int, float)):
            problems.append(f"event {i}: non-numeric ts {ts!r}")
            continue
        if ts < last_ts:
            problems.append(
                f"event {i} ({ph} {name!r}): ts {ts} < previous {last_ts}"
            )
        last_ts = max(last_ts, ts)
        key = (e.get("pid", 0), e.get("tid", 0))
        stack = stacks.setdefault(key, [])
        if ph == "B":
            stack.append((name, ts))
        elif ph == "E":
            if not stack:
                problems.append(f"event {i}: E {name!r} with no open span")
                continue
            open_name, open_ts = stack.pop()
            if open_name != name:
                problems.append(
                    f"event {i}: E {name!r} closes B {open_name!r}"
                )
            if ts < open_ts:
                problems.append(
                    f"event {i}: span {name!r} ends ({ts}) before it "
                    f"begins ({open_ts})"
                )
    for key, stack in stacks.items():
        for name, _ts in stack:
            problems.append(f"track {key}: span {name!r} never closed")
    return problems


@dataclass
class SpanAggregate:
    """Accumulated statistics for one span name."""

    name: str
    count: int = 0
    total_us: float = 0.0
    self_us: float = 0.0
    min_us: float = float("inf")
    max_us: float = 0.0
    #: log-bucket counts over span durations (bounds in microseconds)
    bucket_bounds: tuple[float, ...] = field(
        default_factory=lambda: log_buckets(1e-1, 1e7, per_decade=1)
    )
    bucket_counts: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.bucket_counts:
            self.bucket_counts = [0] * (len(self.bucket_bounds) + 1)

    def add(self, dur_us: float, self_us: float) -> None:
        """Fold one completed span into the aggregate."""
        self.count += 1
        self.total_us += dur_us
        self.self_us += self_us
        self.min_us = min(self.min_us, dur_us)
        self.max_us = max(self.max_us, dur_us)
        i = bisect_left(self.bucket_bounds, dur_us)
        self.bucket_counts[min(i, len(self.bucket_counts) - 1)] += 1


@dataclass
class TraceSummary:
    """The digest ``repro trace`` prints."""

    duration_us: float
    n_events: int
    tracks: list[str]
    spans: dict[str, SpanAggregate]
    instants: dict[str, int]
    #: (ts_us, dur_us, width, batched) per executed wave, file order
    wave_timeline: list[tuple[float, float, int, bool]]
    metrics: dict | None = None
    #: ``track;outer;inner`` collapsed stacks -> self-time microseconds
    folded: dict[str, float] = field(default_factory=dict)

    def hottest_paths(self, n: int = 10) -> list[tuple[str, float]]:
        """The ``n`` heaviest collapsed-stack paths by self time."""
        return sorted(self.folded.items(), key=lambda kv: -kv[1])[:n]

    def top_by_self_time(self, n: int = 15) -> list[SpanAggregate]:
        """Span aggregates ranked by total self time, descending."""
        return sorted(self.spans.values(), key=lambda a: -a.self_us)[:n]

    def kernel_aggregates(self) -> dict[str, SpanAggregate]:
        """Aggregates of the kernel-dispatch spans, keyed without prefix."""
        return {
            name[len(KERNEL_PREFIX):]: agg
            for name, agg in sorted(self.spans.items())
            if name.startswith(KERNEL_PREFIX)
        }


def summarize_chrome(payload: dict) -> TraceSummary:
    """Reduce a (valid) Chrome-trace payload to a :class:`TraceSummary`.

    Raises ``ValueError`` when the payload fails
    :func:`validate_chrome` — summarising a malformed trace would
    silently misattribute time.
    """
    problems = validate_chrome(payload)
    if problems:
        raise ValueError(
            "invalid trace: " + "; ".join(problems[:5])
            + (f" (+{len(problems) - 5} more)" if len(problems) > 5 else "")
        )
    events = _timed_events(payload)
    names = _track_names(payload)
    spans: dict[str, SpanAggregate] = {}
    instants: dict[str, int] = {}
    waves: list[tuple[float, float, int, bool]] = []
    folded: dict[str, float] = {}
    stacks: dict[tuple[int, int], list[list]] = {}
    t_min, t_max = float("inf"), float("-inf")
    for e in events:
        ts = float(e["ts"])
        t_min, t_max = min(t_min, ts), max(t_max, ts)
        key = (e.get("pid", 0), e.get("tid", 0))
        ph = e["ph"]
        if ph in ("i", "I"):
            instants[e["name"]] = instants.get(e["name"], 0) + 1
            continue
        stack = stacks.setdefault(key, [])
        if ph == "B":
            # [name, start, child time, args]
            stack.append([e["name"], ts, 0.0, e.get("args")])
        elif ph == "E":
            name, start, child_us, args = stack.pop()
            dur = ts - start
            self_us = max(0.0, dur - child_us)
            agg = spans.setdefault(name, SpanAggregate(name=name))
            agg.add(dur, self_us)
            path = ";".join(
                [names.get(key, f"track-{key[1]}"),
                 *[f[0] for f in stack], name]
            )
            folded[path] = folded.get(path, 0.0) + self_us
            if stack:
                stack[-1][2] += dur
            if name == "wave":
                args = args or {}
                waves.append(
                    (start, dur, int(args.get("width", 0)),
                     bool(args.get("batched", False)))
                )
    duration = (t_max - t_min) if events else 0.0
    return TraceSummary(
        duration_us=duration,
        n_events=len(events),
        tracks=[names.get(k, f"track-{k[1]}") for k in sorted(stacks or names)],
        spans=spans,
        instants=instants,
        wave_timeline=waves,
        metrics=payload.get("otherData", {}).get("metrics"),
        folded=folded,
    )


def _fmt_us(us: float) -> str:
    """Human-scale duration (us/ms/s)."""
    if us >= 1e6:
        return f"{us / 1e6:.3f}s"
    if us >= 1e3:
        return f"{us / 1e3:.3f}ms"
    return f"{us:.1f}us"


def render_summary(summary: TraceSummary, top: int = 15) -> str:
    """Multi-section text report for one summarised trace."""
    lines: list[str] = []
    lines.append(
        f"trace: {summary.n_events} events over {_fmt_us(summary.duration_us)}"
        f" on {len(summary.tracks)} track(s): {', '.join(summary.tracks)}"
    )
    ranked = summary.top_by_self_time(top)
    if ranked:
        lines.append("")
        lines.append(f"top {len(ranked)} spans by self time:")
        w = max(len(a.name) for a in ranked)
        lines.append(
            f"  {'span':<{w}}  {'calls':>7}  {'self':>10}  {'total':>10}  "
            f"{'mean':>10}"
        )
        for a in ranked:
            lines.append(
                f"  {a.name:<{w}}  {a.count:>7}  {_fmt_us(a.self_us):>10}  "
                f"{_fmt_us(a.total_us):>10}  "
                f"{_fmt_us(a.total_us / a.count):>10}"
            )
    kernels = summary.kernel_aggregates()
    if kernels:
        lines.append("")
        lines.append("per-kernel dispatch durations (log-bucketed):")
        w = max(len(k) for k in kernels)
        for name, agg in kernels.items():
            # Render only the occupied bucket window.
            occupied = [
                (b, c)
                for b, c in zip(
                    [*agg.bucket_bounds, float("inf")], agg.bucket_counts
                )
                if c
            ]
            hist = " ".join(f"<={_fmt_us(b)}:{c}" for b, c in occupied)
            lines.append(
                f"  {name:<{w}}  x{agg.count:<6} "
                f"total {_fmt_us(agg.total_us):>10}  {hist}"
            )
    if summary.wave_timeline:
        shown = summary.wave_timeline[:top]
        lines.append("")
        lines.append(
            f"wave timeline ({len(summary.wave_timeline)} waves, "
            f"first {len(shown)} shown):"
        )
        lines.append(f"  {'t':>12}  {'dur':>10}  {'width':>5}  dispatch")
        for ts, dur, width, batched in shown:
            lines.append(
                f"  {_fmt_us(ts):>12}  {_fmt_us(dur):>10}  {width:>5}  "
                f"{'stacked' if batched else 'per-op'}"
            )
    if summary.instants:
        lines.append("")
        lines.append("instant events:")
        for name, n in sorted(summary.instants.items()):
            lines.append(f"  {name}: {n}")
    if summary.metrics:
        lines.append("")
        lines.append(f"embedded metrics snapshot: {len(summary.metrics)} series")
    return "\n".join(lines) + "\n"


def render_hot_paths(summary: TraceSummary, n: int = 10) -> str:
    """The ``repro trace FILE --top N`` report: hottest folded paths.

    Renders the trace's collapsed-stack self times through the shared
    flamegraph formatter, so saved traces are inspectable without
    loading Perfetto.
    """
    from .export import render_folded

    head = (
        f"hottest {min(n, len(summary.folded))} of {len(summary.folded)} "
        f"folded stack paths (self time):\n"
    )
    return head + render_folded(summary.folded, top=n)
