"""repro.obs — end-to-end tracing and metrics for the reproduction.

Structured observability for every layer of the stack, built from three
pieces:

* :mod:`repro.obs.spans` — a low-overhead span tracer (context manager /
  decorator / pre-measured fast path) with nestable spans and named
  tracks for simulated threads and MPI ranks; **zero-cost when
  disabled** (a module-level flag short-circuits every entry point
  before any allocation);
* :mod:`repro.obs.metrics` — a registry of counters, gauges, and
  log-bucketed histograms with Prometheus-text and JSON export;
* :mod:`repro.obs.export` / :mod:`repro.obs.summary` — exporters
  (Chrome ``trace_event`` JSON loadable in Perfetto, plain-text
  flamegraph, folded stacks) and the saved-trace validator/summariser
  behind the ``repro trace`` CLI subcommand;
* :mod:`repro.obs.server` — the *live* plane: an opt-in background HTTP
  endpoint (``--serve-metrics PORT``) answering ``/metrics`` (Prometheus
  text), ``/healthz`` (worker liveness, arena leaks, checkpoint age),
  and ``/progress`` (search stage, lnL trajectory, ETA) while a run is
  still going;
* :mod:`repro.obs.profiler` — a sampling wall-clock profiler
  (``--profile OUT.folded``) attributing samples to the open span stack
  per thread, for hot-path visibility *between* instrumented spans.

Instrumentation is wired through kernel dispatch
(:mod:`repro.core.backends`), wave execution
(:mod:`repro.core.schedule`), CLA-slot recycling
(:mod:`repro.core.memsave`), barrier/AllReduce accounting
(:mod:`repro.parallel`), and search progress (:mod:`repro.search`).

Quickstart::

    from repro import obs

    obs.enable()
    ...  # run a search, a placement, anything
    obs.write_chrome(obs.get_tracer(), "out.json")  # open in Perfetto

or from the shell::

    repro search aln.phy --trace out.json && repro trace out.json
"""

from .export import (
    flame_folded,
    flame_text,
    render_folded,
    to_chrome,
    write_chrome,
    write_folded,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_help,
    exposition_name,
    get_registry,
    lint_metric_names,
    log_buckets,
    parse_prometheus_text,
)
from .profiler import (
    PROFILE_ENV,
    PROFILE_HZ_ENV,
    SamplingProfiler,
    env_profile_hz,
    env_profile_path,
)
from .server import (
    SERVE_ENV,
    HealthState,
    ObsServer,
    ProgressState,
    env_port,
    get_server,
    health,
    progress,
    serve,
)
from .spans import (
    TRACE_ENV,
    InstantRecord,
    SpanRecord,
    Tracer,
    add_complete,
    current_span_stack,
    disable,
    enable,
    env_trace_path,
    get_tracer,
    instant,
    is_enabled,
    span,
    traced,
    track_scope,
)
from .summary import (
    SpanAggregate,
    TraceSummary,
    load_chrome,
    render_hot_paths,
    render_summary,
    summarize_chrome,
    validate_chrome,
)

__all__ = [
    # spans
    "TRACE_ENV",
    "SpanRecord",
    "InstantRecord",
    "Tracer",
    "enable",
    "disable",
    "is_enabled",
    "get_tracer",
    "span",
    "instant",
    "add_complete",
    "track_scope",
    "traced",
    "env_trace_path",
    "current_span_stack",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "log_buckets",
    "escape_help",
    "exposition_name",
    "lint_metric_names",
    "parse_prometheus_text",
    # export
    "to_chrome",
    "write_chrome",
    "flame_folded",
    "flame_text",
    "render_folded",
    "write_folded",
    # summary
    "SpanAggregate",
    "TraceSummary",
    "load_chrome",
    "validate_chrome",
    "summarize_chrome",
    "render_summary",
    "render_hot_paths",
    # server (live plane)
    "SERVE_ENV",
    "ObsServer",
    "ProgressState",
    "HealthState",
    "serve",
    "get_server",
    "env_port",
    "progress",
    "health",
    # profiler
    "PROFILE_ENV",
    "PROFILE_HZ_ENV",
    "SamplingProfiler",
    "env_profile_path",
    "env_profile_hz",
]
