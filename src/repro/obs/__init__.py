"""repro.obs — end-to-end tracing and metrics for the reproduction.

Structured observability for every layer of the stack, built from three
pieces:

* :mod:`repro.obs.spans` — a low-overhead span tracer (context manager /
  decorator / pre-measured fast path) with nestable spans and named
  tracks for simulated threads and MPI ranks; **zero-cost when
  disabled** (a module-level flag short-circuits every entry point
  before any allocation);
* :mod:`repro.obs.metrics` — a registry of counters, gauges, and
  log-bucketed histograms with Prometheus-text and JSON export;
* :mod:`repro.obs.export` / :mod:`repro.obs.summary` — exporters
  (Chrome ``trace_event`` JSON loadable in Perfetto, plain-text
  flamegraph) and the saved-trace validator/summariser behind the
  ``repro trace`` CLI subcommand.

Instrumentation is wired through kernel dispatch
(:mod:`repro.core.backends`), wave execution
(:mod:`repro.core.schedule`), CLA-slot recycling
(:mod:`repro.core.memsave`), barrier/AllReduce accounting
(:mod:`repro.parallel`), and search progress (:mod:`repro.search`).

Quickstart::

    from repro import obs

    obs.enable()
    ...  # run a search, a placement, anything
    obs.write_chrome(obs.get_tracer(), "out.json")  # open in Perfetto

or from the shell::

    repro search aln.phy --trace out.json && repro trace out.json
"""

from .export import flame_folded, flame_text, to_chrome, write_chrome
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    log_buckets,
)
from .spans import (
    TRACE_ENV,
    InstantRecord,
    SpanRecord,
    Tracer,
    add_complete,
    disable,
    enable,
    env_trace_path,
    get_tracer,
    instant,
    is_enabled,
    span,
    traced,
    track_scope,
)
from .summary import (
    SpanAggregate,
    TraceSummary,
    load_chrome,
    render_summary,
    summarize_chrome,
    validate_chrome,
)

__all__ = [
    # spans
    "TRACE_ENV",
    "SpanRecord",
    "InstantRecord",
    "Tracer",
    "enable",
    "disable",
    "is_enabled",
    "get_tracer",
    "span",
    "instant",
    "add_complete",
    "track_scope",
    "traced",
    "env_trace_path",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "log_buckets",
    # export
    "to_chrome",
    "write_chrome",
    "flame_folded",
    "flame_text",
    # summary
    "SpanAggregate",
    "TraceSummary",
    "load_chrome",
    "validate_chrome",
    "summarize_chrome",
    "render_summary",
]
