"""Shared small utilities: crash-safe file writes.

The reproduction's durability story (checkpoints, tree/jplace outputs,
Chrome traces) hinges on one primitive: a text write that either fully
lands or leaves the previous file intact.  A bare ``Path.write_text``
gives neither guarantee — a crash mid-write truncates the file, and a
crash between ``open`` and ``close`` can leave a half-flushed snapshot
that ``json.loads`` chokes on (exactly the ExaML failure mode binary
checkpoints guard against on multi-day runs).

:func:`atomic_write_text` is the POSIX idiom: write the payload to a
temporary file *in the same directory* (same filesystem, so the final
rename cannot degrade to a copy), flush + ``fsync`` the data to disk,
then ``os.replace`` — an atomic rename that swaps the new content in as
a single metadata operation.  Readers observe either the old file or
the new one, never a mix; a crash at any instant leaves one of the two
complete versions on disk (plus, at worst, an orphaned ``*.tmp.*`` file
that the next successful write of the same target cleans up).
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Callable

__all__ = ["atomic_write_text", "cleanup_orphan_tmp"]


def atomic_write_text(
    path: str | Path,
    text: str,
    pre_replace_hook: Callable[[Path], None] | None = None,
) -> Path:
    """Crash-safely write ``text`` to ``path``; returns the path.

    The payload goes to a ``NamedTemporaryFile`` in ``path``'s directory,
    is flushed and fsync'ed, and is moved over ``path`` with
    ``os.replace``.  On any failure the temporary file is removed and the
    previous content of ``path`` (if any) is untouched.

    ``pre_replace_hook`` is called with the temporary path after the
    fsync but *before* the atomic rename — the seam the fault-injection
    tests use to simulate a process killed mid-write (the hook raises,
    the rename never happens, the old snapshot survives).
    """
    path = Path(path)
    directory = path.parent if str(path.parent) else Path(".")
    fd, tmp_name = tempfile.mkstemp(
        dir=directory, prefix=path.name + ".", suffix=".tmp"
    )
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        if pre_replace_hook is not None:
            pre_replace_hook(tmp)
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    cleanup_orphan_tmp(path)
    return path


def cleanup_orphan_tmp(path: str | Path) -> int:
    """Remove stale ``<name>.*.tmp`` files left by crashed writers.

    Returns the number of orphans removed.  Called automatically after
    every successful :func:`atomic_write_text`, and usable directly when
    scanning a checkpoint directory on resume.
    """
    path = Path(path)
    removed = 0
    try:
        entries = list(path.parent.iterdir())
    except OSError:
        return 0
    for entry in entries:
        name = entry.name
        if (
            name.startswith(path.name + ".")
            and name.endswith(".tmp")
            and entry != path
        ):
            try:
                entry.unlink()
                removed += 1
            except OSError:  # pragma: no cover - racing cleaner
                pass
    return removed
