"""Set-associative cache model with LRU replacement.

Models the part of the memory hierarchy the paper's optimisations
interact with: per-core L1/L2 (the MIC has a private 512 KB L2 per core,
Sec. III-A), streaming-store no-read-for-ownership behaviour
(Sec. V-B5), and the distinction between demand misses (which stall the
in-order core for the DRAM latency unless prefetched) and bandwidth
traffic (which bounds throughput from below).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from .memory import CACHE_LINE, DramModel

__all__ = ["CacheLevel", "AccessResult", "MemoryHierarchy", "MemoryStats"]


class CacheLevel:
    """One set-associative, write-allocate, LRU cache level."""

    def __init__(self, name: str, size_bytes: int, associativity: int) -> None:
        if size_bytes % (associativity * CACHE_LINE):
            raise ValueError("cache size must be a multiple of assoc * line")
        self.name = name
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.n_sets = size_bytes // (associativity * CACHE_LINE)
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(self.n_sets)
        ]
        self.hits = 0
        self.misses = 0

    def _set_of(self, line: int) -> OrderedDict[int, bool]:
        return self._sets[line % self.n_sets]

    def lookup(self, line: int) -> bool:
        """Probe for a line, updating LRU order and hit/miss counters."""
        s = self._set_of(line)
        if line in s:
            s.move_to_end(line)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, line: int, dirty: bool = False) -> tuple[int, bool] | None:
        """Insert a line; returns an evicted ``(line, dirty)`` or ``None``."""
        s = self._set_of(line)
        if line in s:
            s[line] = s[line] or dirty
            s.move_to_end(line)
            return None
        victim = None
        if len(s) >= self.associativity:
            victim = s.popitem(last=False)
        s[line] = dirty
        return victim

    def mark_dirty(self, line: int) -> None:
        s = self._set_of(line)
        if line in s:
            s[line] = True

    def contains(self, line: int) -> bool:
        return line in self._set_of(line)

    def flush(self) -> None:
        for s in self._sets:
            s.clear()
        self.hits = 0
        self.misses = 0


@dataclass
class AccessResult:
    """Outcome of one memory access: stall cycles + DRAM traffic bytes."""

    stall_cycles: float
    dram_read_bytes: int
    dram_write_bytes: int
    level: str  # "L1" | "L2" | "DRAM"


@dataclass
class MemoryStats:
    """Aggregated memory-system counters for a VM run."""

    l1_hits: int = 0
    l2_hits: int = 0
    dram_accesses: int = 0
    dram_read_bytes: int = 0
    dram_write_bytes: int = 0
    stall_cycles: float = 0.0
    prefetch_hits: int = 0
    prefetch_late: int = 0
    writebacks: int = 0

    @property
    def dram_bytes(self) -> int:
        return self.dram_read_bytes + self.dram_write_bytes


class MemoryHierarchy:
    """Per-core L1 + L2 + DRAM with prefetch-aware demand-miss stalls.

    ``access`` returns the stall contribution of one load/store; the VM
    accumulates stalls into its cycle count and traffic into the
    bandwidth roofline.  Software prefetches are registered with the
    cycle at which they were issued: a later demand miss to the same
    line stalls only for the *remaining* latency (this is what makes the
    prefetch-distance ablation of Sec. V-B6 meaningful).
    """

    def __init__(
        self,
        l1: CacheLevel,
        l2: CacheLevel,
        dram: DramModel,
        l2_latency_cycles: float = 15.0,
        hw_prefetch_streams: int = 16,
    ) -> None:
        self.l1 = l1
        self.l2 = l2
        self.dram = dram
        self.l2_latency_cycles = l2_latency_cycles
        self.stats = MemoryStats()
        # software prefetch: line -> issue cycle
        self._sw_prefetched: dict[int, float] = {}
        # hardware (L2 streamer) prefetcher: remembers recent miss lines
        # and treats line N as covered once lines N-1 and N-2 missed —
        # a 2-miss training window like real next-line streamers.
        self._recent_misses: OrderedDict[int, None] = OrderedDict()
        self._hw_streams = hw_prefetch_streams
        self.hw_prefetch_enabled = True

    # ------------------------------------------------------------------
    def register_prefetch(self, addr: int, now: float) -> None:
        """Record a software ``PREFETCH`` for the line containing ``addr``."""
        self._sw_prefetched.setdefault(addr // CACHE_LINE, now)

    def _hw_covered(self, line: int) -> bool:
        if not self.hw_prefetch_enabled:
            return False
        return (line - 1) in self._recent_misses and (line - 2) in self._recent_misses

    def _note_miss(self, line: int) -> None:
        self._recent_misses[line] = None
        while len(self._recent_misses) > 4 * self._hw_streams:
            self._recent_misses.popitem(last=False)

    # ------------------------------------------------------------------
    def access(
        self,
        addr: int,
        size: int,
        is_write: bool,
        now: float,
        nontemporal: bool = False,
    ) -> AccessResult:
        """One load/store of ``size`` bytes at byte address ``addr``."""
        first = addr // CACHE_LINE
        last = (addr + size - 1) // CACHE_LINE
        stall = 0.0
        rd = wr = 0
        level = "L1"
        for line in range(first, last + 1):
            r = self._access_line(line, is_write, now, nontemporal)
            stall += r.stall_cycles
            rd += r.dram_read_bytes
            wr += r.dram_write_bytes
            if r.level == "DRAM" or (r.level == "L2" and level == "L1"):
                level = r.level
        self.stats.stall_cycles += stall
        self.stats.dram_read_bytes += rd
        self.stats.dram_write_bytes += wr
        return AccessResult(stall, rd, wr, level)

    def _access_line(
        self, line: int, is_write: bool, now: float, nontemporal: bool
    ) -> AccessResult:
        if nontemporal and is_write:
            # Streaming store: bypass caches, write-combine a full line,
            # no RFO read, no stall (fire-and-forget through WC buffers).
            self.stats.dram_accesses += 1
            return AccessResult(0.0, 0, CACHE_LINE, "DRAM")

        if self.l1.lookup(line):
            self.stats.l1_hits += 1
            if is_write:
                self.l1.mark_dirty(line)
            return AccessResult(0.0, 0, 0, "L1")

        if self.l2.lookup(line):
            self.stats.l2_hits += 1
            self._fill_l1(line, is_write)
            # L2 hit latency is partially hidden by the second hardware
            # thread; charge half (stores don't stall at all).
            stall = 0.0 if is_write else self.l2_latency_cycles / 2.0
            return AccessResult(stall, 0, 0, "L2")

        # DRAM
        self.stats.dram_accesses += 1
        covered = self._hw_covered(line)
        self._note_miss(line)
        stall = 0.0
        if not is_write:
            issued = self._sw_prefetched.pop(line, None)
            if issued is not None:
                elapsed = now - issued
                remaining = max(0.0, self.dram.latency_cycles - elapsed)
                if remaining == 0.0:
                    self.stats.prefetch_hits += 1
                else:
                    self.stats.prefetch_late += 1
                stall = remaining
            elif covered:
                self.stats.prefetch_hits += 1
                stall = 0.0
            else:
                stall = self.dram.latency_cycles
        read_bytes = CACHE_LINE  # fill (RFO read for a write-allocate store)
        write_bytes = 0
        wb = self._fill_l2(line, dirty=is_write)
        write_bytes += wb
        write_bytes += self._fill_l1(line, is_write)
        return AccessResult(stall, read_bytes, write_bytes, "DRAM")

    def _fill_l1(self, line: int, is_write: bool) -> int:
        victim = self.l1.fill(line, dirty=is_write)
        if victim is not None and victim[1]:
            # dirty L1 eviction lands in L2
            self.l2.fill(victim[0], dirty=True)
        return 0

    def _fill_l2(self, line: int, dirty: bool) -> int:
        victim = self.l2.fill(line, dirty=dirty)
        if victim is not None and victim[1]:
            self.stats.writebacks += 1
            self.stats.dram_accesses += 1
            return CACHE_LINE
        return 0

    def flush(self) -> None:
        """Clear all cached state (between independent measurements)."""
        self.l1.flush()
        self.l2.flush()
        self._sw_prefetched.clear()
        self._recent_misses.clear()
        self.stats = MemoryStats()
