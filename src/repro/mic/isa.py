"""Vector instruction-set architectures for the simulated machines.

The paper's performance story hinges on three ISA-level facts (Sec. III):

* the MIC's vector unit is 512 bits wide — 8 doubles per instruction,
  twice AVX's 4 (and its lanes can be swizzled/permuted cheaply),
* the MIC has fused multiply-add (FMA); Sandy-Bridge AVX does not, so a
  multiply-accumulate costs two instructions on the CPU baseline,
* the MIC has *streaming (non-temporal) stores* that skip the
  read-for-ownership of a full-line write (Sec. V-B5).

This module defines those ISAs as data: vector width, the instruction
table with issue costs (reciprocal throughput in cycles, for one
hardware thread), and alignment rules.  The virtual machine
(:mod:`repro.mic.vm`) executes programs against an ISA; the analytic
cost model (:mod:`repro.perf.costmodel`) uses the same numbers, so VM
measurements and model predictions are mutually consistent.

Issue costs are representative per-thread reciprocal throughputs for
Knights Corner and Sandy Bridge; sources: Intel optimisation manuals'
published latencies, rounded to the granularity this model needs.  The
*relative* costs (FMA fusion, vector width, streaming stores) are what
drive the reproduced speedups, not the absolute values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

__all__ = ["Op", "Instruction", "VectorISA", "MIC512", "AVX256", "SSE128"]


class Op(str, Enum):
    """Virtual vector/scalar operations understood by the VM."""

    # vector memory
    VLOAD = "vload"  # aligned vector load
    VSTORE = "vstore"  # aligned vector store (read-for-ownership)
    VSTORE_NT = "vstore_nt"  # streaming store, no RFO (paper Sec. V-B5)
    VBROADCAST = "vbroadcast"  # scalar memory -> all lanes
    VGATHER = "vgather"  # indexed gather (tip lookups)
    # vector arithmetic
    VADD = "vadd"
    VSUB = "vsub"
    VMUL = "vmul"
    VDIV = "vdiv"
    VFMA = "vfma"  # d = a * b + c (single instruction only if isa.has_fma)
    VMAX = "vmax"
    VABS = "vabs"
    VSHUF = "vshuf"  # lane permute within a register
    VSET = "vset"  # load immediate lane values
    # horizontal
    HADD = "hadd"  # sum all lanes -> scalar register
    HMAX = "hmax"  # max of all lanes -> scalar register
    # scalar
    SLOAD = "sload"
    SSTORE = "sstore"
    SADD = "sadd"
    SMUL = "smul"
    SDIV = "sdiv"
    SLOG = "slog"  # scalar log (SVML-style library call)
    SEXP = "sexp"
    # memory hints
    PREFETCH = "prefetch"  # software prefetch into L2/L1 (Sec. V-B6)


@dataclass(frozen=True)
class Instruction:
    """One VM instruction.

    ``dest``/``srcs`` name virtual registers (``"v0"``.. for vector,
    ``"s0"``.. for scalar).  Memory operations carry a byte ``addr``;
    ``VSHUF`` carries a lane ``pattern``; ``VSET`` carries ``values``;
    ``VGATHER`` carries ``addrs`` (one byte address per lane).
    """

    op: Op
    dest: str | None = None
    srcs: tuple[str, ...] = ()
    addr: int | None = None
    addrs: tuple[int, ...] | None = None
    pattern: tuple[int, ...] | None = None
    values: tuple[float, ...] | None = None
    imm: float | None = None

    def __str__(self) -> str:  # assembly-ish rendering for Figure 2
        parts = [self.op.value]
        if self.dest:
            parts.append(self.dest)
        parts.extend(self.srcs)
        if self.addr is not None:
            parts.append(f"[{self.addr:#x}]")
        if self.pattern is not None:
            parts.append("{" + ",".join(map(str, self.pattern)) + "}")
        if self.imm is not None:
            parts.append(repr(self.imm))
        return " ".join(parts)


@dataclass(frozen=True)
class VectorISA:
    """A vector ISA: width, capabilities, per-instruction issue costs.

    ``issue_cost`` maps :class:`Op` to reciprocal throughput in cycles
    as seen by one hardware thread; memory-system stalls are added by
    the VM's cache model on top.
    """

    name: str
    width: int  # doubles per vector register
    alignment: int  # required byte alignment of vector memory ops
    has_fma: bool
    has_streaming_stores: bool
    has_gather: bool
    n_vector_registers: int
    issue_cost: dict[Op, float] = field(repr=False, default_factory=dict)
    #: Extra cycles when an instruction consumes the immediately preceding
    #: instruction's result.  Out-of-order cores (Sandy Bridge) hide this
    #: entirely (0); the in-order KNC pipeline exposes its 4-cycle vector
    #: latency, halved by the second hardware thread (~1.5).  This is the
    #: microarchitectural reason compute-heavy kernels (``newview``)
    #: speed up less on the MIC than pure streaming kernels (Fig. 3).
    dependency_penalty: float = 0.0

    @property
    def vector_bytes(self) -> int:
        return self.width * 8

    def cost(self, op: Op) -> float:
        """Issue cost of an op; raises for ops the ISA cannot express."""
        if op is Op.VFMA and not self.has_fma:
            # Compilers split FMA into multiply + add on non-FMA ISAs.
            return self.issue_cost[Op.VMUL] + self.issue_cost[Op.VADD]
        if op is Op.VSTORE_NT and not self.has_streaming_stores:
            return self.issue_cost[Op.VSTORE]
        if op is Op.VGATHER and not self.has_gather:
            # Emulated gather: one scalar load per lane plus inserts.
            return self.width * (self.issue_cost[Op.SLOAD] + 0.5)
        cost = self.issue_cost.get(op)
        if cost is None:
            raise KeyError(f"ISA {self.name} has no cost for {op}")
        return cost


_COMMON_COSTS: dict[Op, float] = {
    Op.VLOAD: 1.0,
    Op.VSTORE: 1.0,
    Op.VSTORE_NT: 1.0,
    Op.VBROADCAST: 1.0,
    Op.VGATHER: 4.0,
    Op.VADD: 1.0,
    Op.VSUB: 1.0,
    Op.VMUL: 1.0,
    Op.VDIV: 16.0,
    Op.VFMA: 1.0,
    Op.VMAX: 1.0,
    Op.VABS: 1.0,
    Op.VSHUF: 1.0,
    Op.VSET: 1.0,
    Op.HADD: 3.0,
    Op.HMAX: 3.0,
    Op.SLOAD: 0.5,
    Op.SSTORE: 0.5,
    Op.SADD: 0.5,
    Op.SMUL: 0.5,
    Op.SDIV: 8.0,
    Op.SLOG: 20.0,
    Op.SEXP: 20.0,
    Op.PREFETCH: 0.5,
}

#: Knights Corner: 512-bit vectors, FMA, streaming stores, gather.
#: In-order core; one thread can issue a vector op at best every other
#: cycle (hence >=2 threads/core to saturate — Sec. V-D's "minimum of
#: 120 threads"); the per-thread costs below assume the 2-thread round
#: robin, i.e. they already reflect a saturated core divided by 2.
MIC512 = VectorISA(
    name="mic512",
    width=8,
    alignment=64,
    has_fma=True,
    has_streaming_stores=True,
    has_gather=True,
    n_vector_registers=32,
    issue_cost=dict(_COMMON_COSTS),
    dependency_penalty=1.5,
)

#: Sandy/Ivy Bridge AVX: 256-bit vectors, no FMA, no NT-store advantage
#: modelled (regular stores already use the write-combining path well),
#: no gather.
AVX256 = VectorISA(
    name="avx256",
    width=4,
    alignment=32,
    has_fma=False,
    has_streaming_stores=False,
    has_gather=False,
    n_vector_registers=16,
    issue_cost=dict(_COMMON_COSTS),
)

#: SSE3: 128-bit vectors (RAxML's oldest vector path, kept for ablations).
SSE128 = VectorISA(
    name="sse128",
    width=2,
    alignment=16,
    has_fma=False,
    has_streaming_stores=False,
    has_gather=False,
    n_vector_registers=16,
    issue_cost=dict(_COMMON_COSTS),
)
