"""Peephole optimisation of vector programs.

The straightforward auto-vectorizer (:mod:`repro.mic.compiler`) emits
naive code: an expression tree re-loads an array it already holds in a
register, and dead stores can survive template expansion.  Production
compilers (the icc of the paper's Figure 2) clean this up; this pass
implements the two classic window optimisations that matter for our
kernels:

* **redundant-load elimination** — a ``VLOAD`` from an address whose
  value is provably still in a register (no intervening store to that
  address, register not overwritten) becomes a copy, and the copy is
  folded away by renaming;
* **dead-store elimination** — a ``VSTORE`` to an address overwritten by
  a later store with no intervening read of that address is dropped.

The pass is semantics-preserving by construction (tests verify VM
results are bit-identical before and after) and reports the instruction
count and estimated cycles saved.
"""

from __future__ import annotations

from dataclasses import dataclass

from .isa import Instruction, Op, VectorISA
from .vm import VectorProgram

__all__ = ["PeepholeResult", "eliminate_redundant_loads", "eliminate_dead_stores", "optimize_program"]

_STORE_OPS = (Op.VSTORE, Op.VSTORE_NT, Op.SSTORE)
_LOAD_OPS = (Op.VLOAD, Op.SLOAD, Op.VBROADCAST)


@dataclass(frozen=True)
class PeepholeResult:
    """An optimised program plus savings accounting."""

    program: VectorProgram
    instructions_removed: int
    issue_cycles_saved: float


def _rename(srcs: tuple[str, ...], mapping: dict[str, str]) -> tuple[str, ...]:
    return tuple(mapping.get(s, s) for s in srcs)


def eliminate_redundant_loads(
    program: VectorProgram, isa: VectorISA
) -> PeepholeResult:
    """Drop ``VLOAD``s whose address is already live in a register.

    Tracks, per address, which register last loaded it; invalidated by
    any store (conservatively: *any* store clears the whole table, since
    aliasing is unknown) and by redefinition of the holding register.
    """
    out = VectorProgram(name=program.name + "+rle")
    addr_to_reg: dict[int, str] = {}
    rename: dict[str, str] = {}
    removed = 0
    saved = 0.0
    for instr in program.instructions:
        srcs = _rename(instr.srcs, rename)
        if instr.op is Op.VLOAD:
            held = addr_to_reg.get(instr.addr)
            if held is not None:
                # fold: future uses of instr.dest read the holding register
                rename[instr.dest] = held
                removed += 1
                saved += isa.cost(instr.op)
                continue
        if instr.op in _STORE_OPS:
            addr_to_reg.clear()
        new_instr = Instruction(
            op=instr.op,
            dest=instr.dest,
            srcs=srcs,
            addr=instr.addr,
            addrs=instr.addrs,
            pattern=instr.pattern,
            values=instr.values,
            imm=instr.imm,
        )
        if instr.dest is not None:
            rename.pop(instr.dest, None)
            # the register was redefined: drop any table entry that
            # claimed this register held a memory value
            addr_to_reg = {
                a: r for a, r in addr_to_reg.items() if r != instr.dest
            }
        if instr.op is Op.VLOAD:
            addr_to_reg[instr.addr] = instr.dest
        out.emit(new_instr)
    return PeepholeResult(out, removed, saved)


def eliminate_dead_stores(
    program: VectorProgram, isa: VectorISA
) -> PeepholeResult:
    """Drop stores overwritten by a later store with no intervening load.

    Conservative: any load instruction (address unknown aliasing) keeps
    all pending stores live.
    """
    live_instrs: list[Instruction | None] = list(program.instructions)
    pending: dict[int, int] = {}  # addr -> index of the last store
    removed = 0
    saved = 0.0
    for idx, instr in enumerate(program.instructions):
        if instr.op in _LOAD_OPS or instr.op is Op.VGATHER:
            pending.clear()
        elif instr.op in _STORE_OPS:
            prev = pending.get(instr.addr)
            if prev is not None:
                live_instrs[prev] = None
                removed += 1
                saved += isa.cost(program.instructions[prev].op)
            pending[instr.addr] = idx
    out = VectorProgram(name=program.name + "+dse")
    for instr in live_instrs:
        if instr is not None:
            out.emit(instr)
    return PeepholeResult(out, removed, saved)


def optimize_program(program: VectorProgram, isa: VectorISA) -> PeepholeResult:
    """Apply both passes; returns cumulative savings."""
    r1 = eliminate_redundant_loads(program, isa)
    r2 = eliminate_dead_stores(r1.program, isa)
    final = VectorProgram(name=program.name + "+opt")
    final.instructions = r2.program.instructions
    return PeepholeResult(
        final,
        r1.instructions_removed + r2.instructions_removed,
        r1.issue_cycles_saved + r2.issue_cycles_saved,
    )
