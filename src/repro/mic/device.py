"""Executable device models: build a VM for one core of a platform.

Bridges the Table I :class:`~repro.perf.platforms.PlatformSpec` data to
the cycle-level machinery: a :class:`Device` wraps a spec and
manufactures :class:`~repro.mic.vm.VectorMachine` instances whose ISA,
cache sizes, and DRAM model match that platform, plus the unit
conversions (cycles to seconds at the spec's clock).
"""

from __future__ import annotations

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .memory import DramModel
from .vm import VectorMachine

if TYPE_CHECKING:  # avoid a circular import at runtime (platforms needs isa)
    from ..perf.platforms import PlatformSpec

__all__ = ["Device", "xeon_phi_device", "xeon_e5_device"]


@dataclass
class Device:
    """A platform with factories for per-core simulation."""

    spec: "PlatformSpec"

    def dram_model(self) -> DramModel:
        s = self.spec
        return DramModel(
            name=f"dram-{s.name}",
            latency_cycles=s.dram_latency_ns * s.clock_ghz,
            bytes_per_cycle_per_core=s.bytes_per_cycle_per_core,
        )

    def make_vm(self, memory_doubles: int = 1 << 20) -> VectorMachine:
        """A VM modelling one hardware thread of one core."""
        s = self.spec
        if s.isa is None:
            raise ValueError(f"{s.name} is a reference-only platform (no ISA)")
        return VectorMachine(
            isa=s.isa,
            dram=self.dram_model(),
            l1_bytes=s.l1_bytes,
            l2_bytes=s.l2_bytes,
            memory_doubles=memory_doubles,
        )

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / (self.spec.clock_ghz * 1e9)


def xeon_phi_device() -> Device:
    """Convenience: a single Xeon Phi 5110P card."""
    from ..perf.platforms import XEON_PHI_5110P_1S

    return Device(XEON_PHI_5110P_1S)


def xeon_e5_device() -> Device:
    """Convenience: the 2S E5-2680 baseline."""
    from ..perf.platforms import XEON_E5_2680_2S

    return Device(XEON_E5_2680_2S)
