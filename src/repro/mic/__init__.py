"""Simulated Intel MIC substrate.

A cycle-accounting vector virtual machine (``vm``), the ISAs it executes
(``isa``: MIC-512, AVX-256, SSE-128), a per-core cache + DRAM model
(``cache``, ``memory``), the pragma-driven auto-vectorizer and
intrinsics builder of Figure 2 (``compiler``), platform device wrappers
(``device``), and the offload-vs-native execution-mode cost models of
Section V-C (``offload``).
"""

from .cache import CacheLevel, MemoryHierarchy, MemoryStats
from .compiler import ArrayRef, Intrinsics, Loop, auto_vectorize, can_vectorize
from .device import Device, xeon_e5_device, xeon_phi_device
from .isa import AVX256, MIC512, SSE128, Instruction, Op, VectorISA
from .memory import CACHE_LINE, DramModel, MIC_GDDR5, SNB_DDR3
from .offload import NativeRuntime, OffloadedEngine, OffloadRuntime, TransferModel
from .peephole import (
    PeepholeResult,
    eliminate_dead_stores,
    eliminate_redundant_loads,
    optimize_program,
)
from .vm import RunStats, VectorMachine, VectorProgram

__all__ = [
    "CacheLevel",
    "MemoryHierarchy",
    "MemoryStats",
    "ArrayRef",
    "Intrinsics",
    "Loop",
    "auto_vectorize",
    "can_vectorize",
    "Device",
    "xeon_e5_device",
    "xeon_phi_device",
    "AVX256",
    "MIC512",
    "SSE128",
    "Instruction",
    "Op",
    "VectorISA",
    "CACHE_LINE",
    "DramModel",
    "MIC_GDDR5",
    "SNB_DDR3",
    "NativeRuntime",
    "OffloadedEngine",
    "OffloadRuntime",
    "PeepholeResult",
    "eliminate_dead_stores",
    "eliminate_redundant_loads",
    "optimize_program",
    "TransferModel",
    "RunStats",
    "VectorMachine",
    "VectorProgram",
]
