"""DRAM model: latency and bandwidth of the simulated memory systems.

The MIC's GDDR5 delivers ~3x the bandwidth of the CPU baseline's DDR3
(320 vs 102.4 GB/s, Table I) at a *higher* access latency — the
combination that makes streaming kernels (``derivativeSum``) shine on
the card while latency-sensitive, poorly-prefetched code suffers.  The
model is deliberately simple: a fixed load-to-use latency per demand
miss (hideable by prefetch) plus a per-core bandwidth cap that converts
total line traffic into a lower bound on execution cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DramModel", "MIC_GDDR5", "SNB_DDR3", "CACHE_LINE"]

CACHE_LINE = 64  # bytes


@dataclass(frozen=True)
class DramModel:
    """Main-memory timing for one core of a machine.

    Parameters
    ----------
    latency_cycles:
        Load-to-use latency of a demand miss that reaches DRAM.
    bytes_per_cycle_per_core:
        Sustainable DRAM bandwidth *per core* in bytes per core-cycle
        (chip bandwidth x efficiency / cores / clock).  Used as the
        roofline floor: ``cycles >= traffic_bytes / bytes_per_cycle``.
    """

    name: str
    latency_cycles: float
    bytes_per_cycle_per_core: float

    def bandwidth_cycles(self, traffic_bytes: float) -> float:
        """Minimum cycles to move ``traffic_bytes`` through DRAM."""
        return traffic_bytes / self.bytes_per_cycle_per_core


def dram_from_platform(
    name: str,
    bandwidth_gbs: float,
    clock_ghz: float,
    cores: int,
    latency_ns: float,
    efficiency: float = 0.8,
) -> DramModel:
    """Derive a per-core DRAM model from chip-level figures (Table I)."""
    bytes_per_cycle = bandwidth_gbs * efficiency / cores / clock_ghz
    return DramModel(
        name=name,
        latency_cycles=latency_ns * clock_ghz,
        bytes_per_cycle_per_core=bytes_per_cycle,
    )


#: Xeon Phi 5110P: 320 GB/s GDDR5 across 60 cores at 1.053 GHz; measured
#: KNC memory latency is ~300 ns.
MIC_GDDR5 = dram_from_platform("gddr5-5110p", 320.0, 1.053, 60, 300.0)

#: 2S E5-2680: 102.4 GB/s DDR3 across 16 cores at 2.7 GHz; ~80 ns latency.
SNB_DDR3 = dram_from_platform("ddr3-e5-2680", 102.4, 2.7, 16, 80.0)
