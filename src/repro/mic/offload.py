"""Offload vs. native execution modes (Section V-C).

The paper's key negative result: offloading individual PLF kernels to
the coprocessor is hopeless, because every offloaded invocation pays a
fixed runtime + PCIe latency that rivals the kernel's own compute time —
ML inference makes thousands of kernel calls per second, so offload
latency becomes *the* bottleneck, even with CLAs resident on the card.
Native mode (the whole program on the card) makes kernel invocation a
plain function call.

We model both modes as cost adapters around a kernel-time function:
:class:`OffloadRuntime` adds the per-invocation latency and any explicit
data transfers; :class:`NativeRuntime` adds nothing.  The offload
latency default (~10 us) reflects the published measurements for KNC
offload dispatch (Newburn et al., ref. [27] of the paper).

Fault tolerance: a real PCIe link to a KNC card is *flaky* — transfers
time out, checksums fail, and the card occasionally drops off the bus
(the LRZ MIC experience report's taxonomy).  :class:`OffloadRuntime`
therefore accepts a :class:`~repro.faults.FaultPlan`; each invocation
becomes a bounded retry loop with exponential backoff + seeded jitter
(:class:`~repro.faults.RetryPolicy`).  Failed attempts and backoff
delays are charged as *modelled* seconds (nothing sleeps), retries are
counted, and an exhausted budget raises
:class:`~repro.faults.OffloadGaveUp` so callers can checkpoint and
abort instead of silently wedging.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..faults.plan import (
    DeviceReset,
    FaultPlan,
    OffloadGaveUp,
    TransferCorruption,
    TransferTimeout,
)
from ..faults.retry import RetryPolicy
from ..obs import metrics as _obs_metrics
from ..obs import spans as _obs

__all__ = ["TransferModel", "OffloadRuntime", "NativeRuntime", "OffloadedEngine"]


@dataclass(frozen=True)
class TransferModel:
    """PCIe gen2 x16-ish transfer cost: latency + size/bandwidth."""

    latency_s: float = 20e-6
    bandwidth_bs: float = 6e9  # ~6 GB/s effective

    def transfer_time(self, n_bytes: float) -> float:
        if n_bytes < 0:
            raise ValueError("negative transfer size")
        if n_bytes == 0:
            return 0.0
        return self.latency_s + n_bytes / self.bandwidth_bs


@dataclass
class OffloadRuntime:
    """Host-driven offload: per-call dispatch latency + optional transfers.

    ``invocation_latency_s`` is the fixed cost of the offload runtime
    (marshalling, pinning, signalling the card, waiting for completion
    notification through the COI daemon) even when *no* data moves — the
    paper found it "comparable to and partially exceeding the time
    required for the actual computation", and Newburn et al. (the
    paper's ref. [27]) report empty-offload dispatch in the
    hundred-microsecond range on KNC.

    With a ``fault_plan`` each invocation is a bounded retry loop: a
    timed-out transfer costs ``timeout_s`` (deadline detection), a
    corrupted one costs the full (wasted) transfer, and a device reset
    costs ``reset_cost_s`` (re-initialise the card, re-upload resident
    CLAs); every retry then waits a modelled exponential-backoff delay
    before the next attempt.  Exhausting ``retry.max_attempts`` raises
    :class:`~repro.faults.OffloadGaveUp`.  Without a plan the behaviour
    (and modelled cost) is byte-for-byte the fault-free original.
    """

    invocation_latency_s: float = 200e-6
    transfer: TransferModel = field(default_factory=TransferModel)
    calls: int = 0
    seconds_in_latency: float = 0.0
    seconds_in_transfer: float = 0.0
    fault_plan: FaultPlan | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    retry_seed: int = 0
    timeout_s: float = 1e-3
    reset_cost_s: float = 5e-3
    retries: int = 0
    faults_seen: int = 0
    device_resets: int = 0
    giveups: int = 0
    seconds_in_backoff: float = 0.0
    seconds_in_faults: float = 0.0

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.retry_seed)

    def _inject(self) -> None:
        """Consult the plan for one attempt.

        Raises the matching retryable :class:`~repro.faults.FaultError`
        when the plan schedules a fault for this attempt; returns
        normally when the attempt succeeds.
        """
        plan = self.fault_plan
        if plan is None:
            return
        if plan.consult("device-reset", call=self.calls) is not None:
            self.device_resets += 1
            raise DeviceReset(f"device reset during call {self.calls}")
        if plan.consult("transfer-timeout", call=self.calls) is not None:
            raise TransferTimeout(f"transfer deadline missed, call {self.calls}")
        if plan.consult("transfer-corruption", call=self.calls) is not None:
            raise TransferCorruption(f"checksum mismatch, call {self.calls}")

    def invoke(
        self,
        kernel_seconds: float,
        bytes_to_card: float = 0.0,
        bytes_from_card: float = 0.0,
    ) -> float:
        """Total wall time of one offloaded kernel invocation.

        Includes the wasted time of any faulted attempts and the
        backoff delays between retries (all modelled, nothing sleeps).
        """
        t_transfer = self.transfer.transfer_time(bytes_to_card) + (
            self.transfer.transfer_time(bytes_from_card)
        )
        self.calls += 1
        wasted = 0.0
        for attempt in range(1, self.retry.max_attempts + 1):
            try:
                self._inject()
            except (DeviceReset, TransferTimeout, TransferCorruption) as fault:
                self.faults_seen += 1
                if isinstance(fault, DeviceReset):
                    cost = self.reset_cost_s
                elif isinstance(fault, TransferTimeout):
                    cost = self.timeout_s
                else:  # corruption: the full transfer happened, then failed
                    cost = t_transfer
                wasted += cost
                self.seconds_in_faults += cost
                if attempt >= self.retry.max_attempts:
                    self.giveups += 1
                    if _obs.ENABLED:
                        _obs.instant(
                            "offload.gave_up", call=self.calls, attempts=attempt
                        )
                        _obs_metrics.get_registry().counter(
                            "repro_offload_giveups_total",
                            "offload invocations that exhausted retries",
                        ).inc()
                    raise OffloadGaveUp(
                        f"offload call {self.calls} failed "
                        f"{attempt} attempts (last: {fault})"
                    ) from fault
                delay = self.retry.backoff_s(attempt, self._rng)
                wasted += delay
                self.seconds_in_backoff += delay
                self.retries += 1
                if _obs.ENABLED:
                    _obs.instant(
                        "offload.retry",
                        call=self.calls,
                        attempt=attempt,
                        kind=type(fault).__name__,
                        backoff_us=delay * 1e6,
                    )
                    _obs_metrics.get_registry().counter(
                        "repro_offload_retries_total",
                        "offload attempts retried after an injected fault",
                    ).inc()
                continue
            self.seconds_in_latency += self.invocation_latency_s
            self.seconds_in_transfer += t_transfer
            return (
                wasted + self.invocation_latency_s + t_transfer + kernel_seconds
            )
        raise AssertionError("unreachable")  # pragma: no cover

    @property
    def overhead_seconds(self) -> float:
        return (
            self.seconds_in_latency
            + self.seconds_in_transfer
            + self.seconds_in_faults
            + self.seconds_in_backoff
        )


@dataclass
class NativeRuntime:
    """Native mode: kernels are plain function calls (negligible latency)."""

    calls: int = 0

    def invoke(self, kernel_seconds: float) -> float:
        self.calls += 1
        return kernel_seconds

    @property
    def overhead_seconds(self) -> float:
        return 0.0


class OffloadedEngine:
    """Functional wrapper: a likelihood engine driven through offload.

    Models the paper's *initial* integration attempt (Sec. V-C): the
    tree-search algorithm runs on the host and every PLF kernel call is
    dispatched to the coprocessor.  CLAs stay resident on the card (as
    in the paper's GPU-inspired design), so no bulk data moves — only
    the fixed invocation latency accrues, once per kernel call, tracked
    via the wrapped engine's kernel counters.

    Numerical behaviour is identical to the wrapped engine; only the
    modelled ``offload_seconds`` accounting differs — which is exactly
    the paper's finding (correct results, unusable invocation cost).
    """

    def __init__(self, engine, runtime: OffloadRuntime | None = None) -> None:
        self.engine = engine
        self.runtime = runtime if runtime is not None else OffloadRuntime()
        self._last_total_calls = engine.counters.total_calls()

    def _account(self):
        now = self.engine.counters.total_calls()
        new_calls = now - self._last_total_calls
        self._last_total_calls = now
        for _ in range(new_calls):
            self.runtime.invoke(0.0)

    @property
    def offload_seconds(self) -> float:
        """Accumulated modelled offload-dispatch time."""
        return self.runtime.overhead_seconds

    @property
    def offloaded_calls(self) -> int:
        return self.runtime.calls

    # -- pass-through engine surface -----------------------------------
    @property
    def tree(self):
        return self.engine.tree

    @property
    def counters(self):
        return self.engine.counters

    @property
    def rates_model(self):
        return self.engine.rates_model

    @property
    def model(self):
        return self.engine.model

    def set_model(self, model, rates=None):
        self.engine.set_model(model, rates)

    def set_alpha(self, alpha: float) -> None:
        self.engine.set_alpha(alpha)

    def default_edge(self) -> int:
        return self.engine.default_edge()

    def log_likelihood(self, root_edge=None) -> float:
        out = self.engine.log_likelihood(root_edge)
        self._account()
        return out

    def site_log_likelihoods(self, root_edge=None):
        out = self.engine.site_log_likelihoods(root_edge)
        self._account()
        return out

    def edge_sum_buffer(self, root_edge: int):
        out = self.engine.edge_sum_buffer(root_edge)
        self._account()
        return out

    def branch_derivatives(self, sumbuf, t: float):
        out = self.engine.branch_derivatives(sumbuf, t)
        self._account()
        return out

    def drop_caches(self) -> None:
        self.engine.drop_caches()
