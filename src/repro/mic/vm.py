"""Cycle-accounting vector virtual machine.

:class:`VectorMachine` stands in for one hardware thread of a Xeon Phi
core (or a CPU core, depending on the ISA): it executes
:class:`~repro.mic.isa.Instruction` streams over a flat simulated
memory, producing both the *numerical result* (lanes are real float64
values, so kernels can be validated bit-for-bit against the NumPy
reference) and a *cycle estimate* composed of

* instruction issue cycles (from the ISA's throughput table),
* demand-miss stall cycles (from the cache/DRAM model, prefetch-aware),
* a DRAM bandwidth roofline: cycles can never be fewer than
  ``traffic / bytes_per_cycle``.

This is the measurement instrument behind the reproduction's Figure 3:
the four PLF kernels are emitted as instruction streams (by
:mod:`repro.core.vectorized`) for both the MIC ISA and the AVX ISA, run
on identically-sized inputs, and the per-site cycle ratios — adjusted
for core counts and clocks by the platform model — give the kernel
speedups.  Enforcement of the 64-byte alignment rule (Sec. V-B2) and
the behaviour of streaming stores and software prefetches (Sec. V-B5/6)
all live at this level.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .cache import CacheLevel, MemoryHierarchy, MemoryStats
from .isa import Instruction, Op, VectorISA
from .memory import DramModel

__all__ = ["VectorMachine", "RunStats", "VectorProgram"]


@dataclass
class VectorProgram:
    """An instruction stream plus a human-readable name."""

    name: str
    instructions: list[Instruction] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.instructions)

    def emit(self, instr: Instruction) -> None:
        self.instructions.append(instr)

    def disassembly(self) -> list[str]:
        return [str(i) for i in self.instructions]


@dataclass
class RunStats:
    """Cycle accounting of one program execution."""

    issue_cycles: float
    stall_cycles: float
    bandwidth_cycles: float
    instructions: int
    op_counts: dict[Op, int]
    memory: MemoryStats

    @property
    def cycles(self) -> float:
        """Total cycles: compute+stalls, floored by the DRAM roofline."""
        return max(self.issue_cycles + self.stall_cycles, self.bandwidth_cycles)

    @property
    def flops(self) -> int:
        """Double-precision floating-point operations executed."""
        width_ops = {
            Op.VADD: 1, Op.VSUB: 1, Op.VMUL: 1, Op.VDIV: 1, Op.VMAX: 1,
            Op.VFMA: 2,
        }
        scalar_ops = {Op.SADD: 1, Op.SMUL: 1, Op.SDIV: 1}
        total = 0
        for op, n in self.op_counts.items():
            if op in width_ops:
                total += width_ops[op] * n * self._width
            elif op in scalar_ops:
                total += n
            elif op is Op.HADD:
                total += (self._width - 1) * n
        return total

    _width: int = 8


class VectorMachine:
    """Executes vector programs with numerics + cycle accounting.

    Parameters
    ----------
    isa:
        Instruction set (width, costs, capabilities).
    l1_bytes / l2_bytes:
        Per-core cache sizes (MIC: 32 KB / 512 KB).
    dram:
        The DRAM timing model for one core of the target machine.
    memory_doubles:
        Size of the flat simulated memory.
    """

    def __init__(
        self,
        isa: VectorISA,
        dram: DramModel,
        l1_bytes: int = 32 * 1024,
        l2_bytes: int = 512 * 1024,
        memory_doubles: int = 1 << 20,
    ) -> None:
        self.isa = isa
        self.memory = np.zeros(memory_doubles, dtype=np.float64)
        self.hierarchy = MemoryHierarchy(
            CacheLevel("L1", l1_bytes, 8),
            CacheLevel("L2", l2_bytes, 8),
            dram,
        )
        self._alloc_ptr = 64  # leave address 0 unused
        self._vregs: dict[str, np.ndarray] = {}
        self._sregs: dict[str, float] = {}

    # ------------------------------------------------------------------
    # memory management (host-side API, not simulated instructions)
    # ------------------------------------------------------------------
    def alloc(self, n_doubles: int, align: int | None = None) -> int:
        """Allocate ``n_doubles`` and return the byte address.

        Default alignment is the ISA's vector alignment — the simulated
        equivalent of ``_mm_malloc`` (Sec. V-B2).
        """
        align = align or self.isa.alignment
        addr = (self._alloc_ptr + align - 1) // align * align
        end = addr + n_doubles * 8
        if end > self.memory.nbytes:
            raise MemoryError(
                f"simulated memory exhausted ({end} > {self.memory.nbytes})"
            )
        self._alloc_ptr = end
        return addr

    def write_array(self, addr: int, values: np.ndarray) -> None:
        """Host-side copy into simulated memory (no cycles charged)."""
        values = np.ascontiguousarray(values, dtype=np.float64).reshape(-1)
        if addr % 8:
            raise ValueError(f"address {addr:#x} not 8-byte aligned")
        self.memory[addr // 8 : addr // 8 + values.size] = values

    def read_array(self, addr: int, n_doubles: int) -> np.ndarray:
        """Host-side copy out of simulated memory (no cycles charged)."""
        return self.memory[addr // 8 : addr // 8 + n_doubles].copy()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        program: VectorProgram,
        flush_caches: bool = True,
        drain_writebacks: bool = True,
    ) -> RunStats:
        """Execute a program; returns cycle statistics.

        ``flush_caches=True`` measures a cold run (the default for
        kernel benchmarking, where CLAs greatly exceed cache capacity and
        the paper's kernels always stream from DRAM).

        ``drain_writebacks=True`` charges the DRAM write traffic of lines
        still dirty in the caches when the program ends.  Kernel
        measurements use small site windows whose dirty output lines
        would otherwise never be evicted, under-counting the store
        traffic that bounds steady-state streaming throughput.
        """
        if flush_caches:
            self.hierarchy.flush()
        isa = self.isa
        width = isa.width
        vregs = self._vregs
        sregs = self._sregs
        issue = 0.0
        op_counts: dict[Op, int] = {}
        hier = self.hierarchy
        mem = self.memory

        last_dest: str | None = None
        arith_ops = {
            Op.VADD, Op.VSUB, Op.VMUL, Op.VDIV, Op.VFMA, Op.VMAX, Op.VABS,
            Op.VSHUF, Op.HADD, Op.HMAX,
        }
        for instr in program.instructions:
            op = instr.op
            op_counts[op] = op_counts.get(op, 0) + 1
            issue += isa.cost(op)
            if (
                isa.dependency_penalty
                and last_dest is not None
                and last_dest in instr.srcs
                and op in arith_ops
            ):
                issue += isa.dependency_penalty
            last_dest = instr.dest
            now = issue + hier.stats.stall_cycles

            if op is Op.VLOAD:
                self._check_alignment(instr.addr)
                hier.access(instr.addr, width * 8, False, now)
                vregs[instr.dest] = mem[
                    instr.addr // 8 : instr.addr // 8 + width
                ].copy()
            elif op in (Op.VSTORE, Op.VSTORE_NT):
                self._check_alignment(instr.addr)
                nt = op is Op.VSTORE_NT and isa.has_streaming_stores
                hier.access(instr.addr, width * 8, True, now, nontemporal=nt)
                mem[instr.addr // 8 : instr.addr // 8 + width] = vregs[
                    instr.srcs[0]
                ]
            elif op is Op.VBROADCAST:
                hier.access(instr.addr, 8, False, now)
                vregs[instr.dest] = np.full(width, mem[instr.addr // 8])
            elif op is Op.VGATHER:
                lanes = np.empty(width)
                for i, a in enumerate(instr.addrs):
                    hier.access(a, 8, False, now)
                    lanes[i] = mem[a // 8]
                vregs[instr.dest] = lanes
            elif op is Op.VSET:
                vregs[instr.dest] = np.array(instr.values, dtype=np.float64)
            elif op is Op.VADD:
                vregs[instr.dest] = vregs[instr.srcs[0]] + vregs[instr.srcs[1]]
            elif op is Op.VSUB:
                vregs[instr.dest] = vregs[instr.srcs[0]] - vregs[instr.srcs[1]]
            elif op is Op.VMUL:
                vregs[instr.dest] = vregs[instr.srcs[0]] * vregs[instr.srcs[1]]
            elif op is Op.VDIV:
                vregs[instr.dest] = vregs[instr.srcs[0]] / vregs[instr.srcs[1]]
            elif op is Op.VFMA:
                a, b, c = (vregs[s] for s in instr.srcs)
                vregs[instr.dest] = a * b + c
            elif op is Op.VMAX:
                vregs[instr.dest] = np.maximum(
                    vregs[instr.srcs[0]], vregs[instr.srcs[1]]
                )
            elif op is Op.VABS:
                vregs[instr.dest] = np.abs(vregs[instr.srcs[0]])
            elif op is Op.VSHUF:
                src = vregs[instr.srcs[0]]
                vregs[instr.dest] = src[list(instr.pattern)]
            elif op is Op.HADD:
                sregs[instr.dest] = float(vregs[instr.srcs[0]].sum())
            elif op is Op.HMAX:
                sregs[instr.dest] = float(vregs[instr.srcs[0]].max())
            elif op is Op.SLOAD:
                hier.access(instr.addr, 8, False, now)
                sregs[instr.dest] = float(mem[instr.addr // 8])
            elif op is Op.SSTORE:
                hier.access(instr.addr, 8, True, now)
                mem[instr.addr // 8] = sregs[instr.srcs[0]]
            elif op is Op.SADD:
                sregs[instr.dest] = sregs[instr.srcs[0]] + sregs[instr.srcs[1]]
            elif op is Op.SMUL:
                sregs[instr.dest] = sregs[instr.srcs[0]] * sregs[instr.srcs[1]]
            elif op is Op.SDIV:
                sregs[instr.dest] = sregs[instr.srcs[0]] / sregs[instr.srcs[1]]
            elif op is Op.SLOG:
                sregs[instr.dest] = float(np.log(sregs[instr.srcs[0]]))
            elif op is Op.SEXP:
                sregs[instr.dest] = float(np.exp(sregs[instr.srcs[0]]))
            elif op is Op.PREFETCH:
                hier.register_prefetch(instr.addr, now)
            else:  # pragma: no cover - defensive
                raise NotImplementedError(f"op {op} not implemented")

        stats = hier.stats
        if drain_writebacks:
            dirty = {
                line
                for level in (hier.l1, hier.l2)
                for s in level._sets
                for line, d in s.items()
                if d
            }
            stats.writebacks += len(dirty)
            stats.dram_write_bytes += len(dirty) * 64
        bw_cycles = hier.dram.bandwidth_cycles(stats.dram_bytes)
        rs = RunStats(
            issue_cycles=issue,
            stall_cycles=stats.stall_cycles,
            bandwidth_cycles=bw_cycles,
            instructions=len(program.instructions),
            op_counts=op_counts,
            memory=stats,
        )
        rs._width = width
        return rs

    def _check_alignment(self, addr: int) -> None:
        if addr % self.isa.alignment:
            raise ValueError(
                f"misaligned vector access at {addr:#x}: {self.isa.name} "
                f"requires {self.isa.alignment}-byte alignment "
                "(see paper Sec. V-B2 — pad per-site blocks or use "
                "__mm_malloc-style allocation)"
            )

    # convenience for tests
    def vreg(self, name: str) -> np.ndarray:
        return self._vregs[name].copy()

    def sreg(self, name: str) -> float:
        return self._sregs[name]
