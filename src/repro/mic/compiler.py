"""Loop auto-vectorizer and intrinsics builder (the paper's Figure 2).

Section V-B1 shows two routes to the same machine code for the
``derivativeSum`` inner loop: ``#pragma ivdep`` + ``#pragma vector
aligned`` on a plain C loop, or explicit ``_mm512_*`` compiler
intrinsics — and demonstrates that icc emits the *identical* assembly
for both.  This module reproduces that demonstration on our ISA:

* :func:`auto_vectorize` compiles a tiny loop IR (element-wise
  expressions over arrays) into a :class:`VectorProgram`, but only when
  the paper's vectorization conditions hold — innermost counted loop,
  ``ivdep`` promising no dependencies, ``vector aligned`` promising
  alignment, trip count a multiple of the vector width; otherwise it
  falls back to scalar code (the "recompile with -mmic and hope"
  baseline whose slowness motivates Sec. V-B).
* :class:`Intrinsics` is a thin builder with the ``_mm512``-style
  vocabulary (``load_pd``, ``mul_pd``, ``fmadd_pd``, ``store_pd``,
  ``stream_pd``) emitting into the same program representation.

Equality of the two instruction streams is asserted by the Figure 2
harness and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .isa import Instruction, Op, VectorISA
from .vm import VectorProgram

__all__ = [
    "ArrayRef",
    "BinExpr",
    "Loop",
    "Pragma",
    "auto_vectorize",
    "Intrinsics",
    "VectorizationReport",
]


@dataclass(frozen=True)
class ArrayRef:
    """``name[i]`` — an array indexed by the loop variable."""

    name: str

    def __mul__(self, other: "ArrayRef | BinExpr") -> "BinExpr":
        return BinExpr("mul", self, other)

    def __add__(self, other: "ArrayRef | BinExpr") -> "BinExpr":
        return BinExpr("add", self, other)

    def __sub__(self, other: "ArrayRef | BinExpr") -> "BinExpr":
        return BinExpr("sub", self, other)


@dataclass(frozen=True)
class BinExpr:
    """Binary element-wise expression over array references."""

    kind: str  # "mul" | "add" | "sub" | "fma"
    lhs: "ArrayRef | BinExpr"
    rhs: "ArrayRef | BinExpr"

    def __add__(self, other: "ArrayRef | BinExpr") -> "BinExpr":
        # a * b + c folds into an FMA candidate
        if self.kind == "mul" and isinstance(other, ArrayRef):
            return BinExpr("fma", self, other)
        return BinExpr("add", self, other)

    def __mul__(self, other: "ArrayRef | BinExpr") -> "BinExpr":
        return BinExpr("mul", self, other)


class Pragma(str):
    """Compiler hints: ``ivdep``, ``vector aligned``, ``vector nontemporal``."""


@dataclass
class Loop:
    """``for (i = 0; i < n; i++) dst[i] = expr;`` with optional pragmas."""

    n: int
    dst: str
    expr: ArrayRef | BinExpr
    pragmas: frozenset[str] = frozenset()
    innermost: bool = True

    def with_pragmas(self, *pragmas: str) -> "Loop":
        return Loop(self.n, self.dst, self.expr, frozenset(pragmas), self.innermost)


@dataclass
class VectorizationReport:
    """Why a loop was or wasn't vectorized (icc's ``-vec-report`` analogue)."""

    vectorized: bool
    reason: str


def _expr_arrays(expr: ArrayRef | BinExpr) -> list[str]:
    if isinstance(expr, ArrayRef):
        return [expr.name]
    return _expr_arrays(expr.lhs) + _expr_arrays(expr.rhs)


def can_vectorize(loop: Loop, isa: VectorISA) -> VectorizationReport:
    """Apply the paper's conditions for successful auto-vectorization."""
    if not loop.innermost:
        return VectorizationReport(False, "not the innermost loop")
    if "ivdep" not in loop.pragmas:
        # The compiler must assume dst may alias a source.
        if loop.dst in _expr_arrays(loop.expr):
            return VectorizationReport(
                False, "assumed dependency between input and output vectors"
            )
        return VectorizationReport(
            False, "possible data dependency (add '#pragma ivdep')"
        )
    if "vector aligned" not in loop.pragmas:
        return VectorizationReport(
            False, "unknown alignment (add '#pragma vector aligned')"
        )
    if loop.n % isa.width:
        return VectorizationReport(
            False, f"trip count {loop.n} not a multiple of width {isa.width}"
        )
    return VectorizationReport(True, "vectorized")


def _emit_expr(
    prog: VectorProgram,
    expr: ArrayRef | BinExpr,
    arrays: dict[str, int],
    offset_bytes: int,
    fresh: list[int],
) -> str:
    """Emit vector code computing ``expr`` at ``offset``; returns register."""
    if isinstance(expr, ArrayRef):
        reg = f"v{fresh[0]}"
        fresh[0] += 1
        prog.emit(
            Instruction(Op.VLOAD, dest=reg, addr=arrays[expr.name] + offset_bytes)
        )
        return reg
    if expr.kind == "fma":
        assert isinstance(expr.lhs, BinExpr) and expr.lhs.kind == "mul"
        a = _emit_expr(prog, expr.lhs.lhs, arrays, offset_bytes, fresh)
        b = _emit_expr(prog, expr.lhs.rhs, arrays, offset_bytes, fresh)
        c = _emit_expr(prog, expr.rhs, arrays, offset_bytes, fresh)
        reg = f"v{fresh[0]}"
        fresh[0] += 1
        prog.emit(Instruction(Op.VFMA, dest=reg, srcs=(a, b, c)))
        return reg
    a = _emit_expr(prog, expr.lhs, arrays, offset_bytes, fresh)
    b = _emit_expr(prog, expr.rhs, arrays, offset_bytes, fresh)
    reg = f"v{fresh[0]}"
    fresh[0] += 1
    op = {"mul": Op.VMUL, "add": Op.VADD, "sub": Op.VSUB}[expr.kind]
    prog.emit(Instruction(op, dest=reg, srcs=(a, b)))
    return reg


def auto_vectorize(
    loop: Loop, arrays: dict[str, int], isa: VectorISA, name: str = "autovec"
) -> tuple[VectorProgram, VectorizationReport]:
    """Compile a loop, vectorizing when the pragma conditions allow.

    ``arrays`` maps array names to their byte base addresses in the VM.
    """
    report = can_vectorize(loop, isa)
    prog = VectorProgram(name=name)
    if report.vectorized:
        store_op = (
            Op.VSTORE_NT
            if "vector nontemporal" in loop.pragmas and isa.has_streaming_stores
            else Op.VSTORE
        )
        for i in range(0, loop.n, isa.width):
            fresh = [0]
            off = i * 8
            reg = _emit_expr(prog, loop.expr, arrays, off, fresh)
            prog.emit(
                Instruction(store_op, srcs=(reg,), addr=arrays[loop.dst] + off)
            )
        return prog, report

    # scalar fallback
    def emit_scalar(expr: ArrayRef | BinExpr, off: int, fresh: list[int]) -> str:
        if isinstance(expr, ArrayRef):
            reg = f"s{fresh[0]}"
            fresh[0] += 1
            prog.emit(Instruction(Op.SLOAD, dest=reg, addr=arrays[expr.name] + off))
            return reg
        if expr.kind == "fma":
            inner = emit_scalar(expr.lhs, off, fresh)
            c = emit_scalar(expr.rhs, off, fresh)
            reg = f"s{fresh[0]}"
            fresh[0] += 1
            prog.emit(Instruction(Op.SADD, dest=reg, srcs=(inner, c)))
            return reg
        a = emit_scalar(expr.lhs, off, fresh)
        b = emit_scalar(expr.rhs, off, fresh)
        reg = f"s{fresh[0]}"
        fresh[0] += 1
        op = {"mul": Op.SMUL, "add": Op.SADD, "sub": Op.SADD}[expr.kind]
        prog.emit(Instruction(op, dest=reg, srcs=(a, b)))
        return reg

    for i in range(loop.n):
        fresh = [0]
        reg = emit_scalar(loop.expr, i * 8, fresh)
        prog.emit(Instruction(Op.SSTORE, srcs=(reg,), addr=arrays[loop.dst] + i * 8))
    return prog, report


class Intrinsics:
    """``_mm512``-style intrinsics emitting into a :class:`VectorProgram`.

    Register management mirrors how a compiler would allocate one fresh
    virtual register per intrinsic result, so a hand-written kernel and
    the auto-vectorizer produce literally identical streams when the
    operations match (Figure 2's point).
    """

    def __init__(self, isa: VectorISA, name: str = "intrinsics") -> None:
        self.isa = isa
        self.program = VectorProgram(name=name)
        self._fresh = 0

    def _reg(self) -> str:
        reg = f"v{self._fresh}"
        self._fresh += 1
        return reg

    def reset_registers(self) -> None:
        """Start a fresh statement (compiler reuses register names)."""
        self._fresh = 0

    def load_pd(self, addr: int) -> str:
        reg = self._reg()
        self.program.emit(Instruction(Op.VLOAD, dest=reg, addr=addr))
        return reg

    def broadcast_sd(self, addr: int) -> str:
        reg = self._reg()
        self.program.emit(Instruction(Op.VBROADCAST, dest=reg, addr=addr))
        return reg

    def mul_pd(self, a: str, b: str) -> str:
        reg = self._reg()
        self.program.emit(Instruction(Op.VMUL, dest=reg, srcs=(a, b)))
        return reg

    def add_pd(self, a: str, b: str) -> str:
        reg = self._reg()
        self.program.emit(Instruction(Op.VADD, dest=reg, srcs=(a, b)))
        return reg

    def fmadd_pd(self, a: str, b: str, c: str) -> str:
        reg = self._reg()
        self.program.emit(Instruction(Op.VFMA, dest=reg, srcs=(a, b, c)))
        return reg

    def store_pd(self, addr: int, src: str) -> None:
        self.program.emit(Instruction(Op.VSTORE, srcs=(src,), addr=addr))

    def stream_pd(self, addr: int, src: str) -> None:
        op = Op.VSTORE_NT if self.isa.has_streaming_stores else Op.VSTORE
        self.program.emit(Instruction(op, srcs=(src,), addr=addr))

    def prefetch(self, addr: int) -> None:
        self.program.emit(Instruction(Op.PREFETCH, addr=addr))
