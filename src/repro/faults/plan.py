"""Fault taxonomy and the deterministic, seedable fault schedule.

A :class:`FaultPlan` is the single source of truth for *when things go
wrong* in a simulated run.  Instrumented call sites (offload dispatch,
AllReduce, the search-driver step loop, the checkpoint writer) call
:meth:`FaultPlan.consult` with their fault *kind*; the plan decides —
deterministically, from the seed and the per-kind consultation index —
whether that call fails, and logs a :class:`FaultEvent` either way a
fault fires.  Two trigger styles coexist:

* **scheduled** — ``at_calls=(3, 7)`` fires on exactly the 4th and 8th
  consultation of that kind (0-based), or ``step=4`` for the
  step-indexed kinds (``crash-at-step``); reproductions of a specific
  failure timeline;
* **stochastic** — ``probability=0.05`` draws from the plan's seeded
  RNG on every consultation; the flaky-link model.  Same seed, same
  consultation sequence, same faults — runs stay replayable.

Fault kinds and where they are injected:

================== ====================================================
``transfer-timeout``    :class:`~repro.mic.offload.OffloadRuntime.invoke`
``transfer-corruption`` same (checksum detected after a full transfer)
``device-reset``        same (card dropped off the bus; costly recovery)
``allreduce-timeout``   :meth:`~repro.parallel.simmpi.SimMPI.allreduce_sum`
``rank-death``          same (a rank stops contributing mid-collective)
``crash-at-step``       the search driver's step loop (process dies)
``crash-in-write``      the checkpoint writer, *between* fsync and the
                        atomic rename (kill-mid-write simulation)
================== ====================================================
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from ..obs import metrics as _obs_metrics
from ..obs import spans as _obs

__all__ = [
    "FAULT_KINDS",
    "FaultError",
    "TransferTimeout",
    "TransferCorruption",
    "DeviceReset",
    "AllReduceTimeout",
    "OffloadGaveUp",
    "RankFailure",
    "InjectedCrash",
    "FaultSpec",
    "FaultEvent",
    "FaultPlan",
]

#: Every fault kind a plan may schedule (see module docstring).
FAULT_KINDS = (
    "transfer-timeout",
    "transfer-corruption",
    "device-reset",
    "allreduce-timeout",
    "rank-death",
    "crash-at-step",
    "crash-in-write",
)


# ----------------------------------------------------------------------
# exception taxonomy
# ----------------------------------------------------------------------
class FaultError(RuntimeError):
    """Base class for every injected-fault failure surfaced to callers."""


class TransferTimeout(FaultError):
    """A PCIe transfer exceeded its deadline (retryable)."""


class TransferCorruption(FaultError):
    """A transfer completed but failed its checksum (retryable)."""


class DeviceReset(FaultError):
    """The coprocessor dropped off the bus mid-invocation (retryable)."""


class AllReduceTimeout(FaultError):
    """An AllReduce collective never completed within its deadline."""


class OffloadGaveUp(FaultError):
    """The offload runtime exhausted its retry budget."""


class RankFailure(FaultError):
    """An MPI rank died; carries the dead rank's index."""

    def __init__(self, rank: int, message: str | None = None) -> None:
        super().__init__(message or f"rank {rank} failed")
        self.rank = rank


class InjectedCrash(FaultError):
    """The simulated process died (crash-at-step / crash-in-write).

    Deliberately *not* caught by the in-run recovery machinery: a crash
    means this process is gone, and recovery is a fresh process resuming
    from the last complete checkpoint (see :mod:`repro.faults.runner`).
    """

    def __init__(self, step: int, where: str = "step") -> None:
        super().__init__(f"injected crash at {where} {step}")
        self.step = step
        self.where = where


# ----------------------------------------------------------------------
# schedule
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultSpec:
    """One scheduled or stochastic fault source inside a plan.

    ``at_calls`` fires on those 0-based consultation indices of the
    spec's kind; ``step`` matches the step-indexed kinds against the
    caller-supplied ``step=`` detail; ``probability`` draws from the
    plan RNG.  ``max_fires`` bounds total fires (scheduled specs default
    to firing each listed occasion once; stochastic specs default to
    unlimited).  ``rank`` names the victim for ``rank-death``.
    """

    kind: str
    probability: float = 0.0
    at_calls: tuple[int, ...] = ()
    step: int | None = None
    rank: int | None = None
    max_fires: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if (
            self.probability == 0.0
            and not self.at_calls
            and self.step is None
        ):
            raise ValueError(
                "inert FaultSpec: needs probability, at_calls, or step"
            )

    @property
    def fire_budget(self) -> float:
        """Effective fire bound: explicit ``max_fires`` or the default."""
        if self.max_fires is not None:
            return self.max_fires
        if self.probability > 0.0:
            return float("inf")
        # scheduled-only: one fire per listed occasion
        return len(self.at_calls) + (1 if self.step is not None else 0)


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually fired (the plan's flight recorder)."""

    kind: str
    consult_index: int
    spec_index: int
    detail: dict


class FaultPlan:
    """Deterministic, seedable fault schedule consulted by call sites.

    The plan is stateful: it counts consultations per kind, draws from
    one seeded RNG, bounds each spec's fires, and appends every fired
    fault to :attr:`events`.  Replays are exact: the same seed and the
    same sequence of ``consult`` calls produce the same faults.  A plan
    instance is meant to span a whole simulated *machine lifetime* —
    the survival runner keeps one plan across crash/resume cycles so a
    once-only crash does not re-fire after restart.
    """

    def __init__(
        self,
        specs: list[FaultSpec] | tuple[FaultSpec, ...] = (),
        seed: int = 0,
        name: str = "",
    ) -> None:
        self.specs = tuple(specs)
        self.seed = seed
        self.name = name
        self.events: list[FaultEvent] = []
        self._rng = np.random.default_rng(seed)
        self._consults: dict[str, int] = defaultdict(int)
        self._fires: dict[int, int] = defaultdict(int)

    # -- core ----------------------------------------------------------
    def consult(self, kind: str, **detail) -> FaultSpec | None:
        """Does the next occasion of ``kind`` fault?  Returns the spec.

        Step-indexed kinds pass ``step=`` in ``detail`` and match specs
        by ``spec.step``; other specs match by ``at_calls`` against the
        per-kind consultation counter or by a seeded probability draw.
        The first matching spec wins.  Fired faults are appended to
        :attr:`events` and emitted as obs counters/instants.
        """
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}")
        index = self._consults[kind]
        self._consults[kind] = index + 1
        for spec_index, spec in enumerate(self.specs):
            if spec.kind != kind:
                continue
            if self._fires[spec_index] >= spec.fire_budget:
                continue
            if spec.step is not None:
                hit = detail.get("step") == spec.step
            else:
                hit = index in spec.at_calls
                if not hit and spec.probability > 0.0:
                    hit = self._rng.random() < spec.probability
            if hit:
                self._fires[spec_index] += 1
                event = FaultEvent(
                    kind=kind,
                    consult_index=index,
                    spec_index=spec_index,
                    detail=dict(detail),
                )
                self.events.append(event)
                self._emit(event)
                return spec
        return None

    def _emit(self, event: FaultEvent) -> None:
        if not _obs.ENABLED:
            return
        _obs.instant(
            "fault.injected", kind=event.kind, consult=event.consult_index,
            **{k: v for k, v in event.detail.items() if isinstance(v, (int, float, str))},
        )
        reg = _obs_metrics.get_registry()
        reg.counter(
            "repro_faults_injected_total", "faults fired by the active plan"
        ).inc()
        reg.counter(
            "repro_faults_" + event.kind.replace("-", "_") + "_total",
            f"'{event.kind}' faults fired",
        ).inc()

    # -- convenience wrappers (one per injection site) -----------------
    def crash_at_step(self, step: int) -> bool:
        """Search-driver hook: should the process die at ``step``?"""
        return self.consult("crash-at-step", step=step) is not None

    def crash_in_write(self, target: str) -> bool:
        """Checkpoint-writer hook: die between fsync and rename?"""
        return self.consult("crash-in-write", target=target) is not None

    def rank_death(self, n_ranks: int) -> int | None:
        """Collective hook: the rank that dies now, or ``None``."""
        spec = self.consult("rank-death", n_ranks=n_ranks)
        if spec is None:
            return None
        if spec.rank is not None:
            return spec.rank % n_ranks
        return int(self._rng.integers(n_ranks))

    # -- reporting -----------------------------------------------------
    @property
    def n_fired(self) -> int:
        return len(self.events)

    def consults(self, kind: str) -> int:
        """How many times ``kind`` has been consulted so far."""
        return self._consults[kind]

    def summary(self) -> dict[str, int]:
        """Fired-fault counts per kind (only kinds that fired appear)."""
        out: dict[str, int] = defaultdict(int)
        for event in self.events:
            out[event.kind] += 1
        return dict(out)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or f"{len(self.specs)} specs"
        return f"FaultPlan({label}, seed={self.seed}, fired={self.n_fired})"
