"""Named built-in fault plans and JSON plan loading.

The ``repro faults`` subcommand (and the CI fault-injection job) refer
to plans by name; each name maps to a factory so every run gets a fresh
plan instance (plans are stateful flight recorders).  Custom schedules
load from JSON via :func:`plan_from_json`::

    {"seed": 7, "specs": [
        {"kind": "transfer-timeout", "probability": 0.05},
        {"kind": "crash-at-step", "step": 4}
    ]}
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from .plan import FaultPlan, FaultSpec

__all__ = ["PlanInfo", "available_plans", "make_plan", "plan_from_json"]


@dataclass(frozen=True)
class PlanInfo:
    """A registry entry: name, description, and spec factory."""

    name: str
    description: str
    specs: tuple[FaultSpec, ...]


_REGISTRY: dict[str, PlanInfo] = {}


def _register(name: str, description: str, *specs: FaultSpec) -> None:
    _REGISTRY[name] = PlanInfo(name=name, description=description, specs=specs)


_register(
    "none",
    "no faults (baseline control)",
)
_register(
    "flaky-pcie",
    "5% transfer timeouts + 2% checksum corruption on the PCIe link",
    FaultSpec(kind="transfer-timeout", probability=0.05),
    FaultSpec(kind="transfer-corruption", probability=0.02),
)
_register(
    "pcie-storm",
    "40% transfer timeouts — exercises retry exhaustion (OffloadGaveUp)",
    FaultSpec(kind="transfer-timeout", probability=0.40),
)
_register(
    "device-reset",
    "one coprocessor reset on the 6th offloaded invocation",
    FaultSpec(kind="device-reset", at_calls=(5,)),
)
_register(
    "slow-allreduce",
    "10% AllReduce timeouts (collective retried with backoff)",
    FaultSpec(kind="allreduce-timeout", probability=0.10),
)
_register(
    "dying-rank",
    "rank 1 dies on the 4th collective (degrade-or-abort path)",
    FaultSpec(kind="rank-death", at_calls=(3,), rank=1),
)
_register(
    "crash-midsearch",
    "the process dies at search step 4 (resume from checkpoint)",
    FaultSpec(kind="crash-at-step", step=4),
)
_register(
    "crash-early",
    "the process dies at search step 1 (before model optimisation)",
    FaultSpec(kind="crash-at-step", step=1),
)
_register(
    "double-crash",
    "the process dies at steps 3 and 5 — two resume cycles",
    FaultSpec(kind="crash-at-step", step=3),
    FaultSpec(kind="crash-at-step", step=5),
)
_register(
    "crash-in-write",
    "killed between fsync and rename on the 2nd checkpoint write",
    FaultSpec(kind="crash-in-write", at_calls=(1,)),
)
_register(
    "chaos",
    "flaky link + one mid-search crash + one AllReduce timeout burst",
    FaultSpec(kind="transfer-timeout", probability=0.05),
    FaultSpec(kind="allreduce-timeout", probability=0.05),
    FaultSpec(kind="crash-at-step", step=4),
)


def available_plans() -> list[PlanInfo]:
    """Registered plans in registration order."""
    return list(_REGISTRY.values())


def make_plan(name: str, seed: int = 0) -> FaultPlan:
    """A fresh :class:`FaultPlan` instance for a registered name."""
    try:
        info = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown fault plan {name!r} (known: {known})") from None
    return FaultPlan(info.specs, seed=seed, name=name)


def plan_from_json(source: str | Path | dict, seed: int | None = None) -> FaultPlan:
    """Load a custom plan from a JSON file path or an already-parsed dict.

    The document holds ``specs`` (a list of :class:`FaultSpec` field
    dicts) and an optional ``seed``/``name``; a ``seed`` argument
    overrides the document's.  Malformed documents raise ``ValueError``
    naming the offending spec.
    """
    if isinstance(source, dict):
        doc = source
        origin = "<dict>"
    else:
        path = Path(source)
        origin = str(path)
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(f"unreadable fault plan {origin}: {exc}") from exc
    if not isinstance(doc, dict) or not isinstance(doc.get("specs", []), list):
        raise ValueError(f"fault plan {origin}: expected an object with 'specs'")
    specs = []
    for i, raw in enumerate(doc.get("specs", [])):
        try:
            if "at_calls" in raw:
                raw = {**raw, "at_calls": tuple(raw["at_calls"])}
            specs.append(FaultSpec(**raw))
        except (TypeError, ValueError) as exc:
            raise ValueError(f"fault plan {origin}: bad spec #{i}: {exc}") from exc
    plan_seed = seed if seed is not None else int(doc.get("seed", 0))
    return FaultPlan(specs, seed=plan_seed, name=str(doc.get("name", origin)))
