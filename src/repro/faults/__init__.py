"""repro.faults — deterministic fault injection and recovery.

The paper's application story rests on two robustness mechanisms the
reproduction must model to be credible at scale: ExaML's binary
checkpoint/restart (multi-day supercomputer runs survive job-queue
kills) and the MIC offload path's tolerance of a flaky PCIe link
(~20 us AllReduce latency, transfer timeouts, occasional device
resets — the failure modes the LRZ MIC experience report catalogues).

This package supplies the *injection* half, hooked into every layer:

* :mod:`repro.faults.plan` — :class:`FaultPlan`, a seedable,
  deterministic schedule of faults (transfer corruption/timeout,
  device reset, AllReduce timeout, rank death, crash-at-step,
  crash-in-write) consulted by instrumented call sites, plus the
  exception taxonomy (:class:`FaultError` and friends);
* :mod:`repro.faults.retry` — :class:`RetryPolicy`, bounded exponential
  backoff with seeded jitter, shared by the offload runtime and the
  simulated MPI collectives;
* :mod:`repro.faults.plans` — the named built-in plans behind
  ``repro faults --plan NAME`` and :func:`plan_from_json` for custom
  schedules;
* :mod:`repro.faults.runner` — the survival harness: run a search under
  a plan, auto-resume from checkpoints after injected crashes, and
  report whether the final likelihood matches an uninterrupted run.
  (Imported lazily — ``from repro.faults import runner`` — because it
  depends on :mod:`repro.search`, which itself consults this package.)

Recovery lives where the work happens: retry/backoff in
:class:`repro.mic.offload.OffloadRuntime`, collective retry and rank
adoption in :mod:`repro.parallel`, and crash-safe rotated checkpoints
in :mod:`repro.search.checkpoint`.  Every injected fault, retry, and
recovery emits :mod:`repro.obs` counters and instants so an exported
trace shows the full recovery timeline.
"""

from .plan import (
    AllReduceTimeout,
    DeviceReset,
    FaultError,
    FaultEvent,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    OffloadGaveUp,
    RankFailure,
    TransferCorruption,
    TransferTimeout,
)
from .plans import available_plans, make_plan, plan_from_json
from .retry import RetryPolicy

__all__ = [
    "FaultError",
    "TransferTimeout",
    "TransferCorruption",
    "DeviceReset",
    "AllReduceTimeout",
    "OffloadGaveUp",
    "RankFailure",
    "InjectedCrash",
    "FaultSpec",
    "FaultEvent",
    "FaultPlan",
    "RetryPolicy",
    "available_plans",
    "make_plan",
    "plan_from_json",
]
