"""Survival harness: run a search under a fault plan, restarting on crash.

This is the "operator" side of the fault story.  The search driver
simulates a *process*: an :class:`~repro.faults.InjectedCrash` means
that process is dead and nothing in-run can help it.  The runner plays
the role of the job scheduler that notices the death, starts a fresh
process, and points it at the last complete checkpoint — exactly the
ExaML production loop on a machine with a wall-clock queue limit.

One :class:`~repro.faults.FaultPlan` instance spans every restart (a
plan models a machine lifetime, not a process lifetime), so a
``crash-at-step`` spec with ``max_fires=1`` kills the first process and
then lets its successor run to completion instead of re-firing forever.

``verify=True`` additionally runs the identical search *without* the
fault plan and checks the survivor reached the same final likelihood
(to 1e-8) and the same unrooted topology — the acceptance criterion of
the crash-safety work.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field, replace
from pathlib import Path

from ..obs import metrics as _obs_metrics
from ..obs import spans as _obs
from .plan import FaultError, FaultPlan, InjectedCrash

__all__ = ["FaultRunReport", "run_search_with_faults", "topology_splits"]

#: Final-likelihood agreement required for ``verify`` to pass.
VERIFY_LNL_TOL = 1e-8


def topology_splits(tree) -> set[frozenset[str]]:
    """The non-trivial splits (bipartitions) of an unrooted tree.

    Each internal edge contributes the leaf-name set of one side,
    canonicalized to the side *not* containing the lexicographically
    smallest taxon, so two trees match iff the sets are equal.
    """
    names = sorted(tree.leaf_names())
    ref = names[0]
    n = len(names)
    splits: set[frozenset[str]] = set()
    for e in tree.edges:
        side = frozenset(tree.name(x) for x in tree.subtree_leaves(e.v, e.id))
        if ref in side:
            side = frozenset(names) - side
        if 1 < len(side) < n - 1:
            splits.add(side)
    return splits


@dataclass
class FaultRunReport:
    """What happened when a search ran under a fault plan."""

    survived: bool
    restarts: int = 0
    crashes: int = 0
    aborts: int = 0
    faults_fired: int = 0
    fault_summary: dict[str, int] = field(default_factory=dict)
    checkpoint_path: str = ""
    lnl: float | None = None
    result: object | None = None
    #: filled only with ``verify=True``
    baseline_lnl: float | None = None
    lnl_delta: float | None = None
    topology_match: bool | None = None

    @property
    def verified(self) -> bool | None:
        """Did the survivor match the uninterrupted baseline?"""
        if self.lnl_delta is None:
            return None
        return bool(
            self.lnl_delta <= VERIFY_LNL_TOL and self.topology_match
        )


def run_search_with_faults(
    alignment,
    plan: FaultPlan,
    config=None,
    *,
    model=None,
    gamma=None,
    backend=None,
    max_restarts: int = 5,
    verify: bool = False,
) -> FaultRunReport:
    """Run ``ml_search`` under ``plan``, resuming after every crash.

    ``config`` is a :class:`~repro.search.SearchConfig`; when its
    ``checkpoint_path`` is unset a temporary rotation is used (the
    harness needs *somewhere* to recover from).  Crashes
    (:class:`InjectedCrash`) and abort-with-checkpoint faults (any
    other :class:`FaultError`) both trigger a restart from the newest
    loadable snapshot, up to ``max_restarts`` fresh processes; beyond
    that the run is declared dead (``survived=False``).
    """
    # Imported here, not at module top: the search layer imports
    # ``repro.faults`` for the exception taxonomy, so the runner must
    # not be part of the ``repro.faults`` import cycle.
    from ..search.checkpoint import load_latest_checkpoint
    from ..search.raxml_light import SearchConfig, ml_search

    config = config or SearchConfig()
    if config.checkpoint_path is None:
        tmpdir = tempfile.mkdtemp(prefix="repro-faults-")
        config = replace(config, checkpoint_path=str(Path(tmpdir) / "ck.json"))

    report = FaultRunReport(
        survived=False, checkpoint_path=str(config.checkpoint_path)
    )
    resume_from = None
    attempts = max_restarts + 1  # first process + restarts
    with _obs.span("faults.run", plan=plan.name or "custom"):
        for attempt in range(attempts):
            try:
                result = ml_search(
                    alignment,
                    model=model,
                    gamma=gamma,
                    config=config,
                    backend=backend,
                    resume_from=resume_from,
                    fault_plan=plan,
                )
            except InjectedCrash as crash:
                report.crashes += 1
                _obs.instant(
                    "faults.crash", step=crash.step, where=crash.where,
                    attempt=attempt,
                )
            except FaultError:
                # Driver already wrote its abort checkpoint.
                report.aborts += 1
            else:
                report.survived = True
                report.result = result
                report.lnl = result.lnl
                break
            if attempt + 1 >= attempts:
                break  # out of restart budget
            report.restarts += 1
            try:
                resume_from, _slot = load_latest_checkpoint(
                    config.checkpoint_path, keep=config.checkpoint_keep
                )
            except ValueError:
                # Died before the first snapshot landed: start over.
                resume_from = None
            if _obs.ENABLED:
                _obs_metrics.get_registry().counter(
                    "repro_fault_runner_restarts_total",
                    "processes restarted by the survival runner",
                ).inc()

    report.faults_fired = plan.n_fired
    report.fault_summary = plan.summary()

    if verify and report.survived:
        baseline_cfg = replace(config, checkpoint_path=None)
        baseline = ml_search(
            alignment,
            model=model,
            gamma=gamma,
            config=baseline_cfg,
            backend=backend,
        )
        report.baseline_lnl = baseline.lnl
        report.lnl_delta = abs(baseline.lnl - report.result.lnl)
        report.topology_match = topology_splits(
            baseline.tree
        ) == topology_splits(report.result.tree)
    return report
