"""Bounded exponential backoff with seeded jitter.

The recovery half of transient faults: a retry loop pays an increasing
*modelled* delay between attempts (the simulated runtimes account wall
time instead of sleeping, so fault-heavy tests stay fast and
deterministic) and gives up after a bounded attempt budget.  The jitter
is the standard "equal-jitter-ish" multiplicative spread that keeps
simultaneous retries from resynchronising on a shared PCIe link, drawn
from the caller's seeded RNG so schedules replay exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff schedule: ``base * multiplier**(attempt-1)``.

    ``max_attempts`` counts *total* tries (first attempt included), so
    ``max_attempts=4`` allows three retries.  Delays are capped at
    ``max_delay_s`` and spread by ``±jitter`` (a fraction; 0 disables).
    """

    max_attempts: int = 4
    base_delay_s: float = 100e-6
    multiplier: float = 2.0
    max_delay_s: float = 10e-3
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt")
        if self.base_delay_s < 0 or self.max_delay_s < self.base_delay_s:
            raise ValueError("need 0 <= base_delay_s <= max_delay_s")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def backoff_s(self, attempt: int, rng: np.random.Generator | None = None) -> float:
        """Modelled delay before retry number ``attempt`` (1-based).

        Attempt 1 is the first *retry* (after the first failure).  With
        an ``rng`` the delay is scaled by a uniform factor in
        ``[1 - jitter, 1 + jitter]``; without one it is the deterministic
        midpoint.
        """
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        delay = min(
            self.base_delay_s * self.multiplier ** (attempt - 1),
            self.max_delay_s,
        )
        if rng is not None and self.jitter > 0.0:
            delay *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return delay

    def schedule(self, rng: np.random.Generator | None = None) -> list[float]:
        """The full backoff schedule (``max_attempts - 1`` delays)."""
        return [self.backoff_s(a, rng) for a in range(1, self.max_attempts)]
