"""repro — reproduction of "Efficient Computation of the Phylogenetic
Likelihood Function on the Intel MIC Architecture" (Kozlov, Goll,
Stamatakis; 2014).

The package is organised as the paper's system stack:

* :mod:`repro.phylo` — phylogenetics substrate (alignments, trees,
  models, simulation, parsimony).
* :mod:`repro.core` — the paper's contribution: the four PLF kernels
  (``newview``, ``evaluate``, ``derivativeSum``, ``derivativeCore``),
  the likelihood engine, and their MIC-vectorised counterparts.
* :mod:`repro.search` — RAxML-Light-style maximum-likelihood tree
  search (branch-length and model optimisation, lazy SPR).
* :mod:`repro.mic` — simulated Intel MIC: vector ISA, cycle-accounting
  virtual machine, caches/memory/prefetch, pragma auto-vectorizer,
  offload runtime.
* :mod:`repro.parallel` — simulated parallel runtimes (MPI, OpenMP,
  PThreads fork-join, ExaML hybrid).
* :mod:`repro.perf` — platform descriptors (Table I), roofline cost
  model, trace-driven time/energy prediction.
* :mod:`repro.harness` — regenerates every table and figure of the
  paper's evaluation.

Quickstart::

    from repro import simulate_dataset, LikelihoodEngine, gtr, GammaRates

    sim = simulate_dataset(n_taxa=15, n_sites=2000, seed=1)
    engine = LikelihoodEngine(
        sim.alignment.compress(), sim.tree, gtr(), GammaRates(alpha=0.8)
    )
    print(engine.log_likelihood())
"""

from .core.backends import available_backends, get_backend, make_engine
from .core.engine import LikelihoodEngine
from .phylo import (
    Alignment,
    GammaRates,
    PatternAlignment,
    SubstitutionModel,
    Tree,
    gtr,
    hky85,
    jc69,
    k80,
    random_topology,
    simulate_dataset,
)

__version__ = "1.0.0"

__all__ = [
    "LikelihoodEngine",
    "available_backends",
    "get_backend",
    "make_engine",
    "Alignment",
    "GammaRates",
    "PatternAlignment",
    "SubstitutionModel",
    "Tree",
    "gtr",
    "hky85",
    "jc69",
    "k80",
    "random_topology",
    "simulate_dataset",
    "__version__",
]
