"""Simulated MPI: interconnects, collectives, and a functional rank model.

Two layers:

* **Cost layer** — :class:`Interconnect` descriptors and
  :func:`allreduce_time`, the latency/bandwidth model for the collective
  that dominates ExaML's communication (Sec. VI-B3: AllReduce of one or
  a few doubles after every ``evaluate``/derivative computation).  The
  constants come straight from the paper's measurements: ~20 us between
  two MIC cards over PCIe with Intel MPI 4.1.2, ~35 us with the older
  4.0.3 release, <5 us between cluster nodes on QLogic InfiniBand; we
  add a sub-2 us shared-memory figure for ranks on the same host.

* **Functional layer** — :class:`SimMPI` executes rank-parallel code
  deterministically in-process (ranks are just array slices), providing
  real ``allreduce`` semantics so the distributed likelihood tests can
  assert bit-equality with the serial engine while the same calls
  accumulate modelled communication time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil, log2

import numpy as np

from ..faults.plan import AllReduceTimeout, FaultPlan, RankFailure
from ..faults.retry import RetryPolicy
from ..obs import metrics as _obs_metrics
from ..obs import spans as _obs

__all__ = [
    "Interconnect",
    "SHARED_MEMORY",
    "PCIE_MIC_MIC",
    "PCIE_MIC_MIC_OLD_MPI",
    "INFINIBAND_QLOGIC",
    "allreduce_time",
    "SimMPI",
]


@dataclass(frozen=True)
class Interconnect:
    """Point-to-point link model: latency + bandwidth + contention.

    ``contention_per_rank`` scales the effective message latency as the
    number of ranks sharing the link's MPI stack grows — small-message
    collectives on the MIC degrade far worse than logarithmically once
    dozens of ranks hammer the card's slow progress engine (the flat-MPI
    failure of Sec. V-D).
    """

    name: str
    latency_s: float
    bandwidth_bs: float
    contention_per_rank: float = 1.0 / 16.0

    def message_time(self, n_bytes: float, n_ranks: int = 2) -> float:
        if n_bytes < 0:
            raise ValueError("negative message size")
        contention = 1.0 + self.contention_per_rank * n_ranks
        return self.latency_s * contention + n_bytes / self.bandwidth_bs


#: Ranks within one shared-memory domain (same card or same host board).
SHARED_MEMORY = Interconnect("shm", 1.5e-6, 20e9)

#: MIC-to-MIC over PCIe, Intel MPI 4.1.2.040 (paper: ~20 us AllReduce).
PCIE_MIC_MIC = Interconnect("pcie-mic-mic (IMPI 4.1.2)", 20e-6, 1.0e9)

#: Same path with Intel MPI 4.0.3.008 (paper: ~35 us) — ablation E8.
PCIE_MIC_MIC_OLD_MPI = Interconnect("pcie-mic-mic (IMPI 4.0.3)", 35e-6, 0.8e9)

#: Two cluster nodes on QLogic InfiniBand (paper: <5 us AllReduce).
INFINIBAND_QLOGIC = Interconnect("qlogic-ib", 5e-6, 3.2e9)


def allreduce_time(
    n_ranks: int,
    n_bytes: float,
    intra: Interconnect,
    inter: Interconnect | None = None,
    ranks_per_group: int | None = None,
) -> float:
    """Recursive-doubling AllReduce cost, optionally hierarchical.

    Flat topology: ``ceil(log2 p)`` rounds, each one link message.
    Hierarchical (``inter`` + ``ranks_per_group`` given, e.g. 2 ranks per
    MIC card, cards over PCIe): an intra-group reduce, an inter-group
    AllReduce over the slow links, and an intra-group broadcast — the
    standard two-level scheme MPI libraries use on accelerator clusters.
    """
    if n_ranks < 1:
        raise ValueError("need at least one rank")
    if n_ranks == 1:
        return 0.0
    if inter is None or ranks_per_group is None or n_ranks <= ranks_per_group:
        rounds = ceil(log2(n_ranks))
        return rounds * intra.message_time(n_bytes, n_ranks)
    n_groups = ceil(n_ranks / ranks_per_group)
    local = allreduce_time(ranks_per_group, n_bytes, intra)
    across = ceil(log2(n_groups)) * inter.message_time(n_bytes, n_groups)
    bcast = ceil(log2(ranks_per_group)) * intra.message_time(
        n_bytes, ranks_per_group
    )
    return local + across + bcast


@dataclass
class SimMPI:
    """In-process rank simulator with modelled communication time.

    ``interconnect`` prices flat collectives; pass ``inter`` +
    ``ranks_per_group`` for the hierarchical (multi-card) topology.

    Fault injection: with a ``fault_plan``, every collective first
    consults the plan.  An ``allreduce-timeout`` fault wastes the
    collective's deadline (``timeout_s``) plus an exponential-backoff
    delay, then the collective is *retried* — MPI small-message
    collectives on a flaky PCIe link really do stall and re-poll this
    way — up to ``retry.max_attempts`` tries before
    :class:`~repro.faults.AllReduceTimeout` escapes to the caller.  A
    ``rank-death`` fault raises :class:`~repro.faults.RankFailure`
    naming the victim; recovery policy (degrade vs. abort) belongs to
    the engine driving the collective, not the transport.
    """

    n_ranks: int
    interconnect: Interconnect = SHARED_MEMORY
    inter: Interconnect | None = None
    ranks_per_group: int | None = None
    comm_seconds: float = 0.0
    allreduce_calls: int = 0
    bytes_reduced: float = 0.0
    fault_plan: FaultPlan | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    retry_seed: int = 0
    timeout_s: float = 500e-6
    allreduce_retries: int = 0
    seconds_in_faults: float = 0.0

    def __post_init__(self) -> None:
        if self.n_ranks < 1:
            raise ValueError("need at least one rank")
        self._rng = np.random.default_rng(self.retry_seed)

    def _inject_collective_faults(self) -> None:
        """Consult the plan ahead of one collective; may raise/charge time."""
        plan = self.fault_plan
        if plan is None:
            return
        dead = plan.rank_death(self.n_ranks)
        if dead is not None:
            raise RankFailure(dead)
        for attempt in range(1, self.retry.max_attempts + 1):
            if plan.consult("allreduce-timeout", call=self.allreduce_calls) is None:
                return
            self.seconds_in_faults += self.timeout_s
            self.comm_seconds += self.timeout_s
            if attempt >= self.retry.max_attempts:
                raise AllReduceTimeout(
                    f"allreduce {self.allreduce_calls} timed out "
                    f"{attempt} times"
                )
            delay = self.retry.backoff_s(attempt, self._rng)
            self.seconds_in_faults += delay
            self.comm_seconds += delay
            self.allreduce_retries += 1
            if _obs.ENABLED:
                _obs.instant(
                    "allreduce.retry",
                    attempt=attempt,
                    backoff_us=delay * 1e6,
                )
                _obs_metrics.get_registry().counter(
                    "repro_allreduce_retries_total",
                    "AllReduce collectives retried after a timeout",
                ).inc()

    def allreduce_sum(self, contributions: list[np.ndarray | float]) -> np.ndarray:
        """Sum per-rank contributions; charges the modelled time.

        ``contributions`` must have exactly one entry per rank.
        """
        if len(contributions) != self.n_ranks:
            raise ValueError(
                f"{len(contributions)} contributions for {self.n_ranks} ranks"
            )
        arrays = [np.atleast_1d(np.asarray(c, dtype=np.float64)) for c in contributions]
        n_bytes = arrays[0].nbytes
        for a in arrays[1:]:
            if a.shape != arrays[0].shape:
                raise ValueError("allreduce contributions differ in shape")
        self._inject_collective_faults()
        dt = allreduce_time(
            self.n_ranks, n_bytes, self.interconnect, self.inter, self.ranks_per_group
        )
        self.comm_seconds += dt
        self.allreduce_calls += 1
        self.bytes_reduced += n_bytes * self.n_ranks
        if _obs.ENABLED:
            _obs.instant(
                "allreduce",
                ranks=self.n_ranks,
                bytes=int(n_bytes),
                modelled_us=dt * 1e6,
            )
            reg = _obs_metrics.get_registry()
            reg.counter(
                "repro_allreduce_total", "simulated AllReduce collectives"
            ).inc()
            reg.counter(
                "repro_allreduce_bytes_total", "bytes summed across ranks"
            ).inc(n_bytes * self.n_ranks)
            reg.counter(
                "repro_allreduce_modelled_seconds_total",
                "modelled AllReduce wall time",
            ).inc(dt)
        return np.sum(arrays, axis=0)

    def barrier(self) -> None:
        """A barrier costs one zero-byte AllReduce."""
        self.comm_seconds += allreduce_time(
            self.n_ranks, 8, self.interconnect, self.inter, self.ranks_per_group
        )
        if _obs.ENABLED:
            _obs.instant("barrier", ranks=self.n_ranks)
            _obs_metrics.get_registry().counter(
                "repro_barriers_total", "simulated rank barriers"
            ).inc()
