"""Persistent multiprocess worker pool executing the PLF for real.

This is the reproduction's *actually parallel* execution substrate: a
spawn-once pool of worker processes, each owning one contiguous site
slice of the alignment, all state shared through a
:class:`~repro.parallel.shm.SharedArena`.  The master drives the PR 2
wave schedule exactly as the simulated engines do — but every fork-join
region is now a *measured* cost (:class:`BarrierStats`), not a modelled
constant: one broadcast over per-worker pipes, one join collecting the
per-worker compute times.

Design points, mirroring the paper's PThreads scheme (Sec. V-C/V-D):

* **site split** — workers hold disjoint contiguous pattern ranges
  (block :class:`~repro.parallel.distribute.SiteDistribution`); every
  kernel is elementwise across sites, so workers never exchange CLAs.
* **zero-copy state** — tips, CLAs, scale counters, the sum buffer and
  the per-site result lanes live in the shared arena.  A region's
  payload is a few dozen bytes of job descriptor; results come back
  through the arena, not the pipe.
* **deterministic replay** — every worker holds a replica of the tree
  (synchronised by :meth:`~repro.phylo.tree.Tree.to_state`, which is
  id-exact) and levelizes the *same* execution plan as the master, so a
  wave index fully identifies the work (ExaML's replicated-search idea
  applied to one shared-memory node).
* **fixed-order reductions** — the master reduces per-site lanes in
  pattern order (``np.dot`` over the gathered full-length array), so
  log-likelihoods and branch derivatives are **bit-identical** to the
  sequential engine for every worker count.
* **degradable workers** — a worker death (real crash, or the PR 4
  fault plan made real via :meth:`WorkerPool.kill_worker`) is absorbed
  by slice adoption at the lowest surviving worker, after which the
  interrupted operation is replayed; numerics are unchanged because
  slices stay disjoint.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import weakref
from dataclasses import dataclass, field

import numpy as np

from ..core.backends import KernelProfile, get_backend
from ..core.cat import CatLikelihoodEngine
from ..core.engine import LikelihoodEngine
from ..core.schedule import WaveStats
from ..core.traversal import KernelCounters, KernelKind
from ..obs import server as _obs_server
from ..obs import spans as _obs
from ..phylo.alignment import PatternAlignment
from ..phylo.rates import CatRates, GammaRates
from ..phylo.tree import Tree
from .distribute import SiteDistribution, distribute_block
from .shm import SharedArena

__all__ = [
    "BarrierStats",
    "WorkerFailure",
    "WorkerRestart",
    "SumBufferHandle",
    "WorkerPool",
    "slice_cat",
]


# ----------------------------------------------------------------------
# measured fork-join accounting
# ----------------------------------------------------------------------
@dataclass
class BarrierStats:
    """Measured fork-join region costs (replaces the modelled constants).

    One *region* is a job broadcast plus a completion join — the paper's
    two synchronisation points.  ``region_seconds`` is master wall time
    from first send to last ack; ``compute_seconds`` sums the per-worker
    kernel time reported in the acks; ``overhead_seconds`` accumulates
    ``region - max(worker compute)``, i.e. the measured announcement +
    barrier + straggler cost the PThreads model only estimated.
    """

    regions: int = 0
    region_seconds: float = 0.0
    compute_seconds: float = 0.0
    overhead_seconds: float = 0.0
    max_region_seconds: float = 0.0

    def record(self, region_s: float, worker_s: list[float]) -> None:
        self.regions += 1
        self.region_seconds += region_s
        self.compute_seconds += sum(worker_s)
        self.overhead_seconds += max(region_s - max(worker_s, default=0.0), 0.0)
        self.max_region_seconds = max(self.max_region_seconds, region_s)

    @property
    def mean_region_overhead_s(self) -> float:
        return self.overhead_seconds / self.regions if self.regions else 0.0

    def reset(self) -> None:
        self.regions = 0
        self.region_seconds = 0.0
        self.compute_seconds = 0.0
        self.overhead_seconds = 0.0
        self.max_region_seconds = 0.0

    def to_dict(self) -> dict:
        return {
            "regions": self.regions,
            "region_seconds": self.region_seconds,
            "compute_seconds": self.compute_seconds,
            "overhead_seconds": self.overhead_seconds,
            "mean_region_overhead_s": self.mean_region_overhead_s,
            "max_region_seconds": self.max_region_seconds,
        }


class WorkerFailure(RuntimeError):
    """A pool worker died and the failure policy chose not to absorb it."""

    def __init__(self, worker: int, message: str = "") -> None:
        super().__init__(message or f"pool worker {worker} died")
        self.worker = worker


class WorkerRestart(RuntimeError):
    """Internal signal: a death was absorbed; replay the current operation."""

    def __init__(self, worker: int) -> None:
        super().__init__(f"worker {worker} absorbed; replay the operation")
        self.worker = worker


@dataclass(frozen=True)
class SumBufferHandle:
    """Opaque handle to the arena-resident ``derivativeSum`` buffer.

    Returned by pool-backed ``edge_sum_buffer``; only valid while its
    ``epoch`` matches the pool's latest ``sumbuf`` operation (the arena
    holds one live buffer, like RAxML's single ``sumBuffer``).
    """

    epoch: int


def slice_cat(cat: CatRates, idx: np.ndarray) -> CatRates:
    """A worker's per-site CAT rates over a pattern index slice.

    ``category_rates`` are kept verbatim (they were normalised against
    the *full* alignment's pattern weights by the master), so sliced
    engines reproduce the full engine's per-site rates bit-for-bit.
    """
    return CatRates(
        category_rates=cat.category_rates,
        site_categories=cat.site_categories[idx],
    )


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
class _SlabMixin:
    """Engine mixin storing CLAs in shared-arena slab slots.

    ``newview`` results are committed into per-node slots of the arena's
    CLA slab (one ``memcpy`` per op); ``self._clas`` then references the
    slab views, so every downstream read — child CLAs of the next wave,
    root sides, ``derivativeSum`` — streams straight from shared memory.
    When the slab is full the engine degrades to private arrays
    (counted in ``slab_fallbacks``) rather than failing.
    """

    _slab_arena: SharedArena | None = None
    _slab_lo = 0
    _slab_hi = 0

    def attach_slab(self, arena: SharedArena, lo: int, hi: int) -> None:
        self._slab_arena = arena
        self._slab_lo = lo
        self._slab_hi = hi
        self._slab_free = list(range(arena.n_slots - 1, -1, -1))
        self._slab_slot: dict[int, int] = {}
        self.slab_fallbacks = 0

    def _store_op(self, op, z, sc):  # noqa: ANN001 - mirrors base signature
        arena = self._slab_arena
        if arena is not None:
            slot = self._slab_slot.get(op.node)
            if slot is None and self._slab_free:
                slot = self._slab_free.pop()
                self._slab_slot[op.node] = slot
            if slot is not None:
                zv, sv = arena.cla_slot(slot, self._slab_lo, self._slab_hi)
                zv = zv[:, : z.shape[1], :]
                np.copyto(zv, z)
                np.copyto(sv, sc)
                z, sc = zv, sv
            else:
                self.slab_fallbacks += 1
        super()._store_op(op, z, sc)

    def _reclaim_slots(self) -> None:
        if self._slab_arena is None:
            return
        for node in [n for n in self._slab_slot if n not in self._clas]:
            self._slab_free.append(self._slab_slot.pop(node))

    def ensure_valid(self, root_edge):  # noqa: ANN001
        super().ensure_valid(root_edge)
        self._reclaim_slots()

    def drop_caches(self) -> None:
        super().drop_caches()
        self._reclaim_slots()


class SlabLikelihoodEngine(_SlabMixin, LikelihoodEngine):
    """GTR+Gamma worker engine over a shared-arena CLA slab."""


class SlabCatEngine(_SlabMixin, CatLikelihoodEngine):
    """CAT worker engine over a shared-arena CLA slab."""


def _build_worker_engine(cfg: dict, arena: SharedArena, lo: int, hi: int, tree, backend):
    """One slice engine over arena-backed pattern data."""
    tips = np.ascontiguousarray(arena.site_slice("tips", lo, hi))
    weights = arena.site_slice("weights", lo, hi).copy()
    patterns = PatternAlignment(
        taxa=list(cfg["taxa"]),
        data=tips,
        weights=weights,
        site_to_pattern=np.arange(hi - lo),
        states=cfg["states"],
    )
    idx = np.arange(lo, hi)
    if cfg.get("cat") is not None:
        engine = SlabCatEngine(
            patterns, tree, cfg["model"], slice_cat(cfg["cat"], idx),
            backend=backend,
        )
    else:
        engine = SlabLikelihoodEngine(
            patterns, tree, cfg["model"], cfg["rates"], backend=backend
        )
    engine.attach_slab(arena, lo, hi)
    return engine


def _write_sumbuf(arena: SharedArena, lo: int, hi: int, sb: np.ndarray) -> None:
    view = arena.site_slice("sumbuf", lo, hi)
    if sb.ndim == 2:  # CAT: (p, k) into the single-rate plane
        view[:, 0, : sb.shape[1]] = sb
    else:
        view[:, : sb.shape[1], : sb.shape[2]] = sb


def _read_sumbuf(arena: SharedArena, lo: int, hi: int, engine) -> np.ndarray:
    view = arena.site_slice("sumbuf", lo, hi)
    k = engine.eigen.eigenvalues.shape[0]
    if isinstance(engine, CatLikelihoodEngine):
        return view[:, 0, :k]
    return view[:, : engine.n_rates, :k]


def _worker_main(conn, cfg: dict) -> None:
    """Worker process: attach the arena, build the slice engine, serve jobs.

    Every reply is ``("ok", elapsed_compute_seconds, payload)`` or
    ``("err", repr(exc))``; the master converts errors into exceptions.
    The loop exits on ``("close",)``, a broken pipe (master died), or an
    injected ``("die",)`` used by the fault tests.
    """
    arena = SharedArena.attach(cfg["arena_name"], cfg["layout"])
    tree = Tree.from_state(cfg["tree_state"])
    backend = get_backend(cfg["backend"])
    wid = cfg["worker_id"]
    engines: dict[int, tuple] = {}  # owner id -> (engine, lo, hi)
    engines[wid] = (
        _build_worker_engine(cfg, arena, cfg["lo"], cfg["hi"], tree, backend),
        cfg["lo"],
        cfg["hi"],
    )
    plans: dict[int, object] = {}
    partial = arena.view("partial")

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):  # master is gone
            break
        cmd = msg[0]
        try:
            if cmd == "close":
                conn.send(("ok", 0.0, None))
                break
            if cmd == "die":  # fault-injection hook: no goodbye
                os._exit(17)
            t0 = time.perf_counter()
            payload = None
            if cmd == "prepare":
                tree_state, root_edge = msg[1], msg[2]
                if tree_state is not None:
                    tree = Tree.from_state(tree_state)
                    for engine, _lo, _hi in engines.values():
                        engine.tree = tree
                depth = 0
                for owner, (engine, _lo, _hi) in engines.items():
                    plan = engine.plan_execution(root_edge)
                    plans[owner] = plan
                    depth = max(depth, plan.depth)
                payload = depth
            elif cmd == "wave":
                k = msg[1]
                for owner, (engine, _lo, _hi) in engines.items():
                    plan = plans.get(owner)
                    if plan is not None and k < plan.depth:
                        engine.executor.run_wave(plan.waves[k])
            elif cmd == "root":
                root_edge = msg[1]
                for owner, (engine, lo, hi) in engines.items():
                    engine.ensure_valid(root_edge)
                    site = engine.site_log_likelihoods(root_edge)
                    arena.view("site")[lo:hi] = site
                    partial[owner, 0] = float(
                        np.dot(site, engine.patterns.weights)
                    )
            elif cmd == "sumbuf":
                root_edge = msg[1]
                for owner, (engine, lo, hi) in engines.items():
                    sb = engine.edge_sum_buffer(root_edge)
                    _write_sumbuf(arena, lo, hi, sb)
            elif cmd == "deriv":
                t = msg[1]
                terms = arena.view("terms")
                for owner, (engine, lo, hi) in engines.items():
                    sb = _read_sumbuf(arena, lo, hi, engine)
                    l0, l1, l2 = engine.derivative_site_terms(sb, t)
                    terms[0, lo:hi] = l0
                    terms[1, lo:hi] = l1
                    terms[2, lo:hi] = l2
                    w = engine.patterns.weights
                    # Accounting-only partials (raw dots): the master's
                    # reported derivatives come from the gathered lanes.
                    partial[owner, 1] = float(np.dot(l0, w))
                    partial[owner, 2] = float(np.dot(l1, w))
                    partial[owner, 3] = float(np.dot(l2, w))
            elif cmd == "grad":
                root_edge = msg[1]
                # Per-owner all-branch gradient *site terms*: the pre-order
                # up-sweep runs slice-locally (every kernel is elementwise
                # across sites), the reduction happens at the master in
                # fixed pattern order.  Lanes travel over the pipe: the
                # arena's terms lane holds one edge, these hold 2N - 3.
                payload = {}
                for owner, (engine, _lo, _hi) in engines.items():
                    terms = engine.all_branch_gradients(root_edge, terms=True)
                    payload[owner] = {
                        eid: np.stack(t3) for eid, t3 in terms.items()
                    }
            elif cmd == "set_model":
                model, rates = msg[1], msg[2]
                for engine, _lo, _hi in engines.values():
                    engine.set_model(model, rates)
            elif cmd == "set_alpha":
                for engine, _lo, _hi in engines.values():
                    engine.set_alpha(msg[1])
            elif cmd == "set_cat":
                cats, alpha = msg[1], msg[2]
                for owner, (engine, _lo, _hi) in engines.items():
                    engine.cat = cats[owner]
                    engine.set_model(engine.model)
                    if alpha is not None:
                        engine._alpha = alpha
            elif cmd == "adopt":
                dead, lo2, hi2, state = msg[1], msg[2], msg[3], msg[4]
                if dead not in engines:  # idempotent re-announcement
                    cfg2 = dict(cfg)
                    cfg2["model"] = state["model"]
                    cfg2["rates"] = state["rates"]
                    cfg2["cat"] = state["cat"]
                    ghost = _build_worker_engine(
                        cfg2, arena, lo2, hi2, tree, backend
                    )
                    if state["cat"] is not None and state["alpha"] is not None:
                        ghost._alpha = state["alpha"]
                    engines[dead] = (ghost, lo2, hi2)
            elif cmd == "profile":
                counters = KernelCounters()
                stats = WaveStats()
                fallbacks = 0
                for engine, _lo, _hi in engines.values():
                    counters.merge(engine.counters)
                    stats.merge(engine.wave_stats)
                    fallbacks += getattr(engine, "slab_fallbacks", 0)
                payload = {
                    "profile": backend.profile.to_dict(),
                    "counters": {k.value: v for k, v in counters.calls.items()},
                    "site_units": {
                        k.value: v for k, v in counters.site_units.items()
                    },
                    "reductions": counters.reductions,
                    "wave_stats": stats.to_dict(),
                    "slab_fallbacks": fallbacks,
                }
            elif cmd == "reset":
                for engine, _lo, _hi in engines.values():
                    engine.reset_profile()
            elif cmd == "reset_obs":
                for engine, _lo, _hi in engines.values():
                    engine.reset_all_observability()
            elif cmd == "drop_caches":
                for engine, _lo, _hi in engines.values():
                    engine.drop_caches()
                plans.clear()
            else:
                raise ValueError(f"unknown pool command {cmd!r}")
            conn.send(("ok", time.perf_counter() - t0, payload))
        except Exception as exc:  # noqa: BLE001 - forwarded to the master
            try:
                conn.send(("err", f"{type(exc).__name__}: {exc}"))
            except (BrokenPipeError, OSError):
                break
    try:
        arena.close()
        conn.close()
    except Exception:  # pragma: no cover - teardown best-effort
        pass


# ----------------------------------------------------------------------
# master side
# ----------------------------------------------------------------------
class WorkerPool:
    """Spawn-once pool of slice workers over one shared arena.

    Parameters mirror the engines: ``cat`` selects CAT workers (mutually
    exclusive with ``rates``).  ``backend`` must be a registry *name*
    (or ``None``): each worker process resolves its own instance, so
    scratch-carrying backends are never shared across processes.

    ``on_worker_failure`` is PR 4's rank policy made real: ``"degrade"``
    re-assigns a dead worker's slice to the lowest survivor and replays
    the interrupted operation; ``"abort"`` raises
    :class:`WorkerFailure`.
    """

    def __init__(
        self,
        patterns: PatternAlignment,
        tree,
        model,
        rates: GammaRates | None = None,
        *,
        n_workers: int,
        backend: str | None = None,
        cat: CatRates | None = None,
        on_worker_failure: str = "degrade",
        distribution: SiteDistribution | None = None,
        start_method: str | None = None,
        label: str = "",
    ) -> None:
        if n_workers < 1:
            raise ValueError("need at least one worker")
        if backend is not None and not isinstance(backend, str):
            raise ValueError(
                "process pools take a backend *name* (each worker builds "
                "its own instance); got a backend object — pass the "
                "registry name, or use repro.core.backends."
                "resolve_backend_name() to translate a registered instance"
            )
        if on_worker_failure not in ("degrade", "abort"):
            raise ValueError("on_worker_failure must be 'degrade' or 'abort'")
        self.on_worker_failure = on_worker_failure
        self.label = label
        self.patterns = patterns
        self.n_workers = n_workers
        self.backend_name = backend
        self.distribution = distribution or distribute_block(
            patterns.n_patterns, n_workers
        )
        if self.distribution.n_workers != n_workers:
            raise ValueError("distribution worker count mismatch")
        self.bounds: list[tuple[int, int]] = []
        for w in range(n_workers):
            idx = self.distribution.indices_of(w)
            if idx.shape[0] == 0:
                prev_hi = self.bounds[-1][1] if self.bounds else 0
                self.bounds.append((prev_hi, prev_hi))
                continue
            lo, hi = int(idx[0]), int(idx[-1]) + 1
            if hi - lo != idx.shape[0]:
                raise ValueError(
                    "process pools need contiguous slices (block "
                    "distribution); got a non-contiguous assignment"
                )
            self.bounds.append((lo, hi))
        n_rates = 1 if cat is not None else (rates.rates.shape[0] if rates else 1)
        n_states = patterns.states.n_states
        self.arena = SharedArena.create(
            n_patterns=patterns.n_patterns,
            n_rates=n_rates,
            n_states=n_states,
            n_taxa=len(patterns.taxa),
            n_workers=n_workers,
            n_slots=4 * max(tree.n_leaves, 2) + 16,
            tip_dtype=patterns.data.dtype,
        )
        self.arena.view("tips")[:] = patterns.data
        self.arena.view("weights")[:] = patterns.weights

        methods = mp.get_all_start_methods()
        method = start_method or ("fork" if "fork" in methods else "spawn")
        ctx = mp.get_context(method)
        self.start_method = method
        self.barrier_stats = BarrierStats()
        self.sumbuf_epoch = 0
        self._model = model
        self._rates = rates
        self._cat = cat
        self._alpha = None
        self.dead: set[int] = set()
        self.adoptions: dict[int, int] = {}
        self.worker_failures = 0
        self._conns = []
        self._procs = []
        tree_state = tree.to_state()
        for w in range(n_workers):
            parent_conn, child_conn = ctx.Pipe()
            cfg = {
                "worker_id": w,
                "lo": self.bounds[w][0],
                "hi": self.bounds[w][1],
                "arena_name": self.arena.name,
                "layout": self.arena.layout,
                "taxa": list(patterns.taxa),
                "states": patterns.states,
                "model": model,
                "rates": rates,
                "cat": cat,
                "backend": backend,
                "tree_state": tree_state,
            }
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, cfg),
                daemon=True,
                name=f"repro-pool-{w}",
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
        self._closed = False
        self._finalizer = weakref.finalize(
            self, _shutdown, self._procs, self._conns, self.arena
        )
        if _obs_server.ENABLED:
            _obs_server.register_pool(self)

    # -- liveness -------------------------------------------------------
    @property
    def alive(self) -> list[int]:
        return [w for w in range(self.n_workers) if w not in self.dead]

    def owner_of(self, worker: int) -> int:
        return self.adoptions.get(worker, worker)

    def _engine_state(self) -> dict:
        """Current model state, shipped with adoptions so a ghost engine
        built mid-run matches the live configuration."""
        return {
            "model": self._model,
            "rates": self._rates,
            "cat": self._cat,
            "alpha": self._alpha,
        }

    def _mark_dead(self, worker: int) -> None:
        if worker in self.dead:
            return
        self.dead.add(worker)
        self.worker_failures += 1
        proc = self._procs[worker]
        if proc.is_alive():  # pragma: no cover - pipe died first
            proc.terminate()
        proc.join(timeout=5)

    def _absorb_failures(self, failed: list[int]) -> None:
        """Apply the failure policy to worker deaths detected in a region.

        Called only when every surviving worker is quiescent (all commands
        sent in the failed region have had their replies consumed), so the
        adoption handshake below cannot interleave with in-flight work.
        Raises :class:`WorkerRestart` (degrade: caller replays the whole
        top-level operation) or :class:`WorkerFailure` (abort / nobody
        left).
        """
        for w in failed:
            self._mark_dead(w)
        if self.on_worker_failure == "abort" or not self.alive:
            raise WorkerFailure(failed[0])
        while True:
            adopter = self.alive[0]
            orphans = sorted(
                g for g in self.dead
                if self.adoptions.get(g) not in self.alive
            )
            try:
                for ghost in orphans:
                    lo, hi = self.bounds[ghost]
                    self._conns[adopter].send(
                        ("adopt", ghost, lo, hi, self._engine_state())
                    )
                    reply = self._conns[adopter].recv()
                    if reply[0] == "err":
                        raise RuntimeError(
                            f"pool worker {adopter}: {reply[1]}"
                        )
                    self.adoptions[ghost] = adopter
                break
            except (BrokenPipeError, EOFError, OSError):
                # The adopter died during the handshake; try the next one.
                self._mark_dead(adopter)
                if not self.alive:
                    raise WorkerFailure(adopter) from None
        if _obs.ENABLED:
            _obs.instant(
                "pool.worker_adopted",
                dead=sorted(self.dead),
                adopter=self.alive[0],
                survivors=len(self.alive),
            )
        if _obs_server.ENABLED:
            _obs_server.health_event(
                "worker_death",
                dead=sorted(self.dead),
                adopter=self.alive[0],
                survivors=len(self.alive),
            )
        raise WorkerRestart(failed[0])

    # -- the fork-join region -------------------------------------------
    def _region(self, label: str, payload: tuple) -> dict[int, object]:
        """One measured region: broadcast, join, account, trace.

        The sweep always completes — a worker found dead mid-region is
        noted, the remaining replies are still consumed (keeping every
        survivor quiescent), and only then is the failure policy applied.
        """
        if self._closed:
            raise RuntimeError("worker pool is closed")
        t0 = time.perf_counter()
        sent: list[int] = []
        failed: list[int] = []
        for w in self.alive:
            try:
                self._conns[w].send(payload)
                sent.append(w)
            except (BrokenPipeError, OSError):
                failed.append(w)
        elapsed: dict[int, float] = {}
        payloads: dict[int, object] = {}
        errors: list[tuple[int, str]] = []
        for w in sent:
            try:
                reply = self._conns[w].recv()
            except (EOFError, OSError):
                failed.append(w)
                continue
            if reply[0] == "err":
                errors.append((w, reply[1]))
                continue
            elapsed[w] = float(reply[1])
            payloads[w] = reply[2]
        region_s = time.perf_counter() - t0
        if errors:
            w, err = errors[0]
            raise RuntimeError(f"pool worker {w}: {err}")
        if failed:
            self._absorb_failures(failed)
        self.barrier_stats.record(region_s, list(elapsed.values()))
        if _obs.ENABLED:
            tracer = _obs.get_tracer()
            tracer.add_complete(
                f"pool.region.{label}", t0, t0 + region_s,
                args={"workers": len(elapsed)},
            )
            for w, secs in elapsed.items():
                tracer.add_complete(
                    f"pool.{label}", t0, t0 + secs, track=f"worker-{w}"
                )
        return payloads

    # -- engine-level operations ---------------------------------------
    def prepare(self, tree_state, root_edge: int) -> int:
        """Sync trees + levelize on every worker; returns the max depth."""
        depths = self._region("prepare", ("prepare", tree_state, root_edge))
        return max((int(d) for d in depths.values()), default=0)

    def run_wave(self, k: int) -> None:
        self._region("wave", ("wave", k))

    def root(self, root_edge: int) -> None:
        """Fill the site lane + per-worker partial lnL for ``root_edge``."""
        self._region("root", ("root", root_edge))

    def sumbuf(self, root_edge: int) -> SumBufferHandle:
        self._region("sumbuf", ("sumbuf", root_edge))
        self.sumbuf_epoch += 1
        return SumBufferHandle(self.sumbuf_epoch)

    def deriv(self, handle: SumBufferHandle, t: float) -> None:
        if handle.epoch != self.sumbuf_epoch:
            raise ValueError(
                "stale sum-buffer handle: the arena holds one live "
                "derivativeSum buffer and it has been overwritten"
            )
        self._region("deriv", ("deriv", float(t)))

    def grad(self, root_edge: int) -> dict[int, np.ndarray]:
        """All-branch gradient lanes: ``{edge_id: (3, n_patterns)}``.

        One region; every worker runs its slice's bidirectional sweep and
        ships per-edge ``(l0, l1, l2)`` site terms back, which are placed
        into full-length lanes by the owner's pattern bounds (adopted
        slices land at the dead worker's bounds, keeping pattern order —
        and therefore the master reduction — identical).
        """
        payloads = self._region("grad", ("grad", root_edge))
        n = self.patterns.n_patterns
        lanes: dict[int, np.ndarray] = {}
        for per_owner in payloads.values():
            for owner, per_edge in per_owner.items():
                lo, hi = self.bounds[owner]
                for eid, stacked in per_edge.items():
                    lane = lanes.get(eid)
                    if lane is None:
                        lane = lanes[eid] = np.empty((3, n))
                    lane[:, lo:hi] = stacked
        return lanes

    def set_model(self, model, rates) -> None:
        self._model = model
        if rates is not None:
            self._rates = rates
        self._region("set_model", ("set_model", model, rates))

    def set_alpha(self, alpha: float) -> None:
        """Gamma pools only: CAT pools must push a master-normalised
        assignment through :meth:`set_cat` (slice-local renormalisation
        would use the wrong weights)."""
        if self._cat is not None:
            raise ValueError("CAT pools take set_cat, not set_alpha")
        self._alpha = float(alpha)
        if self._rates is not None:
            self._rates = self._rates.with_alpha(float(alpha))
        self._region("set_alpha", ("set_alpha", float(alpha)))

    def set_cat(self, cat: CatRates, alpha: float | None = None) -> None:
        """Install a full-alignment CAT assignment (already normalised by
        the master against full-pattern weights); sliced per worker here."""
        self._cat = cat
        self._alpha = alpha
        per_worker = {
            w: slice_cat(cat, np.arange(lo, hi))
            for w, (lo, hi) in enumerate(self.bounds)
        }
        self._region("set_cat", ("set_cat", per_worker, alpha))

    def drop_caches(self) -> None:
        self._region("drop_caches", ("drop_caches",))

    # -- lanes ----------------------------------------------------------
    def site_lane(self) -> np.ndarray:
        """The gathered per-site lnL lane (arena view; copy to keep)."""
        return self.arena.view("site")

    def terms_lane(self) -> np.ndarray:
        return self.arena.view("terms")

    def partial_lane(self) -> np.ndarray:
        return self.arena.view("partial")

    # -- observability --------------------------------------------------
    def worker_reports(self) -> dict[int, dict]:
        """Per-worker profile/counters/wave-stats/slab reports."""
        return {
            w: r for w, r in self._region("profile", ("profile",)).items()
        }

    def merged_profile(self) -> KernelProfile:
        """One profile over every worker's backend (no double counting:
        each worker process owns exactly one backend instance)."""
        merged = KernelProfile()
        for report in self.worker_reports().values():
            merged.merge(KernelProfile.from_dict(report["profile"]))
        return merged

    def merged_wave_stats(self) -> WaveStats:
        total = WaveStats()
        for report in self.worker_reports().values():
            total.merge(WaveStats.from_dict(report["wave_stats"]))
        return total

    def merged_counters(self) -> KernelCounters:
        total = KernelCounters()
        for report in self.worker_reports().values():
            c = KernelCounters()
            c.calls = {
                KernelKind(k): int(v) for k, v in report["counters"].items()
            }
            c.site_units = {
                KernelKind(k): int(v) for k, v in report["site_units"].items()
            }
            c.reductions = int(report["reductions"])
            total.merge(c)
        return total

    def reset_profiles(self) -> None:
        self._region("reset", ("reset",))
        self.barrier_stats.reset()

    def reset_observability(self) -> None:
        self._region("reset_obs", ("reset_obs",))
        self.barrier_stats.reset()

    # -- fault-injection hook -------------------------------------------
    def kill_worker(self, worker: int) -> None:
        """Test hook: hard-kill one worker (PR 4 rank-death made real)."""
        if worker in self.dead:
            return
        try:
            self._conns[worker].send(("die",))
        except (BrokenPipeError, OSError):
            pass
        self._procs[worker].join(timeout=5)

    # -- lifetime -------------------------------------------------------
    def close(self) -> None:
        """Shut the pool down and unlink the arena. Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._finalizer.detach()
        for w in self.alive:
            try:
                self._conns[w].send(("close",))
            except (BrokenPipeError, OSError):
                continue
        for w in self.alive:
            try:
                self._conns[w].recv()
            except (EOFError, OSError):
                pass
        _shutdown(self._procs, self._conns, self.arena)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _shutdown(procs, conns, arena) -> None:
    """Join/terminate workers, close pipes, unlink the arena."""
    for proc in procs:
        proc.join(timeout=2)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=2)
    for conn in conns:
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
    arena.close()
