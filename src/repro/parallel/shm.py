"""Zero-copy shared-memory arena for real parallel PLF execution.

The paper's PThreads scheme (and BEAGLE's multi-core CPU plugin) keeps
*all* likelihood state — tip lookups, conditional likelihood arrays,
scale counters, sum buffers — in memory shared by every worker thread,
so a fork-join region moves **no data**: the master announces a job,
workers compute their site slice in place, and the only thing crossing
the synchronisation point is the job descriptor itself.

:class:`SharedArena` reproduces that layout for *process* workers using
:mod:`multiprocessing.shared_memory`: one segment, carved into named
regions whose pattern axis is sliced per worker (contiguous block
distribution, so a worker's view of every region is a plain ndarray
slice — zero copies on either side of a region boundary).

Region map (``p`` = patterns, ``c`` = rate categories, ``k`` = states)::

    tips     (n_taxa, p)  tip state codes     read-only after creation
    weights  (p,)         pattern weights     read-only after creation
    cla      (slots, p, c, k)  CLA slab       worker-written, slot per node
    scale    (slots, p)   scale counters      worker-written, parallel to cla
    site     (p,)         per-site lnL lane   worker-written, master-read
    terms    (3, p)       derivative site terms (l, l', l'')
    sumbuf   (p, c, k)    the live ``derivativeSum`` buffer
    partial  (workers, 4) per-worker partial reductions (accounting lane)

The module tracks every segment this process created;
:func:`active_arena_segments` lets tests and CI assert that engines
leak nothing after ``close()``.
"""

from __future__ import annotations

import atexit
import os
import secrets
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

__all__ = [
    "ARENA_PREFIX",
    "ArenaLayout",
    "SharedArena",
    "active_arena_segments",
]

#: Name prefix of every arena segment (leak checks grep for this).
ARENA_PREFIX = "repro-arena"

#: Names of segments created by this process and not yet unlinked.
_LIVE_SEGMENTS: dict[str, "weakref.ref[SharedArena]"] = {}


@dataclass(frozen=True)
class ArenaLayout:
    """Byte layout of one arena: ``name -> (offset, shape, dtype str)``.

    Frozen and picklable so spawn-start workers can attach by
    ``(segment name, layout)`` alone.
    """

    regions: tuple[tuple[str, int, tuple[int, ...], str], ...]
    total_bytes: int

    def region(self, name: str) -> tuple[int, tuple[int, ...], str]:
        for rname, offset, shape, dtype in self.regions:
            if rname == name:
                return offset, shape, dtype
        raise KeyError(f"no arena region named {name!r}")


def _build_layout(specs: list[tuple[str, tuple[int, ...], np.dtype]]) -> ArenaLayout:
    regions = []
    offset = 0
    for name, shape, dtype in specs:
        # 64-byte alignment per region: cache-line (and AVX-512 vector)
        # friendly, mirroring the paper's aligned CLA allocations.
        offset = (offset + 63) & ~63
        regions.append((name, offset, tuple(int(s) for s in shape), str(dtype)))
        offset += int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
    return ArenaLayout(regions=tuple(regions), total_bytes=max(offset, 1))


class SharedArena:
    """One shared-memory segment holding all cross-process PLF state.

    Create with :meth:`create` (master), attach with :meth:`attach`
    (spawn-start workers; fork-start workers simply inherit the object).
    ``close()`` drops this process's mapping; ``unlink()`` (owner only)
    removes the segment from the system.  A :mod:`weakref` finalizer
    and an :mod:`atexit` hook unlink owned segments even when a driver
    forgets, so crashed tests cannot strand ``/dev/shm`` entries.
    """

    def __init__(
        self, shm: shared_memory.SharedMemory, layout: ArenaLayout, owner: bool
    ) -> None:
        self._shm = shm
        self.layout = layout
        self.owner = owner
        self.name = shm.name
        self._views: dict[str, np.ndarray] = {}
        self._closed = False
        if owner:
            _LIVE_SEGMENTS[self.name] = weakref.ref(self)
            self._finalizer = weakref.finalize(
                self, _cleanup_segment, shm, self.name
            )
        else:
            self._finalizer = weakref.finalize(self, _close_only, shm)

    # -- construction --------------------------------------------------
    @classmethod
    def create(
        cls,
        n_patterns: int,
        n_rates: int,
        n_states: int,
        n_taxa: int,
        n_workers: int,
        n_slots: int,
        tip_dtype: "np.dtype | str" = np.uint8,
    ) -> "SharedArena":
        specs = [
            ("tips", (n_taxa, n_patterns), np.dtype(tip_dtype)),
            ("weights", (n_patterns,), np.dtype(np.float64)),
            ("cla", (n_slots, n_patterns, n_rates, n_states), np.dtype(np.float64)),
            ("scale", (n_slots, n_patterns), np.dtype(np.int64)),
            ("site", (n_patterns,), np.dtype(np.float64)),
            ("terms", (3, n_patterns), np.dtype(np.float64)),
            ("sumbuf", (n_patterns, n_rates, n_states), np.dtype(np.float64)),
            ("partial", (n_workers, 4), np.dtype(np.float64)),
        ]
        layout = _build_layout(specs)
        name = f"{ARENA_PREFIX}-{os.getpid()}-{secrets.token_hex(4)}"
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=layout.total_bytes
        )
        return cls(shm, layout, owner=True)

    @classmethod
    def attach(cls, name: str, layout: ArenaLayout) -> "SharedArena":
        """Map an existing segment (worker side).

        Python's per-process resource tracker assumes whoever opens a
        segment co-owns it and would unlink it (with a warning) when the
        worker exits; the master owns arena lifetime here.  Registration
        is suppressed for the duration of the open (rather than
        register-then-unregister): under the fork start method workers
        share the master's tracker, whose cache is a *set*, so a worker's
        unregister would silently delete the master's own registration.
        This is the standard workaround until ``SharedMemory(track=False)``
        (3.13) is available.
        """
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register

        def _no_register(rname, rtype):  # pragma: no cover - trivial shim
            if rtype != "shared_memory":
                original_register(rname, rtype)

        resource_tracker.register = _no_register
        try:
            shm = shared_memory.SharedMemory(name=name, create=False)
        finally:
            resource_tracker.register = original_register
        return cls(shm, layout, owner=False)

    # -- views ----------------------------------------------------------
    def view(self, name: str) -> np.ndarray:
        """Full ndarray over one region (cached; zero-copy)."""
        v = self._views.get(name)
        if v is None:
            offset, shape, dtype = self.layout.region(name)
            v = np.ndarray(shape, dtype=dtype, buffer=self._shm.buf, offset=offset)
            self._views[name] = v
        return v

    def site_slice(self, name: str, lo: int, hi: int) -> np.ndarray:
        """A worker's slice of a region along its pattern axis.

        The pattern axis is axis 0 for ``weights``/``site``/``sumbuf``,
        axis 1 for ``tips``/``scale``/``terms`` and the per-slot CLA
        planes.  Block distribution makes every returned view contiguous
        in the pattern axis.
        """
        v = self.view(name)
        if name in ("weights", "site", "sumbuf"):
            return v[lo:hi]
        if name in ("tips", "scale", "terms"):
            return v[:, lo:hi]
        if name == "cla":
            return v[:, lo:hi]
        if name == "partial":
            raise ValueError("partial lane is per-worker, not per-site")
        raise KeyError(f"no arena region named {name!r}")

    def cla_slot(self, slot: int, lo: int, hi: int) -> tuple[np.ndarray, np.ndarray]:
        """``(z, scale)`` views of one CLA slot over a pattern range."""
        return self.view("cla")[slot, lo:hi], self.view("scale")[slot, lo:hi]

    @property
    def n_slots(self) -> int:
        return self.layout.region("cla")[1][0]

    @property
    def nbytes(self) -> int:
        return self.layout.total_bytes

    # -- lifetime -------------------------------------------------------
    def close(self) -> None:
        """Unmap (and, for the owner, unlink) the segment. Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._views.clear()
        self._finalizer.detach()
        try:
            self._shm.close()
        except BufferError:  # a caller still holds a view; the mapping
            pass  # dies with the process, but the unlink below must run
        if self.owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            _LIVE_SEGMENTS.pop(self.name, None)

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _cleanup_segment(shm: shared_memory.SharedMemory, name: str) -> None:
    """Finalizer for owned arenas: unmap + unlink, never raise."""
    try:
        shm.close()
        shm.unlink()
    except Exception:  # pragma: no cover - best-effort teardown
        pass
    _LIVE_SEGMENTS.pop(name, None)


def _close_only(shm: shared_memory.SharedMemory) -> None:
    try:
        shm.close()
    except Exception:  # pragma: no cover - best-effort teardown
        pass


def active_arena_segments() -> list[str]:
    """Arena segments currently visible to this process.

    Combines the in-process registry of owned segments with a scan of
    ``/dev/shm`` (where Linux backs POSIX shared memory), so the leak
    check also catches segments stranded by a dead process.
    """
    names = {
        name for name, ref in list(_LIVE_SEGMENTS.items()) if ref() is not None
    }
    shm_dir = "/dev/shm"
    if os.path.isdir(shm_dir):
        try:
            for entry in os.listdir(shm_dir):
                if entry.startswith(ARENA_PREFIX):
                    names.add(entry)
        except OSError:  # pragma: no cover - scan is best-effort
            pass
    return sorted(names)


@atexit.register
def _unlink_leftovers() -> None:  # pragma: no cover - interpreter teardown
    for name, ref in list(_LIVE_SEGMENTS.items()):
        arena = ref()
        if arena is not None:
            arena.close()
