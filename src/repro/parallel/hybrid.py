"""Parallel run configurations: flat MPI, PThreads, and hybrid MPI+OpenMP.

Section V-D's finding in data form: a :class:`ParallelConfig` says how
many MPI ranks run where, how many OpenMP/PThreads workers each rank
forks per kernel, and over which interconnects the ranks communicate.
The canonical configurations of the paper's evaluation are provided as
constructors:

* :func:`examl_cpu` — pure MPI, one rank per core (ExaML's CPU mode);
* :func:`examl_mic_hybrid` — the paper's best MIC setting, 2 ranks x
  118 OpenMP threads per card;
* :func:`examl_mic_flat` — the failed 120-ranks-per-card experiment;
* :func:`raxml_light_pthreads` — RAxML-Light's fork-join mode (2 syncs
  per kernel call).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..perf.platforms import PlatformSpec
from .openmp import CPU_OPENMP, MIC_OPENMP, OpenMPModel
from .pthreads import CPU_PTHREADS, MIC_PTHREADS, ForkJoinModel
from .simmpi import (
    Interconnect,
    PCIE_MIC_MIC,
    SHARED_MEMORY,
    allreduce_time,
)

__all__ = [
    "MIC_ONCARD_MPI",
    "ParallelConfig",
    "examl_cpu",
    "examl_mic_hybrid",
    "examl_mic_flat",
    "raxml_light_pthreads",
]

#: MPI between ranks on the *same* MIC card: shared memory, but the MPI
#: progress engine runs on 1 GHz in-order cores — an order of magnitude
#: slower than host shared-memory MPI.  ~40 us small-message AllReduce,
#: calibrated against Table III (see repro.perf.calibration); Potluri et
#: al. (the paper's ref. [36]) report the same order of magnitude for
#: unoptimised intra-MIC MPI.
MIC_ONCARD_MPI = Interconnect("mic-oncard-mpi", 40e-6, 2e9)


@dataclass(frozen=True)
class ParallelConfig:
    """A complete parallel execution setting for one run."""

    name: str
    n_ranks: int
    threads_per_rank: int
    ranks_per_domain: int  # ranks sharing one card / host
    intra: Interconnect
    inter: Interconnect | None = None
    region_sync: OpenMPModel | ForkJoinModel | None = None
    #: hardware threads one core must run to saturate its pipeline
    threads_per_core_needed: int = 1

    @property
    def total_workers(self) -> int:
        return self.n_ranks * self.threads_per_rank

    def effective_cores(self, platform: PlatformSpec) -> int:
        """Cores actually saturated by this configuration."""
        usable = self.total_workers / self.threads_per_core_needed
        return max(1, min(platform.cores, int(usable)))

    def sync_overhead_s(self) -> float:
        """Per-kernel-invocation synchronisation cost."""
        if self.region_sync is None or self.threads_per_rank == 1:
            return 0.0
        return self.region_sync.region_overhead_s(self.threads_per_rank)

    def reduction_time_s(self, n_bytes: float = 16.0) -> float:
        """One scalar AllReduce across all ranks of this configuration."""
        return allreduce_time(
            self.n_ranks,
            n_bytes,
            self.intra,
            self.inter,
            self.ranks_per_domain if self.inter is not None else None,
        )


def examl_cpu(platform: PlatformSpec) -> ParallelConfig:
    """ExaML's CPU mode: one MPI rank per physical core, no threading."""
    return ParallelConfig(
        name=f"ExaML-CPU ({platform.cores} ranks)",
        n_ranks=platform.cores,
        threads_per_rank=1,
        ranks_per_domain=platform.cores,
        intra=SHARED_MEMORY,
        region_sync=None,
        threads_per_core_needed=1,
    )


def examl_mic_hybrid(
    n_cards: int = 1,
    ranks_per_card: int = 2,
    threads_per_rank: int = 118,
) -> ParallelConfig:
    """The paper's ExaML-MIC setting: hybrid MPI x OpenMP.

    "2 MPI ranks and 118 OpenMP threads per rank yield the best
    performance for almost all datasets" (Sec. VI-B2); with two cards
    the same per-card layout communicates over PCIe (Sec. VI-B3).
    """
    return ParallelConfig(
        name=(
            f"ExaML-MIC ({n_cards} card(s), {ranks_per_card}x"
            f"{threads_per_rank})"
        ),
        n_ranks=n_cards * ranks_per_card,
        threads_per_rank=threads_per_rank,
        ranks_per_domain=ranks_per_card,
        intra=MIC_ONCARD_MPI,
        inter=PCIE_MIC_MIC if n_cards > 1 else None,
        region_sync=MIC_OPENMP,
        threads_per_core_needed=2,
    )


def examl_mic_flat(n_ranks: int = 120) -> ParallelConfig:
    """The failed configuration: one MPI rank per hardware thread pair.

    "An attempt to run ExaML in this configuration resulted in a
    substantial slowdown" (Sec. V-D) — every reduction is a
     120-participant AllReduce through the card's slow MPI stack.
    """
    return ParallelConfig(
        name=f"ExaML-MIC flat ({n_ranks} ranks)",
        n_ranks=n_ranks,
        threads_per_rank=1,
        ranks_per_domain=n_ranks,
        intra=MIC_ONCARD_MPI,
        region_sync=None,
        threads_per_core_needed=2,
    )


def raxml_light_pthreads(platform: PlatformSpec, on_mic: bool = False) -> ParallelConfig:
    """RAxML-Light: one process, PThreads workers, 2 syncs per kernel."""
    if on_mic:
        threads = platform.cores * 2
        sync: ForkJoinModel = MIC_PTHREADS
        needed = 2
    else:
        threads = platform.cores
        sync = CPU_PTHREADS
        needed = 1
    return ParallelConfig(
        name=f"RAxML-Light PThreads ({threads} threads)",
        n_ranks=1,
        threads_per_rank=threads,
        ranks_per_domain=1,
        intra=SHARED_MEMORY,
        region_sync=sync,
        threads_per_core_needed=needed,
    )
