"""Functional distributed likelihood engine (ExaML's parallelisation).

ExaML's scheme (Sec. V-D): every rank runs its own *consistent* copy of
the tree-search algorithm over its slice of the alignment sites, and the
ranks communicate only where information must be combined — the
AllReduce after ``evaluate`` (summing partial log-likelihoods) and after
each ``derivativeCore`` batch (summing the two derivatives).  Crucially
there is *no* communication between consecutive ``newview`` calls.

:class:`DistributedEngine` implements that scheme functionally on top of
:class:`~repro.parallel.simmpi.SimMPI`: ranks are in-process
sub-engines over disjoint pattern slices, every reduction goes through
the simulated AllReduce (so communication volume and modelled time are
accounted), and the public surface duck-types
:class:`~repro.core.engine.LikelihoodEngine` closely enough that the
branch-length optimiser and SPR search from :mod:`repro.search` run on
it unchanged — the reproduction's demonstration that the tree search is
oblivious to the distribution, exactly as in ExaML.
"""

from __future__ import annotations

import numpy as np

from ..core.backends import KernelBackend, KernelProfile, get_backend
from ..core.engine import LikelihoodEngine
from ..faults.plan import RankFailure
from ..obs import metrics as _obs_metrics
from ..obs import server as _obs_server
from ..obs import spans as _obs
from ..core.schedule import WaveStats
from ..phylo.alignment import PatternAlignment
from ..phylo.models import SubstitutionModel
from ..phylo.rates import GammaRates
from ..phylo.tree import Tree
from ..core.kernels import derivative_reduce
from .distribute import SiteDistribution, distribute_block, distribute_cyclic
from .pool import SumBufferHandle, WorkerPool, WorkerRestart
from .simmpi import SimMPI

__all__ = ["DistributedEngine"]


def _slice_patterns(patterns: PatternAlignment, idx: np.ndarray) -> PatternAlignment:
    """A rank-local pattern alignment over a subset of pattern columns."""
    return PatternAlignment(
        taxa=list(patterns.taxa),
        data=np.ascontiguousarray(patterns.data[:, idx]),
        weights=patterns.weights[idx].copy(),
        site_to_pattern=np.arange(idx.shape[0]),
        states=patterns.states,
    )


class DistributedEngine:
    """Rank-parallel PLF over a shared tree (ExaML's communication scheme).

    All ranks reference the *same* :class:`Tree` object — mirroring
    ExaML, where each process deterministically replays the identical
    sequence of topology/branch updates, so tree state never needs to be
    communicated.

    Rank failure (injected via the :class:`SimMPI` fault plan) follows
    ``on_rank_failure``:

    * ``"degrade"`` (default) — the dead rank's pattern slice is
      *adopted* by the lowest surviving rank (ExaML's restart story
      compressed into one process: the survivor re-reads the alignment
      slice and rebuilds the CLAs, which we charge as modelled recovery
      time), the collective is retried among survivors, and the search
      continues with identical numerics;
    * ``"abort"`` — :class:`~repro.faults.RankFailure` propagates, so a
      checkpoint-aware driver can snapshot-and-exit.
    """

    def __init__(
        self,
        patterns: PatternAlignment,
        tree: Tree,
        model: SubstitutionModel,
        rates: GammaRates | None = None,
        n_ranks: int = 2,
        mpi: SimMPI | None = None,
        distribution: SiteDistribution | None = None,
        backend: str | KernelBackend | None = None,
        on_rank_failure: str = "degrade",
        execution: str = "simulated",
        start_method: str | None = None,
    ) -> None:
        if n_ranks < 1:
            raise ValueError("need at least one rank")
        if on_rank_failure not in ("degrade", "abort"):
            raise ValueError("on_rank_failure must be 'degrade' or 'abort'")
        if execution not in ("simulated", "processes"):
            raise ValueError(
                "execution must be 'simulated' or 'processes', "
                f"got {execution!r}"
            )
        self.on_rank_failure = on_rank_failure
        self.execution = execution
        self.dead_ranks: set[int] = set()
        self.adoptions: dict[int, int] = {}
        self.rank_failures = 0
        self.recovery_seconds = 0.0
        self.patterns = patterns
        self.tree = tree
        self._model = model
        self._rates = rates
        self._closed = False
        self.mpi = mpi if mpi is not None else SimMPI(n_ranks)
        if self.mpi.n_ranks != n_ranks:
            raise ValueError("SimMPI rank count mismatch")
        self.distribution = distribution or (
            distribute_block(patterns.n_patterns, n_ranks)
            if execution == "processes"
            else distribute_cyclic(patterns.n_patterns, n_ranks)
        )
        if self.distribution.n_workers != n_ranks:
            raise ValueError("distribution worker count mismatch")
        if execution == "processes":
            if backend is not None and not isinstance(backend, str):
                raise ValueError(
                    "execution='processes' takes a backend *name*; each "
                    "rank process builds its own instance"
                )
            # Real rank processes over one shared arena.  SimMPI stays in
            # the loop for collective accounting and fault *injection*:
            # an injected rank death actually kills the pool worker, and
            # recovery is the pool's real slice adoption.
            self.pool: WorkerPool | None = WorkerPool(
                patterns,
                tree,
                model,
                rates,
                n_workers=n_ranks,
                backend=backend,
                on_worker_failure=on_rank_failure
                if on_rank_failure == "abort"
                else "degrade",
                distribution=self.distribution,
                start_method=start_method,
            )
            self.backend = None
            self.wave_boundaries = 0
            self.ranks: list[LikelihoodEngine] = []
            return
        self.pool = None
        # One backend instance across ranks: the profile aggregates the
        # whole distributed workload (per-rank counters stay separate).
        self.backend = get_backend(backend)
        # Wave boundaries crossed by the levelized schedule.  Unlike the
        # PThreads scheme these are *not* synchronisation points: ExaML
        # exchanges nothing between consecutive newview calls, so a wave
        # boundary is purely a bookkeeping marker (the AllReduce at
        # ``evaluate`` piggybacks the final one).  Communication cost is
        # charged only by the SimMPI reductions.
        self.wave_boundaries = 0
        self.ranks = [
            LikelihoodEngine(
                _slice_patterns(patterns, self.distribution.indices_of(r)),
                tree,
                model,
                rates,
                backend=self.backend,
            )
            for r in range(n_ranks)
        ]

    # -- LikelihoodEngine-compatible surface ---------------------------
    @property
    def rates_model(self) -> GammaRates:
        if self.pool is not None:
            return self._rates
        return self.ranks[0].rates_model

    @property
    def model(self) -> SubstitutionModel:
        if self.pool is not None:
            return self._model
        return self.ranks[0].model

    def set_model(self, model: SubstitutionModel, rates: GammaRates | None = None) -> None:
        self._model = model
        if rates is not None:
            self._rates = rates
        if self.pool is not None:
            self._pool_retry(lambda: self.pool.set_model(model, rates))
            return
        for engine in self.ranks:
            engine.set_model(model, rates)

    def set_alpha(self, alpha: float) -> None:
        if self._rates is not None:
            self._rates = self._rates.with_alpha(float(alpha))
        if self.pool is not None:
            self._pool_retry(lambda: self.pool.set_alpha(float(alpha)))
            return
        for engine in self.ranks:
            engine.set_alpha(alpha)

    def default_edge(self) -> int:
        return min(self.tree.edge_ids)

    # -- real rank processes --------------------------------------------
    def _pool_retry(self, fn):
        """Replay a pool operation across real rank deaths.

        The pool absorbs a death by slice adoption and raises
        :class:`~repro.parallel.pool.WorkerRestart`; the engine mirrors
        the pool's adoption bookkeeping into its own rank accounting and
        replays the operation (ranks are deterministic, so the replay is
        exact).
        """
        for _ in range(2 * self.mpi.n_ranks + 1):
            try:
                return fn()
            except WorkerRestart:
                for w in self.pool.dead:
                    if w not in self.dead_ranks:
                        self.dead_ranks.add(w)
                        self.rank_failures += 1
                    self.adoptions[w] = self.pool.adoptions.get(w, w)
                continue
        raise RankFailure(-1, "rank deaths kept firing; giving up")

    def _pool_validate(self, root_edge: int) -> None:
        depth = self.pool.prepare(self.tree.to_state(), root_edge)
        self.wave_boundaries += depth
        for k in range(depth):
            self.pool.run_wave(k)

    def ensure_valid(self, root_edge: int) -> None:
        """Advance every rank through the levelized plan wave-by-wave.

        All ranks share the tree, so their plans levelize identically;
        running them in lock-step mirrors ExaML's deterministic replay.
        Each wave increments :attr:`wave_boundaries` but charges *no*
        communication — there is no message between newview calls.
        """
        if self.pool is not None:
            self._pool_retry(lambda: self._pool_validate(root_edge))
            return
        plans = [engine.plan_execution(root_edge) for engine in self.ranks]
        depth = max((p.depth for p in plans), default=0)
        for k in range(depth):
            self.wave_boundaries += 1
            if _obs.ENABLED:
                _obs.instant("wave_boundary", wave=k, ranks=len(self.ranks))
                _obs_metrics.get_registry().counter(
                    "repro_wave_boundaries_total",
                    "lock-step wave boundaries across ranks",
                ).inc()
            for r, (engine, plan) in enumerate(zip(self.ranks, plans)):
                if k < plan.depth:
                    with _obs.track_scope(f"rank-{self.owner_of(r)}"):
                        engine.executor.run_wave(plan.waves[k])

    # -- rank-failure recovery -----------------------------------------
    def owner_of(self, rank: int) -> int:
        """The rank currently computing ``rank``'s slice (adoption-aware)."""
        return self.adoptions.get(rank, rank)

    @property
    def alive_ranks(self) -> list[int]:
        """Ranks still alive, in index order."""
        return [
            r for r in range(self.mpi.n_ranks) if r not in self.dead_ranks
        ]

    def _handle_rank_failure(self, failure: RankFailure) -> None:
        """Apply the ``on_rank_failure`` policy to one injected death."""
        if self.on_rank_failure == "abort":
            raise failure
        rank = failure.rank
        if rank in self.dead_ranks:  # repeated death of a ghost: no-op
            return
        survivors = [r for r in self.alive_ranks if r != rank]
        if not survivors:
            raise RankFailure(rank, "last surviving rank failed") from failure
        adopter = survivors[0]
        self.dead_ranks.add(rank)
        self.adoptions[rank] = adopter
        for ghost, owner in list(self.adoptions.items()):
            if owner == rank:  # re-adopt slices the dead rank had adopted
                self.adoptions[ghost] = adopter
        self.rank_failures += 1
        # Modelled recovery: survivors synchronise (one barrier) and the
        # adopter re-reads + rebuilds the dead rank's slice — tip data
        # over the interconnect, CLAs recomputed locally (not charged
        # separately: the next traversal recomputes them anyway).
        slice_patterns = int(self.distribution.indices_of(rank).shape[0])
        slice_bytes = float(
            slice_patterns * len(self.patterns.taxa) * self.patterns.data.itemsize
        )
        dt = (
            self.mpi.interconnect.message_time(slice_bytes, len(survivors))
            if slice_bytes
            else 0.0
        )
        self.recovery_seconds += dt
        self.mpi.comm_seconds += dt
        self.mpi.barrier()
        if _obs.ENABLED:
            _obs.instant(
                "rank.adopted",
                dead=rank,
                adopter=adopter,
                survivors=len(survivors),
                recovery_us=dt * 1e6,
            )
            _obs_metrics.get_registry().counter(
                "repro_rank_failures_total",
                "injected rank deaths absorbed by degradation",
            ).inc()
        if _obs_server.ENABLED:
            _obs_server.health_event(
                "rank_death",
                rank=rank,
                adopter=adopter,
                survivors=len(survivors),
                recovery_us=dt * 1e6,
            )

    def _allreduce(self, parts: list) -> np.ndarray:
        """One AllReduce with rank-failure recovery (degrade policy).

        A death during the collective is absorbed (slice adoption) and
        the collective retried among survivors; numerics are unchanged
        because slices are disjoint and the adopter replays the dead
        rank's contribution.  Bounded to guard against pathological
        always-fire plans.
        """
        for _ in range(2 * self.mpi.n_ranks + 1):
            try:
                return self.mpi.allreduce_sum(parts)
            except RankFailure as failure:
                if (
                    self.pool is not None
                    and self.on_rank_failure == "degrade"
                    and failure.rank not in self.dead_ranks
                    and failure.rank not in self.pool.dead
                ):
                    # Injected death made real: the pool worker dies too,
                    # so the *next* region exercises real slice adoption.
                    self.pool.kill_worker(failure.rank)
                self._handle_rank_failure(failure)
        raise RankFailure(-1, "rank-death faults kept firing; giving up")

    def log_likelihood(self, root_edge: int | None = None) -> float:
        """Partial per-rank lnL, combined by one scalar AllReduce.

        With real rank processes the AllReduce still runs (accounting
        and fault injection over the per-rank partial lane), but the
        *returned* value comes from the gathered per-site lane reduced
        in fixed pattern order — bit-identical to the sequential engine
        for every rank count.
        """
        if root_edge is None:
            root_edge = self.default_edge()
        if self.pool is not None:
            def op() -> float:
                self._pool_validate(root_edge)
                self.pool.root(root_edge)
                return float(
                    np.dot(self.pool.site_lane(), self.patterns.weights)
                )
            value = self._pool_retry(op)
            parts = [float(x) for x in self.pool.partial_lane()[:, 0]]
            self._allreduce(parts)  # accounting + fault injection
            return value
        self.ensure_valid(root_edge)
        parts = [engine.log_likelihood(root_edge) for engine in self.ranks]
        return float(self._allreduce(parts)[0])

    def edge_sum_buffer(self, root_edge: int):
        """Per-rank sum buffers (stay resident; never communicated)."""
        if self.pool is not None:
            def op() -> SumBufferHandle:
                self._pool_validate(root_edge)
                return self.pool.sumbuf(root_edge)
            return self._pool_retry(op)
        return [engine.edge_sum_buffer(root_edge) for engine in self.ranks]

    def branch_derivatives(self, sumbufs, t: float) -> tuple[float, float, float]:
        """Per-rank ``derivativeCore`` + one AllReduce of 3 doubles."""
        if self.pool is not None:
            def op() -> tuple[float, float, float]:
                self.pool.deriv(sumbufs, t)
                l0, l1, l2 = self.pool.terms_lane()
                return derivative_reduce(
                    l0.copy(), l1.copy(), l2.copy(), self.patterns.weights
                )
            value = self._pool_retry(op)
            parts = [
                np.array(row) for row in self.pool.partial_lane()[:, 1:4]
            ]
            self._allreduce(parts)  # accounting + fault injection
            return value
        parts = [
            np.array(engine.branch_derivatives(sb, t))
            for engine, sb in zip(self.ranks, sumbufs)
        ]
        total = self._allreduce(parts)
        return float(total[0]), float(total[1]), float(total[2])

    def all_branch_gradients(
        self, root_edge: int | None = None
    ) -> dict[int, tuple[float, float]]:
        """All-branch ``(d1, d2)`` under ExaML's communication scheme.

        Ranks run the bidirectional sweep over their slices in lock-step
        — the pre-order up-sweep crosses wave boundaries but exchanges
        nothing, exactly like consecutive ``newview`` calls — and the
        per-edge derivatives are combined by a *single* AllReduce of
        ``2 * (2N - 3)`` doubles, so the collective count per sweep stays
        O(1) instead of O(N).  The returned values come from full-length
        term lanes gathered in pattern order and reduced with the same
        :func:`~repro.core.kernels.derivative_reduce` as the sequential
        engine, so they are bit-identical for every rank count.
        """
        if root_edge is None:
            root_edge = self.default_edge()
        n = self.patterns.n_patterns
        if self.pool is not None:
            def op() -> dict[int, np.ndarray]:
                self._pool_validate(root_edge)
                return self.pool.grad(root_edge)
            lanes = self._pool_retry(op)
        else:
            self.ensure_valid(root_edge)
            plans = [engine.plan_gradient(root_edge) for engine in self.ranks]
            for engine in self.ranks:
                engine._pre = {}
                engine._grad_terms = {}
            depth = max((p.up.depth for p in plans), default=0)
            for k in range(depth):
                self.wave_boundaries += 1
                if _obs.ENABLED:
                    _obs.instant(
                        "wave_boundary",
                        wave=k,
                        ranks=len(self.ranks),
                        sweep="up",
                    )
                    _obs_metrics.get_registry().counter(
                        "repro_wave_boundaries_total",
                        "lock-step wave boundaries across ranks",
                    ).inc()
                for r, (engine, plan) in enumerate(zip(self.ranks, plans)):
                    if k < plan.up.depth:
                        with _obs.track_scope(f"rank-{self.owner_of(r)}"):
                            engine.executor.run_wave(plan.up.waves[k])
            lanes = {}
            for r, engine in enumerate(self.ranks):
                idx = self.distribution.indices_of(r)
                for eid, (l0, l1, l2) in engine._grad_terms.items():
                    lane = lanes.get(eid)
                    if lane is None:
                        lane = lanes[eid] = np.empty((3, n))
                    lane[0][idx], lane[1][idx], lane[2][idx] = l0, l1, l2
            for engine in self.ranks:
                engine._pre = {}
                engine._grad_terms = None
        order = sorted(lanes)
        out: dict[int, tuple[float, float]] = {}
        weights = self.patterns.weights
        for eid in order:
            lane = lanes[eid]
            _, d1, d2 = derivative_reduce(lane[0], lane[1], lane[2], weights)
            out[eid] = (d1, d2)
        # The one collective: per-rank (d1, d2) partial vectors, summed.
        # Accounting + fault injection only — the reported derivatives
        # above come from the fixed-order lane reduction.
        parts = []
        for r in range(self.mpi.n_ranks):
            idx = self.distribution.indices_of(r)
            w = weights[idx]
            vec = np.empty(2 * len(order))
            for j, eid in enumerate(order):
                l0, l1, l2 = (lane[idx] for lane in lanes[eid])
                r1 = l1 / l0
                vec[2 * j] = float(np.dot(r1, w))
                vec[2 * j + 1] = float(np.dot(l2 / l0 - r1 * r1, w))
            parts.append(vec)
        self._allreduce(parts)
        return out

    def site_log_likelihoods(self, root_edge: int | None = None) -> np.ndarray:
        """Gathered per-pattern lnL in original pattern order."""
        if root_edge is None:
            root_edge = self.default_edge()
        if self.pool is not None:
            def op() -> np.ndarray:
                self._pool_validate(root_edge)
                self.pool.root(root_edge)
                return self.pool.site_lane().copy()
            return self._pool_retry(op)
        out = np.empty(self.patterns.n_patterns)
        for r, engine in enumerate(self.ranks):
            out[self.distribution.indices_of(r)] = engine.site_log_likelihoods(
                root_edge
            )
        return out

    def drop_caches(self) -> None:
        if self.pool is not None:
            self._pool_retry(self.pool.drop_caches)
            return
        for engine in self.ranks:
            engine.drop_caches()

    @property
    def counters(self):
        """Rank-0 counters (all ranks perform identical call sequences);
        merged across rank processes for real execution."""
        if self.pool is not None:
            return self.pool.merged_counters()
        return self.ranks[0].counters

    @property
    def profile(self) -> KernelProfile:
        """Measured profile of the shared backend (all ranks)."""
        if self.pool is not None:
            return self.pool.merged_profile()
        return self.backend.profile

    @property
    def comm_seconds(self) -> float:
        """Modelled communication time accumulated so far."""
        return self.mpi.comm_seconds

    @property
    def wave_stats(self) -> WaveStats:
        """Wave statistics merged across every rank's executor."""
        if self.pool is not None:
            return self.pool.merged_wave_stats()
        total = WaveStats()
        for engine in self.ranks:
            total.merge(engine.wave_stats)
        return total

    @property
    def barrier_stats(self):
        """Measured fork-join costs (real rank processes only)."""
        return self.pool.barrier_stats if self.pool is not None else None

    def reset_profile(self) -> None:
        """Zero every rank's counters/stats and the shared profile."""
        if self.pool is not None:
            self._pool_retry(self.pool.reset_profiles)
        else:
            for engine in self.ranks:
                engine.reset_profile()
        self.wave_boundaries = 0
        self.mpi.comm_seconds = 0.0
        self.mpi.allreduce_calls = 0
        self.mpi.bytes_reduced = 0.0
        self.mpi.allreduce_retries = 0
        self.mpi.seconds_in_faults = 0.0
        self.recovery_seconds = 0.0

    def reset_all_observability(self) -> None:
        """Engine-wide reset plus the obs metrics registry and tracer."""
        if self.pool is not None:
            self._pool_retry(self.pool.reset_observability)
        self.reset_profile()
        _obs_metrics.get_registry().reset()
        if _obs.ENABLED:
            _obs.get_tracer().clear()

    # -- lifetime -------------------------------------------------------
    def close(self) -> None:
        """Shut real rank processes down (no-op for simulated ranks)."""
        if self._closed:
            return
        self._closed = True
        if self.pool is not None:
            self.pool.close()

    def __enter__(self) -> "DistributedEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
