"""Functional RAxML-Light-style PThreads fork-join engine (Sec. V-C).

RAxML-Light parallelises the PLF with a master/worker scheme: alignment
sites are distributed evenly among worker threads, *every* kernel
invocation becomes a parallel region bracketed by two synchronisation
points (job announcement + completion barrier), and reductions happen
in shared memory at the master.  The paper reuses this scheme unchanged
for the native MIC port ("there is no need to introduce a thread-level
parallelization in the kernel code").

:class:`ForkJoinEngine` is the functional counterpart of
:class:`~repro.parallel.distributed.DistributedEngine` for this model:
same numerical results, same duck-typed engine surface, but the
synchronisation *accounting* charges two barriers per kernel call — the
cost structure that makes fork-join lose to ExaML's scheme as thread
counts grow (ablation E9), while communication (AllReduce) cost is zero
because everything is shared memory.
"""

from __future__ import annotations

import numpy as np

from ..core.backends import KernelBackend, KernelProfile, get_backend
from ..obs import metrics as _obs_metrics
from ..obs import spans as _obs
from ..core.engine import LikelihoodEngine
from ..core.schedule import WaveStats
from ..phylo.alignment import PatternAlignment
from ..phylo.models import SubstitutionModel
from ..phylo.rates import GammaRates
from ..phylo.tree import Tree
from .distribute import SiteDistribution, distribute_cyclic
from .distributed import _slice_patterns
from .pthreads import CPU_PTHREADS, ForkJoinModel

__all__ = ["ForkJoinEngine"]


class ForkJoinEngine:
    """Master/worker PLF over site slices with per-call barrier costs."""

    def __init__(
        self,
        patterns: PatternAlignment,
        tree: Tree,
        model: SubstitutionModel,
        rates: GammaRates | None = None,
        n_threads: int = 4,
        sync_model: ForkJoinModel = CPU_PTHREADS,
        distribution: SiteDistribution | None = None,
        backend: str | KernelBackend | None = None,
    ) -> None:
        if n_threads < 1:
            raise ValueError("need at least one thread")
        self.patterns = patterns
        self.tree = tree
        self.n_threads = n_threads
        self.sync_model = sync_model
        self.sync_seconds = 0.0
        self.parallel_regions = 0
        self.distribution = distribution or distribute_cyclic(
            patterns.n_patterns, n_threads
        )
        if self.distribution.n_workers != n_threads:
            raise ValueError("distribution worker count mismatch")
        # All worker slices share one backend instance, so the profile
        # aggregates the whole fork-join workload.
        self.backend = get_backend(backend)
        self.workers = [
            LikelihoodEngine(
                _slice_patterns(patterns, self.distribution.indices_of(t)),
                tree,
                model,
                rates,
                backend=self.backend,
            )
            for t in range(n_threads)
        ]

    def _region(self) -> None:
        """Account one parallel region: two syncs (Sec. V-D)."""
        self.parallel_regions += 1
        overhead = self.sync_model.region_overhead_s(self.n_threads)
        self.sync_seconds += overhead
        if _obs.ENABLED:
            _obs.instant(
                "forkjoin_region",
                threads=self.n_threads,
                modelled_us=overhead * 1e6,
            )
            reg = _obs_metrics.get_registry()
            reg.counter(
                "repro_forkjoin_regions_total",
                "fork-join parallel regions (two barriers each)",
            ).inc()
            reg.counter(
                "repro_barriers_total", "simulated rank barriers"
            ).inc(2)

    def ensure_valid(self, root_edge: int) -> None:
        """Run the levelized plan with one parallel region per wave.

        Workers pick up *whole waves*: every thread executes its site
        slice of wave ``k`` inside one fork-join region (announcement +
        completion barrier), instead of paying two syncs per individual
        ``newview`` call — the batching the execution-plan IR buys the
        PThreads scheme.  All workers share the tree, so their plans
        levelize identically.
        """
        plans = [w.plan_execution(root_edge) for w in self.workers]
        depth = max((p.depth for p in plans), default=0)
        for k in range(depth):
            self._region()  # one region (two barriers) per wave
            for t, (worker, plan) in enumerate(zip(self.workers, plans)):
                if k < plan.depth:
                    with _obs.track_scope(f"thread-{t}"):
                        worker.executor.run_wave(plan.waves[k])

    # -- LikelihoodEngine-compatible surface ---------------------------
    @property
    def rates_model(self) -> GammaRates:
        return self.workers[0].rates_model

    @property
    def model(self) -> SubstitutionModel:
        return self.workers[0].model

    def set_model(self, model: SubstitutionModel, rates: GammaRates | None = None) -> None:
        for worker in self.workers:
            worker.set_model(model, rates)

    def set_alpha(self, alpha: float) -> None:
        for worker in self.workers:
            worker.set_alpha(alpha)

    def default_edge(self) -> int:
        return self.workers[0].default_edge()

    def log_likelihood(self, root_edge: int | None = None) -> float:
        if root_edge is None:
            root_edge = self.default_edge()
        self.ensure_valid(root_edge)  # wave regions
        self._region()  # the evaluate region (shared-memory reduction)
        return float(
            sum(worker.log_likelihood(root_edge) for worker in self.workers)
        )

    def edge_sum_buffer(self, root_edge: int) -> list[np.ndarray]:
        self.ensure_valid(root_edge)  # wave regions
        self._region()
        return [worker.edge_sum_buffer(root_edge) for worker in self.workers]

    def branch_derivatives(
        self, sumbufs: list[np.ndarray], t: float
    ) -> tuple[float, float, float]:
        self._region()
        totals = np.zeros(3)
        for worker, sb in zip(self.workers, sumbufs):
            totals += np.array(worker.branch_derivatives(sb, t))
        return float(totals[0]), float(totals[1]), float(totals[2])

    def site_log_likelihoods(self, root_edge: int | None = None) -> np.ndarray:
        self._region()
        out = np.empty(self.patterns.n_patterns)
        for t, worker in enumerate(self.workers):
            out[self.distribution.indices_of(t)] = worker.site_log_likelihoods(
                root_edge
            )
        return out

    def drop_caches(self) -> None:
        for worker in self.workers:
            worker.drop_caches()

    @property
    def counters(self):
        """Thread-0 counters (each worker performs the same call mix)."""
        return self.workers[0].counters

    @property
    def profile(self) -> KernelProfile:
        """Measured profile of the shared backend (all threads)."""
        return self.backend.profile

    @property
    def wave_stats(self) -> WaveStats:
        """Wave statistics merged across every worker's executor."""
        total = WaveStats()
        for worker in self.workers:
            total.merge(worker.wave_stats)
        return total

    def reset_profile(self) -> None:
        """Zero every worker's counters/stats and the shared profile."""
        for worker in self.workers:
            worker.reset_profile()
        self.sync_seconds = 0.0
        self.parallel_regions = 0

    def reset_all_observability(self) -> None:
        """Engine-wide reset plus the obs metrics registry and tracer."""
        self.reset_profile()
        _obs_metrics.get_registry().reset()
        if _obs.ENABLED:
            _obs.get_tracer().clear()
