"""Functional RAxML-Light-style PThreads fork-join engine (Sec. V-C).

RAxML-Light parallelises the PLF with a master/worker scheme: alignment
sites are distributed evenly among worker threads, *every* kernel
invocation becomes a parallel region bracketed by two synchronisation
points (job announcement + completion barrier), and reductions happen
in shared memory at the master.  The paper reuses this scheme unchanged
for the native MIC port ("there is no need to introduce a thread-level
parallelization in the kernel code").

:class:`ForkJoinEngine` implements that scheme at three fidelity
levels, selected by ``execution``:

``"simulated"``
    The original functional model: worker slices run sequentially in
    the master, every region charged the *modelled* two-barrier cost of
    a :class:`~repro.parallel.pthreads.ForkJoinModel` — the cost
    structure that makes fork-join lose to ExaML's scheme as thread
    counts grow (ablation E9).
``"threads"``
    Real in-process parallelism: a persistent thread pool executes each
    wave's worker slices concurrently (NumPy kernels release the GIL),
    and every region's announcement/barrier cost is *measured* into
    :class:`~repro.parallel.pool.BarrierStats`.
``"processes"``
    The paper's scheme made real across processes: a spawn-once
    :class:`~repro.parallel.pool.WorkerPool` over one shared-memory
    arena (zero-copy CLAs/result lanes), with worker-death degradation
    and measured barriers.

All three modes reduce through full-length per-site lanes gathered in
pattern order, so log-likelihoods and branch derivatives are
**bit-identical** to the sequential engine for every thread count.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..core.backends import KernelBackend, KernelProfile, get_backend
from ..core.cat import CatLikelihoodEngine
from ..core.engine import LikelihoodEngine
from ..core.kernels import derivative_reduce
from ..core.schedule import WaveStats
from ..core.traversal import KernelCounters
from ..obs import metrics as _obs_metrics
from ..obs import spans as _obs
from ..phylo.alignment import PatternAlignment
from ..phylo.models import SubstitutionModel
from ..phylo.rates import CatRates, GammaRates, discrete_gamma_rates
from ..phylo.tree import Tree
from .distribute import SiteDistribution, distribute_block, distribute_cyclic
from .distributed import _slice_patterns
from .pool import (
    BarrierStats,
    SumBufferHandle,
    WorkerFailure,
    WorkerPool,
    WorkerRestart,
    slice_cat,
)
from .pthreads import CPU_PTHREADS, ForkJoinModel

__all__ = [
    "ForkJoinEngine",
    "EXECUTION_MODES",
    "WORKERS_ENV",
    "EXEC_ENV",
    "default_workers",
    "default_execution",
    "merged_backend_profile",
]

#: Supported execution substrates, cheapest first.
EXECUTION_MODES = ("simulated", "threads", "processes")

#: Environment variables consulted for process-wide parallel defaults
#: (mirrors ``REPRO_BACKEND`` for kernel backends).
WORKERS_ENV = "REPRO_WORKERS"
EXEC_ENV = "REPRO_EXEC"


def default_workers() -> int:
    """Process default worker count: ``$REPRO_WORKERS`` or 1 (serial)."""
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if not raw:
        return 1
    try:
        n = int(raw)
    except ValueError as exc:
        raise ValueError(
            f"{WORKERS_ENV} must be a positive integer, got {raw!r}"
        ) from exc
    if n < 1:
        raise ValueError(f"{WORKERS_ENV} must be >= 1, got {n}")
    return n


def default_execution() -> str:
    """Process default execution mode: ``$REPRO_EXEC`` or ``simulated``."""
    raw = os.environ.get(EXEC_ENV, "").strip()
    if not raw:
        return EXECUTION_MODES[0]
    if raw not in EXECUTION_MODES:
        raise ValueError(
            f"{EXEC_ENV} must be one of {', '.join(EXECUTION_MODES)}; got {raw!r}"
        )
    return raw


def merged_backend_profile(engines) -> KernelProfile:
    """One profile over many engines without double counting.

    Engines sharing one backend *instance* (the simulated fork-join
    default) contribute that instance's profile exactly once — merging
    per-engine ``backend.profile`` naively would multiply every batched
    dispatch by the worker count.
    """
    merged = KernelProfile()
    seen: set[int] = set()
    for engine in engines:
        backend = engine.backend
        if id(backend) in seen:
            continue
        seen.add(id(backend))
        merged.merge(backend.profile)
    return merged


class ForkJoinEngine:
    """Master/worker PLF over site slices with per-call barrier costs."""

    def __init__(
        self,
        patterns: PatternAlignment,
        tree: Tree,
        model: SubstitutionModel,
        rates: GammaRates | None = None,
        n_threads: int = 4,
        sync_model: ForkJoinModel = CPU_PTHREADS,
        distribution: SiteDistribution | None = None,
        backend: str | KernelBackend | None = None,
        execution: str = "simulated",
        cat: CatRates | None = None,
        on_worker_failure: str = "degrade",
        start_method: str | None = None,
        label: str = "",
    ) -> None:
        if n_threads < 1:
            raise ValueError("need at least one thread")
        if execution not in EXECUTION_MODES:
            raise ValueError(
                f"execution must be one of {EXECUTION_MODES}, got {execution!r}"
            )
        self.patterns = patterns
        self.tree = tree
        self.n_threads = n_threads
        self.execution = execution
        self.sync_model = sync_model
        self.sync_seconds = 0.0
        self.parallel_regions = 0
        self.barrier_stats = BarrierStats()
        self.cat = cat
        self._alpha = 1.0 if cat is not None else None
        self._model = model
        self._rates = rates
        self._closed = False
        self.label = label
        self.pool: WorkerPool | None = None
        self._executor: ThreadPoolExecutor | None = None

        if execution == "processes":
            if backend is not None and not isinstance(backend, str):
                raise ValueError(
                    "execution='processes' takes a backend *name*; each "
                    "worker process builds its own instance"
                )
            self.distribution = distribution or distribute_block(
                patterns.n_patterns, n_threads
            )
            if self.distribution.n_workers != n_threads:
                raise ValueError("distribution worker count mismatch")
            self.pool = WorkerPool(
                patterns,
                tree,
                model,
                rates,
                n_workers=n_threads,
                backend=backend,
                cat=cat,
                on_worker_failure=on_worker_failure,
                distribution=self.distribution,
                start_method=start_method,
                label=label,
            )
            self.barrier_stats = self.pool.barrier_stats
            self.backend = None
            self.workers: list = []
            return

        self.distribution = distribution or distribute_cyclic(
            patterns.n_patterns, n_threads
        )
        if self.distribution.n_workers != n_threads:
            raise ValueError("distribution worker count mismatch")
        if execution == "threads":
            if backend is not None and not isinstance(backend, str):
                raise ValueError(
                    "execution='threads' takes a backend *name*; scratch-"
                    "carrying backends are not safe to share across threads"
                )
            # One instance per worker thread; profiles merge at read time.
            worker_backends = [get_backend(backend) for _ in range(n_threads)]
            self.backend = None
            self._executor = ThreadPoolExecutor(
                max_workers=n_threads, thread_name_prefix="repro-fj"
            )
        else:
            # All worker slices share one backend instance, so the profile
            # aggregates the whole fork-join workload.
            self.backend = get_backend(backend)
            worker_backends = [self.backend] * n_threads

        self.workers = []
        for t in range(n_threads):
            idx = self.distribution.indices_of(t)
            sliced = _slice_patterns(patterns, idx)
            if cat is not None:
                worker = CatLikelihoodEngine(
                    sliced, tree, model, slice_cat(cat, idx),
                    backend=worker_backends[t],
                )
            else:
                worker = LikelihoodEngine(
                    sliced, tree, model, rates, backend=worker_backends[t]
                )
            self.workers.append(worker)

    # ------------------------------------------------------------------
    # regions
    # ------------------------------------------------------------------
    def _region(self) -> None:
        """Account one parallel region: two syncs (Sec. V-D)."""
        self.parallel_regions += 1
        overhead = self.sync_model.region_overhead_s(self.n_threads)
        self.sync_seconds += overhead
        if _obs.ENABLED:
            _obs.instant(
                "forkjoin_region",
                threads=self.n_threads,
                modelled_us=overhead * 1e6,
            )
            reg = _obs_metrics.get_registry()
            reg.counter(
                "repro_forkjoin_regions_total",
                "fork-join parallel regions (two barriers each)",
            ).inc()
            reg.counter(
                "repro_barriers_total", "simulated rank barriers"
            ).inc(2)

    def _threads_region(self, tasks) -> list:
        """Run one measured fork-join region on the thread pool.

        ``tasks`` maps worker index -> zero-arg callable (or ``None`` to
        idle this region).  Returns per-worker results, recording the
        measured region/compute times into :attr:`barrier_stats` and the
        measured announcement+barrier overhead into
        :attr:`sync_seconds`.
        """
        self.parallel_regions += 1
        t0 = time.perf_counter()
        futures = {}
        for t, task in enumerate(tasks):
            if task is not None:
                futures[t] = self._executor.submit(_timed, task)
        results = [None] * len(tasks)
        worker_s = []
        for t, fut in futures.items():
            secs, value = fut.result()
            worker_s.append(secs)
            results[t] = value
        region_s = time.perf_counter() - t0
        self.barrier_stats.record(region_s, worker_s)
        self.sync_seconds += max(
            region_s - max(worker_s, default=0.0), 0.0
        )
        if _obs.ENABLED:
            _obs.instant(
                "forkjoin_region",
                threads=self.n_threads,
                measured_us=region_s * 1e6,
            )
            reg = _obs_metrics.get_registry()
            reg.counter(
                "repro_forkjoin_regions_total",
                "fork-join parallel regions (two barriers each)",
            ).inc()
        return results

    def _retry(self, fn):
        """Replay a pool operation across absorbed worker deaths."""
        last: WorkerRestart | None = None
        for _ in range(self.n_threads + 1):
            try:
                return fn()
            except WorkerRestart as exc:
                last = exc
                continue
        raise WorkerFailure(
            last.worker if last else -1, "too many worker restarts"
        )

    def _sync_from_pool(self) -> None:
        self.parallel_regions = self.pool.barrier_stats.regions
        self.sync_seconds = self.pool.barrier_stats.overhead_seconds

    # ------------------------------------------------------------------
    # validity (wave execution)
    # ------------------------------------------------------------------
    def ensure_valid(self, root_edge: int) -> None:
        """Run the levelized plan with one parallel region per wave.

        Workers pick up *whole waves*: every thread executes its site
        slice of wave ``k`` inside one fork-join region (announcement +
        completion barrier), instead of paying two syncs per individual
        ``newview`` call — the batching the execution-plan IR buys the
        PThreads scheme.  All workers share the tree, so their plans
        levelize identically.
        """
        if self.execution == "processes":
            self._pool_validate(root_edge)
            return
        plans = [w.plan_execution(root_edge) for w in self.workers]
        depth = max((p.depth for p in plans), default=0)
        for k in range(depth):
            if self.execution == "threads":
                self._threads_region([
                    (lambda w=w, p=p: w.executor.run_wave(p.waves[k]))
                    if k < p.depth else None
                    for w, p in zip(self.workers, plans)
                ])
                continue
            self._region()  # one region (two barriers) per wave
            for t, (worker, plan) in enumerate(zip(self.workers, plans)):
                if k < plan.depth:
                    with _obs.track_scope(f"thread-{t}"):
                        worker.executor.run_wave(plan.waves[k])

    def _pool_validate(self, root_edge: int) -> None:
        """One prepare + per-wave regions on the process pool (no retry:
        callers wrap the whole top-level op so replays re-prepare)."""
        depth = self.pool.prepare(self.tree.to_state(), root_edge)
        for k in range(depth):
            self.pool.run_wave(k)

    # ------------------------------------------------------------------
    # LikelihoodEngine-compatible surface
    # ------------------------------------------------------------------
    @property
    def rates_model(self) -> GammaRates:
        if self.execution == "processes":
            return self._rates
        return self.workers[0].rates_model

    @property
    def model(self) -> SubstitutionModel:
        if self.execution == "processes":
            return self._model
        return self.workers[0].model

    @property
    def alpha(self) -> float | None:
        """CAT shape parameter (None for plain Gamma engines)."""
        return self._alpha if self.cat is not None else None

    def set_model(self, model: SubstitutionModel, rates: GammaRates | None = None) -> None:
        self._model = model
        if rates is not None:
            self._rates = rates
        if self.execution == "processes":
            self._retry(lambda: self.pool.set_model(model, rates))
            self._sync_from_pool()
            return
        for worker in self.workers:
            worker.set_model(model, rates)

    def set_alpha(self, alpha: float) -> None:
        if self.cat is not None:
            self._set_cat_alpha(float(alpha))
            return
        if self._rates is not None:
            self._rates = self._rates.with_alpha(float(alpha))
        if self.execution == "processes":
            self._retry(lambda: self.pool.set_alpha(float(alpha)))
            self._sync_from_pool()
            return
        for worker in self.workers:
            worker.set_alpha(alpha)

    def _set_cat_alpha(self, alpha: float) -> None:
        """CAT shape change, normalised at the master.

        The category rates must be renormalised against the *full*
        alignment's pattern weights — a worker doing this against its
        slice weights would silently shift every site rate.
        """
        rates = discrete_gamma_rates(alpha, self.cat.category_rates.shape[0])
        mean = float(
            np.average(
                rates[self.cat.site_categories], weights=self.patterns.weights
            )
        )
        self.cat = CatRates(
            category_rates=rates / mean,
            site_categories=self.cat.site_categories,
        )
        self._alpha = alpha
        if self.execution == "processes":
            self._retry(lambda: self.pool.set_cat(self.cat, alpha))
            self._sync_from_pool()
            return
        for t, worker in enumerate(self.workers):
            worker.cat = slice_cat(self.cat, self.distribution.indices_of(t))
            worker.set_model(worker.model)
            worker._alpha = alpha

    def default_edge(self) -> int:
        return min(self.tree.edge_ids)

    def log_likelihood(self, root_edge: int | None = None) -> float:
        if root_edge is None:
            root_edge = self.default_edge()
        if self.execution == "processes":
            def op() -> float:
                self._pool_validate(root_edge)
                self.pool.root(root_edge)
                return float(
                    np.dot(self.pool.site_lane(), self.patterns.weights)
                )
            out = self._retry(op)
            self._sync_from_pool()
            return out
        self.ensure_valid(root_edge)  # wave regions
        site = self._gather_site_lnl(root_edge)
        return float(np.dot(site, self.patterns.weights))

    def _gather_site_lnl(self, root_edge: int) -> np.ndarray:
        """One evaluate region; per-site lanes gathered in pattern order.

        The fixed-order master reduction (``np.dot`` over the gathered
        full-length lane) is what makes the result bit-identical to the
        sequential engine for every thread count and distribution.
        """
        out = np.empty(self.patterns.n_patterns)
        if self.execution == "threads":
            parts = self._threads_region([
                (lambda w=w: w.site_log_likelihoods(root_edge))
                for w in self.workers
            ])
        else:
            self._region()  # the evaluate region (shared-memory reduction)
            parts = [w.site_log_likelihoods(root_edge) for w in self.workers]
        for t, part in enumerate(parts):
            out[self.distribution.indices_of(t)] = part
        return out

    def site_log_likelihoods(self, root_edge: int | None = None) -> np.ndarray:
        if root_edge is None:
            root_edge = self.default_edge()
        if self.execution == "processes":
            def op() -> np.ndarray:
                self._pool_validate(root_edge)
                self.pool.root(root_edge)
                return self.pool.site_lane().copy()
            out = self._retry(op)
            self._sync_from_pool()
            return out
        self.ensure_valid(root_edge)
        return self._gather_site_lnl(root_edge)

    def edge_sum_buffer(self, root_edge: int):
        """Per-thread ``derivativeSum`` buffers (opaque to callers)."""
        if self.execution == "processes":
            def op() -> SumBufferHandle:
                self._pool_validate(root_edge)
                return self.pool.sumbuf(root_edge)
            handle = self._retry(op)
            self._sync_from_pool()
            return handle
        self.ensure_valid(root_edge)  # wave regions
        if self.execution == "threads":
            return self._threads_region([
                (lambda w=w: w.edge_sum_buffer(root_edge))
                for w in self.workers
            ])
        self._region()
        return [worker.edge_sum_buffer(root_edge) for worker in self.workers]

    def branch_derivatives(self, sumbufs, t: float) -> tuple[float, float, float]:
        if self.execution == "processes":
            def op() -> tuple[float, float, float]:
                self.pool.deriv(sumbufs, t)
                l0, l1, l2 = self.pool.terms_lane()
                return derivative_reduce(
                    l0.copy(), l1.copy(), l2.copy(), self.patterns.weights
                )
            out = self._retry(op)
            self._sync_from_pool()
            return out
        l0 = np.empty(self.patterns.n_patterns)
        l1 = np.empty_like(l0)
        l2 = np.empty_like(l0)
        if self.execution == "threads":
            parts = self._threads_region([
                (lambda w=w, sb=sb: w.derivative_site_terms(sb, t))
                for w, sb in zip(self.workers, sumbufs)
            ])
        else:
            self._region()
            parts = [
                w.derivative_site_terms(sb, t)
                for w, sb in zip(self.workers, sumbufs)
            ]
        for i, part in enumerate(parts):
            idx = self.distribution.indices_of(i)
            l0[idx], l1[idx], l2[idx] = part
        return derivative_reduce(l0, l1, l2, self.patterns.weights)

    def all_branch_gradients(
        self, root_edge: int | None = None
    ) -> dict[int, tuple[float, float]]:
        """All-branch ``(d1, d2)`` via parallel bidirectional sweeps.

        The post-order down-sweep rides :meth:`ensure_valid`'s per-wave
        regions; the pre-order up-sweep then runs as one fork-join region
        per up-wave (workers share the tree, so their gradient plans
        levelize identically).  Workers collect per-edge *site terms* on
        their slices; the master gathers each edge's full-length
        ``(l0, l1, l2)`` lanes in pattern order and applies the same
        :func:`~repro.core.kernels.derivative_reduce` the sequential
        engine uses — bit-identical for every worker count.
        """
        if root_edge is None:
            root_edge = self.default_edge()
        weights = self.patterns.weights
        if self.execution == "processes":
            def op() -> dict[int, np.ndarray]:
                self._pool_validate(root_edge)  # wave regions
                return self.pool.grad(root_edge)
            lanes = self._retry(op)
            self._sync_from_pool()
            out: dict[int, tuple[float, float]] = {}
            for eid, lane in lanes.items():
                _, d1, d2 = derivative_reduce(lane[0], lane[1], lane[2], weights)
                out[eid] = (d1, d2)
            return out
        self.ensure_valid(root_edge)  # down-sweep wave regions
        plans = [w.plan_gradient(root_edge) for w in self.workers]
        for worker in self.workers:
            worker._pre = {}
            worker._grad_terms = {}
        depth = max((p.up.depth for p in plans), default=0)
        with _obs.span(
            "gradient.all_branches", up_waves=depth, workers=self.n_threads
        ):
            for k in range(depth):
                if self.execution == "threads":
                    self._threads_region([
                        (lambda w=w, p=p: w.executor.run_wave(p.up.waves[k]))
                        if k < p.up.depth else None
                        for w, p in zip(self.workers, plans)
                    ])
                    continue
                self._region()  # one region (two barriers) per up-wave
                for t, (worker, plan) in enumerate(zip(self.workers, plans)):
                    if k < plan.up.depth:
                        with _obs.track_scope(f"thread-{t}"):
                            worker.executor.run_wave(plan.up.waves[k])
        out = {}
        l0 = np.empty(self.patterns.n_patterns)
        l1 = np.empty_like(l0)
        l2 = np.empty_like(l0)
        for eid in self.workers[0]._grad_terms:
            for i, worker in enumerate(self.workers):
                idx = self.distribution.indices_of(i)
                t0, t1, t2 = worker._grad_terms[eid]
                l0[idx], l1[idx], l2[idx] = t0, t1, t2
            _, d1, d2 = derivative_reduce(l0, l1, l2, weights)
            out[eid] = (d1, d2)
        for worker in self.workers:
            worker._pre = {}
            worker._grad_terms = None
        return out

    def drop_caches(self) -> None:
        if self.execution == "processes":
            self._retry(self.pool.drop_caches)
            return
        for worker in self.workers:
            worker.drop_caches()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    @property
    def counters(self) -> KernelCounters:
        """Thread-0 counters for in-process modes (each worker performs
        the same call mix); merged across workers for process pools."""
        if self.execution == "processes":
            return self.pool.merged_counters()
        return self.workers[0].counters

    @property
    def profile(self) -> KernelProfile:
        """Measured kernel profile over every worker, without
        double-counting shared backend instances."""
        if self.execution == "processes":
            return self.pool.merged_profile()
        return merged_backend_profile(self.workers)

    @property
    def wave_stats(self) -> WaveStats:
        """Wave statistics merged across every worker's executor."""
        if self.execution == "processes":
            return self.pool.merged_wave_stats()
        total = WaveStats()
        for worker in self.workers:
            total.merge(worker.wave_stats)
        return total

    def reset_profile(self) -> None:
        """Zero every worker's counters/stats and the measured barriers."""
        if self.execution == "processes":
            self._retry(self.pool.reset_profiles)
        else:
            for worker in self.workers:
                worker.reset_profile()
        self.sync_seconds = 0.0
        self.parallel_regions = 0
        self.barrier_stats.reset()

    def reset_all_observability(self) -> None:
        """Engine-wide reset plus the obs metrics registry and tracer.

        Process pools forward the reset to every worker process, so
        per-worker counters/profiles/wave-stats restart from zero too.
        """
        if self.execution == "processes":
            self._retry(self.pool.reset_observability)
            self.sync_seconds = 0.0
            self.parallel_regions = 0
            self.barrier_stats.reset()
        else:
            self.reset_profile()
        _obs_metrics.get_registry().reset()
        if _obs.ENABLED:
            _obs.get_tracer().clear()

    # ------------------------------------------------------------------
    # lifetime
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the execution substrate (idempotent).

        Shuts the process pool down (unlinking its shared arena) or the
        thread pool; a no-op for the simulated engine.
        """
        if self._closed:
            return
        self._closed = True
        if self.pool is not None:
            self.pool.close()
        if self._executor is not None:
            self._executor.shutdown(wait=True)

    def __enter__(self) -> "ForkJoinEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _timed(task):
    """Run one worker task, returning ``(compute_seconds, result)``."""
    t0 = time.perf_counter()
    value = task()
    return time.perf_counter() - t0, value
