"""RAxML-Light's PThreads fork-join parallelisation model (Sec. V-C/V-D).

RAxML-Light uses a classical master/worker scheme: the master posts a
job descriptor, workers compute their site ranges, and everyone meets at
a barrier — *master and workers communicate at least twice per parallel
region* (Sec. V-D), i.e. a start barrier and an end barrier around every
kernel invocation.  ExaML was designed to avoid exactly this (no
synchronisation between consecutive ``newview`` calls), which is the
fork-join-vs-ExaML ablation (E9).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from .openmp import OpenMPModel

__all__ = ["ForkJoinModel", "MIC_PTHREADS", "CPU_PTHREADS"]


@dataclass(frozen=True)
class ForkJoinModel:
    """Master/worker fork-join: two barriers around every region."""

    name: str
    barrier: OpenMPModel  # reuse the barrier cost curve

    def region_overhead_s(self, n_threads: int) -> float:
        """Two synchronisation points per parallel region."""
        return 2.0 * self.barrier.region_overhead_s(n_threads)

    def parallel_for_time(
        self, n_items: int, n_threads: int, per_item_s: float
    ) -> float:
        if n_items < 0:
            raise ValueError("negative item count")
        chunk = ceil(n_items / n_threads)
        return chunk * per_item_s + self.region_overhead_s(n_threads)


from .openmp import CPU_OPENMP, MIC_OPENMP  # noqa: E402  (constants reuse)

MIC_PTHREADS = ForkJoinModel("knc-pthreads", MIC_OPENMP)
CPU_PTHREADS = ForkJoinModel("xeon-pthreads", CPU_OPENMP)
