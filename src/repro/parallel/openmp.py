"""OpenMP execution model: parallel-for with fork/barrier overhead.

ExaML-MIC parallelises each kernel's site loop with OpenMP across 118
threads per rank (Sec. V-D).  Every parallel region pays a fork +
barrier whose cost grows with the thread count — on Knights Corner,
measured centralized barriers run tens of microseconds at 100+ threads,
which is exactly why the MIC loses on small alignments: at 10K sites a
thread owns ~42 sites (~2 us of work) wrapped in ~25 us of
synchronisation (Sec. VI-B2's explanation).

The linear-plus-constant barrier model below reproduces that regime; the
coefficients are per-platform (big out-of-order cores synchronise far
faster than 1 GHz in-order ones).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

__all__ = ["OpenMPModel", "MIC_OPENMP", "CPU_OPENMP"]


@dataclass(frozen=True)
class OpenMPModel:
    """Fork-join timing for one OpenMP runtime on one platform."""

    name: str
    fork_base_s: float  # constant fork/teardown cost
    barrier_per_thread_s: float  # incremental cost per participating thread

    def region_overhead_s(self, n_threads: int) -> float:
        """Fork + end-of-region barrier cost for one parallel region."""
        if n_threads < 1:
            raise ValueError("need at least one thread")
        if n_threads == 1:
            return 0.0
        return self.fork_base_s + self.barrier_per_thread_s * n_threads

    def parallel_for_time(
        self, n_items: int, n_threads: int, per_item_s: float
    ) -> float:
        """Wall time of a statically-chunked parallel loop."""
        if n_items < 0:
            raise ValueError("negative item count")
        chunk = ceil(n_items / n_threads)
        return chunk * per_item_s + self.region_overhead_s(n_threads)


#: KNC: slow cores, many threads — ~30 us base plus ~0.7 us/thread
#: (118 threads -> ~113 us per region), consistent with published EPCC
#: OpenMP microbenchmark numbers for ``PARALLEL FOR`` on Knights Corner
#: at >100 threads; final values calibrated against Table III (see
#: repro.perf.calibration).
MIC_OPENMP = OpenMPModel("knc-openmp", 30e-6, 0.7e-6)

#: Xeon: ~0.5 us base plus ~0.15 us/thread (16 threads -> ~3 us).
CPU_OPENMP = OpenMPModel("xeon-openmp", 0.5e-6, 0.15e-6)
