"""Simulated parallel runtimes: MPI, OpenMP, PThreads, and ExaML's scheme.

Cost models for collectives and fork-join synchronisation (calibrated to
the paper's measured latencies), the canonical run configurations of the
evaluation (flat MPI, hybrid MPI x OpenMP, PThreads fork-join), the
trace-driven end-to-end run model behind Table III, and a functional
distributed engine demonstrating ExaML's communicate-only-at-reductions
scheme with bit-level agreement against the serial engine.
"""

from .distribute import SiteDistribution, distribute_block, distribute_cyclic
from .distributed import DistributedEngine
from .examl import ExaMLModel, RunPrediction
from .forkjoin import EXECUTION_MODES, ForkJoinEngine, merged_backend_profile
from .pool import (
    BarrierStats,
    SumBufferHandle,
    WorkerFailure,
    WorkerPool,
    WorkerRestart,
    slice_cat,
)
from .shm import ArenaLayout, SharedArena, active_arena_segments
from .hybrid import (
    MIC_ONCARD_MPI,
    ParallelConfig,
    examl_cpu,
    examl_mic_flat,
    examl_mic_hybrid,
    raxml_light_pthreads,
)
from .openmp import CPU_OPENMP, MIC_OPENMP, OpenMPModel
from .pthreads import CPU_PTHREADS, MIC_PTHREADS, ForkJoinModel
from .simmpi import (
    INFINIBAND_QLOGIC,
    PCIE_MIC_MIC,
    PCIE_MIC_MIC_OLD_MPI,
    SHARED_MEMORY,
    Interconnect,
    SimMPI,
    allreduce_time,
)

__all__ = [
    "SiteDistribution",
    "distribute_block",
    "distribute_cyclic",
    "DistributedEngine",
    "ExaMLModel",
    "EXECUTION_MODES",
    "ForkJoinEngine",
    "merged_backend_profile",
    "BarrierStats",
    "SumBufferHandle",
    "WorkerFailure",
    "WorkerPool",
    "WorkerRestart",
    "slice_cat",
    "ArenaLayout",
    "SharedArena",
    "active_arena_segments",
    "RunPrediction",
    "MIC_ONCARD_MPI",
    "ParallelConfig",
    "examl_cpu",
    "examl_mic_flat",
    "examl_mic_hybrid",
    "raxml_light_pthreads",
    "CPU_OPENMP",
    "MIC_OPENMP",
    "OpenMPModel",
    "CPU_PTHREADS",
    "MIC_PTHREADS",
    "ForkJoinModel",
    "INFINIBAND_QLOGIC",
    "PCIE_MIC_MIC",
    "PCIE_MIC_MIC_OLD_MPI",
    "SHARED_MEMORY",
    "Interconnect",
    "SimMPI",
    "allreduce_time",
]
