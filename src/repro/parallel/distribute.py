"""Alignment-site distribution across workers (ranks x threads).

ExaML and RAxML-Light distribute site patterns evenly over workers; the
quantity that matters for performance is the *maximum* per-worker count
(the slowest worker gates every barrier).  Cyclic distribution also
balances per-partition boundaries for partitioned alignments — the
load-balancing concern the paper's Sec. V-A and VII flag for multi-gene
datasets.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

import numpy as np

__all__ = ["SiteDistribution", "distribute_block", "distribute_cyclic"]


@dataclass(frozen=True)
class SiteDistribution:
    """Assignment of pattern indices to workers."""

    n_sites: int
    n_workers: int
    assignment: tuple[tuple[int, ...], ...]  # worker -> site indices

    @property
    def per_worker_counts(self) -> list[int]:
        return [len(a) for a in self.assignment]

    @property
    def max_per_worker(self) -> int:
        return max(self.per_worker_counts) if self.assignment else 0

    @property
    def imbalance(self) -> float:
        """max/mean per-worker count (1.0 = perfectly balanced)."""
        counts = self.per_worker_counts
        mean = sum(counts) / len(counts)
        return self.max_per_worker / mean if mean else 1.0

    def indices_of(self, worker: int) -> np.ndarray:
        return np.asarray(self.assignment[worker], dtype=np.int64)


def distribute_block(n_sites: int, n_workers: int) -> SiteDistribution:
    """Contiguous blocks of ``ceil(n/w)`` sites per worker."""
    if n_workers < 1:
        raise ValueError("need at least one worker")
    chunk = ceil(n_sites / n_workers)
    assignment = tuple(
        tuple(range(w * chunk, min((w + 1) * chunk, n_sites)))
        for w in range(n_workers)
    )
    return SiteDistribution(n_sites, n_workers, assignment)


def distribute_cyclic(n_sites: int, n_workers: int) -> SiteDistribution:
    """Round-robin (site ``i`` to worker ``i mod w``) — RAxML's scheme."""
    if n_workers < 1:
        raise ValueError("need at least one worker")
    assignment = tuple(
        tuple(range(w, n_sites, n_workers)) for w in range(n_workers)
    )
    return SiteDistribution(n_sites, n_workers, assignment)
