"""ExaML run model: trace-driven end-to-end time prediction.

Combines the pieces into the paper's Table III machinery:

    total = sum over kernels of  calls x [ data-parallel site time
                                           + per-region sync
                                           + per-call serial overhead
                                           + per-call cold-stream ramp ]
            + reductions x AllReduce(ranks, interconnects)

* the data-parallel term comes from the roofline cost model
  (:class:`repro.perf.costmodel.CostModel`), spread over the
  configuration's *effective cores*;
* sync is the OpenMP/PThreads region overhead (per kernel call — every
  kernel call is one parallel region in ExaML's hybrid mode);
* serial is the non-parallelised per-invocation work (P-matrices,
  traversal bookkeeping) at the platform's scalar speed;
* ramp is the cold-stream latency penalty: the first
  ``prefetch-distance`` site blocks of each streamed input miss DRAM
  without cover.  It is negligible for big per-worker chunks and
  dominant when 236 workers each own a few dozen sites — the paper's
  Sec. VI-B2 explanation for the small-alignment losses;
* reductions pay the (hierarchical) AllReduce of Sec. VI-B3.

The same class predicts RAxML-Light runs (fork-join sync, single rank)
and the flat-MPI ablation, because all of those differ only in the
:class:`~repro.parallel.hybrid.ParallelConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from ..obs import spans as _obs
from ..perf.costmodel import CostModel
from ..perf.platforms import PlatformSpec
from ..perf.trace import KERNELS, KernelTrace
from .hybrid import ParallelConfig

__all__ = ["RunPrediction", "ExaMLModel", "STREAMS_PER_KERNEL"]

#: Streamed input arrays per kernel (for the cold-stream ramp): newview
#: and derivativeSum read two CLAs; evaluate reads two; derivativeCore
#: reads the sum buffer only.
STREAMS_PER_KERNEL = {
    "newview": 2,
    "evaluate": 2,
    "derivative_sum": 2,
    "derivative_core": 1,
}

#: Which kernels trigger an MPI reduction in ExaML (per Sec. V-D /
#: VI-B3): evaluate sums partial likelihoods, derivativeCore sums the
#: two derivatives.
REDUCING_KERNELS = ("evaluate", "derivative_core")

#: Cache lines per 16-double site block.
LINES_PER_SITE = 2

#: Site blocks left uncovered by software prefetch at each stream start.
PREFETCH_DISTANCE = 8


@dataclass(frozen=True)
class RunPrediction:
    """Predicted wall-clock decomposition of one tree-search run."""

    platform: str
    config: str
    n_sites: int
    compute_s: float
    sync_s: float
    serial_s: float
    ramp_s: float
    comm_s: float
    per_kernel_s: dict[str, float]

    @property
    def total_s(self) -> float:
        return (
            self.compute_s + self.sync_s + self.serial_s + self.ramp_s + self.comm_s
        )

    def speedup_over(self, other: "RunPrediction") -> float:
        return other.total_s / self.total_s


@dataclass(frozen=True)
class ExaMLModel:
    """Trace-driven performance model for one platform + configuration."""

    platform: PlatformSpec
    config: ParallelConfig

    def cost_model(self) -> CostModel:
        return CostModel(self.platform)

    def cla_memory_bytes(self, n_sites: int, n_taxa: int) -> float:
        """CLA footprint: one 16-double block per site per internal node."""
        return (n_taxa - 2) * n_sites * 16 * 8

    def fits_in_memory(self, n_sites: int, n_taxa: int) -> bool:
        """Does the working set fit the per-card/system memory (Table I)?

        The paper notes the 4000K dataset "already uses *all* available
        memory" of the 8 GB card: the CLA footprint there is ~6.7 GB and
        tip codes, sum buffers and traversal state add ~15% — hence the
        1.15 factor (4000K x 15 taxa fits exactly as the paper observed;
        anything much larger does not).
        """
        per_domain_sites = n_sites / max(
            1, self.config.n_ranks // self.config.ranks_per_domain
        )
        need = 1.15 * self.cla_memory_bytes(per_domain_sites, n_taxa)
        return need <= self.platform.memory_gb * 1e9

    def ramp_seconds_per_call(self, kernel: str, sites_per_core: float) -> float:
        """Cold-stream latency at the start of each worker's chunk."""
        uncovered_sites = min(PREFETCH_DISTANCE, sites_per_core)
        lines = uncovered_sites * LINES_PER_SITE * STREAMS_PER_KERNEL[kernel]
        latency_cycles = self.platform.dram_latency_ns * self.platform.clock_ghz
        # 4 outstanding misses per core (MLP of the in-order KNC with two
        # active threads; OoO Xeons sustain ~10).
        mlp = 4.0 if self.platform.isa and self.platform.isa.name == "mic512" else 10.0
        return lines * latency_cycles / mlp / (self.platform.clock_ghz * 1e9)

    @_obs.traced("examl.predict")
    def predict(self, trace: KernelTrace, n_sites: int) -> RunPrediction:
        """Predict a full tree-search run at alignment width ``n_sites``."""
        if n_sites <= 0:
            raise ValueError("n_sites must be positive")
        cost = self.cost_model()
        cores = self.config.effective_cores(self.platform)
        # Sites are split across ranks *and* threads; the per-core chunk
        # is what one saturated core processes per invocation.
        sites_per_core = ceil(n_sites / cores)

        compute = sync = serial = ramp = comm = 0.0
        per_kernel: dict[str, float] = {}
        sync_per_call = self.config.sync_overhead_s()
        reduction_s = self.config.reduction_time_s()
        for kernel in KERNELS:
            calls = trace.calls[kernel]
            if calls == 0:
                per_kernel[kernel] = 0.0
                continue
            cyc = cost.cycles_per_site(kernel) * sites_per_core
            k_compute = cyc / (self.platform.clock_ghz * 1e9)
            k_serial = cost.serial_overhead_s(kernel)
            k_ramp = self.ramp_seconds_per_call(kernel, sites_per_core)
            k_comm = reduction_s if kernel in REDUCING_KERNELS else 0.0
            per_kernel[kernel] = calls * (
                k_compute + sync_per_call + k_serial + k_ramp + k_comm
            )
            compute += calls * k_compute
            sync += calls * sync_per_call
            serial += calls * k_serial
            ramp += calls * k_ramp
            comm += calls * k_comm
        return RunPrediction(
            platform=self.platform.name,
            config=self.config.name,
            n_sites=n_sites,
            compute_s=compute,
            sync_s=sync,
            serial_s=serial,
            ramp_s=ramp,
            comm_s=comm,
            per_kernel_s=per_kernel,
        )

    @_obs.traced("examl.predict_partitioned")
    def predict_partitioned(
        self, trace: KernelTrace, n_sites: int, n_partitions: int
    ) -> RunPrediction:
        """Predict a run over a partitioned alignment (Sec. V-A / VII).

        The paper warns that many partitions degrade performance through
        "decreasing parallel block size ... and growing communication
        overhead": each kernel invocation becomes ``n_partitions``
        parallel blocks, every one paying its own per-partition serial
        work (transition matrices per partition model) and its own
        cold-stream ramp, while the data-parallel site work stays the
        same in total.  Equal-size partitions are assumed (the
        best case — skewed partitions add imbalance on top).
        """
        if n_partitions < 1:
            raise ValueError("need at least one partition")
        if n_partitions > n_sites:
            raise ValueError("more partitions than sites")
        cost = self.cost_model()
        cores = self.config.effective_cores(self.platform)
        sites_per_part = n_sites / n_partitions
        sites_per_core_part = ceil(sites_per_part / cores)

        compute = sync = serial = ramp = comm = 0.0
        per_kernel: dict[str, float] = {}
        sync_per_call = self.config.sync_overhead_s()
        reduction_s = self.config.reduction_time_s()
        for kernel in KERNELS:
            calls = trace.calls[kernel]
            if calls == 0:
                per_kernel[kernel] = 0.0
                continue
            cyc = (
                cost.cycles_per_site(kernel)
                * sites_per_core_part
                * n_partitions
            )
            k_compute = cyc / (self.platform.clock_ghz * 1e9)
            k_serial = cost.serial_overhead_s(kernel) * n_partitions
            k_ramp = (
                self.ramp_seconds_per_call(kernel, sites_per_core_part)
                * n_partitions
            )
            k_comm = reduction_s if kernel in REDUCING_KERNELS else 0.0
            per_kernel[kernel] = calls * (
                k_compute + sync_per_call + k_serial + k_ramp + k_comm
            )
            compute += calls * k_compute
            sync += calls * sync_per_call
            serial += calls * k_serial
            ramp += calls * k_ramp
            comm += calls * k_comm
        return RunPrediction(
            platform=self.platform.name,
            config=f"{self.config.name} [{n_partitions} partitions]",
            n_sites=n_sites,
            compute_s=compute,
            sync_s=sync,
            serial_s=serial,
            ramp_s=ramp,
            comm_s=comm,
            per_kernel_s=per_kernel,
        )
