"""Empirical protein model support: PAML-format rate matrix files.

Protein data is the paper's first-listed future-work item ("support
protein data", Sec. VII).  Real protein analyses use *empirical* models
(WAG, LG, JTT, mtREV...) whose 190 exchangeabilities and 20 equilibrium
frequencies are distributed as PAML ``.dat`` files — a lower-triangle
matrix followed by a frequency line.  Rather than embedding (and
possibly mistyping) those published constants, this module parses the
standard file format, so any published ``.dat`` drops in unchanged; the
test suite exercises the parser with synthetic matrices.

File format (PAML / RAxML convention)::

    s21
    s31 s32
    ...
    s20,1 ... s20,19          # 19 lines of lower-triangle rates
    pi1 pi2 ... pi20          # equilibrium frequencies

Comments (lines starting with ``#``) and blank lines are ignored; the
numbers may be split across lines arbitrarily (some published files wrap
rows).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .models import SubstitutionModel

__all__ = ["load_paml_matrix", "save_paml_matrix", "N_AA"]

N_AA = 20
_N_RATES = N_AA * (N_AA - 1) // 2  # 190
_N_VALUES = _N_RATES + N_AA  # + frequencies


def load_paml_matrix(source: str | Path, name: str | None = None) -> SubstitutionModel:
    """Parse a PAML ``.dat`` empirical protein model file.

    Returns a :class:`~repro.phylo.models.SubstitutionModel` with the
    file's exchangeabilities (converted from lower-triangle to the
    library's upper-triangle row-major order) and frequencies.
    """
    path = Path(source)
    tokens: list[float] = []
    for raw in path.read_text().splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        for tok in line.split():
            try:
                tokens.append(float(tok))
            except ValueError as exc:
                raise ValueError(
                    f"non-numeric token {tok!r} in {path}"
                ) from exc
    if len(tokens) < _N_VALUES:
        raise ValueError(
            f"{path} holds {len(tokens)} numbers; a PAML protein matrix "
            f"needs {_N_VALUES} (190 rates + 20 frequencies)"
        )
    rates_lower = tokens[:_N_RATES]
    freqs = np.asarray(tokens[_N_RATES:_N_VALUES])

    # lower-triangle (row i>j order) -> symmetric matrix -> upper triangle
    m = np.zeros((N_AA, N_AA))
    k = 0
    for i in range(1, N_AA):
        for j in range(i):
            m[i, j] = rates_lower[k]
            k += 1
    m = m + m.T
    iu = np.triu_indices(N_AA, k=1)
    exchangeabilities = m[iu]
    if np.any(exchangeabilities <= 0):
        raise ValueError(f"{path} contains non-positive exchangeabilities")
    freqs = freqs / freqs.sum()
    return SubstitutionModel(
        name=name or path.stem.upper(),
        exchangeabilities=exchangeabilities,
        frequencies=freqs,
    )


def save_paml_matrix(model: SubstitutionModel, path: str | Path) -> None:
    """Write a 20-state model in PAML ``.dat`` format (for round-trips)."""
    if model.n_states != N_AA:
        raise ValueError(f"PAML format is for 20-state models, got {model.n_states}")
    m = np.zeros((N_AA, N_AA))
    iu = np.triu_indices(N_AA, k=1)
    m[iu] = model.exchangeabilities
    m = m + m.T
    lines = []
    for i in range(1, N_AA):
        lines.append(" ".join(f"{m[i, j]:.6f}" for j in range(i)))
    lines.append("")
    lines.append(" ".join(f"{f:.6f}" for f in model.frequencies))
    Path(path).write_text("\n".join(lines) + "\n")
