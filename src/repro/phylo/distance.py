"""Distance-based methods: pairwise distances and neighbor joining.

Likelihood tree searches need starting trees; besides the randomized
stepwise-addition parsimony tree (RAxML's default, implemented in
:mod:`repro.phylo.parsimony`) the other classic choice is **neighbor
joining** (Saitou & Nei 1987) on a matrix of model-corrected pairwise
distances.  This module provides:

* :func:`p_distance` / :func:`jc_distance` / :func:`k2p_distance` —
  pairwise distance matrices from an alignment (proportion of differing
  sites, Jukes–Cantor correction, Kimura two-parameter correction),
* :func:`neighbor_joining` — the canonical NJ agglomeration producing an
  unrooted binary :class:`~repro.phylo.tree.Tree` with branch lengths.

NJ is *consistent*: on additive (noise-free) distances it recovers the
true topology exactly — a property the tests exploit.
"""

from __future__ import annotations

import numpy as np

from .alignment import Alignment, PatternAlignment
from .tree import Tree

__all__ = ["p_distance", "jc_distance", "k2p_distance", "neighbor_joining"]

#: Purines (A, G) have bitmask codes 1 and 4 — transitions stay within
#: {A,G} or within {C,T}.
_PURINE = 0b0101
_PYRIMIDINE = 0b1010


def _pattern_data(alignment: Alignment | PatternAlignment):
    if isinstance(alignment, Alignment):
        alignment = alignment.compress()
    return alignment.data, alignment.weights, list(alignment.taxa)


def p_distance(alignment: Alignment | PatternAlignment) -> tuple[np.ndarray, list[str]]:
    """Proportion of differing (unambiguously resolved) sites per pair.

    Ambiguous characters (any code with more than one bit) are skipped
    pairwise, the standard treatment.  Returns ``(matrix, taxa)``.
    """
    data, weights, taxa = _pattern_data(alignment)
    n = len(taxa)
    resolved = np.isin(data, (1, 2, 4, 8))
    d = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            both = resolved[i] & resolved[j]
            total = float(np.dot(both, weights))
            if total == 0:
                raise ValueError(
                    f"no comparable sites between {taxa[i]!r} and {taxa[j]!r}"
                )
            diff = float(np.dot(both & (data[i] != data[j]), weights))
            d[i, j] = d[j, i] = diff / total
    return d, taxa


def jc_distance(alignment: Alignment | PatternAlignment) -> tuple[np.ndarray, list[str]]:
    """Jukes–Cantor corrected distances: ``-3/4 ln(1 - 4p/3)``.

    Saturated pairs (p >= 0.75, where the correction diverges) are
    clamped to a large finite distance.
    """
    p, taxa = p_distance(alignment)
    arg = 1.0 - 4.0 * p / 3.0
    with np.errstate(invalid="ignore", divide="ignore"):
        d = -0.75 * np.log(arg)
    d[~np.isfinite(d)] = 5.0
    np.fill_diagonal(d, 0.0)
    return d, taxa


def k2p_distance(alignment: Alignment | PatternAlignment) -> tuple[np.ndarray, list[str]]:
    """Kimura two-parameter distances (separate transition/transversion).

    ``d = -1/2 ln(1 - 2P - Q) - 1/4 ln(1 - 2Q)`` with ``P`` the
    transition and ``Q`` the transversion proportion.
    """
    data, weights, taxa = _pattern_data(alignment)
    n = len(taxa)
    resolved = np.isin(data, (1, 2, 4, 8))
    d = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            both = resolved[i] & resolved[j]
            total = float(np.dot(both, weights))
            if total == 0:
                raise ValueError(
                    f"no comparable sites between {taxa[i]!r} and {taxa[j]!r}"
                )
            differs = both & (data[i] != data[j])
            same_class = (
                ((data[i] & _PURINE) > 0) & ((data[j] & _PURINE) > 0)
            ) | (
                ((data[i] & _PYRIMIDINE) > 0) & ((data[j] & _PYRIMIDINE) > 0)
            )
            p_ts = float(np.dot(differs & same_class, weights)) / total
            p_tv = float(np.dot(differs & ~same_class, weights)) / total
            a1 = 1.0 - 2.0 * p_ts - p_tv
            a2 = 1.0 - 2.0 * p_tv
            if a1 <= 0 or a2 <= 0:
                d[i, j] = d[j, i] = 5.0
                continue
            d[i, j] = d[j, i] = -0.5 * np.log(a1) - 0.25 * np.log(a2)
    return d, taxa


def neighbor_joining(matrix: np.ndarray, taxa: list[str]) -> Tree:
    """Saitou–Nei neighbor joining on a distance matrix.

    Standard agglomeration: repeatedly join the pair minimising the
    Q-criterion, assigning the canonical branch lengths; negative branch
    estimates (a known NJ artefact on noisy data) are clamped to a small
    positive value so the result is usable as a likelihood starting
    tree.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    n = len(taxa)
    if matrix.shape != (n, n):
        raise ValueError(f"matrix shape {matrix.shape} vs {n} taxa")
    if n < 2:
        raise ValueError("need at least 2 taxa")
    if not np.allclose(matrix, matrix.T, atol=1e-9):
        raise ValueError("distance matrix must be symmetric")

    tree = Tree()
    nodes = [tree.add_node(name) for name in taxa]
    if n == 2:
        tree.add_edge(nodes[0], nodes[1], max(matrix[0, 1], 1e-8))
        return tree

    active = list(range(n))
    dist = matrix.copy()

    def clamp(x: float) -> float:
        return max(float(x), 1e-8)

    while len(active) > 3:
        m = len(active)
        sub = dist[np.ix_(active, active)]
        row_sums = sub.sum(axis=1)
        q = (m - 2) * sub - row_sums[:, None] - row_sums[None, :]
        np.fill_diagonal(q, np.inf)
        ai, aj = np.unravel_index(np.argmin(q), q.shape)
        i, j = active[ai], active[aj]
        d_ij = dist[i, j]
        # branch lengths to the new internal node
        li = 0.5 * d_ij + (row_sums[ai] - row_sums[aj]) / (2 * (m - 2))
        lj = d_ij - li
        new_node = tree.add_node()
        tree.add_edge(new_node, nodes[i], clamp(li))
        tree.add_edge(new_node, nodes[j], clamp(lj))
        # distances from the new cluster to the rest
        new_row = np.zeros(dist.shape[0] + 1)
        for ak in active:
            if ak in (i, j):
                continue
            new_row[ak] = 0.5 * (dist[i, ak] + dist[j, ak] - d_ij)
        dist = np.pad(dist, ((0, 1), (0, 1)))
        dist[-1, : len(new_row) - 1] = new_row[:-1]
        dist[: len(new_row) - 1, -1] = new_row[:-1]
        nodes.append(new_node)
        active = [a for a in active if a not in (i, j)] + [len(nodes) - 1]

    # final three clusters join at one internal node
    a, b, c = active
    d_ab, d_ac, d_bc = dist[a, b], dist[a, c], dist[b, c]
    center = tree.add_node()
    tree.add_edge(center, nodes[a], clamp(0.5 * (d_ab + d_ac - d_bc)))
    tree.add_edge(center, nodes[b], clamp(0.5 * (d_ab + d_bc - d_ac)))
    tree.add_edge(center, nodes[c], clamp(0.5 * (d_ac + d_bc - d_ab)))
    tree.check()
    return tree
