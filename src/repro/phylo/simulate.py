"""Sequence simulation along a tree (INDELible-equivalent substrate).

The paper generates its eight benchmark alignments with INDELible V1.03:
DNA sequences of 10K–4,000K sites evolved over a fixed 15-taxon tree.
We reproduce that generative process — a continuous-time Markov chain
under a reversible model with (optional) Gamma rate variation, run down
an arbitrary guide tree — without indels (the paper's datasets are
alignments of fixed width; indel simulation would immediately be
realigned away).

Simulation is vectorised across sites: for each branch we build the
transition matrix per rate category once and sample every child state
with a single inverse-CDF draw, so multi-million-site alignments used by
the benchmark harness are generated in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .alignment import Alignment
from .models import SubstitutionModel
from .rates import GammaRates
from .states import DNA, PROTEIN, StateSpace
from .tree import Tree, random_topology

__all__ = ["SimulationResult", "simulate_alignment", "simulate_dataset"]


@dataclass
class SimulationResult:
    """A simulated alignment together with its generating truth."""

    alignment: Alignment
    tree: Tree
    site_rates: np.ndarray  # per-site rate multiplier actually used
    root_states: np.ndarray


def _sample_categorical_rows(
    probs: np.ndarray, row_index: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Sample ``x_i ~ Categorical(probs[row_index[i]])`` for all ``i`` at once.

    ``probs`` is ``(n_rows, n_states)`` with rows summing to 1.  Uses the
    inverse-CDF trick: one uniform per site, compared against the
    cumulative rows gathered by ``row_index``.
    """
    cum = np.cumsum(probs, axis=1)
    # guard against round-off: force the last bin to cover u=1 exactly
    cum[:, -1] = 1.0
    u = rng.random(row_index.shape[0])
    return (u[:, None] > cum[row_index]).sum(axis=1).astype(np.int64)


def simulate_alignment(
    tree: Tree,
    model: SubstitutionModel,
    n_sites: int,
    rng: np.random.Generator,
    gamma: GammaRates | None = None,
    states: StateSpace | None = None,
) -> SimulationResult:
    """Evolve ``n_sites`` characters along ``tree`` under ``model`` (+Gamma).

    The chain is rooted at an arbitrary internal node (reversibility makes
    the choice irrelevant), root states are drawn from the stationary
    frequencies, and each branch applies ``P(rate * t)`` with the site's
    Gamma category rate.
    """
    if states is None:
        states = DNA if model.n_states == 4 else PROTEIN
    if model.n_states != states.n_states:
        raise ValueError(
            f"model has {model.n_states} states but alphabet {states.name} "
            f"has {states.n_states}"
        )
    if n_sites < 1:
        raise ValueError("n_sites must be positive")
    eigen = model.eigen()

    if gamma is None:
        cat_rates = np.ones(1)
    else:
        cat_rates = gamma.rates
    site_cat = rng.integers(0, cat_rates.shape[0], size=n_sites)
    site_rates = cat_rates[site_cat]

    root = tree.internal_nodes()[0] if tree.internal_nodes() else tree.leaves()[0]
    root_states = rng.choice(model.n_states, size=n_sites, p=model.frequencies)

    node_states: dict[int, np.ndarray] = {root: root_states}
    # Walk edges top-down from the root.
    order = [(root, None)]
    stack = [(root, None)]
    while stack:
        node, up_edge = stack.pop()
        for eid in tree.incident_edges(node):
            if eid == up_edge:
                continue
            child = tree.edge(eid).other(node)
            stack.append((child, eid))
            order.append((child, eid))

    for node, up_edge in order[1:]:
        parent = tree.edge(up_edge).other(node)
        t = tree.edge(up_edge).length
        parent_states = node_states[parent]
        child_states = np.empty(n_sites, dtype=np.int64)
        for c, rate in enumerate(cat_rates):
            mask = site_cat == c
            if not np.any(mask):
                continue
            p = eigen.transition_matrix(rate * t)
            p = np.clip(p, 0.0, None)
            p /= p.sum(axis=1, keepdims=True)
            child_states[mask] = _sample_categorical_rows(
                p, parent_states[mask], rng
            )
        node_states[node] = child_states

    data = np.empty((tree.n_leaves, n_sites), dtype=np.uint32)
    taxa: list[str] = []
    for i, leaf in enumerate(tree.leaves()):
        taxa.append(tree.name(leaf))  # type: ignore[arg-type]
        data[i] = np.left_shift(np.uint32(1), node_states[leaf].astype(np.uint32))
    alignment = Alignment(taxa=taxa, data=data, states=states)
    return SimulationResult(
        alignment=alignment, tree=tree, site_rates=site_rates, root_states=root_states
    )


def simulate_dataset(
    n_taxa: int,
    n_sites: int,
    seed: int,
    model: SubstitutionModel | None = None,
    alpha: float | None = 1.0,
) -> SimulationResult:
    """One-call dataset generator mirroring the paper's INDELible setup.

    Random 15-taxon guide trees with uniform branch lengths and GTR+Gamma4
    evolution; ``n_taxa`` and ``n_sites`` parameterise the Table III
    datasets (number of taxa fixed at 15 in the paper since it "has no
    influence on relative speedups").
    """
    from .models import gtr

    rng = np.random.default_rng(seed)
    if model is None:
        freqs = np.array([0.3, 0.2, 0.2, 0.3])
        ex = np.array([1.2, 3.1, 0.9, 1.1, 3.4, 1.0])
        model = gtr(ex, freqs)
    names = [f"taxon{i:02d}" for i in range(n_taxa)]
    tree = random_topology(names, rng, branch_length=(0.02, 0.35))
    gamma = GammaRates(alpha=alpha, n_categories=4) if alpha is not None else None
    return simulate_alignment(tree, model, n_sites, rng, gamma=gamma)
