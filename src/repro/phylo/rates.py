"""Among-site rate heterogeneity: discrete Gamma (Yang 1994) and CAT.

The paper's MIC port supports exactly one heterogeneity model — the
Gamma model with four discrete rates — because its 4 states x 4 rates =
16 doubles per site map perfectly onto two 8-lane MIC vectors (Sec.
V-B2/V-B3).  We implement the standard Yang (1994) discretisation: the
Gamma(alpha, alpha) distribution (mean 1) is cut into ``k`` equal-
probability categories and each category is represented by its
conditional mean, so the average rate stays exactly 1 and branch lengths
keep their expected-substitutions interpretation.

The CAT approximation (Stamatakis 2006) — one rate per site drawn from a
small set of per-site categories, no per-rate loop — is provided as the
paper's named extension; its odd per-site stride (4 doubles) is exactly
the alignment hazard Sec. V-B2 warns about, which our layout code
handles by padding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import gammainc
from scipy.stats import gamma as _gamma_dist

__all__ = ["discrete_gamma_rates", "GammaRates", "CatRates"]


def discrete_gamma_rates(alpha: float, n_categories: int = 4) -> np.ndarray:
    """Mean rates of the ``n_categories`` equal-probability Gamma slices.

    For ``X ~ Gamma(shape=alpha, rate=alpha)`` (mean 1) the conditional
    mean of the slice between quantiles ``q_{i}`` and ``q_{i+1}`` is

        k * [ I(alpha+1, alpha*q_{i+1}) - I(alpha+1, alpha*q_i) ]

    with ``I`` the regularised lower incomplete gamma function — the
    closed form used by RAxML (and originally by Yang's PAML).

    The returned rates are positive, increasing, and average exactly 1.
    """
    if alpha <= 0:
        raise ValueError(f"gamma shape alpha must be positive, got {alpha}")
    if n_categories < 1:
        raise ValueError("need at least one rate category")
    if n_categories == 1:
        return np.ones(1)
    probs = np.arange(1, n_categories) / n_categories
    cuts = _gamma_dist.ppf(probs, a=alpha, scale=1.0 / alpha)
    bounds = np.concatenate(([0.0], cuts * alpha, [np.inf]))
    upper = np.where(np.isinf(bounds[1:]), 1.0, gammainc(alpha + 1.0, bounds[1:]))
    lower = gammainc(alpha + 1.0, bounds[:-1])
    rates = n_categories * (upper - lower)
    # Guard against ppf round-off: renormalise the (already ~1) mean.
    return rates / rates.mean()


@dataclass(frozen=True)
class GammaRates:
    """Discrete-Gamma rate model: ``k`` rates, equal weights ``1/k``."""

    alpha: float
    n_categories: int = 4

    @property
    def rates(self) -> np.ndarray:
        return discrete_gamma_rates(self.alpha, self.n_categories)

    @property
    def weights(self) -> np.ndarray:
        return np.full(self.n_categories, 1.0 / self.n_categories)

    def with_alpha(self, alpha: float) -> "GammaRates":
        return GammaRates(alpha=alpha, n_categories=self.n_categories)


@dataclass(frozen=True)
class CatRates:
    """CAT-style per-site rates: each site pattern owns one rate category.

    ``category_rates`` holds the distinct rates; ``site_categories`` maps
    each alignment pattern to a category index.  Rates are normalised so
    the *weighted* mean rate over patterns is 1 (weights supplied at
    construction), preserving branch-length units.
    """

    category_rates: np.ndarray
    site_categories: np.ndarray

    def __post_init__(self) -> None:
        cr = np.asarray(self.category_rates, dtype=np.float64)
        sc = np.asarray(self.site_categories, dtype=np.int64)
        if np.any(cr <= 0):
            raise ValueError("CAT category rates must be positive")
        if sc.min(initial=0) < 0 or (sc.size and sc.max() >= cr.size):
            raise ValueError("site category index out of range")
        object.__setattr__(self, "category_rates", cr)
        object.__setattr__(self, "site_categories", sc)

    @property
    def n_categories(self) -> int:
        return self.category_rates.shape[0]

    def site_rates(self) -> np.ndarray:
        """Per-pattern rate vector."""
        return self.category_rates[self.site_categories]

    @classmethod
    def from_gamma(
        cls,
        alpha: float,
        n_patterns: int,
        n_categories: int,
        rng: np.random.Generator,
        weights: np.ndarray | None = None,
    ) -> "CatRates":
        """Random CAT assignment with Gamma-discretised category rates.

        A cheap stand-in for RAxML's likelihood-driven CAT clustering:
        good enough to exercise the per-site-rate kernel paths and the
        alignment-padding logic.
        """
        rates = discrete_gamma_rates(alpha, n_categories)
        cats = rng.integers(0, n_categories, size=n_patterns)
        if weights is None:
            weights = np.ones(n_patterns)
        mean = float(np.average(rates[cats], weights=weights))
        return cls(category_rates=rates / mean, site_categories=cats)
