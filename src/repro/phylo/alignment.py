"""Multiple sequence alignment container and site-pattern compression.

The likelihood of a tree factorises over alignment columns, and identical
columns contribute identical per-site likelihoods.  RAxML therefore
compresses the alignment to its unique columns ("site patterns") and
carries an integer weight per pattern; all PLF kernels iterate over
patterns, and ``evaluate`` multiplies each per-pattern log-likelihood by
its weight.  The paper reports dataset sizes as "# alignment patterns"
(Table III) — for the simulated INDELible alignments essentially every
column is unique at the lengths used, so patterns ~= sites.

:class:`Alignment` stores the raw encoded matrix; :class:`PatternAlignment`
is the compressed form consumed by the likelihood engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .states import DNA, StateSpace

__all__ = ["Alignment", "PatternAlignment", "compress_patterns"]


@dataclass
class Alignment:
    """An ``n_taxa x n_sites`` matrix of encoded character codes.

    Attributes
    ----------
    taxa:
        Taxon labels, in row order.  Must be unique.
    data:
        ``uint32`` array of shape ``(n_taxa, n_sites)`` holding bitmask
        state codes (see :mod:`repro.phylo.states`).
    states:
        The :class:`StateSpace` the codes belong to.
    """

    taxa: list[str]
    data: np.ndarray
    states: StateSpace = DNA

    def __post_init__(self) -> None:
        self.data = np.ascontiguousarray(self.data, dtype=np.uint32)
        if self.data.ndim != 2:
            raise ValueError("alignment data must be 2-D (taxa x sites)")
        if len(self.taxa) != self.data.shape[0]:
            raise ValueError(
                f"{len(self.taxa)} taxon labels for {self.data.shape[0]} rows"
            )
        if len(set(self.taxa)) != len(self.taxa):
            raise ValueError("duplicate taxon labels")

    @classmethod
    def from_sequences(
        cls, sequences: dict[str, str], states: StateSpace = DNA
    ) -> "Alignment":
        """Build from a ``{taxon: sequence}`` mapping of equal-length strings."""
        if not sequences:
            raise ValueError("empty alignment")
        taxa = list(sequences)
        lengths = {len(s) for s in sequences.values()}
        if len(lengths) != 1:
            raise ValueError(f"sequences have differing lengths: {sorted(lengths)}")
        data = np.stack([states.encode(sequences[t]) for t in taxa])
        return cls(taxa, data, states)

    @property
    def n_taxa(self) -> int:
        return self.data.shape[0]

    @property
    def n_sites(self) -> int:
        return self.data.shape[1]

    def sequence(self, taxon: str) -> str:
        """Decoded text sequence of one taxon."""
        return self.states.decode(self.data[self.taxa.index(taxon)])

    def compress(self) -> "PatternAlignment":
        """Compress identical columns into weighted site patterns."""
        return compress_patterns(self)


@dataclass
class PatternAlignment:
    """Pattern-compressed alignment: unique columns plus weights.

    ``data[:, p]`` is the ``p``-th unique column; ``weights[p]`` counts how
    many original columns it represents.  ``site_to_pattern`` maps each
    original column index to its pattern, so per-site quantities can be
    expanded back if needed (e.g. for per-site likelihood output).
    """

    taxa: list[str]
    data: np.ndarray
    weights: np.ndarray
    site_to_pattern: np.ndarray
    states: StateSpace = DNA

    @property
    def n_taxa(self) -> int:
        return self.data.shape[0]

    @property
    def n_patterns(self) -> int:
        return self.data.shape[1]

    @property
    def n_sites(self) -> int:
        """Original (uncompressed) alignment width."""
        return int(self.weights.sum())

    def row(self, taxon: str) -> np.ndarray:
        """Pattern-space code row for one taxon."""
        return self.data[self.taxa.index(taxon)]

    def expand(self, per_pattern: np.ndarray) -> np.ndarray:
        """Expand a per-pattern vector back to per-site order."""
        per_pattern = np.asarray(per_pattern)
        return per_pattern[..., self.site_to_pattern]


def compress_patterns(alignment: Alignment) -> PatternAlignment:
    """Collapse identical alignment columns into weighted patterns.

    Patterns are returned in order of first appearance, which keeps the
    compressed alignment deterministic for a given input (important for
    reproducible kernel traces).
    """
    cols = alignment.data.T  # (n_sites, n_taxa)
    # np.unique on rows gives lexicographic order; recover first-appearance
    # order through the index of each pattern's first occurrence.
    _, first_idx, inverse, counts = np.unique(
        cols, axis=0, return_index=True, return_inverse=True, return_counts=True
    )
    order = np.argsort(first_idx, kind="stable")
    rank = np.empty_like(order)
    rank[order] = np.arange(order.size)
    site_to_pattern = rank[inverse].astype(np.int64)
    data = alignment.data[:, np.sort(first_idx)]
    weights = counts[order].astype(np.float64)
    return PatternAlignment(
        taxa=list(alignment.taxa),
        data=np.ascontiguousarray(data),
        weights=weights,
        site_to_pattern=site_to_pattern,
        states=alignment.states,
    )
