"""Fitch parsimony: scoring and stepwise-addition starting trees.

RAxML-Light does not start its ML search from a random topology — it
builds a *randomized stepwise-addition parsimony tree* first, which is
dramatically closer to the ML optimum and cuts the number of expensive
PLF-driven SPR rounds.  We reproduce that substrate: the Fitch (1971)
small-parsimony pass, vectorised across site patterns using the same
bitmask state codes the likelihood tips use, plus the greedy insertion
loop that builds the start tree.
"""

from __future__ import annotations

import numpy as np

from .alignment import PatternAlignment
from .tree import Tree

__all__ = ["fitch_score", "stepwise_addition_tree"]


def fitch_score(tree: Tree, patterns: PatternAlignment) -> int:
    """Weighted Fitch parsimony score of an unrooted tree.

    One bottom-up pass from an arbitrary virtual root: the preliminary
    state set of an internal node is the intersection of its children's
    sets when non-empty (no mutation) else their union (one mutation).
    The count of union events, weighted by pattern multiplicities, is the
    parsimony length.  Works for any node degree, so partially built
    stepwise-addition trees score fine.
    """
    if tree.n_leaves < 2:
        return 0
    leaf_row = {
        tree.name(leaf): patterns.row(tree.name(leaf))  # type: ignore[arg-type]
        for leaf in tree.leaves()
    }
    weights = patterns.weights
    mutations = np.zeros(patterns.n_patterns, dtype=np.int64)

    internals = tree.internal_nodes()
    if not internals:
        # Degenerate 2-leaf tree: a column mutates iff the state sets of
        # the two leaves are disjoint.
        a, b = tree.leaves()
        disjoint = (leaf_row[tree.name(a)] & leaf_row[tree.name(b)]) == 0
        return int(np.dot(disjoint.astype(np.int64), weights))
    root = internals[0]

    # Iterative post-order (site-pattern arrays can be wide; recursion depth
    # is only an issue for caterpillar trees with many taxa).
    state: dict[int, np.ndarray] = {}
    stack: list[tuple[int, int | None, bool]] = [(root, None, False)]
    while stack:
        node, up_edge, expanded = stack.pop()
        if tree.is_leaf(node):
            state[node] = leaf_row[tree.name(node)]  # type: ignore[index]
            continue
        if not expanded:
            stack.append((node, up_edge, True))
            for eid in tree.incident_edges(node):
                if eid == up_edge:
                    continue
                stack.append((tree.edge(eid).other(node), eid, False))
            continue
        acc: np.ndarray | None = None
        for eid in tree.incident_edges(node):
            if eid == up_edge:
                continue
            child_state = state[tree.edge(eid).other(node)]
            if acc is None:
                acc = child_state
                continue
            inter = acc & child_state
            empty = inter == 0
            mutations += empty
            acc = np.where(empty, acc | child_state, inter)
        state[node] = acc if acc is not None else leaf_row[tree.name(node)]  # type: ignore[index]
    return int(np.dot(mutations, weights))


def stepwise_addition_tree(
    patterns: PatternAlignment, rng: np.random.Generator
) -> Tree:
    """Randomized stepwise-addition parsimony tree (RAxML's start tree).

    Taxa are shuffled, the first three form a star, and each further
    taxon is attached to the edge that minimises the Fitch score of the
    grown tree (ties broken by insertion order, which the shuffled taxon
    order already randomises).
    """
    taxa = list(patterns.taxa)
    if len(taxa) < 2:
        raise ValueError("need at least 2 taxa")
    order = [taxa[i] for i in rng.permutation(len(taxa))]

    tree = Tree()
    a = tree.add_node(order[0])
    b = tree.add_node(order[1])
    eid = tree.add_edge(a, b)
    if len(order) == 2:
        return tree
    tree.attach_leaf(eid, order[2])

    for name in order[3:]:
        # Trying an edge splits and later re-merges it, which changes its
        # id; identify candidates by their (stable) endpoint node ids.
        candidates = [(e.u, e.v) for e in tree.edges]
        best_pair, best_score = None, None
        for u, v in candidates:
            eid = tree.find_edge(u, v)
            leaf, mid, pend = tree.attach_leaf(eid, name)
            score = fitch_score(tree, patterns)
            # undo: remove pendant edge + leaf, suppress junction
            tree.remove_edge(pend)
            tree.remove_node(leaf)
            tree.suppress_node(mid)
            if best_score is None or score < best_score:
                best_pair, best_score = (u, v), score
        tree.attach_leaf(tree.find_edge(*best_pair), name)
    return tree
