"""Unrooted phylogenetic trees with branch lengths and topology moves.

The likelihood codes in the paper (RAxML-Light, ExaML) operate on
*unrooted binary* trees: every internal node has degree 3, every leaf
degree 1, and a tree over ``n`` taxa has ``2n - 3`` branches.  Under a
time-reversible model the likelihood is independent of root placement
(the "pulley principle"), so a *virtual root* is placed on an arbitrary
branch only for the duration of an ``evaluate`` call.

This module provides the mutable tree structure those algorithms need:

* node/edge bookkeeping with stable integer ids (CLA buffers in the
  likelihood engine are keyed by node id and survive topology moves),
* the moves used by tree search — leaf insertion for stepwise addition,
  SPR (subtree pruning and regrafting) with exact undo, and NNI,
* Newick round-tripping, bipartition extraction, and Robinson–Foulds
  distances for verifying topology recovery in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from .newick import NewickNode, format_newick, parse_newick

__all__ = ["Edge", "Tree", "PruneRecord", "random_topology"]

DEFAULT_BRANCH_LENGTH = 0.1
MIN_BRANCH_LENGTH = 1e-8
MAX_BRANCH_LENGTH = 50.0


@dataclass
class Edge:
    """Undirected branch between nodes ``u`` and ``v`` with a length."""

    id: int
    u: int
    v: int
    length: float

    def other(self, node: int) -> int:
        """The endpoint that is not ``node``."""
        if node == self.u:
            return self.v
        if node == self.v:
            return self.u
        raise ValueError(f"node {node} not on edge {self.id}")


@dataclass
class PruneRecord:
    """Undo information returned by :meth:`Tree.prune_subtree`."""

    subtree_root: int
    attach_x: int
    attach_y: int
    merged_edge: int
    len_x: float
    len_y: float
    pendant_length: float


class Tree:
    """Mutable unrooted tree over named leaves.

    Nodes are integers; leaves carry a name, internal nodes do not.  Node
    and edge ids are never reused within a tree's lifetime, so external
    caches keyed by them (conditional likelihood arrays, parsimony state
    sets) can be invalidated precisely rather than wholesale.
    """

    def __init__(self) -> None:
        self._names: dict[int, str | None] = {}
        self._adj: dict[int, list[int]] = {}
        self._edges: dict[int, Edge] = {}
        self._next_node = 0
        self._next_edge = 0

    # ------------------------------------------------------------------
    # construction primitives
    # ------------------------------------------------------------------
    def add_node(self, name: str | None = None) -> int:
        """Create a new isolated node; returns its id."""
        nid = self._next_node
        self._next_node += 1
        self._names[nid] = name
        self._adj[nid] = []
        return nid

    def add_edge(self, u: int, v: int, length: float = DEFAULT_BRANCH_LENGTH) -> int:
        """Connect two existing nodes; returns the new edge id."""
        if u not in self._adj or v not in self._adj:
            raise KeyError(f"unknown node in edge ({u}, {v})")
        if u == v:
            raise ValueError("self-loop edges are not allowed")
        eid = self._next_edge
        self._next_edge += 1
        self._edges[eid] = Edge(eid, u, v, float(length))
        self._adj[u].append(eid)
        self._adj[v].append(eid)
        return eid

    def remove_edge(self, eid: int) -> Edge:
        """Detach and return an edge (endpoints remain)."""
        edge = self._edges.pop(eid)
        self._adj[edge.u].remove(eid)
        self._adj[edge.v].remove(eid)
        return edge

    def remove_node(self, nid: int) -> None:
        """Delete an isolated node."""
        if self._adj[nid]:
            raise ValueError(f"node {nid} still has incident edges")
        del self._adj[nid]
        del self._names[nid]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> list[int]:
        return list(self._adj)

    @property
    def edges(self) -> list[Edge]:
        return list(self._edges.values())

    @property
    def edge_ids(self) -> list[int]:
        return list(self._edges)

    def edge(self, eid: int) -> Edge:
        return self._edges[eid]

    def has_edge(self, eid: int) -> bool:
        return eid in self._edges

    def name(self, nid: int) -> str | None:
        return self._names[nid]

    def is_leaf(self, nid: int) -> bool:
        return self._names[nid] is not None

    def degree(self, nid: int) -> int:
        return len(self._adj[nid])

    def leaves(self) -> list[int]:
        return [n for n, name in self._names.items() if name is not None]

    def internal_nodes(self) -> list[int]:
        return [n for n, name in self._names.items() if name is None]

    @property
    def n_leaves(self) -> int:
        return sum(1 for name in self._names.values() if name is not None)

    def leaf_names(self) -> list[str]:
        return [self._names[n] for n in self.leaves()]  # type: ignore[misc]

    def node_by_name(self, name: str) -> int:
        for nid, nm in self._names.items():
            if nm == name:
                return nid
        raise KeyError(f"no leaf named {name!r}")

    def incident_edges(self, nid: int) -> list[int]:
        return list(self._adj[nid])

    def neighbors(self, nid: int) -> list[tuple[int, int]]:
        """``(neighbor_node, edge_id)`` pairs around a node."""
        return [(self._edges[e].other(nid), e) for e in self._adj[nid]]

    def find_edge(self, u: int, v: int) -> int:
        """Edge id between two adjacent nodes."""
        for e in self._adj[u]:
            if self._edges[e].other(u) == v:
                return e
        raise KeyError(f"nodes {u} and {v} are not adjacent")

    def check(self) -> None:
        """Assert unrooted-binary invariants (used liberally in tests)."""
        for nid in self._adj:
            deg = self.degree(nid)
            if self.is_leaf(nid):
                if deg != 1:
                    raise AssertionError(f"leaf {nid} has degree {deg}")
            elif deg != 3:
                raise AssertionError(f"internal node {nid} has degree {deg}")
        n = self.n_leaves
        if n >= 3 and len(self._edges) != 2 * n - 3:
            raise AssertionError(
                f"{n} leaves but {len(self._edges)} edges (expected {2 * n - 3})"
            )
        # connectivity
        if self._adj:
            seen = set()
            stack = [next(iter(self._adj))]
            while stack:
                u = stack.pop()
                if u in seen:
                    continue
                seen.add(u)
                stack.extend(v for v, _ in self.neighbors(u))
            if len(seen) != len(self._adj):
                raise AssertionError("tree is disconnected")

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def dfs_from(self, start: int, blocked_edge: int | None = None) -> Iterator[int]:
        """Nodes reachable from ``start`` without crossing ``blocked_edge``."""
        seen = {start}
        stack = [start]
        while stack:
            u = stack.pop()
            yield u
            for eid in self._adj[u]:
                if eid == blocked_edge:
                    continue
                v = self._edges[eid].other(u)
                if v not in seen:
                    seen.add(v)
                    stack.append(v)

    def subtree_leaves(self, node: int, blocked_edge: int) -> list[int]:
        """Leaves on ``node``'s side of ``blocked_edge``."""
        return [n for n in self.dfs_from(node, blocked_edge) if self.is_leaf(n)]

    def postorder(self, root_edge: int) -> list[tuple[int, int, int]]:
        """Directed post-order below a virtual root placed on ``root_edge``.

        Returns ``(node, parent, edge_to_parent)`` triples such that every
        node appears after all nodes in its subtree.  Both endpoints of
        the root edge appear (with each other as parent), which is the
        traversal order ``newview`` needs to make the two root CLAs valid.
        """
        edge = self._edges[root_edge]
        out: list[tuple[int, int, int]] = []
        for start, parent in ((edge.u, edge.v), (edge.v, edge.u)):
            out.extend(self._postorder_side(start, parent, root_edge))
        return out

    def _postorder_side(
        self, node: int, parent: int, up_edge: int
    ) -> list[tuple[int, int, int]]:
        out: list[tuple[int, int, int]] = []
        for eid in self._adj[node]:
            if eid == up_edge:
                continue
            child = self._edges[eid].other(node)
            out.extend(self._postorder_side(child, node, eid))
        out.append((node, parent, up_edge))
        return out

    def children(self, node: int, up_edge: int) -> list[tuple[int, int]]:
        """``(child, edge)`` pairs of a node viewed from ``up_edge``."""
        return [
            (self._edges[e].other(node), e) for e in self._adj[node] if e != up_edge
        ]

    def path_edges(self, u: int, v: int) -> list[int]:
        """Edge ids along the unique path between two nodes."""
        parent: dict[int, tuple[int, int]] = {u: (-1, -1)}
        stack = [u]
        while stack:
            x = stack.pop()
            if x == v:
                break
            for y, eid in self.neighbors(x):
                if y not in parent:
                    parent[y] = (x, eid)
                    stack.append(y)
        if v not in parent:
            raise KeyError(f"no path from {u} to {v}")
        path = []
        x = v
        while x != u:
            px, eid = parent[x]
            path.append(eid)
            x = px
        path.reverse()
        return path

    def edges_within_radius(self, eid: int, radius: int) -> list[int]:
        """Edges whose node-distance from ``eid`` is at most ``radius``.

        Distance is counted in intervening nodes; the edge itself is
        excluded.  Used to bound SPR regraft candidates (the paper's
        rearrangement radius).
        """
        edge = self._edges[eid]
        found: set[int] = set()
        frontier = [(edge.u, 0), (edge.v, 0)]
        seen_nodes = {edge.u, edge.v}
        while frontier:
            node, dist = frontier.pop()
            if dist >= radius:
                continue
            for nbr, e2 in self.neighbors(node):
                if e2 == eid:
                    continue
                found.add(e2)
                if nbr not in seen_nodes:
                    seen_nodes.add(nbr)
                    frontier.append((nbr, dist + 1))
        return sorted(found)

    # ------------------------------------------------------------------
    # topology moves
    # ------------------------------------------------------------------
    def split_edge(self, eid: int, fraction: float = 0.5) -> int:
        """Insert a degree-2 node on an edge; returns the new node.

        The original edge is removed and replaced by two edges whose
        lengths sum to the original length (``fraction`` toward ``u``).
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction {fraction} outside [0, 1]")
        edge = self.remove_edge(eid)
        mid = self.add_node()
        self.add_edge(edge.u, mid, max(edge.length * fraction, MIN_BRANCH_LENGTH))
        self.add_edge(mid, edge.v, max(edge.length * (1 - fraction), MIN_BRANCH_LENGTH))
        return mid

    def suppress_node(self, nid: int) -> int:
        """Remove a degree-2 node, merging its two edges; returns new edge id."""
        if self.degree(nid) != 2:
            raise ValueError(f"node {nid} has degree {self.degree(nid)}, not 2")
        e1, e2 = self._adj[nid]
        a = self._edges[e1].other(nid)
        b = self._edges[e2].other(nid)
        total = self._edges[e1].length + self._edges[e2].length
        self.remove_edge(e1)
        self.remove_edge(e2)
        self.remove_node(nid)
        return self.add_edge(a, b, total)

    def attach_leaf(
        self,
        eid: int,
        name: str,
        pendant_length: float = DEFAULT_BRANCH_LENGTH,
        fraction: float = 0.5,
    ) -> tuple[int, int, int]:
        """Insert a new leaf onto an edge (stepwise addition step).

        Returns ``(leaf_id, junction_id, pendant_edge_id)``.
        """
        mid = self.split_edge(eid, fraction)
        leaf = self.add_node(name)
        pend = self.add_edge(mid, leaf, pendant_length)
        return leaf, mid, pend

    def _prune_sides(
        self, pendant_edge: int, subtree_root: int | None
    ) -> tuple[int, int]:
        """Resolve ``(attachment_node, subtree_root)`` for a prune.

        When both endpoints are internal the move is directional and the
        caller must disambiguate via ``subtree_root``.
        """
        edge = self._edges[pendant_edge]
        if subtree_root is not None:
            a = edge.other(subtree_root)
            if self.is_leaf(a) or self.degree(a) != 3:
                raise ValueError(
                    f"attachment node {a} of edge {pendant_edge} is not an "
                    "internal degree-3 node"
                )
            return a, subtree_root
        candidates = [
            (a, s)
            for a, s in ((edge.u, edge.v), (edge.v, edge.u))
            if not self.is_leaf(a) and self.degree(a) == 3
        ]
        if not candidates:
            raise ValueError(f"edge {pendant_edge} has no prunable attachment node")
        if len(candidates) == 2:
            raise ValueError(
                f"edge {pendant_edge} is internal-internal; pass subtree_root "
                "to pick the prune direction"
            )
        return candidates[0]

    def prune_subtree(
        self, pendant_edge: int, subtree_root: int | None = None
    ) -> PruneRecord:
        """Detach the subtree hanging off ``pendant_edge`` (SPR phase 1).

        ``pendant_edge`` must connect a degree-3 attachment node ``a`` to
        the subtree root ``s``; after pruning, ``a`` is suppressed and its
        other two edges are merged.  The detached subtree (rooted at
        ``s``) keeps all its internal structure.
        """
        edge = self._edges[pendant_edge]
        a, s = self._prune_sides(pendant_edge, subtree_root)
        pendant_length = edge.length
        self.remove_edge(pendant_edge)
        other = self._adj[a]
        x = self._edges[other[0]].other(a)
        y = self._edges[other[1]].other(a)
        len_x = self._edges[other[0]].length
        len_y = self._edges[other[1]].length
        merged = self.suppress_node(a)
        return PruneRecord(
            subtree_root=s,
            attach_x=x,
            attach_y=y,
            merged_edge=merged,
            len_x=len_x,
            len_y=len_y,
            pendant_length=pendant_length,
        )

    def regraft(
        self,
        subtree_root: int,
        target_edge: int,
        pendant_length: float = DEFAULT_BRANCH_LENGTH,
        fraction: float = 0.5,
    ) -> tuple[int, int]:
        """Attach a detached subtree onto ``target_edge`` (SPR phase 2).

        Returns ``(junction_id, pendant_edge_id)``.
        """
        mid = self.split_edge(target_edge, fraction)
        pend = self.add_edge(mid, subtree_root, pendant_length)
        return mid, pend

    def spr(
        self, pendant_edge: int, target_edge: int, subtree_root: int | None = None
    ) -> tuple[int, Callable[[], None]]:
        """Perform an SPR move; returns ``(new_pendant_edge, undo)``.

        ``undo`` restores the exact previous topology and branch lengths.
        ``target_edge`` must survive the prune (i.e. not be one of the two
        edges merged away at the old attachment point).
        """
        rec = self.prune_subtree(pendant_edge, subtree_root)
        if not self.has_edge(target_edge):
            raise ValueError(
                "target edge was consumed by the prune; choose an edge outside "
                "the immediate neighborhood of the pruned attachment node"
            )
        mid, pend = self.regraft(rec.subtree_root, target_edge, rec.pendant_length)

        def undo() -> None:
            rec2 = self.prune_subtree(pend, rec.subtree_root)
            # Re-split the merged edge between x and y at original lengths.
            merged = self.find_edge(rec.attach_x, rec.attach_y)
            frac = rec.len_x / (rec.len_x + rec.len_y)
            mid2 = self.split_edge(merged, frac)
            self.add_edge(mid2, rec2.subtree_root, rec.pendant_length)

        return pend, undo

    def spr_candidates(
        self, pendant_edge: int, radius: int, subtree_root: int | None = None
    ) -> list[int]:
        """Valid regraft target edges for an SPR of ``pendant_edge``.

        Excludes edges inside the pruned subtree and the edges adjacent to
        the attachment node (regrafting there reproduces the original
        topology).  ``radius`` bounds the distance from the original
        attachment point, as in RAxML's rearrangement radius.
        """
        try:
            a, s = self._prune_sides(pendant_edge, subtree_root)
        except ValueError:
            return []
        subtree_nodes = set(self.dfs_from(s, pendant_edge))
        banned = set(self._adj[a])
        nearby = self.edges_within_radius(pendant_edge, radius + 1)
        out = []
        for eid in nearby:
            if eid in banned or eid == pendant_edge:
                continue
            e = self._edges[eid]
            if e.u in subtree_nodes or e.v in subtree_nodes:
                continue
            out.append(eid)
        return out

    def nni_swap(self, internal_edge: int, which: int = 0) -> Callable[[], None]:
        """Nearest-neighbour interchange across an internal edge.

        Swaps one of the two subtrees on ``u``'s side with one on ``v``'s
        side (``which`` selects which of ``v``'s subtrees).  Returns an
        undo callable.
        """
        edge = self._edges[internal_edge]
        u, v = edge.u, edge.v
        if self.is_leaf(u) or self.is_leaf(v):
            raise ValueError("NNI requires an internal edge")
        eu = [e for e in self._adj[u] if e != internal_edge][0]
        ev = [e for e in self._adj[v] if e != internal_edge][which]
        a = self._edges[eu].other(u)
        b = self._edges[ev].other(v)
        len_a = self._edges[eu].length
        len_b = self._edges[ev].length
        self.remove_edge(eu)
        self.remove_edge(ev)
        new_ub = self.add_edge(u, b, len_b)
        new_va = self.add_edge(v, a, len_a)

        def undo() -> None:
            self.remove_edge(new_ub)
            self.remove_edge(new_va)
            self.add_edge(u, a, len_a)
            self.add_edge(v, b, len_b)

        return undo

    # ------------------------------------------------------------------
    # bipartitions / distances
    # ------------------------------------------------------------------
    def splits(self) -> set[frozenset[str]]:
        """Non-trivial bipartitions, each as the smaller-side name set.

        Each internal edge splits the taxa in two; we canonicalise by the
        lexicographically-smallest representation of the side not
        containing the overall first leaf name.
        """
        all_names = frozenset(self.leaf_names())
        out: set[frozenset[str]] = set()
        for e in self.edges:
            if self.is_leaf(e.u) or self.is_leaf(e.v):
                continue
            side = frozenset(
                self._names[n]  # type: ignore[misc]
                for n in self.subtree_leaves(e.u, e.id)
            )
            canon = min(side, all_names - side, key=lambda s: sorted(s))
            out.add(canon)
        return out

    def robinson_foulds(self, other: "Tree") -> int:
        """Unnormalised RF distance (symmetric difference of splits)."""
        if set(self.leaf_names()) != set(other.leaf_names()):
            raise ValueError("trees have different taxon sets")
        a, b = self.splits(), other.splits()
        return len(a ^ b)

    def total_branch_length(self) -> float:
        return float(sum(e.length for e in self.edges))

    # ------------------------------------------------------------------
    # copying / Newick
    # ------------------------------------------------------------------
    def copy(self) -> "Tree":
        """Deep copy preserving node and edge ids."""
        t = Tree()
        t._names = dict(self._names)
        t._adj = {n: list(es) for n, es in self._adj.items()}
        t._edges = {e.id: Edge(e.id, e.u, e.v, e.length) for e in self.edges}
        t._next_node = self._next_node
        t._next_edge = self._next_edge
        return t

    def to_state(self) -> dict:
        """Exact structural dump: ids, adjacency order, id counters.

        Unlike Newick, this representation is *faithful*: node/edge ids,
        per-node adjacency-list order, dict iteration order, and the id
        counters all survive a round trip (JSON floats round-trip
        exactly in Python).  A tree restored via :meth:`from_state` is
        indistinguishable from the original to any traversal or
        enumeration — the property crash-safe checkpoints need so a
        resumed search replays the *identical* floating-point trajectory
        of an uninterrupted one.
        """
        return {
            "names": [[nid, name] for nid, name in self._names.items()],
            "adj": [[nid, list(eids)] for nid, eids in self._adj.items()],
            "edges": [
                [e.id, e.u, e.v, e.length] for e in self._edges.values()
            ],
            "next_node": self._next_node,
            "next_edge": self._next_edge,
        }

    @classmethod
    def from_state(cls, state: dict) -> "Tree":
        """Rebuild a tree from :meth:`to_state` output, exactly."""
        try:
            t = cls()
            t._names = {int(nid): name for nid, name in state["names"]}
            t._adj = {
                int(nid): [int(e) for e in eids] for nid, eids in state["adj"]
            }
            t._edges = {
                int(e[0]): Edge(int(e[0]), int(e[1]), int(e[2]), float(e[3]))
                for e in state["edges"]
            }
            t._next_node = int(state["next_node"])
            t._next_edge = int(state["next_edge"])
        except (KeyError, TypeError, ValueError, IndexError) as exc:
            raise ValueError(f"malformed tree state: {exc}") from exc
        for eid, edge in t._edges.items():
            if edge.u not in t._adj or edge.v not in t._adj:
                raise ValueError(
                    f"tree state edge {eid} references unknown node"
                )
            if eid not in t._adj[edge.u] or eid not in t._adj[edge.v]:
                raise ValueError(f"tree state adjacency missing edge {eid}")
        return t

    def to_newick(self, precision: int = 6) -> str:
        """Serialise as unrooted Newick (trifurcation at an internal node)."""
        internals = self.internal_nodes()
        if not internals:
            # 1- or 2-leaf degenerate trees
            leaves = self.leaves()
            if len(leaves) == 1:
                return f"{self._names[leaves[0]]};"
            e = self.edges[0]
            root = NewickNode(
                children=[
                    NewickNode(label=self._names[e.u], length=e.length / 2),
                    NewickNode(label=self._names[e.v], length=e.length / 2),
                ]
            )
            return format_newick(root, precision=precision)
        root_node = internals[0]

        def build(node: int, up_edge: int | None) -> NewickNode:
            length = None if up_edge is None else self._edges[up_edge].length
            if self.is_leaf(node):
                return NewickNode(label=self._names[node], length=length)
            nn = NewickNode(length=length)
            for eid in self._adj[node]:
                if eid == up_edge:
                    continue
                nn.children.append(build(self._edges[eid].other(node), eid))
            return nn

        return format_newick(build(root_node, None), precision=precision)

    @classmethod
    def from_newick(cls, text: str) -> "Tree":
        """Parse Newick text, unrooting a rooted (2-child) tree if needed."""
        root = parse_newick(text)
        t = cls()

        def build(nn: NewickNode) -> int:
            if nn.is_leaf:
                return t.add_node(nn.label)
            node = t.add_node()
            for child in nn.children:
                cid = build(child)
                t.add_edge(
                    node, cid, child.length if child.length is not None else DEFAULT_BRANCH_LENGTH
                )
            return node

        root_id = build(root)
        # A rooted binary tree yields a degree-2 root: suppress it.
        if not t.is_leaf(root_id) and t.degree(root_id) == 2:
            t.suppress_node(root_id)
        return t

    def __repr__(self) -> str:
        return f"Tree(n_leaves={self.n_leaves}, n_edges={len(self._edges)})"


def random_topology(
    names: list[str],
    rng: np.random.Generator,
    branch_length: float | tuple[float, float] = (0.02, 0.4),
) -> Tree:
    """Random unrooted binary topology by sequential random attachment.

    ``branch_length`` is either a constant or a ``(low, high)`` uniform
    range sampled per branch.  Matches how the paper's simulated test
    trees are produced (INDELible draws a random guide tree).
    """
    if len(names) < 2:
        raise ValueError("need at least 2 taxa")

    def draw() -> float:
        if isinstance(branch_length, tuple):
            return float(rng.uniform(*branch_length))
        return float(branch_length)

    t = Tree()
    order = list(names)
    idx = rng.permutation(len(order))
    order = [order[i] for i in idx]
    a = t.add_node(order[0])
    b = t.add_node(order[1])
    t.add_edge(a, b, draw())
    for name in order[2:]:
        eid = int(rng.choice(t.edge_ids))
        t.attach_leaf(eid, name, pendant_length=draw(), fraction=float(rng.uniform(0.2, 0.8)))
    for e in t.edges:
        e.length = draw()
    return t
