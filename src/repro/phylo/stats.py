"""Alignment summary statistics.

Descriptive statistics practitioners check before an analysis (and the
``repro stats`` CLI surface): composition, gap/ambiguity content,
constant and parsimony-informative site counts, and mean pairwise
identity.  Nothing here affects inference; everything is reused by tests
as independent cross-checks of the simulator (e.g. composition
approaching the generating model's stationary frequencies).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .alignment import Alignment, PatternAlignment

__all__ = ["AlignmentStats", "alignment_stats"]


@dataclass(frozen=True)
class AlignmentStats:
    """Summary statistics of one alignment."""

    n_taxa: int
    n_sites: int
    n_patterns: int
    base_composition: dict[str, float]  # unambiguous characters only
    gap_fraction: float  # fully ambiguous characters (gaps, N, ...)
    constant_fraction: float
    informative_fraction: float  # parsimony-informative sites
    mean_pairwise_identity: float

    def summary(self) -> str:
        """Multi-line human-readable rendering."""
        comp = " ".join(f"{b}={f:.3f}" for b, f in self.base_composition.items())
        return "\n".join(
            [
                f"taxa:                  {self.n_taxa}",
                f"sites:                 {self.n_sites}",
                f"patterns:              {self.n_patterns}",
                f"composition:           {comp}",
                f"gap/ambiguous:         {self.gap_fraction:.4f}",
                f"constant sites:        {self.constant_fraction:.4f}",
                f"parsimony-informative: {self.informative_fraction:.4f}",
                f"mean pairwise identity:{self.mean_pairwise_identity: .4f}",
            ]
        )


def alignment_stats(alignment: Alignment | PatternAlignment) -> AlignmentStats:
    """Compute :class:`AlignmentStats` for a DNA alignment."""
    patterns = (
        alignment.compress() if isinstance(alignment, Alignment) else alignment
    )
    data = patterns.data
    w = patterns.weights
    total_chars = float(w.sum() * patterns.n_taxa)

    # composition over unambiguous characters
    comp = {}
    unambiguous = 0.0
    for ch, code in (("A", 1), ("C", 2), ("G", 4), ("T", 8)):
        count = float(((data == code) * w[None, :]).sum())
        comp[ch] = count
        unambiguous += count
    if unambiguous > 0:
        comp = {ch: c / unambiguous for ch, c in comp.items()}
    gap_fraction = 1.0 - unambiguous / total_chars

    # constant columns: some state compatible with every row
    mask = data[0].astype(np.uint64)
    for row in data[1:]:
        mask = mask & row.astype(np.uint64)
    constant = float(np.dot((mask != 0).astype(float), w)) / w.sum()

    # parsimony-informative: >= 2 states each present in >= 2 taxa
    informative = np.zeros(patterns.n_patterns, dtype=bool)
    counts = np.stack(
        [(data == code).sum(axis=0) for code in (1, 2, 4, 8)]
    )  # (4, patterns)
    informative = (counts >= 2).sum(axis=0) >= 2
    informative_fraction = float(np.dot(informative.astype(float), w)) / w.sum()

    # mean pairwise identity over resolved positions
    n = patterns.n_taxa
    resolved = np.isin(data, (1, 2, 4, 8))
    idents = []
    for i in range(n):
        for j in range(i + 1, n):
            both = resolved[i] & resolved[j]
            tot = float(np.dot(both, w))
            if tot == 0:
                continue
            same = float(np.dot(both & (data[i] == data[j]), w))
            idents.append(same / tot)
    mean_identity = float(np.mean(idents)) if idents else 1.0

    return AlignmentStats(
        n_taxa=patterns.n_taxa,
        n_sites=patterns.n_sites,
        n_patterns=patterns.n_patterns,
        base_composition=comp,
        gap_fraction=gap_fraction,
        constant_fraction=constant,
        informative_fraction=informative_fraction,
        mean_pairwise_identity=mean_identity,
    )
