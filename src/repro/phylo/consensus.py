"""Majority-rule consensus trees from tree sets (bootstrap summaries).

Given the replicate trees of a bootstrap analysis, the majority-rule
consensus contains exactly the bipartitions present in more than half
(or a stricter threshold) of the replicates — the standard way to
summarise bootstrap topological uncertainty (RAxML's ``-J MR``).

Compatible majority splits always form a tree, built here by greedy
insertion from the most to the least frequent split.
"""

from __future__ import annotations

import numpy as np

from .tree import Tree

__all__ = ["split_frequencies", "majority_rule_consensus"]


def split_frequencies(trees: list[Tree]) -> dict[frozenset[str], float]:
    """Fraction of input trees containing each non-trivial bipartition."""
    if not trees:
        raise ValueError("no input trees")
    taxa = set(trees[0].leaf_names())
    for t in trees[1:]:
        if set(t.leaf_names()) != taxa:
            raise ValueError("trees have different taxon sets")
    counts: dict[frozenset[str], int] = {}
    for t in trees:
        for split in t.splits():
            counts[split] = counts.get(split, 0) + 1
    return {s: c / len(trees) for s, c in counts.items()}


def _compatible(split: frozenset[str], accepted: list[frozenset[str]], taxa: frozenset[str]) -> bool:
    """Two splits are compatible iff one side-pair is nested or disjoint."""
    for other in accepted:
        a, b = split, other
        if a & b and a - b and b - a and (taxa - (a | b)):
            return False
    return True


def majority_rule_consensus(
    trees: list[Tree], threshold: float = 0.5
) -> tuple[Tree, dict[frozenset[str], float]]:
    """Build the majority-rule consensus tree.

    Returns ``(consensus_tree, split_support)`` where ``split_support``
    maps every split *in the consensus* to its frequency.  ``threshold``
    is the inclusion frequency (0.5 = strict majority; higher values
    give more conservative, less resolved trees).  Splits at exactly the
    threshold are excluded, and greedy frequency-ordered insertion keeps
    the accepted set compatible even at thresholds below 0.5.

    The consensus may be multifurcating; it is built as a star tree that
    gets refined by grouping each accepted split's taxa under a new
    internal node.
    """
    if not 0.0 <= threshold < 1.0:
        raise ValueError("threshold must be in [0, 1)")
    freqs = split_frequencies(trees)
    taxa = frozenset(trees[0].leaf_names())
    ordered = sorted(freqs.items(), key=lambda kv: (-kv[1], sorted(kv[0])))
    accepted: list[frozenset[str]] = []
    support: dict[frozenset[str], float] = {}
    for split, freq in ordered:
        if freq <= threshold:
            break
        if _compatible(split, accepted, taxa):
            accepted.append(split)
            support[split] = freq

    # star tree, refined split by split (largest splits first, so nested
    # splits always find their taxa already grouped under one node)
    tree = Tree()
    hub = tree.add_node()
    leaf_of: dict[str, int] = {}
    for name in sorted(taxa):
        leaf = tree.add_node(name)
        tree.add_edge(hub, leaf, 0.1)
        leaf_of[name] = leaf

    for split in sorted(accepted, key=len, reverse=True):
        # find the node currently holding all of the split's subtrees
        members = set(split)
        # the common attachment point: the neighbour-counted node whose
        # adjacent subtrees cover the member set
        attach = None
        for node in tree.internal_nodes():
            cover = []
            for nbr, eid in tree.neighbors(node):
                side = {tree.name(n) for n in tree.subtree_leaves(nbr, eid)}
                if side <= members:
                    cover.append(eid)
            covered = set()
            for eid in cover:
                e = tree.edge(eid)
                nbr = e.other(node)
                covered |= {tree.name(n) for n in tree.subtree_leaves(nbr, eid)}
            if covered == members:
                attach = (node, cover)
                break
        if attach is None:  # pragma: no cover - accepted splits are compatible
            continue
        node, cover = attach
        new = tree.add_node()
        for eid in cover:
            e = tree.edge(eid)
            other = e.other(node)
            length = e.length
            tree.remove_edge(eid)
            tree.add_edge(new, other, length)
        tree.add_edge(node, new, 0.1)

    return tree, support
