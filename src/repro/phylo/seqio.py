"""Sequence file I/O: FASTA and relaxed (RAxML-style) PHYLIP.

RAxML-Light and ExaML consume relaxed PHYLIP: a header line with the
taxon and site counts, then one ``name  sequence`` record per line (names
up to whitespace, no 10-character truncation).  The INDELible simulator
the paper uses emits both formats; we support both so the example
workloads round-trip through files like the original pipeline.
"""

from __future__ import annotations

import io
from pathlib import Path

from .alignment import Alignment
from .states import DNA, StateSpace

__all__ = [
    "read_fasta",
    "write_fasta",
    "read_phylip",
    "write_phylip",
    "read_alignment",
]


def _as_text(source: str | Path | io.TextIOBase) -> str:
    if isinstance(source, io.TextIOBase):
        return source.read()
    path = Path(source)
    return path.read_text()


def read_fasta(source: str | Path | io.TextIOBase, states: StateSpace = DNA) -> Alignment:
    """Parse a FASTA file (or handle, or path) into an :class:`Alignment`.

    Sequence lines may be wrapped; blank lines are ignored; the record
    name is the header up to the first whitespace.
    """
    text = _as_text(source)
    sequences: dict[str, list[str]] = {}
    name: str | None = None
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith(">"):
            name = line[1:].split()[0] if len(line) > 1 else ""
            if not name:
                raise ValueError("FASTA record with empty name")
            if name in sequences:
                raise ValueError(f"duplicate FASTA record {name!r}")
            sequences[name] = []
        else:
            if name is None:
                raise ValueError("FASTA sequence data before first header")
            sequences[name].append(line)
    if not sequences:
        raise ValueError("no FASTA records found")
    return Alignment.from_sequences(
        {n: "".join(parts) for n, parts in sequences.items()}, states
    )


def write_fasta(alignment: Alignment, path: str | Path, width: int = 80) -> None:
    """Write an alignment as wrapped FASTA."""
    with open(path, "w") as fh:
        for i, taxon in enumerate(alignment.taxa):
            fh.write(f">{taxon}\n")
            seq = alignment.states.decode(alignment.data[i])
            for start in range(0, len(seq), width):
                fh.write(seq[start : start + width] + "\n")


def read_phylip(source: str | Path | io.TextIOBase, states: StateSpace = DNA) -> Alignment:
    """Parse relaxed sequential PHYLIP (RAxML's input format).

    Interleaved PHYLIP is also accepted: after the first block, continuation
    lines (no names) are appended in taxon order.
    """
    text = _as_text(source)
    lines = [ln for ln in text.splitlines() if ln.strip()]
    if not lines:
        raise ValueError("empty PHYLIP input")
    header = lines[0].split()
    if len(header) < 2:
        raise ValueError(f"bad PHYLIP header: {lines[0]!r}")
    n_taxa, n_sites = int(header[0]), int(header[1])
    names: list[str] = []
    parts: dict[str, list[str]] = {}
    cursor = 0
    for ln in lines[1:]:
        fields = ln.split()
        if len(names) < n_taxa:
            name, seq = fields[0], "".join(fields[1:])
            if name in parts:
                raise ValueError(f"duplicate PHYLIP taxon {name!r}")
            names.append(name)
            parts[name] = [seq]
        else:
            # interleaved continuation block, cycling through taxa
            parts[names[cursor]].append("".join(fields))
            cursor = (cursor + 1) % n_taxa
    if len(names) != n_taxa:
        raise ValueError(f"PHYLIP header promises {n_taxa} taxa, found {len(names)}")
    sequences = {n: "".join(p) for n, p in parts.items()}
    for n, seq in sequences.items():
        if len(seq) != n_sites:
            raise ValueError(
                f"taxon {n!r} has {len(seq)} sites, header promises {n_sites}"
            )
    return Alignment.from_sequences(sequences, states)


def write_phylip(alignment: Alignment, path: str | Path) -> None:
    """Write relaxed sequential PHYLIP."""
    pad = max(len(t) for t in alignment.taxa) + 2
    with open(path, "w") as fh:
        fh.write(f"{alignment.n_taxa} {alignment.n_sites}\n")
        for i, taxon in enumerate(alignment.taxa):
            fh.write(f"{taxon:<{pad}}{alignment.states.decode(alignment.data[i])}\n")


def read_alignment(path: str | Path, states: StateSpace = DNA) -> Alignment:
    """Auto-detect FASTA vs PHYLIP by the first non-blank character."""
    text = Path(path).read_text()
    stripped = text.lstrip()
    if stripped.startswith(">"):
        return read_fasta(io.StringIO(text), states)
    return read_phylip(io.StringIO(text), states)
