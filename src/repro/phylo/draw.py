"""ASCII tree rendering for terminal output.

Small utility for inspecting inferred trees without leaving the
terminal: renders an unrooted tree (rooted for display at an internal
node) as an indented branch diagram with optional branch lengths and
per-split support values — the kind of quick look RAxML users get from
``nw_display``-style tools.
"""

from __future__ import annotations

from .tree import Tree

__all__ = ["ascii_tree"]


def ascii_tree(
    tree: Tree,
    show_lengths: bool = True,
    support: dict[frozenset[str], float] | None = None,
) -> str:
    """Render a tree as ASCII art, one leaf per line.

    ``support`` (as produced by
    :func:`repro.search.bootstrap.support_values`) annotates internal
    branches with percentage values.
    """
    if tree.n_leaves == 0:
        return "(empty tree)"
    if tree.n_leaves == 1:
        return tree.leaf_names()[0]
    internals = tree.internal_nodes()
    root = internals[0] if internals else tree.leaves()[0]
    all_names = frozenset(tree.leaf_names())
    lines: list[str] = []

    def branch_label(eid: int, node: int) -> str:
        parts = []
        if show_lengths:
            parts.append(f"{tree.edge(eid).length:.4f}")
        if support is not None and not tree.is_leaf(node):
            side = frozenset(
                tree.name(n) for n in tree.subtree_leaves(node, eid)
            )
            canon = min(side, all_names - side, key=lambda s: sorted(s))
            if canon in support:
                parts.append(f"[{support[canon] * 100:.0f}%]")
        return (" " + " ".join(parts)) if parts else ""

    def walk(node: int, up_edge: int | None, prefix: str, connector: str) -> None:
        label = "" if up_edge is None else branch_label(up_edge, node)
        children = [
            (tree.edge(e).other(node), e)
            for e in tree.incident_edges(node)
            if e != up_edge
        ]
        if not children:
            lines.append(f"{prefix}{connector}{tree.name(node)}{label}")
            return
        # Root may be a leaf on degenerate (2-leaf) trees: show its name.
        head = tree.name(node) or "+"
        lines.append(f"{prefix}{connector}{head}{label}")
        child_prefix = prefix + ("|  " if connector == "+--" else "   ")
        for i, (child, eid) in enumerate(children):
            last = i == len(children) - 1
            walk(child, eid, child_prefix, "`--" if last else "+--")

    walk(root, None, "", "")
    return "\n".join(lines)
