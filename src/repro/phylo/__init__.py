"""Phylogenetics substrate: alignments, trees, models, simulation.

This subpackage implements everything the paper's likelihood kernels sit
on top of — state encodings, alignment containers with site-pattern
compression, sequence I/O, unrooted trees with SPR/NNI moves, the GTR
model family with its eigensystem, discrete-Gamma/CAT rate
heterogeneity, an INDELible-equivalent sequence simulator, and Fitch
parsimony for starting trees.
"""

from .alignment import Alignment, PatternAlignment, compress_patterns
from .consensus import majority_rule_consensus, split_frequencies
from .distance import jc_distance, k2p_distance, neighbor_joining, p_distance
from .draw import ascii_tree
from .stats import AlignmentStats, alignment_stats
from .models import (
    DNA_RATE_ORDER,
    EigenSystem,
    SubstitutionModel,
    gtr,
    hky85,
    jc69,
    k80,
    poisson_protein,
)
from .newick import NewickError, NewickNode, format_newick, parse_newick
from .parsimony import fitch_score, stepwise_addition_tree
from .protein_models import load_paml_matrix, save_paml_matrix
from .rates import CatRates, GammaRates, discrete_gamma_rates
from .seqio import read_alignment, read_fasta, read_phylip, write_fasta, write_phylip
from .simulate import SimulationResult, simulate_alignment, simulate_dataset
from .states import DNA, PROTEIN, StateSpace
from .tree import Edge, PruneRecord, Tree, random_topology

__all__ = [
    "Alignment",
    "PatternAlignment",
    "compress_patterns",
    "majority_rule_consensus",
    "split_frequencies",
    "jc_distance",
    "k2p_distance",
    "neighbor_joining",
    "p_distance",
    "ascii_tree",
    "AlignmentStats",
    "alignment_stats",
    "DNA_RATE_ORDER",
    "EigenSystem",
    "SubstitutionModel",
    "gtr",
    "hky85",
    "jc69",
    "k80",
    "poisson_protein",
    "NewickError",
    "NewickNode",
    "format_newick",
    "parse_newick",
    "fitch_score",
    "stepwise_addition_tree",
    "load_paml_matrix",
    "save_paml_matrix",
    "CatRates",
    "GammaRates",
    "discrete_gamma_rates",
    "read_alignment",
    "read_fasta",
    "read_phylip",
    "write_fasta",
    "write_phylip",
    "SimulationResult",
    "simulate_alignment",
    "simulate_dataset",
    "DNA",
    "PROTEIN",
    "StateSpace",
    "Edge",
    "PruneRecord",
    "Tree",
    "random_topology",
]
