"""Time-reversible substitution models (GTR family) and their spectra.

All likelihood kernels in the paper assume the *general time-reversible*
(GTR) model class: the instantaneous rate matrix ``Q`` satisfies detailed
balance ``pi_i Q_ij = pi_j Q_ji``, which (a) makes the likelihood
independent of root placement (the pulley principle the ``evaluate``
kernel relies on) and (b) lets ``Q`` be symmetrised by ``diag(sqrt(pi))``
so its eigendecomposition is real and numerically stable.

The decomposition ``Q = U diag(lambda) U^-1`` is *the* data structure of
the PLF: transition matrices are ``P(t) = U diag(exp(lambda t)) U^-1``
and the branch-length derivative kernels (``derivativeSum`` /
``derivativeCore``) work directly in the eigenbasis, where
``d/dt exp(lambda t)`` is diagonal.

Rates are normalised so one unit of branch length equals one expected
substitution per site, the convention used by RAxML/ExaML.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "EigenSystem",
    "SubstitutionModel",
    "jc69",
    "k80",
    "hky85",
    "gtr",
    "poisson_protein",
    "DNA_RATE_ORDER",
]

# RAxML's ordering of the six DNA exchangeability parameters.
DNA_RATE_ORDER = ("AC", "AG", "AT", "CG", "CT", "GT")


@dataclass(frozen=True)
class EigenSystem:
    """Spectral decomposition ``Q = U diag(eigenvalues) U_inv``.

    ``inv_right`` is ``U_inv`` pre-multiplied into nothing — kernels use
    both factors separately: ``newview`` applies full ``P(t)`` matrices,
    while the derivative kernels project CLAs onto the eigenbasis once
    and then evaluate all Newton–Raphson iterations with diagonal
    exponentials only (the computational trick behind the paper's
    ``derivativeSum`` pre-computation).
    """

    eigenvalues: np.ndarray  # (n_states,)
    u: np.ndarray  # (n_states, n_states) right eigenvectors as columns
    u_inv: np.ndarray  # (n_states, n_states)

    def transition_matrix(self, t: float) -> np.ndarray:
        """``P(t) = U diag(exp(lambda t)) U^-1`` for branch length ``t >= 0``."""
        if t < 0:
            raise ValueError(f"negative branch length {t}")
        return (self.u * np.exp(self.eigenvalues * t)) @ self.u_inv

    def transition_matrices(self, ts: np.ndarray) -> np.ndarray:
        """Batched ``P(t)`` for an array of branch lengths, ``(len(ts), s, s)``."""
        ts = np.asarray(ts, dtype=np.float64)
        expo = np.exp(np.multiply.outer(ts, self.eigenvalues))  # (k, s)
        return np.einsum("ij,kj,jl->kil", self.u, expo, self.u_inv)


@dataclass(frozen=True)
class SubstitutionModel:
    """A reversible substitution model: exchangeabilities + frequencies.

    Parameters
    ----------
    name:
        Display name (``"GTR"``, ``"JC69"``...).
    exchangeabilities:
        Upper-triangle symmetric rate multipliers, length
        ``n(n-1)/2`` in row-major upper-triangle order (for DNA:
        AC, AG, AT, CG, CT, GT — :data:`DNA_RATE_ORDER`).
    frequencies:
        Stationary state frequencies ``pi`` (positive, sum to 1).
    """

    name: str
    exchangeabilities: np.ndarray
    frequencies: np.ndarray

    def __post_init__(self) -> None:
        ex = np.asarray(self.exchangeabilities, dtype=np.float64)
        pi = np.asarray(self.frequencies, dtype=np.float64)
        n = pi.shape[0]
        if ex.shape != (n * (n - 1) // 2,):
            raise ValueError(
                f"expected {n * (n - 1) // 2} exchangeabilities for {n} states, "
                f"got {ex.shape}"
            )
        if np.any(ex <= 0):
            raise ValueError("exchangeabilities must be positive")
        if np.any(pi <= 0):
            raise ValueError("frequencies must be positive")
        if not np.isclose(pi.sum(), 1.0, atol=1e-8):
            raise ValueError(f"frequencies sum to {pi.sum()}, not 1")
        object.__setattr__(self, "exchangeabilities", ex)
        object.__setattr__(self, "frequencies", pi)

    @property
    def n_states(self) -> int:
        return self.frequencies.shape[0]

    def rate_matrix(self) -> np.ndarray:
        """Normalised GTR rate matrix ``Q`` (rows sum to zero).

        ``Q_ij = s_ij * pi_j`` for ``i != j``, scaled so the expected
        substitution rate ``-sum_i pi_i Q_ii`` equals 1.
        """
        n = self.n_states
        q = np.zeros((n, n), dtype=np.float64)
        iu = np.triu_indices(n, k=1)
        q[iu] = self.exchangeabilities
        q = q + q.T
        q *= self.frequencies[None, :]
        np.fill_diagonal(q, 0.0)
        np.fill_diagonal(q, -q.sum(axis=1))
        mean_rate = -float(np.dot(self.frequencies, np.diag(q)))
        return q / mean_rate

    def eigen(self) -> EigenSystem:
        """Real eigendecomposition via pi-symmetrisation.

        ``B = D^{1/2} Q D^{-1/2}`` with ``D = diag(pi)`` is symmetric for
        reversible ``Q``; ``eigh(B)`` then gives orthonormal ``W`` and the
        (real) spectrum, from which ``U = D^{-1/2} W`` and
        ``U^{-1} = W^T D^{1/2}``.
        """
        q = self.rate_matrix()
        sqrt_pi = np.sqrt(self.frequencies)
        b = (sqrt_pi[:, None] * q) / sqrt_pi[None, :]
        lam, w = np.linalg.eigh((b + b.T) / 2.0)
        u = w / sqrt_pi[:, None]
        u_inv = w.T * sqrt_pi[None, :]
        return EigenSystem(eigenvalues=lam, u=u, u_inv=u_inv)

    def with_parameters(
        self,
        exchangeabilities: np.ndarray | None = None,
        frequencies: np.ndarray | None = None,
    ) -> "SubstitutionModel":
        """Copy with some parameters replaced (used by model optimisation)."""
        return SubstitutionModel(
            name=self.name,
            exchangeabilities=(
                self.exchangeabilities if exchangeabilities is None else exchangeabilities
            ),
            frequencies=self.frequencies if frequencies is None else frequencies,
        )


def jc69() -> SubstitutionModel:
    """Jukes–Cantor 1969: equal rates, equal frequencies."""
    return SubstitutionModel("JC69", np.ones(6), np.full(4, 0.25))


def k80(kappa: float = 2.0) -> SubstitutionModel:
    """Kimura 1980: transition/transversion ratio ``kappa``, equal freqs."""
    ex = np.array([1.0, kappa, 1.0, 1.0, kappa, 1.0])
    return SubstitutionModel("K80", ex, np.full(4, 0.25))


def hky85(kappa: float = 2.0, frequencies: np.ndarray | None = None) -> SubstitutionModel:
    """Hasegawa–Kishino–Yano 1985: ``kappa`` plus free base frequencies."""
    if frequencies is None:
        frequencies = np.full(4, 0.25)
    ex = np.array([1.0, kappa, 1.0, 1.0, kappa, 1.0])
    return SubstitutionModel("HKY85", ex, np.asarray(frequencies, dtype=np.float64))


def gtr(
    exchangeabilities: np.ndarray | None = None,
    frequencies: np.ndarray | None = None,
) -> SubstitutionModel:
    """General time-reversible DNA model (the paper's model)."""
    if exchangeabilities is None:
        exchangeabilities = np.ones(6)
    if frequencies is None:
        frequencies = np.full(4, 0.25)
    return SubstitutionModel(
        "GTR",
        np.asarray(exchangeabilities, dtype=np.float64),
        np.asarray(frequencies, dtype=np.float64),
    )


def poisson_protein(frequencies: np.ndarray | None = None) -> SubstitutionModel:
    """Poisson (equal-exchangeability) 20-state protein model.

    Protein support is one of the paper's stated future-work extensions
    (Sec. VII); the kernels are state-count generic, so this model
    exercises the 20-state code paths.
    """
    if frequencies is None:
        frequencies = np.full(20, 0.05)
    return SubstitutionModel(
        "PoissonAA", np.ones(190), np.asarray(frequencies, dtype=np.float64)
    )
