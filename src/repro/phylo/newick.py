"""Newick tree text format: tokenizer, parser, and writer.

The parser produces a lightweight nested structure (:class:`NewickNode`)
that :mod:`repro.phylo.tree` converts into its edge-list representation.
Supported syntax: arbitrary multifurcations, branch lengths (``:0.12``),
quoted labels (``'name with spaces'``), internal-node labels (kept but
unused by the likelihood code), and comments in square brackets (ignored,
as in most phylogenetics tools).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["NewickNode", "parse_newick", "format_newick", "NewickError"]


class NewickError(ValueError):
    """Raised on malformed Newick input."""


@dataclass
class NewickNode:
    """One node of a parsed Newick tree.

    ``length`` is the length of the branch *above* this node (toward the
    parent); it is ``None`` for the root or when absent in the input.
    """

    label: str | None = None
    length: float | None = None
    children: list["NewickNode"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def leaves(self) -> list["NewickNode"]:
        """All leaf descendants, left-to-right."""
        if self.is_leaf:
            return [self]
        out: list[NewickNode] = []
        for child in self.children:
            out.extend(child.leaves())
        return out


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
        elif ch == "[":  # comment — skip to matching bracket
            end = text.find("]", i)
            if end < 0:
                raise NewickError("unterminated [comment]")
            i = end + 1
        elif ch in "(),:;":
            tokens.append(ch)
            i += 1
        elif ch == "'":
            end = i + 1
            while end < n and text[end] != "'":
                end += 1
            if end >= n:
                raise NewickError("unterminated quoted label")
            tokens.append(text[i + 1 : end])
            i = end + 1
        else:
            end = i
            while end < n and text[end] not in "(),:;[" and not text[end].isspace():
                end += 1
            tokens.append(text[i:end])
            i = end
    return tokens


def parse_newick(text: str) -> NewickNode:
    """Parse a single Newick tree string into a :class:`NewickNode` root."""
    tokens = _tokenize(text)
    if not tokens:
        raise NewickError("empty Newick input")
    pos = 0

    def peek() -> str | None:
        return tokens[pos] if pos < len(tokens) else None

    def take() -> str:
        nonlocal pos
        if pos >= len(tokens):
            raise NewickError("unexpected end of Newick input")
        tok = tokens[pos]
        pos += 1
        return tok

    def parse_node() -> NewickNode:
        node = NewickNode()
        if peek() == "(":
            take()
            node.children.append(parse_node())
            while peek() == ",":
                take()
                node.children.append(parse_node())
            if take() != ")":
                raise NewickError("expected ')'")
        tok = peek()
        if tok is not None and tok not in "(),:;":
            node.label = take()
        if peek() == ":":
            take()
            raw = take()
            try:
                node.length = float(raw)
            except ValueError as exc:
                raise NewickError(f"bad branch length {raw!r}") from exc
        return node

    root = parse_node()
    if peek() == ";":
        take()
    if pos != len(tokens):
        raise NewickError(f"trailing Newick tokens: {tokens[pos:]}")
    if root.is_leaf and root.label is None:
        raise NewickError("Newick tree has no content")
    return root


def _needs_quoting(label: str) -> bool:
    return any(ch in "(),:;[] '" or ch.isspace() for ch in label)


def format_newick(root: NewickNode, *, precision: int = 6) -> str:
    """Serialise a :class:`NewickNode` back to Newick text."""

    def fmt(node: NewickNode) -> str:
        if node.is_leaf:
            body = _fmt_label(node.label)
        else:
            inner = ",".join(fmt(c) for c in node.children)
            body = f"({inner}){_fmt_label(node.label)}"
        if node.length is not None:
            body += f":{node.length:.{precision}f}"
        return body

    def _fmt_label(label: str | None) -> str:
        if label is None:
            return ""
        return f"'{label}'" if _needs_quoting(label) else label

    return fmt(root) + ";"
