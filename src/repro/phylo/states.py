"""Character-state encodings for molecular data.

RAxML and derived codes represent each tip character as a small integer
*state code* whose binary expansion marks the set of compatible states
(IUPAC ambiguity coding).  For DNA the codes are 4-bit masks:

    A=0b0001  C=0b0010  G=0b0100  T=0b1000

and ambiguity characters (``R`` = A|G, ``N`` = anything, ``-`` = gap =
anything, ...) are unions of those bits.  Likelihood tip vectors are then
simple 0/1 indicator vectors over the states, looked up by code — this is
exactly the "tip vector lookup table" trick the paper's kernels exploit
(tip cases of ``newview`` read a 16-entry table instead of a full CLA).

This module provides :class:`StateSpace` descriptors for DNA and protein
data plus the translation tables between text, codes, and indicator
vectors.  Everything downstream (alignment compression, kernels,
parsimony) works off these tables, so adding another data type only
requires a new :class:`StateSpace` instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "StateSpace",
    "DNA",
    "PROTEIN",
    "dna_code",
    "dna_char",
]

# IUPAC nucleotide ambiguity codes -> 4-bit state masks (A,C,G,T = bits 0..3).
_DNA_CHAR_TO_CODE: dict[str, int] = {
    "A": 0b0001,
    "C": 0b0010,
    "G": 0b0100,
    "T": 0b1000,
    "U": 0b1000,  # RNA uracil behaves like T
    "R": 0b0101,  # A|G   purine
    "Y": 0b1010,  # C|T   pyrimidine
    "S": 0b0110,  # C|G
    "W": 0b1001,  # A|T
    "K": 0b1100,  # G|T
    "M": 0b0011,  # A|C
    "B": 0b1110,  # C|G|T
    "D": 0b1101,  # A|G|T
    "H": 0b1011,  # A|C|T
    "V": 0b0111,  # A|C|G
    "N": 0b1111,
    "O": 0b1111,
    "X": 0b1111,
    "?": 0b1111,
    "-": 0b1111,  # gaps are treated as fully ambiguous (RAxML convention)
    ".": 0b1111,
}

_AMINO_ACIDS = "ARNDCQEGHILKMFPSTWYV"

_PROTEIN_AMBIGUITY: dict[str, tuple[str, ...]] = {
    "B": ("N", "D"),
    "Z": ("Q", "E"),
    "J": ("I", "L"),
    "X": tuple(_AMINO_ACIDS),
    "?": tuple(_AMINO_ACIDS),
    "-": tuple(_AMINO_ACIDS),
    ".": tuple(_AMINO_ACIDS),
    "U": ("C",),  # selenocysteine -> cysteine slot, common convention
    "O": ("K",),  # pyrrolysine -> lysine slot
}


@dataclass(frozen=True)
class StateSpace:
    """Descriptor of a character-state alphabet.

    Attributes
    ----------
    name:
        Human-readable alphabet name (``"DNA"``, ``"PROTEIN"``).
    n_states:
        Number of elementary states (4 for DNA, 20 for protein).
    char_to_code:
        Mapping from (upper-case) text characters to integer bitmask
        codes.  Bit ``i`` set means state ``i`` is compatible.
    code_to_char:
        Best-effort inverse mapping used when writing sequences back out.
    """

    name: str
    n_states: int
    char_to_code: dict[str, int]
    code_to_char: dict[int, str]
    _tip_table: np.ndarray = field(repr=False, compare=False, default=None)

    @property
    def undetermined(self) -> int:
        """Code of the fully ambiguous character (gap / N / X)."""
        return (1 << self.n_states) - 1

    def encode(self, sequence: str) -> np.ndarray:
        """Encode a text sequence into an array of bitmask codes.

        Raises ``ValueError`` for characters outside the alphabet, naming
        the offending character and position — silent coercion of typos
        to gaps hides alignment bugs.
        """
        out = np.empty(len(sequence), dtype=np.uint32)
        for i, ch in enumerate(sequence.upper()):
            code = self.char_to_code.get(ch)
            if code is None:
                raise ValueError(
                    f"invalid {self.name} character {ch!r} at position {i}"
                )
            out[i] = code
        return out

    def decode(self, codes: np.ndarray) -> str:
        """Decode bitmask codes back to text (ambiguities best-effort)."""
        return "".join(self.code_to_char.get(int(c), "?") for c in codes)

    def tip_table(self) -> np.ndarray:
        """Return the ``(2**n_states, n_states)`` 0/1 tip-likelihood table.

        Row ``code`` is the indicator vector of states compatible with
        that code; row 0 (the impossible empty set) is all zeros and is
        never produced by :meth:`encode`.  For DNA this is the 16x4 table
        the paper's tip-case kernels index.  The table is cached on the
        instance (it is tiny for DNA; for protein it would be 2**20 rows,
        so we build it lazily and only for codes actually present — see
        :meth:`tip_rows`).
        """
        if self.n_states > 8:
            raise ValueError(
                f"dense tip table infeasible for {self.n_states} states; "
                "use tip_rows() for sparse lookup"
            )
        n_codes = 1 << self.n_states
        table = np.zeros((n_codes, self.n_states), dtype=np.float64)
        for code in range(n_codes):
            for s in range(self.n_states):
                if code & (1 << s):
                    table[code, s] = 1.0
        return table

    def tip_rows(self, codes: np.ndarray) -> np.ndarray:
        """Indicator vectors for an array of codes, ``(len(codes), n_states)``.

        Works for any alphabet size (does not materialise the full
        ``2**n_states`` table).
        """
        codes = np.asarray(codes, dtype=np.uint64)
        bits = (codes[:, None] >> np.arange(self.n_states, dtype=np.uint64)) & 1
        return bits.astype(np.float64)


def _build_dna() -> StateSpace:
    code_to_char = {code: ch for ch, code in _DNA_CHAR_TO_CODE.items()}
    # Prefer canonical letters for unambiguous states and '-' for gaps.
    code_to_char[0b1111] = "-"
    for ch in "ACGT":
        code_to_char[_DNA_CHAR_TO_CODE[ch]] = ch
    return StateSpace("DNA", 4, dict(_DNA_CHAR_TO_CODE), code_to_char)


def _build_protein() -> StateSpace:
    char_to_code: dict[str, int] = {}
    for i, aa in enumerate(_AMINO_ACIDS):
        char_to_code[aa] = 1 << i
    for ch, members in _PROTEIN_AMBIGUITY.items():
        code = 0
        for aa in members:
            code |= char_to_code[aa]
        char_to_code[ch] = code
    code_to_char = {1 << i: aa for i, aa in enumerate(_AMINO_ACIDS)}
    code_to_char[(1 << 20) - 1] = "-"
    return StateSpace("PROTEIN", 20, char_to_code, code_to_char)


DNA = _build_dna()
PROTEIN = _build_protein()


def dna_code(ch: str) -> int:
    """Bitmask code of a single DNA character (convenience wrapper)."""
    return DNA.char_to_code[ch.upper()]


def dna_char(code: int) -> str:
    """Text character for a DNA bitmask code (convenience wrapper)."""
    return DNA.code_to_char[code]
