"""Regenerate Table III: ExaML execution times and speedups.

Trace-driven prediction: the kernel mix of a real full tree search
(:func:`repro.harness.datasets.default_trace`) is replayed through each
platform's cost model under the paper's run configurations — pure MPI
with one rank per core on the CPUs, hybrid 2 ranks x 118 threads per
MIC card — across the eight dataset sizes.  Absolute times differ from
the paper's (our traced search performs fewer kernel calls than
RAxML-Light/ExaML's production search settings), so the headline
comparison is the *speedup* rows, where the call-count scale cancels.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..parallel.examl import ExaMLModel, RunPrediction
from ..parallel.hybrid import ParallelConfig, examl_cpu, examl_mic_hybrid
from ..perf.platforms import (
    PlatformSpec,
    XEON_E5_2630_2S,
    XEON_E5_2680_2S,
    XEON_PHI_5110P_1S,
    XEON_PHI_5110P_2S,
)
from ..perf.trace import KernelTrace
from .datasets import default_trace
from .paper_values import DATASET_SIZES, TABLE3_SPEEDUPS
from .report import format_size, format_table

__all__ = ["Table3Row", "table3_systems", "compute_table3", "render_table3", "main"]


@dataclass(frozen=True)
class Table3Row:
    system: str
    times_s: tuple[float, ...]
    speedups: tuple[float, ...]
    paper_speedups: tuple[float, ...]


def table3_systems() -> list[tuple[PlatformSpec, ParallelConfig]]:
    """The four systems of Table III with their run configurations."""
    return [
        (XEON_E5_2630_2S, examl_cpu(XEON_E5_2630_2S)),
        (XEON_E5_2680_2S, examl_cpu(XEON_E5_2680_2S)),
        (XEON_PHI_5110P_1S, examl_mic_hybrid(n_cards=1)),
        (XEON_PHI_5110P_2S, examl_mic_hybrid(n_cards=2)),
    ]


def compute_table3(
    trace: KernelTrace | None = None,
    sizes: tuple[int, ...] = DATASET_SIZES,
) -> list[Table3Row]:
    """Predict times and speedups for all four systems and sizes."""
    trace = trace or default_trace()
    systems = table3_systems()
    baseline_model = ExaMLModel(XEON_E5_2680_2S, examl_cpu(XEON_E5_2680_2S))
    base_times = {s: baseline_model.predict(trace, s).total_s for s in sizes}
    rows = []
    for spec, config in systems:
        model = ExaMLModel(spec, config)
        preds: list[RunPrediction] = [model.predict(trace, s) for s in sizes]
        times = tuple(p.total_s for p in preds)
        speedups = tuple(base_times[s] / t for s, t in zip(sizes, times))
        rows.append(
            Table3Row(
                system=spec.name,
                times_s=times,
                speedups=speedups,
                paper_speedups=TABLE3_SPEEDUPS[spec.name],
            )
        )
    return rows


def render_table3(trace: KernelTrace | None = None) -> str:
    """Render both Table III panels (times and speedups vs paper)."""
    rows = compute_table3(trace)
    sizes = [format_size(s) for s in DATASET_SIZES]
    time_rows = [[r.system, *r.times_s] for r in rows]
    speedup_rows = []
    for r in rows:
        speedup_rows.append([r.system, *r.speedups])
        speedup_rows.append(["  (paper)", *r.paper_speedups])
    out = format_table(
        ["system", *sizes],
        time_rows,
        title="Table III (a): predicted ExaML inference times [s]",
        float_fmt="{:.1f}",
    )
    out += "\n\n"
    out += format_table(
        ["system", *sizes],
        speedup_rows,
        title="Table III (b): speedups vs 2S Xeon E5-2680 (model vs paper)",
    )
    return out


def main() -> None:
    """Print Table III (console entry point)."""
    print(render_table3())


if __name__ == "__main__":
    main()
