"""Regenerate Table I: platform specifications.

Purely declarative — the table *is* :mod:`repro.perf.platforms`; this
module renders it in the paper's layout and derives the price/TDP
comparisons quoted in Sec. VI-A1 (the 2S E5-2680 costs ~30% more and
budgets ~15% more power than one Phi 5110P).
"""

from __future__ import annotations

from ..perf.platforms import TABLE1_PLATFORMS, XEON_E5_2680_2S, XEON_PHI_5110P_1S
from .report import format_table

__all__ = ["table1_rows", "render_table1", "baseline_premiums", "main"]


def table1_rows() -> list[list[object]]:
    """Rows in Table I's column order."""
    rows: list[list[object]] = []
    for p in TABLE1_PLATFORMS:
        rows.append(
            [
                p.name,
                int(p.peak_dp_gflops),
                p.cores,
                f"{p.clock_ghz:.3f} GHz",
                f"{p.memory_gb:.0f} GB",
                f"{p.memory_bw_gbs:.1f} GB/s",
                f"{p.max_tdp_w:.0f} W",
                f"$ {p.approx_price_usd:.0f}",
            ]
        )
    return rows


def baseline_premiums() -> dict[str, float]:
    """Price and TDP premium of the CPU baseline over one Phi 5110P."""
    cpu, phi = XEON_E5_2680_2S, XEON_PHI_5110P_1S
    return {
        "price_premium": cpu.approx_price_usd / phi.approx_price_usd - 1.0,
        "tdp_premium": cpu.max_tdp_w / phi.max_tdp_w - 1.0,
    }


def render_table1() -> str:
    """Render Table I plus the derived price/TDP premiums."""
    text = format_table(
        [
            "(Co-)processor",
            "Peak DP GFLOPS",
            "Cores",
            "Clock",
            "Memory",
            "Memory BW",
            "Max TDP",
            "Approx. price",
        ],
        table1_rows(),
        title="Table I: Specifications of CPUs and accelerators",
    )
    prem = baseline_premiums()
    text += (
        f"\n\nBaseline premium over 1S Phi 5110P: price +{prem['price_premium']:.0%},"
        f" TDP +{prem['tdp_premium']:.0%} (paper: ~30% and ~15%)"
    )
    return text


def main() -> None:
    """Print Table I (console entry point)."""
    print(render_table1())


if __name__ == "__main__":
    main()
