"""Fixed-width text rendering helpers for harness output.

The harness prints the paper's tables and figure series as aligned text
so runs are diffable and readable in CI logs; nothing here affects the
computed numbers.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_series", "format_size"]


def format_size(n_sites: int) -> str:
    """Dataset label in the paper's style: ``10K``, ``4000K``."""
    return f"{n_sites // 1000}K"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Render an aligned fixed-width table."""
    rendered: list[list[str]] = []
    for row in rows:
        out_row = []
        for cell in row:
            if isinstance(cell, float):
                out_row.append(float_fmt.format(cell))
            else:
                out_row.append(str(cell))
        rendered.append(out_row)
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_series(
    x_labels: Sequence[str],
    series: dict[str, Sequence[float]],
    title: str | None = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Render named series against shared x labels (text 'figure')."""
    headers = ["series", *x_labels]
    rows = [[name, *values] for name, values in series.items()]
    return format_table(headers, rows, title=title, float_fmt=float_fmt)
