"""Regenerate Figure 5: relative energy savings vs the CPU baseline.

Applies the paper's estimator ``E = MaxTDP x t / 3600`` to the Table III
runtime predictions and normalises to the 2S E5-2680.  Expected shape
(Sec. VI-B4): the single MIC crosses parity around 100K sites and
saturates near 2.3x savings; the dual-MIC setup is less efficient than
one card everywhere (communication waste) but still beats the CPUs
above ~500K sites.
"""

from __future__ import annotations

from ..parallel.examl import ExaMLModel
from ..perf.energy import relative_energy_savings
from ..perf.platforms import XEON_E5_2680_2S
from ..perf.trace import KernelTrace
from .datasets import default_trace
from .paper_values import DATASET_SIZES, TABLE3_TIMES_S
from .report import format_series, format_size
from .table3 import table3_systems

__all__ = ["compute_figure5", "paper_figure5", "render_figure5", "main"]


def compute_figure5(
    trace: KernelTrace | None = None,
    sizes: tuple[int, ...] = DATASET_SIZES,
) -> dict[str, list[float]]:
    """Relative energy savings per system per dataset size (model)."""
    trace = trace or default_trace()
    from ..parallel.hybrid import examl_cpu

    baseline_model = ExaMLModel(XEON_E5_2680_2S, examl_cpu(XEON_E5_2680_2S))
    base_times = {s: baseline_model.predict(trace, s).total_s for s in sizes}
    out: dict[str, list[float]] = {}
    for spec, config in table3_systems():
        model = ExaMLModel(spec, config)
        out[spec.name] = [
            relative_energy_savings(
                spec, model.predict(trace, s).total_s, base_times[s]
            )
            for s in sizes
        ]
    return out


def paper_figure5(sizes: tuple[int, ...] = DATASET_SIZES) -> dict[str, list[float]]:
    """The paper's Figure 5 values, derived from its Table III + TDPs."""
    from ..perf.platforms import TABLE1_PLATFORMS

    specs = {p.name: p for p in TABLE1_PLATFORMS}
    base = TABLE3_TIMES_S["2S Xeon E5-2680"]
    out: dict[str, list[float]] = {}
    for name, times in TABLE3_TIMES_S.items():
        spec = specs[name]
        out[name] = [
            relative_energy_savings(spec, t, b) for t, b in zip(times, base)
        ]
    return out


def render_figure5(trace: KernelTrace | None = None) -> str:
    """Render the Figure 5 series (model vs paper, all systems)."""
    model = compute_figure5(trace)
    paper = paper_figure5()
    labels = [format_size(s) for s in DATASET_SIZES]
    series: dict[str, list[float]] = {}
    for name in model:
        series[name] = model[name]
        series[f"  (paper) {name}"] = paper[name]
    return format_series(
        labels,
        series,
        title="Figure 5: relative energy savings vs 2S E5-2680 (model vs paper)",
    )


def main() -> None:
    """Print Figure 5 (console entry point)."""
    print(render_figure5())


if __name__ == "__main__":
    main()
