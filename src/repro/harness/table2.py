"""Regenerate Table II: software configuration of the test systems.

Purely declarative, like Table I — the software stack of each machine
(kernel, compiler, MPI library) affects the reproduction only through
the paper's measured latencies, but the table belongs to the evaluation
section and is part of the artefact inventory.  The compiler constraint
it records (icc required on the MIC because gcc 4.7 lacked MIC support;
``-O2`` because ``-O3`` "gave no measurable performance improvement,
while being less stable") is reproduced in the auto-vectorizer's
conservative defaults.
"""

from __future__ import annotations

from dataclasses import dataclass

from .report import format_table

__all__ = ["SoftwareConfig", "TABLE2_CONFIGS", "render_table2", "main"]


@dataclass(frozen=True)
class SoftwareConfig:
    """One row block of Table II."""

    system: str
    linux_kernel: str
    compiler: str
    mpi: str


TABLE2_CONFIGS = (
    SoftwareConfig("Xeon E5-2630", "2.6.32", "gcc 4.7.0", "Intel MPI 4.1.2.040"),
    SoftwareConfig("Xeon E5-2680", "3.0.93", "gcc 4.7.3", "Intel MPI 4.1.1.036"),
    SoftwareConfig("Xeon Phi", "2.6.32", "icc 13.1.3", "Intel MPI 4.1.2.040"),
)


def render_table2() -> str:
    """Render Table II in the paper's layout."""
    rows = [
        [c.system, f"Linux kernel {c.linux_kernel}", c.compiler, c.mpi]
        for c in TABLE2_CONFIGS
    ]
    return format_table(
        ["system", "kernel", "compiler", "MPI"],
        rows,
        title="Table II: Software configuration of test systems",
    )


def main() -> None:
    """Print Table II (console entry point)."""
    print(render_table2())


if __name__ == "__main__":
    main()
