"""Ablations: the paper's design-choice findings as reproducible studies.

Each function isolates one of the paper's qualitative claims:

* **E7, offload vs native (Sec. V-C)** — per-invocation offload latency
  rivals the kernel compute time, making the offload-mode run ~2x+
  slower even with CLAs resident on the card.
* **E8, flat MPI vs hybrid (Sec. V-D)** — 120 ExaML ranks on one card
  are substantially slower than 2 ranks x 118 OpenMP threads.
* **E9, fork-join vs ExaML (Sec. V-D)** — RAxML-Light's 2-syncs-per-
  kernel fork-join loses to ExaML's communicate-at-reductions scheme as
  synchronisation cost grows; also reproduces the paper's observation
  that the PThreads scheme is competitive on *small* alignments.
* **E10, prefetch distance (Sec. V-B6)** — VM-level sweep showing manual
  prefetching matters for the streaming kernels.
* **Site blocking (Sec. V-B4)** — blocked vs scalar ``derivativeCore``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mic.offload import NativeRuntime, OffloadRuntime
from ..parallel.examl import ExaMLModel
from ..parallel.hybrid import (
    examl_mic_flat,
    examl_mic_hybrid,
    raxml_light_pthreads,
)
from ..perf.platforms import XEON_PHI_5110P_1S
from ..perf.trace import KernelTrace
from .datasets import default_trace
from .report import format_size, format_table

__all__ = [
    "offload_vs_native",
    "flat_vs_hybrid",
    "forkjoin_vs_examl",
    "prefetch_distance_sweep",
    "site_blocking_ablation",
    "partition_count_sweep",
    "rank_thread_sweep",
    "vector_width_sweep",
    "render_ablations",
    "main",
]


@dataclass(frozen=True)
class AblationResult:
    name: str
    variant_a: str
    time_a: float
    variant_b: str
    time_b: float

    @property
    def ratio(self) -> float:
        return self.time_a / self.time_b


def offload_vs_native(
    trace: KernelTrace | None = None, n_sites: int = 100_000
) -> AblationResult:
    """Total run time with offloaded kernels vs native execution.

    Offload keeps CLAs resident (no bulk transfers, as the paper's GPU
    approach did) — the damage is pure invocation latency times the
    call count.
    """
    trace = trace or default_trace()
    model = ExaMLModel(XEON_PHI_5110P_1S, examl_mic_hybrid(n_cards=1))
    native_pred = model.predict(trace, n_sites)
    offload = OffloadRuntime()
    native = NativeRuntime()
    total_calls = trace.total_calls
    per_call_kernel = native_pred.total_s / total_calls
    t_offload = sum(
        offload.invoke(per_call_kernel) for _ in range(total_calls)
    )
    t_native = sum(native.invoke(per_call_kernel) for _ in range(total_calls))
    return AblationResult(
        name=f"offload vs native ({format_size(n_sites)})",
        variant_a="offload",
        time_a=t_offload,
        variant_b="native",
        time_b=t_native,
    )


def flat_vs_hybrid(
    trace: KernelTrace | None = None, n_sites: int = 100_000
) -> AblationResult:
    """120 flat MPI ranks vs 2 x 118 hybrid on one card."""
    trace = trace or default_trace()
    flat = ExaMLModel(XEON_PHI_5110P_1S, examl_mic_flat(120))
    hybrid = ExaMLModel(XEON_PHI_5110P_1S, examl_mic_hybrid(n_cards=1))
    return AblationResult(
        name=f"flat MPI vs hybrid ({format_size(n_sites)})",
        variant_a="flat 120 ranks",
        time_a=flat.predict(trace, n_sites).total_s,
        variant_b="hybrid 2x118",
        time_b=hybrid.predict(trace, n_sites).total_s,
    )


def forkjoin_vs_examl(
    trace: KernelTrace | None = None, n_sites: int = 100_000
) -> AblationResult:
    """RAxML-Light fork-join vs ExaML hybrid on one MIC card."""
    trace = trace or default_trace()
    fj = ExaMLModel(
        XEON_PHI_5110P_1S, raxml_light_pthreads(XEON_PHI_5110P_1S, on_mic=True)
    )
    hybrid = ExaMLModel(XEON_PHI_5110P_1S, examl_mic_hybrid(n_cards=1))
    return AblationResult(
        name=f"fork-join vs ExaML ({format_size(n_sites)})",
        variant_a="RAxML-Light PThreads",
        time_a=fj.predict(trace, n_sites).total_s,
        variant_b="ExaML hybrid",
        time_b=hybrid.predict(trace, n_sites).total_s,
    )


def prefetch_distance_sweep(
    distances: tuple[int, ...] = (0, 1, 2, 4, 8, 16),
    n_sites: int = 512,
) -> dict[int, float]:
    """VM cycles/site of ``derivativeSum`` vs software prefetch distance.

    With the hardware streamer disabled (isolating the software
    prefetch), distance 0 exposes the full GDDR5 latency on every block;
    growing distances hide it until the bandwidth roofline takes over —
    the Sec. V-B6 "empirical tuning" curve.
    """
    from ..core.vectorized import emit_derivative_sum, setup_buffers
    from ..mic.device import xeon_phi_device

    rng = np.random.default_rng(3)
    z_left = rng.uniform(0.1, 1.0, size=(n_sites, 4, 4))
    z_right = rng.uniform(0.1, 1.0, size=(n_sites, 4, 4))
    out: dict[int, float] = {}
    for dist in distances:
        vm = xeon_phi_device().make_vm()
        vm.hierarchy.hw_prefetch_enabled = False
        bufs = setup_buffers(vm, z_left, z_right)
        prog = emit_derivative_sum(vm.isa, bufs, prefetch_distance=dist)
        stats = vm.run(prog)
        out[dist] = stats.cycles / n_sites
    return out


def site_blocking_ablation(n_sites: int = 512) -> AblationResult:
    """Blocked vs unblocked scalar phase of ``derivativeCore`` (V-B4)."""
    from ..core import kernels as ref
    from ..core.vectorized import (
        emit_derivative_core,
        prepare_derivative_consts,
        setup_buffers,
    )
    from ..mic.device import xeon_phi_device
    from ..phylo.models import gtr
    from ..phylo.rates import GammaRates

    rng = np.random.default_rng(4)
    model = gtr()
    eigen = model.eigen()
    gamma = GammaRates(0.8, 4)
    z_left = rng.uniform(0.1, 1.0, size=(n_sites, 4, 4))
    z_right = rng.uniform(0.1, 1.0, size=(n_sites, 4, 4))
    sumbuf = ref.derivative_sum(z_left, z_right)
    weights = np.ones(n_sites)
    times = {}
    for block in (1, 8):
        vm = xeon_phi_device().make_vm()
        bufs = setup_buffers(vm, sumbuf, z_right, weights=weights)
        prepare_derivative_consts(vm, bufs, eigen, gamma.rates, gamma.weights, 0.3)
        prog = emit_derivative_core(vm.isa, bufs, site_block=block)
        times[block] = vm.run(prog).cycles / n_sites
    return AblationResult(
        name="derivativeCore site blocking",
        variant_a="scalar (block=1)",
        time_a=times[1],
        variant_b="blocked (block=8)",
        time_b=times[8],
    )


def rank_thread_sweep(
    trace: KernelTrace | None = None,
    n_sites: int = 500_000,
    layouts: tuple[tuple[int, int], ...] = (
        (1, 236),
        (2, 118),
        (4, 59),
        (8, 29),
        (30, 8),
        (120, 1),
    ),
) -> dict[tuple[int, int], float]:
    """ExaML-MIC rank x thread configuration sweep (Sec. VI-B2).

    The paper "tested different combinations and found that 2 MPI ranks
    and 118 OpenMP threads per rank yield the best performance for
    almost all datasets" — the tradeoff between many cheap OpenMP
    synchronisations and a few expensive MPI ones.  Returns predicted
    total seconds per ``(ranks, threads_per_rank)`` layout on one card.
    """
    from ..parallel.hybrid import MIC_ONCARD_MPI
    from ..parallel.openmp import MIC_OPENMP
    from ..parallel.hybrid import ParallelConfig

    trace = trace or default_trace()
    out: dict[tuple[int, int], float] = {}
    for ranks, threads in layouts:
        config = ParallelConfig(
            name=f"{ranks}x{threads}",
            n_ranks=ranks,
            threads_per_rank=threads,
            ranks_per_domain=ranks,
            intra=MIC_ONCARD_MPI,
            region_sync=MIC_OPENMP if threads > 1 else None,
            threads_per_core_needed=2,
        )
        model = ExaMLModel(XEON_PHI_5110P_1S, config)
        out[(ranks, threads)] = model.predict(trace, n_sites).total_s
    return out


def vector_width_sweep(n_sites: int = 256) -> dict[str, float]:
    """``derivativeSum`` issue cycles/site across vector ISA widths.

    Section III's argument in miniature: the MIC's 512-bit unit does
    twice the work per instruction of AVX and four times SSE's — visible
    directly in the issue-cycle counts of the same kernel (memory
    bandwidth then decides how much of that advantage survives, which is
    the roofline story of Figure 3).
    """
    import numpy as np

    from ..core.vectorized import emit_derivative_sum, setup_buffers
    from ..mic.device import Device
    from ..mic.isa import AVX256, MIC512
    from ..perf.platforms import XEON_E5_2680_2S, XEON_PHI_5110P_1S

    rng = np.random.default_rng(11)
    zl = rng.uniform(0.1, 1.0, size=(n_sites, 4, 4))
    zr = rng.uniform(0.1, 1.0, size=(n_sites, 4, 4))
    out: dict[str, float] = {}
    for isa, spec in ((MIC512, XEON_PHI_5110P_1S), (AVX256, XEON_E5_2680_2S)):
        vm = Device(spec).make_vm()
        bufs = setup_buffers(vm, zl, zr)
        stats = vm.run(emit_derivative_sum(isa, bufs, prefetch_distance=0))
        out[isa.name] = stats.issue_cycles / n_sites
    return out


def partition_count_sweep(
    trace: KernelTrace | None = None,
    n_sites: int = 500_000,
    counts: tuple[int, ...] = (1, 4, 16, 64, 256),
) -> dict[int, float]:
    """Runtime vs number of partitions on one MIC (Sec. V-A's warning).

    Equal-size partitions; degradation comes from per-partition serial
    work (transition matrices per model) and shrinking parallel blocks.
    """
    trace = trace or default_trace()
    model = ExaMLModel(XEON_PHI_5110P_1S, examl_mic_hybrid(n_cards=1))
    return {
        p: model.predict_partitioned(trace, n_sites, p).total_s for p in counts
    }


def render_ablations() -> str:
    """Render every ablation study as one text report."""
    results = [
        offload_vs_native(n_sites=10_000),
        offload_vs_native(n_sites=100_000),
        flat_vs_hybrid(),
        forkjoin_vs_examl(),
        site_blocking_ablation(),
    ]
    rows = [
        [r.name, r.variant_a, r.time_a, r.variant_b, r.time_b, r.ratio]
        for r in results
    ]
    text = format_table(
        ["study", "variant A", "time A", "variant B", "time B", "A/B"],
        rows,
        title="Ablations (times in seconds for run models, cycles/site for kernels)",
        float_fmt="{:.3f}",
    )
    sweep = prefetch_distance_sweep()
    text += "\n\nPrefetch-distance sweep (derivativeSum, cycles/site, HW streamer off):\n"
    text += "  " + "  ".join(f"d={d}: {c:.0f}" for d, c in sweep.items())
    parts = partition_count_sweep()
    text += "\n\nPartition-count sweep (500K sites, 1 MIC, seconds; Sec. V-A):\n"
    text += "  " + "  ".join(f"P={p}: {t:.1f}" for p, t in parts.items())
    widths = vector_width_sweep()
    text += "\n\nVector-width sweep (derivativeSum issue cycles/site; Sec. III):\n"
    text += "  " + "  ".join(f"{k}: {v:.1f}" for k, v in widths.items())
    rt = rank_thread_sweep()
    text += "\n\nRank x thread sweep (500K sites, 1 MIC, seconds; Sec. VI-B2):\n"
    text += "  " + "  ".join(
        f"{r}x{t}: {v:.1f}" for (r, t), v in rt.items()
    )
    return text


def main() -> None:
    """Print the ablation report (console entry point)."""
    print(render_ablations())


if __name__ == "__main__":
    main()
