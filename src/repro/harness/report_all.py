"""One-shot regeneration of every artefact: ``repro-report``.

Renders Tables I–III, Figures 2–5, and all ablations into a single text
report (stdout and optionally a file) — the complete reproduction run a
reviewer would execute first.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

__all__ = ["build_report", "main"]


def build_report() -> str:
    """Regenerate every artefact and concatenate the renders."""
    from ..perf.roofline import render_roofline
    from .ablations import render_ablations
    from .figure2 import render_figure2
    from .figure3 import render_figure3
    from .figure4 import render_figure4
    from .figure5 import render_figure5
    from .table1 import render_table1
    from .table2 import render_table2
    from .table3 import render_table3

    sections = [
        ("Table I", render_table1),
        ("Table II", render_table2),
        ("Figure 2", render_figure2),
        ("Figure 3", render_figure3),
        ("Table III", render_table3),
        ("Figure 4", render_figure4),
        ("Figure 5", render_figure5),
        ("Roofline", render_roofline),
        ("Ablations", render_ablations),
    ]
    parts = [
        "Reproduction report: 'Efficient Computation of the Phylogenetic",
        "Likelihood Function on the Intel MIC Architecture' (Kozlov et al. 2014)",
        f"generated {time.strftime('%Y-%m-%d %H:%M:%S')}",
        "",
    ]
    for name, render in sections:
        start = time.perf_counter()
        body = render()
        elapsed = time.perf_counter() - start
        parts.append(body)
        parts.append(f"[{name} regenerated in {elapsed:.2f}s]")
        parts.append("")
    return "\n".join(parts)


def main(argv: list[str] | None = None) -> int:
    """Print (and optionally save) the full report."""
    parser = argparse.ArgumentParser(
        prog="repro-report", description="regenerate all paper artefacts"
    )
    parser.add_argument("--out", type=Path, help="also write the report here")
    args = parser.parse_args(argv)
    report = build_report()
    print(report)
    if args.out:
        args.out.write_text(report)
        print(f"[report written to {args.out}]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
