"""The paper's published evaluation numbers, for side-by-side reporting.

Transcribed from the paper (HiCOMB/IPDPS-W 2014): Table III's execution
times and speedups, Figure 3's per-kernel speedups, and the derived
Figure 4 / Figure 5 series.  Used by the harness and benchmarks to
report model-vs-paper deltas; never used as an input to any model.
"""

from __future__ import annotations

__all__ = [
    "DATASET_SIZES",
    "TABLE3_TIMES_S",
    "TABLE3_SPEEDUPS",
    "FIGURE3_KERNEL_SPEEDUPS",
    "FIGURE4_TWO_MIC_SPEEDUP",
    "PAPER_ALLREDUCE_LATENCY",
]

#: Table III's column heads: alignment patterns.
DATASET_SIZES = (
    10_000,
    50_000,
    100_000,
    250_000,
    500_000,
    1_000_000,
    2_000_000,
    4_000_000,
)

#: Table III: inference times in seconds per system and dataset size.
TABLE3_TIMES_S: dict[str, tuple[float, ...]] = {
    "2S Xeon E5-2630": (5.6, 32.4, 93.5, 183.0, 372.0, 753.0, 1465.0, 2965.0),
    "2S Xeon E5-2680": (4.1, 24.0, 66.9, 148.0, 312.0, 633.0, 1237.0, 2494.0),
    "1S Xeon Phi 5110P": (12.9, 29.7, 65.6, 101.0, 176.0, 328.0, 619.0, 1228.0),
    "2S Xeon Phi 5110P": (18.7, 32.0, 54.4, 72.0, 122.0, 203.0, 354.0, 667.0),
}

#: Table III: speedups relative to the 2S E5-2680 baseline.
TABLE3_SPEEDUPS: dict[str, tuple[float, ...]] = {
    "2S Xeon E5-2630": (0.73, 0.74, 0.72, 0.81, 0.84, 0.84, 0.84, 0.84),
    "2S Xeon E5-2680": (1.0,) * 8,
    "1S Xeon Phi 5110P": (0.32, 0.81, 1.02, 1.47, 1.77, 1.93, 2.00, 2.03),
    "2S Xeon Phi 5110P": (0.22, 0.75, 1.23, 2.06, 2.56, 3.12, 3.49, 3.74),
}

#: Figure 3: kernel speedups of the MIC port vs the AVX CPU baseline.
FIGURE3_KERNEL_SPEEDUPS: dict[str, float] = {
    "newview": 2.0,
    "evaluate": 1.9,
    "derivative_sum": 2.8,
    "derivative_core": 2.0,
}

#: Figure 4 (derived from Table III): 2-MIC over 1-MIC runtime ratios.
FIGURE4_TWO_MIC_SPEEDUP: tuple[float, ...] = tuple(
    round(a / b, 2)
    for a, b in zip(
        TABLE3_TIMES_S["1S Xeon Phi 5110P"], TABLE3_TIMES_S["2S Xeon Phi 5110P"]
    )
)

#: Sec. VI-B3 latency measurements (seconds).
PAPER_ALLREDUCE_LATENCY = {
    "mic-mic-impi-4.1.2": 20e-6,
    "mic-mic-impi-4.0.3": 35e-6,
    "ib-qlogic-nodes": 5e-6,
}
