"""Regenerate Figure 3: per-kernel MIC speedups over the CPU baseline.

Two layers are reported side by side:

* **VM-measured** — raw cycle ratios from executing the vectorized
  kernels on the simulated MIC and AVX machines, scaled by the
  platforms' core counts and clocks.  No calibration applied.
* **Model** — the roofline cost model including the calibrated KNC
  pipeline-efficiency factors (see :mod:`repro.perf.calibration`), the
  numbers all downstream predictions (Table III etc.) use.

The paper's published values are printed alongside.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..perf.calibration import PAPER_FIGURE3
from ..perf.costmodel import KERNELS, CostModel, measure_kernel_cycles
from ..perf.platforms import XEON_E5_2680_2S, XEON_PHI_5110P_1S
from .report import format_table

__all__ = ["KernelSpeedup", "figure3_speedups", "render_figure3", "main"]


@dataclass(frozen=True)
class KernelSpeedup:
    kernel: str
    vm_measured: float
    model: float
    paper: float


def figure3_speedups(sites: int = 1_000_000) -> list[KernelSpeedup]:
    """Per-kernel speedups (MIC vs 2S E5-2680) from VM and model."""
    cpu_spec, mic_spec = XEON_E5_2680_2S, XEON_PHI_5110P_1S
    cpu_meas = measure_kernel_cycles("avx256")
    mic_meas = measure_kernel_cycles("mic512")
    cpu_model = CostModel(cpu_spec)
    mic_model = CostModel(mic_spec)
    out = []
    for kernel in KERNELS:
        cpu_cyc = max(
            cpu_meas[kernel].issue_cycles_per_site,
            cpu_meas[kernel].dram_bytes_per_site / cpu_spec.bytes_per_cycle_per_core,
        )
        mic_cyc = max(
            mic_meas[kernel].issue_cycles_per_site,
            mic_meas[kernel].dram_bytes_per_site / mic_spec.bytes_per_cycle_per_core,
        )
        vm_ratio = (cpu_cyc / (cpu_spec.clock_ghz * cpu_spec.cores)) / (
            mic_cyc / (mic_spec.clock_ghz * mic_spec.cores)
        )
        out.append(
            KernelSpeedup(
                kernel=kernel,
                vm_measured=vm_ratio,
                model=mic_model.kernel_speedup_vs(cpu_model, kernel, sites),
                paper=PAPER_FIGURE3[kernel],
            )
        )
    return out


def render_figure3() -> str:
    """Render the Figure 3 table (VM, model, paper side by side)."""
    rows = [
        [s.kernel, s.vm_measured, s.model, s.paper]
        for s in figure3_speedups()
    ]
    return format_table(
        ["kernel", "VM-measured", "model (calibrated)", "paper"],
        rows,
        title="Figure 3: PLF kernel speedups, 1S Xeon Phi vs 2S E5-2680",
    )


def main() -> None:
    """Print Figure 3 (console entry point)."""
    print(render_figure3())


if __name__ == "__main__":
    main()
