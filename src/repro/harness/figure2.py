"""Regenerate Figure 2: pragmas vs intrinsics produce identical code.

The paper's Figure 2 shows the ``derivativeSum`` inner loop —
``sum[l] = left[l] * right[l]`` over 16 doubles — written (a) as a plain
loop with ``#pragma ivdep`` + ``#pragma vector aligned`` and (b) with
``_mm512`` intrinsics, compiling to the *same* assembly (c).  We
reproduce the experiment on the simulated MIC ISA: the auto-vectorizer
and the intrinsics builder must emit literally identical instruction
streams, and both must compute the correct product.
"""

from __future__ import annotations

import numpy as np

from ..mic.compiler import ArrayRef, Intrinsics, Loop, auto_vectorize
from ..mic.isa import MIC512
from ..mic.vm import VectorMachine, VectorProgram
from ..mic.device import xeon_phi_device

__all__ = ["figure2_programs", "render_figure2", "main"]


def figure2_programs(
    vm: VectorMachine | None = None,
) -> tuple[VectorProgram, VectorProgram, VectorMachine, dict[str, int]]:
    """Build both Figure 2 variants over the same VM buffers.

    Returns ``(pragma_program, intrinsics_program, vm, arrays)``.
    """
    vm = vm or xeon_phi_device().make_vm()
    arrays = {
        "left": vm.alloc(16),
        "right": vm.alloc(16),
        "sum": vm.alloc(16),
    }

    # (a) pragma-annotated loop, auto-vectorized
    loop = Loop(
        n=16, dst="sum", expr=ArrayRef("left") * ArrayRef("right")
    ).with_pragmas("ivdep", "vector aligned")
    pragma_prog, report = auto_vectorize(loop, arrays, MIC512, name="figure2-pragma")
    if not report.vectorized:
        raise AssertionError(f"auto-vectorization failed: {report.reason}")

    # (b) hand-written intrinsics, statement-per-chunk like the paper's listing
    intr = Intrinsics(MIC512, name="figure2-intrinsics")
    for off in (0, 8):
        intr.reset_registers()
        l_reg = intr.load_pd(arrays["left"] + off * 8)
        r_reg = intr.load_pd(arrays["right"] + off * 8)
        s_reg = intr.mul_pd(l_reg, r_reg)
        intr.store_pd(arrays["sum"] + off * 8, s_reg)
    return pragma_prog, intr.program, vm, arrays


def render_figure2() -> str:
    """Render the Figure 2 comparison (both listings + verdicts)."""
    pragma_prog, intr_prog, vm, arrays = figure2_programs()
    rng = np.random.default_rng(42)
    left = rng.uniform(0.1, 1.0, 16)
    right = rng.uniform(0.1, 1.0, 16)
    vm.write_array(arrays["left"], left)
    vm.write_array(arrays["right"], right)
    vm.run(pragma_prog)
    result = vm.read_array(arrays["sum"], 16)
    identical = pragma_prog.disassembly() == intr_prog.disassembly()
    correct = np.allclose(result, left * right, rtol=1e-15)
    lines = [
        "Figure 2: pragma-vectorized loop vs compiler intrinsics",
        "=" * 55,
        "",
        "(a) #pragma ivdep + #pragma vector aligned loop  ->",
    ]
    lines += [f"    {s}" for s in pragma_prog.disassembly()]
    lines += ["", "(b) _mm512 intrinsics  ->"]
    lines += [f"    {s}" for s in intr_prog.disassembly()]
    lines += [
        "",
        f"instruction streams identical: {identical}",
        f"numerical result correct:      {correct}",
    ]
    return "\n".join(lines)


def main() -> None:
    """Print Figure 2 (console entry point)."""
    print(render_figure2())


if __name__ == "__main__":
    main()
