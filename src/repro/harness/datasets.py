"""Benchmark datasets and workload traces (Section VI-A3).

The paper simulates eight DNA alignments with INDELible: 15 taxa,
10K-4,000K sites.  We expose the same dataset grid through our own
simulator (:func:`paper_dataset`) plus small-scale stand-ins for
functional tests, and the trace builder that records the kernel mix of
a full tree search (:func:`build_default_trace`), which drives all
trace-based predictions.

Generating the multi-million-site alignments is cheap (vectorised
simulation), but *searching* them in pure Python is not — which is why
the performance harness replays traces through the platform models
instead of timing Python (see DESIGN.md's substitution table).
"""

from __future__ import annotations

from ..perf.trace import DEFAULT_TRACE, KernelTrace, trace_from_search
from ..phylo.simulate import SimulationResult, simulate_dataset
from .paper_values import DATASET_SIZES

__all__ = [
    "DATASET_SIZES",
    "PAPER_N_TAXA",
    "paper_dataset",
    "small_dataset",
    "build_default_trace",
    "default_trace",
]

#: "Since number of taxa has no influence on relative speedups, it is
#: fixed and equals 15 for all datasets" (Sec. VI-A3).
PAPER_N_TAXA = 15


def paper_dataset(n_sites: int, seed: int = 2014) -> SimulationResult:
    """One of the paper's eight alignments (15 taxa, ``n_sites`` columns).

    Any width is accepted; the canonical grid is :data:`DATASET_SIZES`.
    """
    if n_sites < 1:
        raise ValueError("n_sites must be positive")
    return simulate_dataset(n_taxa=PAPER_N_TAXA, n_sites=n_sites, seed=seed)


def small_dataset(n_taxa: int = 8, n_sites: int = 500, seed: int = 7) -> SimulationResult:
    """A functional-test-sized stand-in with the same generative process."""
    return simulate_dataset(n_taxa=n_taxa, n_sites=n_sites, seed=seed)


def build_default_trace(n_sites: int = 1000, seed: int = 2014) -> KernelTrace:
    """Re-record the default workload trace by running the real search.

    Runs the full ML pipeline on a 15-taxon alignment and extracts the
    kernel counters; this regenerates
    :data:`repro.perf.trace.DEFAULT_TRACE` (whose frozen copy keeps the
    benchmarks deterministic and fast).
    """
    from ..search import SearchConfig, ml_search

    sim = paper_dataset(n_sites, seed=seed)
    result = ml_search(
        sim.alignment,
        config=SearchConfig(radii=(5, 10), max_spr_rounds=10, seed=seed),
    )
    return trace_from_search(result)


def default_trace() -> KernelTrace:
    """The frozen 15-taxon workload trace used by all predictions."""
    return DEFAULT_TRACE
