"""Regenerate Figure 4: relative speedup of 2 MICs vs 1 MIC.

Derived from the same trace-driven predictions as Table III: the ratio
of the single-card to dual-card runtimes per dataset size.  The paper's
curve grows with alignment size toward ~1.84x — sub-linear because each
card processes half the sites (losing per-card efficiency) and every
reduction crosses the PCIe bus (Sec. VI-B3).
"""

from __future__ import annotations

from ..parallel.examl import ExaMLModel
from ..parallel.hybrid import examl_mic_hybrid
from ..perf.platforms import XEON_PHI_5110P_1S, XEON_PHI_5110P_2S
from ..perf.trace import KernelTrace
from .datasets import default_trace
from .paper_values import DATASET_SIZES, FIGURE4_TWO_MIC_SPEEDUP
from .report import format_series, format_size

__all__ = ["compute_figure4", "render_figure4", "main"]


def compute_figure4(
    trace: KernelTrace | None = None,
    sizes: tuple[int, ...] = DATASET_SIZES,
) -> list[float]:
    """2-card over 1-card speedup per dataset size."""
    trace = trace or default_trace()
    one = ExaMLModel(XEON_PHI_5110P_1S, examl_mic_hybrid(n_cards=1))
    two = ExaMLModel(XEON_PHI_5110P_2S, examl_mic_hybrid(n_cards=2))
    return [
        one.predict(trace, s).total_s / two.predict(trace, s).total_s
        for s in sizes
    ]


def render_figure4(trace: KernelTrace | None = None) -> str:
    """Render the Figure 4 series (model vs paper)."""
    model = compute_figure4(trace)
    return format_series(
        [format_size(s) for s in DATASET_SIZES],
        {
            "model": model,
            "paper": list(FIGURE4_TWO_MIC_SPEEDUP),
        },
        title="Figure 4: relative speedup of 2 MICs vs 1 MIC",
    )


def main() -> None:
    """Print Figure 4 (console entry point)."""
    print(render_figure4())


if __name__ == "__main__":
    main()
