"""Experiment harness: regenerates every table and figure of the paper.

One module per artefact — ``table1``, ``figure2``, ``figure3``,
``table3``, ``figure4``, ``figure5`` — plus ``ablations`` for the
qualitative Sec. V findings, ``datasets`` for workloads/traces,
``paper_values`` for the published numbers, and ``report`` for text
rendering.  Each module exposes ``compute_*``/``render_*`` functions and
a ``main()`` console entry point (see ``pyproject.toml``).
"""

from . import (  # noqa: F401
    ablations,
    datasets,
    export,
    figure2,
    figure3,
    figure4,
    figure5,
    paper_values,
    report,
    table1,
    table2,
    table3,
)

__all__ = [
    "ablations",
    "datasets",
    "export",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "paper_values",
    "report",
    "table1",
    "table2",
    "table3",
]
