"""Machine-readable export of every reproduced artefact.

``repro-export`` writes one JSON document containing the data behind
Tables I–III and Figures 3–5 plus the ablations — for downstream
plotting or automated comparison against the paper, without scraping
the text reports.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

__all__ = ["export_results", "main"]


def export_results() -> dict:
    """Collect every artefact's data into one JSON-serialisable dict."""
    from ..perf.calibration import figure3_residuals
    from ..perf.platforms import TABLE1_PLATFORMS
    from ..perf.roofline import roofline_analysis, XEON_E5_2680_2S, XEON_PHI_5110P_1S
    from .ablations import (
        flat_vs_hybrid,
        forkjoin_vs_examl,
        offload_vs_native,
        partition_count_sweep,
        prefetch_distance_sweep,
        rank_thread_sweep,
        site_blocking_ablation,
    )
    from .figure4 import compute_figure4
    from .figure5 import compute_figure5, paper_figure5
    from .paper_values import DATASET_SIZES, TABLE3_SPEEDUPS
    from .table2 import TABLE2_CONFIGS
    from .table3 import compute_table3

    table1 = [
        {
            "name": p.name,
            "peak_dp_gflops": p.peak_dp_gflops,
            "cores": p.cores,
            "clock_ghz": p.clock_ghz,
            "memory_gb": p.memory_gb,
            "memory_bw_gbs": p.memory_bw_gbs,
            "max_tdp_w": p.max_tdp_w,
            "approx_price_usd": p.approx_price_usd,
        }
        for p in TABLE1_PLATFORMS
    ]
    table2 = [
        {
            "system": c.system,
            "linux_kernel": c.linux_kernel,
            "compiler": c.compiler,
            "mpi": c.mpi,
        }
        for c in TABLE2_CONFIGS
    ]
    figure3 = [
        {
            "kernel": r.kernel,
            "model_speedup": r.model_speedup,
            "paper_speedup": r.paper_speedup,
            "relative_error": r.relative_error,
        }
        for r in figure3_residuals()
    ]
    table3 = [
        {
            "system": row.system,
            "sizes": list(DATASET_SIZES),
            "model_times_s": list(row.times_s),
            "model_speedups": list(row.speedups),
            "paper_speedups": list(TABLE3_SPEEDUPS[row.system]),
        }
        for row in compute_table3()
    ]
    roofline = [
        {
            "platform": p.platform,
            "kernel": p.kernel,
            "arithmetic_intensity": p.arithmetic_intensity,
            "ridge_intensity": p.ridge_intensity,
            "memory_bound": p.memory_bound,
            "attainable_fraction": p.attainable_fraction,
        }
        for spec in (XEON_PHI_5110P_1S, XEON_E5_2680_2S)
        for p in roofline_analysis(spec)
    ]
    offload = offload_vs_native(n_sites=10_000)
    flat = flat_vs_hybrid()
    fj = forkjoin_vs_examl()
    blocking = site_blocking_ablation(n_sites=128)
    return {
        "paper": (
            "Efficient Computation of the Phylogenetic Likelihood Function "
            "on the Intel MIC Architecture (Kozlov, Goll, Stamatakis, 2014)"
        ),
        "table1": table1,
        "table2": table2,
        "figure3": figure3,
        "table3": table3,
        "figure4": {
            "sizes": list(DATASET_SIZES),
            "model": compute_figure4(),
        },
        "figure5": {
            "sizes": list(DATASET_SIZES),
            "model": compute_figure5(),
            "paper_derived": paper_figure5(),
        },
        "roofline": roofline,
        "ablations": {
            "offload_vs_native_10k": offload.ratio,
            "flat_mpi_vs_hybrid_100k": flat.ratio,
            "forkjoin_vs_examl_100k": fj.ratio,
            "site_blocking": blocking.ratio,
            "prefetch_distance_cycles_per_site": {
                str(k): v
                for k, v in prefetch_distance_sweep(
                    distances=(0, 2, 8), n_sites=256
                ).items()
            },
            "partition_count_seconds": {
                str(k): v for k, v in partition_count_sweep().items()
            },
            "rank_thread_seconds": {
                f"{r}x{t}": v for (r, t), v in rank_thread_sweep().items()
            },
        },
    }


def main(argv: list[str] | None = None) -> int:
    """Write the consolidated results JSON (console entry point)."""
    parser = argparse.ArgumentParser(
        prog="repro-export", description="export artefact data as JSON"
    )
    parser.add_argument(
        "--out", type=Path, default=Path("results.json"),
        help="output path (default: results.json)",
    )
    args = parser.parse_args(argv)
    args.out.write_text(json.dumps(export_results(), indent=2))
    print(f"wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
