"""Scalable kernel-invocation traces.

Table III's workload is "a full ML tree search" on 15-taxon alignments
of 10K-4000K sites.  The kernel *mix* of such a search — how many
``newview``/``evaluate``/``derivativeSum``/``derivativeCore`` calls and
how many reduction points it performs — depends on the taxon count and
the search trajectory, but not (to first order) on the alignment width:
every kernel call just processes proportionally more sites.  The
reproduction exploits that: we run our real search once on a 15-taxon
alignment at a tractable width, record the counters, and replay the
trace at any width through the platform cost models.

(The paper makes the same separation implicitly: "number of taxa has no
influence on relative speedups ... we are exclusively testing parallel
performance", Sec. VI-A3.)
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "KernelTrace",
    "trace_from_search",
    "trace_from_profile",
    "trace_from_spans",
    "DEFAULT_TRACE",
]

KERNELS = ("newview", "evaluate", "derivative_sum", "derivative_core")


@dataclass(frozen=True)
class KernelTrace:
    """Kernel mix of one tree-search run, independent of alignment width.

    ``calls`` maps each of the paper's four kernels to its invocation
    count; ``reductions`` counts the scalar AllReduce points (one per
    ``evaluate`` and per ``derivativeCore`` batch in ExaML).

    ``measured_seconds`` / ``measured_bytes`` optionally carry per-kernel
    wall time and bytes moved as recorded by the dispatching backend's
    :class:`~repro.core.backends.KernelProfile` — measured quantities
    that :func:`repro.perf.costmodel.measured_costs` turns into
    calibration input for the analytic predictions.

    ``wave_summary`` optionally carries the levelized-schedule shape of
    the traced workload (a :meth:`repro.core.schedule.WaveStats.to_dict`
    payload: plans, waves, ops, max/mean width, batched-op share).  The
    wave structure — not just the call mix — is what the scheduling cost
    model (:func:`repro.perf.costmodel.wave_schedule_costs`) needs to
    separate serial depth from parallel width.
    """

    n_taxa: int
    traced_sites: int
    calls: dict[str, int]
    reductions: int
    description: str = ""
    measured_seconds: dict[str, float] | None = None
    measured_bytes: dict[str, int] | None = None
    wave_summary: dict | None = None

    def __post_init__(self) -> None:
        missing = [k for k in KERNELS if k not in self.calls]
        if missing:
            raise ValueError(f"trace missing kernels: {missing}")
        if any(v < 0 for v in self.calls.values()):
            raise ValueError("negative call counts")

    @property
    def total_calls(self) -> int:
        return sum(self.calls.values())

    def to_json(self) -> str:
        payload = {
            "n_taxa": self.n_taxa,
            "traced_sites": self.traced_sites,
            "calls": self.calls,
            "reductions": self.reductions,
            "description": self.description,
        }
        if self.measured_seconds is not None:
            payload["measured_seconds"] = self.measured_seconds
        if self.measured_bytes is not None:
            payload["measured_bytes"] = self.measured_bytes
        if self.wave_summary is not None:
            payload["wave_summary"] = self.wave_summary
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "KernelTrace":
        d = json.loads(text)
        seconds = d.get("measured_seconds")
        nbytes = d.get("measured_bytes")
        return cls(
            n_taxa=d["n_taxa"],
            traced_sites=d["traced_sites"],
            calls={k: int(v) for k, v in d["calls"].items()},
            reductions=int(d["reductions"]),
            description=d.get("description", ""),
            measured_seconds=(
                {k: float(v) for k, v in seconds.items()}
                if seconds is not None
                else None
            ),
            measured_bytes=(
                {k: int(v) for k, v in nbytes.items()}
                if nbytes is not None
                else None
            ),
            wave_summary=d.get("wave_summary"),
        )

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: str | Path) -> "KernelTrace":
        return cls.from_json(Path(path).read_text())


def trace_from_search(result) -> KernelTrace:
    """Extract a trace from a :class:`repro.search.SearchResult`.

    If the search engine dispatched through a profiling backend, the
    measured per-kernel wall times and traffic ride along in the trace's
    ``measured_*`` fields.
    """
    counters = result.counters
    seconds = None
    nbytes = None
    profile = getattr(result.engine, "profile", None)
    if profile is not None and getattr(profile, "seconds", None):
        seconds = profile.merged_seconds()
        nbytes = profile.merged_bytes()
    wave_stats = getattr(result.engine, "wave_stats", None)
    wave_summary = (
        wave_stats.to_dict() if wave_stats is not None and wave_stats.waves else None
    )
    return KernelTrace(
        n_taxa=result.tree.n_leaves,
        traced_sites=result.engine.patterns.n_patterns,
        calls=counters.merged(),
        reductions=counters.reductions,
        description="full ML tree search (parsimony start, model opt, lazy SPR)",
        measured_seconds=seconds,
        measured_bytes=nbytes,
        wave_summary=wave_summary,
    )


def trace_from_profile(
    profile, n_taxa: int, traced_sites: int, description: str = "",
    wave_stats=None,
) -> KernelTrace:
    """Build a trace directly from a backend's :class:`KernelProfile`.

    Unlike :func:`trace_from_search` this needs no search result — any
    profiled workload (EPA run, partitioned evaluation, benchmark loop)
    yields a replayable, *measured* kernel trace.

    .. note:: **Cumulative, not per-run.**  A
       :class:`~repro.core.backends.KernelProfile` (and likewise
       :class:`~repro.core.traversal.KernelCounters` and
       :class:`~repro.core.schedule.WaveStats`) accumulates across every
       workload dispatched through its backend since construction or the
       last explicit ``reset()``.  This function therefore reads the
       *cumulative* numbers: to trace a single run, call
       ``profile.reset()`` (or the engine-level ``reset_profile()``,
       which also zeroes counters and wave statistics) immediately
       before the workload, then build the trace immediately after.

    ``wave_stats`` (a :class:`repro.core.schedule.WaveStats`, e.g. an
    engine's ``wave_stats`` property) optionally attaches the levelized
    schedule shape — it follows the same cumulative semantics.
    """
    return KernelTrace(
        n_taxa=n_taxa,
        traced_sites=traced_sites,
        calls=profile.merged(),
        reductions=profile.reductions,
        description=description,
        measured_seconds=profile.merged_seconds(),
        measured_bytes=profile.merged_bytes(),
        wave_summary=(
            wave_stats.to_dict()
            if wave_stats is not None and wave_stats.waves
            else None
        ),
    )


def trace_from_spans(
    source, n_taxa: int, traced_sites: int, description: str = ""
) -> KernelTrace:
    """Collapse a recorded span tree into a *measured* :class:`KernelTrace`.

    The :mod:`repro.obs` bridge: any tracing session — a live
    :class:`~repro.obs.spans.Tracer` or a saved Chrome-trace payload
    (the dict :func:`repro.obs.summary.load_chrome` returns) — carries
    one ``kernel.<kind>`` span per PLF dispatch, each tagged with the
    bytes it moved.  Folding those spans yields the same four-kernel
    call mix, measured wall seconds, and traffic that
    :func:`trace_from_profile` reads from a
    :class:`~repro.core.backends.KernelProfile`, so a trace recorded
    yesterday feeds :func:`repro.perf.costmodel.measured_costs` exactly
    like a live profile does.  Reductions follow the
    :class:`~repro.core.traversal.KernelCounters` rule: one per
    ``evaluate`` and per ``derivative_core`` dispatch.

    The ``wave_summary`` is rebuilt from the recorded ``wave`` spans
    (count, op totals, max/mean width, batched-op share, summed wall
    seconds).

    .. warning:: Record the source trace with the **reference** or
       **blocked** backend.  The shadow backend dispatches every kernel
       twice (primary + reference), so its span stream double-counts
       calls relative to the engine's own counters.
    """
    # (kind value, duration seconds, bytes, width?, batched?) rows
    kernel_rows: list[tuple[str, float, int]] = []
    wave_rows: list[tuple[int, bool, float]] = []
    if isinstance(source, dict):  # Chrome payload: matched B/E pairs
        open_spans: dict[tuple, list] = {}
        for e in source.get("traceEvents", ()):
            ph, name = e.get("ph"), e.get("name", "")
            key = (e.get("pid", 0), e.get("tid", 0))
            if ph == "B":
                open_spans.setdefault(key, []).append(e)
            elif ph == "E":
                stack = open_spans.get(key)
                if not stack:
                    continue
                b = stack.pop()
                dur_s = (float(e["ts"]) - float(b["ts"])) / 1e6
                args = b.get("args") or {}
                if name.startswith("kernel."):
                    kernel_rows.append(
                        (name[len("kernel."):], dur_s,
                         int(args.get("bytes", 0)))
                    )
                elif name == "wave":
                    wave_rows.append(
                        (int(args.get("width", 0)),
                         bool(args.get("batched", False)), dur_s)
                    )
    else:  # live Tracer
        for rec in source.spans:
            args = rec.args or {}
            if rec.name.startswith("kernel."):
                kernel_rows.append(
                    (rec.name[len("kernel."):], rec.duration,
                     int(args.get("bytes", 0)))
                )
            elif rec.name == "wave":
                wave_rows.append(
                    (int(args.get("width", 0)),
                     bool(args.get("batched", False)), rec.duration)
                )

    calls = {k: 0 for k in KERNELS}
    seconds = {k: 0.0 for k in KERNELS}
    nbytes = {k: 0 for k in KERNELS}
    reductions = 0
    for kind, dur_s, b in kernel_rows:
        key = "newview" if kind.startswith("newview") else kind
        if key not in calls:
            raise ValueError(f"unknown kernel span 'kernel.{kind}'")
        calls[key] += 1
        seconds[key] += dur_s
        nbytes[key] += b
        if key in ("evaluate", "derivative_core"):
            reductions += 1
    wave_summary = None
    if wave_rows:
        widths = [w for w, _, _ in wave_rows]
        wave_summary = {
            "plans": 0,  # plan membership is not span-visible
            "waves": len(wave_rows),
            "ops": sum(widths),
            "max_width": max(widths),
            "batched_ops": sum(w for w, batched, _ in wave_rows if batched),
            "seconds": sum(s for _, _, s in wave_rows),
            "bytes_moved": sum(nbytes.values()),
            "kernel_mix": {},
        }
    return KernelTrace(
        n_taxa=n_taxa,
        traced_sites=traced_sites,
        calls=calls,
        reductions=reductions,
        description=description or "rebuilt from recorded spans",
        measured_seconds=seconds,
        measured_bytes=nbytes,
        wave_summary=wave_summary,
    )


#: Default workload: kernel mix recorded from this library's own full ML
#: tree search on a simulated 15-taxon GTR+Gamma alignment (seed 2014,
#: 1000 sites -> 820 patterns, SPR radii (5, 10)); the search recovered
#: the true topology (RF = 0).  Regenerate with
#: ``repro.harness.datasets.build_default_trace()``.
DEFAULT_TRACE = KernelTrace(
    n_taxa=15,
    traced_sites=820,
    calls={
        "newview": 10849,
        "evaluate": 1407,
        "derivative_sum": 1438,
        "derivative_core": 11186,
    },
    reductions=12593,
    description="full ML tree search (parsimony start, model opt, lazy SPR)",
)
