"""Roofline analysis of the PLF kernels (``repro-roofline``).

Classifies each kernel on each platform as memory- or compute-bound and
reports its attainable fraction of peak — the quantitative version of
the paper's narrative: ``derivativeSum`` "performs a simple element-wise
multiplication ... which can be efficiently vectorized" (deep in the
memory-bound region, so the MIC's 3x bandwidth shows through), while
"the other kernels exhibit a less favorable mixture of numerical
operations" (closer to the ridge, where the in-order pipeline limits the
MIC).

The ridge point of a platform is ``peak_flops_per_cycle /
sustainable_bytes_per_cycle`` (flops per byte); kernels left of it are
bandwidth-bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from .costmodel import KERNELS, measure_kernel_cycles
from .platforms import PlatformSpec, XEON_E5_2680_2S, XEON_PHI_5110P_1S

__all__ = ["RooflinePoint", "roofline_analysis", "render_roofline", "main"]


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel's position on a platform's roofline."""

    kernel: str
    platform: str
    arithmetic_intensity: float  # flops / DRAM byte
    ridge_intensity: float  # platform ridge point
    attainable_gflops: float  # min(peak, AI * BW)
    peak_gflops: float

    @property
    def memory_bound(self) -> bool:
        return self.arithmetic_intensity < self.ridge_intensity

    @property
    def attainable_fraction(self) -> float:
        return self.attainable_gflops / self.peak_gflops


def roofline_analysis(platform: PlatformSpec) -> list[RooflinePoint]:
    """Roofline points for all four kernels on one platform."""
    if platform.isa is None:
        raise ValueError(f"{platform.name} has no executable ISA")
    meas = measure_kernel_cycles(platform.isa.name)
    bw_gbs = platform.memory_bw_gbs * platform.bandwidth_efficiency
    ridge = platform.peak_dp_gflops / bw_gbs
    out = []
    for kernel in KERNELS:
        m = meas[kernel]
        ai = m.arithmetic_intensity
        attainable = min(platform.peak_dp_gflops, ai * bw_gbs)
        out.append(
            RooflinePoint(
                kernel=kernel,
                platform=platform.name,
                arithmetic_intensity=ai,
                ridge_intensity=ridge,
                attainable_gflops=attainable,
                peak_gflops=platform.peak_dp_gflops,
            )
        )
    return out


def render_roofline() -> str:
    """Text table of roofline points for both benchmark platforms."""
    from ..harness.report import format_table

    rows = []
    for platform in (XEON_PHI_5110P_1S, XEON_E5_2680_2S):
        for p in roofline_analysis(platform):
            rows.append(
                [
                    p.platform,
                    p.kernel,
                    f"{p.arithmetic_intensity:.2f}",
                    f"{p.ridge_intensity:.2f}",
                    "memory" if p.memory_bound else "compute",
                    f"{p.attainable_fraction:.1%}",
                ]
            )
    return format_table(
        ["platform", "kernel", "AI (flop/B)", "ridge", "bound", "of peak"],
        rows,
        title="Roofline classification of the PLF kernels",
    )


def main() -> None:
    """Print the roofline table (console entry point)."""
    print(render_roofline())


if __name__ == "__main__":
    main()
