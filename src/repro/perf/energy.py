"""Energy estimation (Section VI-B4).

The paper estimates energy as ``E[Wh] = MaxTDP[W] x RunTime[s] / 3600``
and reports savings relative to the CPU baseline.  We reproduce the
identical methodology: TDP values come from Table I
(:mod:`repro.perf.platforms`), runtimes from the trace-driven
predictions, and :func:`relative_energy_savings` produces Figure 5's
series (values > 1 mean the platform consumes *less* energy than the
baseline).
"""

from __future__ import annotations

from .platforms import BASELINE, PlatformSpec

__all__ = ["energy_wh", "relative_energy_savings"]


def energy_wh(platform: PlatformSpec, runtime_s: float) -> float:
    """``E[Wh] = MaxTDP x t / 3600`` — the paper's estimator."""
    if runtime_s < 0:
        raise ValueError("negative runtime")
    return platform.energy_wh(runtime_s)


def relative_energy_savings(
    platform: PlatformSpec,
    runtime_s: float,
    baseline_runtime_s: float,
    baseline: PlatformSpec = BASELINE,
) -> float:
    """Baseline energy divided by platform energy (Figure 5's y-axis).

    1.0 means parity with the 2S E5-2680 baseline; 2.3 means the
    platform consumed 2.3x less energy for the same tree search.
    """
    e_base = energy_wh(baseline, baseline_runtime_s)
    e_this = energy_wh(platform, runtime_s)
    if e_this <= 0:
        raise ValueError("non-positive energy")
    return e_base / e_this
