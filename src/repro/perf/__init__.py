"""Performance and energy modelling.

Table I platform data, the VM-backed roofline cost model, scalable
kernel traces, calibration bookkeeping, and the paper's energy
estimator.
"""

from .calibration import PAPER_FIGURE3, CalibrationReport, figure3_residuals
from .costmodel import (
    PIPELINE_EFFICIENCY,
    SERIAL_OVERHEAD_CYCLES,
    CostModel,
    KernelCycles,
    MeasuredKernelCost,
    measure_kernel_cycles,
    measured_costs,
    wave_schedule_costs,
)
from .energy import energy_wh, relative_energy_savings
from .ledger import (
    Ledger,
    LedgerEntry,
    MetricDelta,
    compare,
    config_fingerprint,
    entries_from_report,
    host_info,
    load_report,
    metric_direction,
    render_compare,
)
from .platforms import (
    BASELINE,
    NVIDIA_K20,
    TABLE1_PLATFORMS,
    PlatformSpec,
    XEON_E5_2630_2S,
    XEON_E5_2680_2S,
    XEON_PHI_5110P_1S,
    XEON_PHI_5110P_2S,
)
from .trace import (
    DEFAULT_TRACE,
    KernelTrace,
    trace_from_profile,
    trace_from_search,
    trace_from_spans,
)

__all__ = [
    "PAPER_FIGURE3",
    "CalibrationReport",
    "figure3_residuals",
    "PIPELINE_EFFICIENCY",
    "SERIAL_OVERHEAD_CYCLES",
    "CostModel",
    "KernelCycles",
    "MeasuredKernelCost",
    "measure_kernel_cycles",
    "measured_costs",
    "wave_schedule_costs",
    "energy_wh",
    "relative_energy_savings",
    "Ledger",
    "LedgerEntry",
    "MetricDelta",
    "compare",
    "config_fingerprint",
    "entries_from_report",
    "host_info",
    "load_report",
    "metric_direction",
    "render_compare",
    "BASELINE",
    "NVIDIA_K20",
    "TABLE1_PLATFORMS",
    "PlatformSpec",
    "XEON_E5_2630_2S",
    "XEON_E5_2680_2S",
    "XEON_PHI_5110P_1S",
    "XEON_PHI_5110P_2S",
    "DEFAULT_TRACE",
    "KernelTrace",
    "trace_from_profile",
    "trace_from_search",
    "trace_from_spans",
]
