"""Cost-model-driven autotuner: pick backend x execution x workers x block.

The Gysela Xeon Phi study (PAPERS.md) tunes block size and thread
placement per workload from *measurements*, not defaults; this module
does the same for the reproduction's execution configuration:

1. **Probe** — run each candidate backend for a short, fixed kernel
   schedule at a probe width, collecting its
   :class:`~repro.core.backends.KernelProfile`;
2. **Price** — convert profiles to per-site kernel costs
   (:func:`repro.perf.costmodel.measured_costs`, untimed kernels
   excluded) and extrapolate to the workload's real width with a fixed
   per-traversal kernel mix; fork-join candidates add the barrier
   overhead fitted by
   :func:`repro.perf.costmodel.calibrate_forkjoin` from measured
   :class:`~repro.parallel.pool.BarrierStats`;
3. **Decide** — :func:`decide` is a *pure* argmin over the candidate
   table that always includes the static default configuration, so the
   tuned choice can never be predicted slower than the default (the
   acceptance bar of the autotuner);
4. **Persist** — decisions land in a JSON cache
   (``~/.cache/repro/tuning.json``, overridable via
   :data:`TUNE_CACHE_ENV`) keyed by :class:`WorkloadSignature`, so
   ``make_engine(auto=True)`` pays the probe cost once per workload
   shape per machine.

``repro tune`` drives the same machinery from the CLI and prints the
decision table with predicted-vs-measured probe times.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .costmodel import KERNELS, MeasuredKernelCost, calibrate_forkjoin, measured_costs

__all__ = [
    "TUNE_CACHE_ENV",
    "CACHE_VERSION",
    "WorkloadSignature",
    "TunedConfig",
    "ProbeResult",
    "CandidateCost",
    "Decision",
    "DEFAULT_MIX",
    "BLOCK_GRID",
    "default_cache_path",
    "TuningCache",
    "predict_seconds",
    "enumerate_candidates",
    "decide",
    "run_probes",
    "autotune",
    "build_backend",
    "resolve_auto_backend",
]

#: Environment variable overriding the tuning-cache location.
TUNE_CACHE_ENV = "REPRO_TUNE_CACHE"

#: Bump to invalidate persisted decisions after semantic changes.
CACHE_VERSION = 1

#: Kernel dispatches per "traversal unit" used to extrapolate probe
#: costs to a full workload: one post-order sweep is ~2 newview ops per
#: taxon-pair edge for every evaluate, with a derivative pair per
#: branch-length Newton step.  The mix only needs to *rank* candidates,
#: and every candidate is priced with the same mix.
DEFAULT_MIX: dict[str, float] = {
    "newview": 2.0,
    "evaluate": 0.5,
    "derivative_sum": 0.25,
    "derivative_core": 0.25,
}

#: Fork-join regions per traversal unit (one wave region per kernel
#: family dispatch, roughly) — scales the calibrated barrier overhead.
REGIONS_PER_UNIT = 3.0

#: Candidate ``block_sites`` values for the blocked backend.
BLOCK_GRID = (1024, 2048, 4096, 8192)

#: Backends the tuner considers (shadow is a verification harness, not
#: a production candidate).
CANDIDATE_BACKENDS = ("reference", "blocked", "compiled")


# ----------------------------------------------------------------------
# signatures and configurations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadSignature:
    """What a tuning decision is keyed by: (sites bucket, states, rates).

    Site counts are bucketed geometrically (next power of two) so one
    probe covers every alignment of similar width — per-site kernel
    costs are flat within a bucket but shift across cache-size
    boundaries, which is exactly what the buckets separate.
    """

    sites_bucket: int
    states: int
    rates: int

    @classmethod
    def from_workload(
        cls, n_patterns: int, n_states: int, n_rates: int
    ) -> "WorkloadSignature":
        n = max(int(n_patterns), 1)
        bucket = 1 << (n - 1).bit_length()  # next power of two >= n
        return cls(sites_bucket=bucket, states=int(n_states), rates=int(n_rates))

    @property
    def key(self) -> str:
        return f"s{self.sites_bucket}_k{self.states}_r{self.rates}"

    @classmethod
    def from_key(cls, key: str) -> "WorkloadSignature":
        try:
            s, k, r = key.split("_")
            return cls(int(s[1:]), int(k[1:]), int(r[1:]))
        except (ValueError, IndexError) as exc:
            raise ValueError(f"malformed signature key {key!r}") from exc


@dataclass(frozen=True)
class TunedConfig:
    """One executable configuration the tuner can pick."""

    backend: str
    execution: str = "simulated"
    workers: int = 1
    block_sites: int | None = None

    @property
    def label(self) -> str:
        parts = [self.backend]
        if self.block_sites is not None:
            parts.append(f"block={self.block_sites}")
        if self.workers > 1:
            parts.append(f"{self.execution}x{self.workers}")
        return " ".join(parts)

    def to_dict(self) -> dict:
        return {
            "backend": self.backend,
            "execution": self.execution,
            "workers": self.workers,
            "block_sites": self.block_sites,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "TunedConfig":
        return cls(
            backend=str(d["backend"]),
            execution=str(d.get("execution", "simulated")),
            workers=int(d.get("workers", 1)),
            block_sites=(
                int(d["block_sites"]) if d.get("block_sites") else None
            ),
        )


#: The static default an untuned ``make_engine`` call resolves to; the
#: decision table always contains it, which is what guarantees a tuned
#: run is never predicted slower than an untuned one.
DEFAULT_CONFIG = TunedConfig(backend="reference")


@dataclass(frozen=True)
class ProbeResult:
    """One backend probe: wall time plus per-kernel measured costs."""

    config: TunedConfig
    probe_sites: int
    probe_units: float  # traversal units executed during timing
    measured_s: float
    costs: dict[str, MeasuredKernelCost]


@dataclass(frozen=True)
class CandidateCost:
    """A priced candidate in the decision table."""

    config: TunedConfig
    predicted_s: float
    measured_probe_s: float | None = None


@dataclass(frozen=True)
class Decision:
    """The tuner's output for one workload signature."""

    signature: WorkloadSignature
    chosen: TunedConfig
    predicted_s: float
    default_predicted_s: float
    candidates: tuple[CandidateCost, ...] = ()

    def to_dict(self) -> dict:
        return {
            "signature": self.signature.key,
            "chosen": self.chosen.to_dict(),
            "predicted_s": self.predicted_s,
            "default_predicted_s": self.default_predicted_s,
            "candidates": [
                {
                    "config": c.config.to_dict(),
                    "predicted_s": c.predicted_s,
                    "measured_probe_s": c.measured_probe_s,
                }
                for c in self.candidates
            ],
        }


# ----------------------------------------------------------------------
# pricing (pure)
# ----------------------------------------------------------------------
def predict_seconds(
    costs: dict[str, MeasuredKernelCost],
    sites: float,
    *,
    units: float = 1.0,
    mix: dict[str, float] | None = None,
    workers: int = 1,
    region_overhead_s: float = 0.0,
) -> float:
    """Extrapolate measured per-site kernel costs to a workload.

    Untimed kernels (``seconds_per_site is None``) are skipped — they
    contribute no evidence, rather than a fictitious zero cost.  For
    ``workers > 1`` the data-parallel term divides by the worker count
    and each traversal unit pays ``REGIONS_PER_UNIT`` fork-join regions
    of ``region_overhead_s``.
    """
    mix = DEFAULT_MIX if mix is None else mix
    per_site = 0.0
    for kernel, weight in mix.items():
        cost = costs.get(kernel)
        if cost is None:
            continue
        sps = cost.seconds_per_site
        if sps is None:  # untimed: no evidence, not "free"
            continue
        per_site += weight * sps
    compute = per_site * float(sites) * units / max(int(workers), 1)
    sync = (
        REGIONS_PER_UNIT * units * region_overhead_s if workers > 1 else 0.0
    )
    return compute + sync


def enumerate_candidates(
    probes: dict[str, ProbeResult],
    sites: float,
    *,
    cpu_count: int = 1,
    forkjoin_model=None,
    mix: dict[str, float] | None = None,
) -> list[CandidateCost]:
    """Price every candidate configuration from probe measurements.

    Pure given its inputs: the same probe table always produces the
    same candidate list (the determinism the tests pin).  Serial
    candidates come straight from the probes; fork-join variants are
    derived for every probed backend when ``cpu_count > 1`` *and* a
    calibrated ``forkjoin_model`` is supplied.
    """
    out: list[CandidateCost] = []
    for key in sorted(probes):
        probe = probes[key]
        predicted = predict_seconds(
            probe.costs, sites, units=1.0, mix=mix, workers=1
        )
        measured_unit_s = (
            probe.measured_s / probe.probe_units if probe.probe_units else None
        )
        out.append(
            CandidateCost(
                config=probe.config,
                predicted_s=predicted,
                measured_probe_s=measured_unit_s,
            )
        )
        if cpu_count > 1 and forkjoin_model is not None:
            if probe.config.backend == "shadow":
                continue
            for workers in _worker_grid(cpu_count):
                overhead = forkjoin_model.region_overhead_s(workers)
                for execution in ("threads", "processes"):
                    cfg = TunedConfig(
                        backend=probe.config.backend,
                        execution=execution,
                        workers=workers,
                        block_sites=probe.config.block_sites,
                    )
                    out.append(
                        CandidateCost(
                            config=cfg,
                            predicted_s=predict_seconds(
                                probe.costs,
                                sites,
                                mix=mix,
                                workers=workers,
                                region_overhead_s=overhead,
                            ),
                        )
                    )
    return out


def _worker_grid(cpu_count: int) -> list[int]:
    grid = sorted({2, cpu_count, max(cpu_count // 2, 2)})
    return [w for w in grid if 2 <= w <= cpu_count]


def decide(
    signature: WorkloadSignature,
    candidates: list[CandidateCost],
    default: TunedConfig = DEFAULT_CONFIG,
) -> Decision:
    """Pure argmin over the decision table (ties break deterministically).

    The ``default`` configuration must be present among the candidates
    (callers probe it alongside the rest); the chosen candidate is the
    predicted-fastest, so by construction it is never predicted slower
    than the default.
    """
    if not candidates:
        raise ValueError("empty candidate table")
    default_rows = [c for c in candidates if c.config == default]
    if not default_rows:
        raise ValueError(
            f"candidate table is missing the default config {default!r}; "
            "the never-slower-than-default guarantee needs it probed"
        )
    ranked = sorted(
        candidates, key=lambda c: (c.predicted_s, c.config.label)
    )
    best = ranked[0]
    return Decision(
        signature=signature,
        chosen=best.config,
        predicted_s=best.predicted_s,
        default_predicted_s=default_rows[0].predicted_s,
        candidates=tuple(ranked),
    )


# ----------------------------------------------------------------------
# probing (impure: runs kernels, takes wall time)
# ----------------------------------------------------------------------
def _probe_operands(sites: int, states: int, rates: int, seed: int = 20140513):
    """Synthetic, well-conditioned operands for one probe schedule."""
    rng = np.random.default_rng(seed)
    p, c, k = int(sites), int(rates), int(states)
    u_inv = np.asfortranarray(rng.uniform(-1.0, 1.0, size=(k, k)))
    a1 = rng.uniform(0.1, 1.0, size=(c, k, k))
    a2 = rng.uniform(0.1, 1.0, size=(c, k, k))
    z1 = rng.uniform(0.1, 1.0, size=(p, c, k))
    z2 = rng.uniform(0.1, 1.0, size=(p, c, k))
    exps = rng.uniform(0.5, 1.5, size=(c, k))
    rate_weights = np.full(c, 1.0 / c)
    pattern_weights = np.ones(p)
    eigenvalues = -rng.uniform(0.1, 2.0, size=k)
    rate_values = rng.uniform(0.5, 2.0, size=c)
    scale = np.zeros(p, dtype=np.int64)
    return {
        "u_inv": u_inv, "a1": a1, "a2": a2, "z1": z1, "z2": z2,
        "exps": exps, "rate_weights": rate_weights,
        "pattern_weights": pattern_weights, "eigenvalues": eigenvalues,
        "rate_values": rate_values, "scale": scale,
    }


def _run_schedule(backend, ops: dict) -> None:
    """One traversal unit: the DEFAULT_MIX in actual dispatches."""
    z, sc = backend.newview_inner_inner(
        ops["u_inv"], ops["a1"], ops["a2"], ops["z1"], ops["z2"],
        ops["scale"], ops["scale"],
    )
    backend.newview_inner_inner(
        ops["u_inv"], ops["a1"], ops["a2"], z, ops["z2"], sc, ops["scale"]
    )
    backend.evaluate_edge(
        ops["z1"], ops["z2"], ops["exps"], ops["rate_weights"],
        ops["pattern_weights"], ops["scale"],
    )
    sumbuf = backend.derivative_sum(ops["z1"], ops["z2"])
    backend.derivative_core(
        sumbuf, ops["eigenvalues"], ops["rate_values"],
        ops["rate_weights"], 0.3, ops["pattern_weights"],
    )


def build_backend(config: TunedConfig):
    """A live backend instance for one configuration."""
    from ..core.backends import BlockedBackend, get_backend

    if config.backend == "blocked" and config.block_sites is not None:
        return BlockedBackend(block_sites=config.block_sites)
    return get_backend(config.backend)


def run_probes(
    signature: WorkloadSignature,
    *,
    probe_sites: int | None = None,
    rounds: int = 2,
    backends: tuple[str, ...] = CANDIDATE_BACKENDS,
    block_grid: tuple[int, ...] = BLOCK_GRID,
) -> dict[str, ProbeResult]:
    """Measure every serial candidate at the probe width.

    The probe width is the signature's bucket capped at 32K sites
    (enough to leave L2; predictions scale linearly past that), each
    candidate runs one untimed warm-up round — which also absorbs the
    compiled backend's first-use compile — then ``rounds`` timed
    traversal units on a reset profile.
    """
    from ..core.backends import available_backends

    registered = {info.name for info in available_backends()}
    if probe_sites is None:
        probe_sites = min(signature.sites_bucket, 32_768)
    ops = _probe_operands(probe_sites, signature.states, signature.rates)

    configs: list[TunedConfig] = []
    for name in backends:
        if name not in registered or name == "shadow":
            continue
        if name == "blocked":
            configs.extend(
                TunedConfig(backend=name, block_sites=b) for b in block_grid
            )
        else:
            configs.append(TunedConfig(backend=name))

    probes: dict[str, ProbeResult] = {}
    for config in configs:
        backend = build_backend(config)
        _run_schedule(backend, ops)  # warm-up (+ first-use compile)
        backend.profile.reset()
        t0 = time.perf_counter()
        for _ in range(max(int(rounds), 1)):
            _run_schedule(backend, ops)
        elapsed = time.perf_counter() - t0
        probes[config.label] = ProbeResult(
            config=config,
            probe_sites=probe_sites,
            probe_units=float(max(int(rounds), 1)),
            measured_s=elapsed,
            costs=measured_costs(backend.profile),
        )
    return probes


def probe_forkjoin(cpu_count: int | None = None):
    """Calibrate the barrier model from a tiny real threaded run.

    Returns ``None`` on single-core machines — there is no parallel
    configuration worth pricing, and a threads probe would only measure
    oversubscription noise.
    """
    cpu = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    if cpu < 2:
        return None
    from ..core.backends import make_engine
    from ..phylo.models import gtr
    from ..phylo.rates import GammaRates
    from ..phylo.simulate import simulate_dataset

    sim = simulate_dataset(n_taxa=8, n_sites=256, seed=99)
    pat = sim.alignment.compress()
    samples = {}
    for workers in sorted({2, min(4, cpu)}):
        with make_engine(
            pat, sim.tree, gtr(), GammaRates(1.0, 4),
            backend="blocked", workers=workers, execution="threads",
        ) as eng:
            eng.log_likelihood()
            stats = eng.barrier_stats
            if stats is not None and stats.regions:
                samples[workers] = stats
    if not samples:
        return None
    return calibrate_forkjoin(samples)


# ----------------------------------------------------------------------
# persistence
# ----------------------------------------------------------------------
def default_cache_path() -> Path:
    """Tuning-cache location: ``$REPRO_TUNE_CACHE`` or the user cache dir."""
    override = os.environ.get(TUNE_CACHE_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "tuning.json"


class TuningCache:
    """JSON-backed decision store, written atomically."""

    def __init__(self, path: Path | None = None) -> None:
        self.path = Path(path) if path is not None else default_cache_path()
        self._data: dict | None = None

    def _load(self) -> dict:
        if self._data is None:
            try:
                raw = json.loads(self.path.read_text())
            except (OSError, ValueError):
                raw = {}
            if raw.get("version") != CACHE_VERSION:
                raw = {}
            self._data = {
                "version": CACHE_VERSION,
                "cpu_count": os.cpu_count() or 1,
                "entries": dict(raw.get("entries", {})),
            }
        return self._data

    def get(self, signature: WorkloadSignature) -> Decision | None:
        entry = self._load()["entries"].get(signature.key)
        if not entry:
            return None
        try:
            return Decision(
                signature=signature,
                chosen=TunedConfig.from_dict(entry["chosen"]),
                predicted_s=float(entry.get("predicted_s", 0.0)),
                default_predicted_s=float(
                    entry.get("default_predicted_s", 0.0)
                ),
            )
        except (KeyError, ValueError, TypeError):
            return None

    def put(self, decision: Decision) -> None:
        data = self._load()
        payload = decision.to_dict()
        payload.pop("signature", None)
        data["entries"][decision.signature.key] = payload
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(self.path.parent), prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(data, fh, indent=2, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, self.path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)

    def entries(self) -> dict[str, dict]:
        return dict(self._load()["entries"])


# ----------------------------------------------------------------------
# the tuner
# ----------------------------------------------------------------------
def autotune(
    signature: WorkloadSignature,
    *,
    cache: TuningCache | None = None,
    refresh: bool = False,
    probe_sites: int | None = None,
    rounds: int = 2,
    cpu_count: int | None = None,
) -> Decision:
    """Resolve (probe + decide + persist) the configuration for a workload.

    Cache hits skip probing entirely.  ``refresh=True`` forces a
    re-probe (``repro tune --refresh``).
    """
    cache = cache if cache is not None else TuningCache()
    if not refresh:
        hit = cache.get(signature)
        if hit is not None:
            return hit
    cpu = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    probes = run_probes(
        signature, probe_sites=probe_sites, rounds=rounds
    )
    fj = probe_forkjoin(cpu)
    candidates = enumerate_candidates(
        probes,
        signature.sites_bucket,
        cpu_count=cpu,
        forkjoin_model=fj,
    )
    decision = decide(signature, candidates)
    cache.put(decision)
    return decision


def resolve_auto_backend(
    n_patterns: int,
    n_states: int,
    n_rates: int,
    *,
    prefer_name: bool = False,
    cache: TuningCache | None = None,
):
    """Resolve ``backend="auto"`` to a concrete spec for one workload.

    Call sites that ship backends across a fork boundary (worker pools)
    pass ``prefer_name=True`` to always get a registry name; otherwise a
    tuned block size yields a configured instance.
    """
    signature = WorkloadSignature.from_workload(n_patterns, n_states, n_rates)
    cfg = autotune(signature, cache=cache).chosen
    if prefer_name or cfg.block_sites is None:
        return cfg.backend
    return build_backend(cfg)
