"""Calibration bookkeeping: how the model constants were fixed, and checks.

The reproduction has exactly two kinds of numbers:

1. **Measured/derived** — Table I specs, VM instruction/traffic counts,
   the paper's own latency measurements (20 us PCIe AllReduce, 5 us IB).
   These are never tuned.
2. **Calibrated** — a small set of microarchitectural efficiency
   constants that a cycle-approximate VM cannot derive from first
   principles.  Each was fitted once against a published artefact and
   is frozen in source with a comment; this module records the list,
   re-derives the fitted targets, and reports residuals so drift is
   visible in tests.

Calibrated constants (see the definitions for physical justification):

* ``PIPELINE_EFFICIENCY`` (repro.perf.costmodel) — fitted to Figure 3's
  per-kernel speedups.
* ``SCALAR_IPC['mic512'] = 0.2`` (repro.perf.costmodel) — fitted to
  Table III's small-alignment columns.
* ``MIC_OPENMP = (30 us, 0.7 us/thread)`` (repro.parallel.openmp) —
  fitted to Table III, consistent with EPCC OpenMP overheads on KNC.
* ``MIC_ONCARD_MPI = 40 us`` (repro.parallel.hybrid) — fitted to
  Table III, consistent with Potluri et al.'s intra-MIC MPI numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from .costmodel import CostModel
from .platforms import XEON_E5_2680_2S, XEON_PHI_5110P_1S

__all__ = ["CalibrationReport", "figure3_residuals", "PAPER_FIGURE3"]

#: Figure 3 of the paper: per-kernel MIC speedups vs the 2S E5-2680.
PAPER_FIGURE3 = {
    "newview": 2.0,
    "evaluate": 1.9,
    "derivative_sum": 2.8,
    "derivative_core": 2.0,
}


@dataclass(frozen=True)
class CalibrationReport:
    """Side-by-side of model predictions and the paper's published values."""

    kernel: str
    model_speedup: float
    paper_speedup: float

    @property
    def relative_error(self) -> float:
        return self.model_speedup / self.paper_speedup - 1.0


def figure3_residuals(sites: int = 1_000_000) -> list[CalibrationReport]:
    """Model-vs-paper residuals for the per-kernel speedups.

    Uses the large-alignment limit (per-call overheads negligible), the
    regime Figure 3 effectively measures.
    """
    cpu = CostModel(XEON_E5_2680_2S)
    mic = CostModel(XEON_PHI_5110P_1S)
    out = []
    for kernel, target in PAPER_FIGURE3.items():
        speedup = mic.kernel_speedup_vs(cpu, kernel, sites)
        out.append(
            CalibrationReport(
                kernel=kernel, model_speedup=speedup, paper_speedup=target
            )
        )
    return out
