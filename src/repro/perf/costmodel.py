"""Per-kernel analytic cost model (roofline + overheads).

Converts VM-level kernel measurements into platform-level times:

* **per-site cycles** for each PLF kernel on each ISA come from running
  the vectorized kernel generators on a small site window in the
  cycle-accounting VM (:func:`measure_kernel_cycles`, cached per
  process) — so the analytic model and the simulator can never drift
  apart;
* a per-kernel **pipeline efficiency** factor captures what the simple
  in-order VM model cannot: measured KNC efficiency on mixed-arithmetic
  kernels (register pressure, bank conflicts, partial prefetch
  coverage).  Factors are calibrated once against the paper's Figure 3
  and recorded in :data:`PIPELINE_EFFICIENCY`; the calibration residuals
  are reported by :mod:`repro.perf.calibration`;
* a per-call **serial overhead** models the non-parallel work of every
  kernel invocation (transition-matrix construction, traversal
  bookkeeping) which runs on *one* thread — cheap on a Xeon core,
  expensive on a 1 GHz in-order MIC core.  This term is what makes the
  MIC lose on small alignments (Table III's 10K column) long before
  communication is counted.

``kernel_time(kernel, sites_per_worker, platform)`` returns seconds of
wall time for the data-parallel part of one invocation on one platform.
Synchronisation and communication are layered on top by
:mod:`repro.parallel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from .platforms import PlatformSpec

__all__ = [
    "KernelCycles",
    "measure_kernel_cycles",
    "PIPELINE_EFFICIENCY",
    "SERIAL_OVERHEAD_CYCLES",
    "KIND_PRICING",
    "CostModel",
    "MeasuredKernelCost",
    "measured_costs",
    "wave_schedule_costs",
    "MeasuredSyncCost",
    "measured_sync_cost",
    "calibrate_forkjoin",
]

KERNELS = ("newview", "evaluate", "derivative_sum", "derivative_core")

#: How each scheduled kernel *kind* is priced in terms of the paper's
#: four measured kernels.  Pre-order partial ops run the same
#: arithmetic as ``newview`` (same FMA streams, different operand
#: roles), so they are priced identically; an ``edge_gradient`` op is
#: one ``derivative_sum`` (element-wise product of the pre-order and
#: post-order CLAs) followed by one ``derivative_core`` evaluation.
KIND_PRICING: dict[str, tuple[str, ...]] = {
    "newview_tip_tip": ("newview",),
    "newview_tip_inner": ("newview",),
    "newview_inner_inner": ("newview",),
    "preorder_tip_tip": ("newview",),
    "preorder_tip_inner": ("newview",),
    "preorder_inner_inner": ("newview",),
    "evaluate": ("evaluate",),
    "derivative_sum": ("derivative_sum",),
    "derivative_core": ("derivative_core",),
    "edge_gradient": ("derivative_sum", "derivative_core"),
}


@dataclass(frozen=True)
class KernelCycles:
    """VM measurement: per-site compute cycles, DRAM traffic, and flops."""

    kernel: str
    isa_name: str
    issue_cycles_per_site: float
    dram_bytes_per_site: float
    flops_per_site: float = 0.0

    @property
    def arithmetic_intensity(self) -> float:
        """Flops per DRAM byte — the roofline x-axis."""
        return self.flops_per_site / self.dram_bytes_per_site

    def roofline_cycles_per_site(
        self, bytes_per_cycle: float, efficiency: float
    ) -> float:
        """max(compute / efficiency, bandwidth floor) per site."""
        return max(
            self.issue_cycles_per_site / efficiency,
            self.dram_bytes_per_site / bytes_per_cycle,
        )


@lru_cache(maxsize=None)
def measure_kernel_cycles(isa_name: str, window_sites: int = 128) -> dict[str, KernelCycles]:
    """Run every PLF kernel on the VM and extract per-site resources.

    Results are cached per ISA for the lifetime of the process; the
    window is large enough that per-call constants (loading the matrix
    registers) amortise below 1%.
    """
    from ..core import kernels as ref
    from ..core.vectorized import (
        emit_derivative_core,
        emit_derivative_sum,
        emit_evaluate,
        emit_newview_inner_inner,
        prepare_derivative_consts,
        prepare_evaluate_consts,
        prepare_newview_consts,
        setup_buffers,
    )
    from ..mic.device import Device
    from .platforms import TABLE1_PLATFORMS

    spec = next(
        p for p in TABLE1_PLATFORMS if p.isa is not None and p.isa.name == isa_name
    )
    device = Device(spec)
    from ..phylo.models import gtr
    from ..phylo.rates import GammaRates

    rng = np.random.default_rng(12345)
    model = gtr(
        np.array([1.2, 3.1, 0.9, 1.1, 3.4, 1.0]),
        np.array([0.3, 0.2, 0.2, 0.3]),
    )
    eigen = model.eigen()
    gamma = GammaRates(0.8, 4)
    z_left = rng.uniform(0.1, 1.0, size=(window_sites, 4, 4))
    z_right = rng.uniform(0.1, 1.0, size=(window_sites, 4, 4))
    weights = np.ones(window_sites)

    out: dict[str, KernelCycles] = {}

    def record(name: str, stats) -> None:
        out[name] = KernelCycles(
            kernel=name,
            isa_name=isa_name,
            issue_cycles_per_site=(stats.issue_cycles + stats.stall_cycles)
            / window_sites,
            dram_bytes_per_site=stats.memory.dram_bytes / window_sites,
            flops_per_site=stats.flops / window_sites,
        )

    vm = device.make_vm()
    bufs = setup_buffers(vm, z_left, z_right, weights=weights)
    record("derivative_sum", vm.run(emit_derivative_sum(vm.isa, bufs)))
    prepare_evaluate_consts(vm, bufs, eigen, gamma.rates, gamma.weights, 0.3)
    record("evaluate", vm.run(emit_evaluate(vm.isa, bufs)))
    prepare_newview_consts(vm, bufs, eigen, gamma.rates, 0.2, 0.4)
    record("newview", vm.run(emit_newview_inner_inner(vm.isa, bufs)))

    sumbuf = ref.derivative_sum(z_left, z_right)
    vm2 = device.make_vm()
    bufs2 = setup_buffers(vm2, sumbuf, z_right, weights=weights)
    prepare_derivative_consts(vm2, bufs2, eigen, gamma.rates, gamma.weights, 0.3)
    record(
        "derivative_core",
        vm2.run(emit_derivative_core(vm2.isa, bufs2, site_block=vm2.isa.width)),
    )
    return out


#: Fraction of the VM's idealised issue rate each kernel sustains on each
#: ISA.  Out-of-order Xeon cores run the streams at the modelled rate
#: (1.0).  On KNC the mixed-arithmetic kernels lose ground to in-order
#: hazards the VM's simple penalty model does not capture (register
#: pressure, vector-unit/thread scheduling, partial prefetch coverage);
#: factors calibrated against the paper's published Figure 3 speedups
#: (derivativeSum 2.8x, newview ~2.0x, evaluate ~1.9x,
#: derivativeCore ~2.0x) — see repro.perf.calibration for residuals.
PIPELINE_EFFICIENCY: dict[tuple[str, str], float] = {
    ("mic512", "newview"): 0.715,
    ("mic512", "evaluate"): 0.89,
    ("mic512", "derivative_sum"): 1.0,  # bandwidth-bound, issue rate moot
    ("mic512", "derivative_core"): 1.07,  # VM's dependency penalty overshoots
    ("avx256", "newview"): 1.0,
    ("avx256", "evaluate"): 1.0,
    ("avx256", "derivative_sum"): 1.0,
    ("avx256", "derivative_core"): 1.0,
}

#: Serial (single-thread) work per kernel invocation: transition-matrix
#: construction (16 exps + a 4x4x4 rearrangement), traversal/bookkeeping,
#: Newton-iteration control flow.  Charged per call at the platform's
#: *scalar* execution rate.
SERIAL_OVERHEAD_CYCLES: dict[str, float] = {
    "newview": 14_000.0,  # two P-matrix setups + descriptor handling
    "evaluate": 8_000.0,
    "derivative_sum": 6_000.0,
    "derivative_core": 3_000.0,  # exp table only (reused across NR iters)
}

#: Scalar-pipeline slowdown relative to the modelled clock: big Xeon
#: cores execute the scalar bookkeeping at ~2 ops/cycle; the in-order
#: KNC core at ~0.2 (no out-of-order window, 2-cycle decode per thread,
#: no branch prediction to speak of) — KNC scalar code is widely
#: reported an order of magnitude slower per clock than Sandy Bridge.
#: Value calibrated against Table III (see repro.perf.calibration).
SCALAR_IPC: dict[str, float] = {"avx256": 2.0, "mic512": 0.2}


@dataclass(frozen=True)
class CostModel:
    """Kernel timing for one platform (one card / one CPU system)."""

    platform: PlatformSpec

    def _isa_name(self) -> str:
        if self.platform.isa is None:
            raise ValueError(f"{self.platform.name} has no executable ISA")
        return self.platform.isa.name

    def cycles_per_site(self, kernel: str) -> float:
        """Roofline cycles per site per core for one kernel."""
        isa = self._isa_name()
        meas = measure_kernel_cycles(isa)[kernel]
        eff = PIPELINE_EFFICIENCY[(isa, kernel)]
        return meas.roofline_cycles_per_site(
            self.platform.bytes_per_cycle_per_core, eff
        )

    def serial_overhead_s(self, kernel: str) -> float:
        """Per-invocation serial time (P-matrices, bookkeeping)."""
        isa = self._isa_name()
        cycles = SERIAL_OVERHEAD_CYCLES[kernel] / SCALAR_IPC[isa]
        return cycles / (self.platform.clock_ghz * 1e9)

    def kernel_time(
        self, kernel: str, sites: float, n_workers: int | None = None
    ) -> float:
        """Wall seconds for one invocation over ``sites`` patterns.

        ``n_workers`` is the number of cores the data-parallel loop is
        spread over (default: every core of the platform); the serial
        overhead is charged once regardless.
        """
        if kernel not in KERNELS:
            raise KeyError(f"unknown kernel {kernel!r}")
        if sites < 0:
            raise ValueError("negative site count")
        n_workers = n_workers or self.platform.cores
        sites_per_core = np.ceil(sites / n_workers)
        cyc = self.cycles_per_site(kernel) * sites_per_core
        return cyc / (self.platform.clock_ghz * 1e9) + self.serial_overhead_s(kernel)

    def kernel_speedup_vs(self, other: "CostModel", kernel: str, sites: float) -> float:
        """Whole-platform speedup of ``self`` over ``other`` for a kernel."""
        return other.kernel_time(kernel, sites) / self.kernel_time(kernel, sites)

    def wave_time(
        self,
        kernel: str,
        sites: float,
        width: int,
        n_workers: int | None = None,
        batched: bool = True,
    ) -> float:
        """Wall seconds for one *wave* of ``width`` independent calls.

        The data-parallel part scales with the wave width (every op
        sweeps its sites); the per-call serial overhead (P-matrix
        construction, bookkeeping) is charged **once per wave** under
        stacked dispatch (``batched=True``) but **once per op** on the
        per-op fallback path — the asymmetry the execution-plan IR
        exploits, and the term that dominates on the in-order MIC core.
        """
        if width < 0:
            raise ValueError("negative wave width")
        if width == 0:
            return 0.0
        if kernel not in KERNELS:
            raise KeyError(f"unknown kernel {kernel!r}")
        n_workers = n_workers or self.platform.cores
        sites_per_core = np.ceil(sites / n_workers)
        cyc = self.cycles_per_site(kernel) * sites_per_core * width
        compute = cyc / (self.platform.clock_ghz * 1e9)
        n_overheads = 1 if batched else width
        return compute + n_overheads * self.serial_overhead_s(kernel)


def wave_schedule_costs(
    model: CostModel, wave_summary, sites: float, n_workers: int | None = None
) -> dict[str, float]:
    """Serial-depth vs parallel-width decomposition of a wave schedule.

    ``wave_summary`` is a :class:`repro.core.schedule.WaveStats` (or its
    ``to_dict()`` payload as attached to a
    :class:`repro.perf.trace.KernelTrace`).  Each scheduled kernel kind
    in the summary's ``kernel_mix`` is priced via :data:`KIND_PRICING`
    (pre-order partials as ``newview``, ``edge_gradient`` as a
    ``derivative_sum`` + ``derivative_core`` pair); ops not covered by
    the mix — summaries predating the bidirectional IR carry none —
    fall back to ``newview`` pricing, the historical behaviour.

    Returns a dict with

    * ``serial_depth_s`` — per-wave serial overhead (one P-matrix/setup
      charge per wave: the irreducible critical-path cost),
    * ``parallel_width_s`` — data-parallel compute summed over every op
      (spreadable over ``n_workers``),
    * ``per_op_serial_s`` — serial overhead the per-op path would pay
      (one charge per op),
    * ``batch_saving_s`` — overhead eliminated by stacked dispatch
      (``per_op_serial_s - serial_depth_s``),
    * ``batched_total_s`` / ``per_op_total_s`` — modelled wall time of
      the two dispatch modes.
    """
    if hasattr(wave_summary, "to_dict"):
        wave_summary = wave_summary.to_dict()
    waves = int(wave_summary.get("waves", 0))
    ops = int(wave_summary.get("ops", 0))
    n_workers = n_workers or model.platform.cores
    sites_per_core = float(np.ceil(sites / n_workers))
    clock_hz = model.platform.clock_ghz * 1e9

    def op_compute(kernel: str) -> float:
        return model.cycles_per_site(kernel) * sites_per_core / clock_hz

    mix = {
        str(k): int(n)
        for k, n in (wave_summary.get("kernel_mix") or {}).items()
        if str(k) in KIND_PRICING
    }
    plain = max(ops - sum(mix.values()), 0)  # kinds unknown to the summary
    parallel_width_s = plain * op_compute("newview")
    per_op_serial_s = plain * model.serial_overhead_s("newview")
    for kind, n in mix.items():
        for kernel in KIND_PRICING[kind]:
            parallel_width_s += n * op_compute(kernel)
            per_op_serial_s += n * model.serial_overhead_s(kernel)
    # one setup charge per wave at the schedule's op-weighted mean rate
    serial_depth_s = waves * (per_op_serial_s / ops) if ops else 0.0
    return {
        "waves": float(waves),
        "ops": float(ops),
        "serial_depth_s": serial_depth_s,
        "parallel_width_s": parallel_width_s,
        "per_op_serial_s": per_op_serial_s,
        "batch_saving_s": per_op_serial_s - serial_depth_s,
        "batched_total_s": serial_depth_s + parallel_width_s,
        "per_op_total_s": per_op_serial_s + parallel_width_s,
    }


# ----------------------------------------------------------------------
# measured costs (backend profiles -> calibration input)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MeasuredKernelCost:
    """Empirical per-kernel cost from a profiling backend.

    The analytic side of this module predicts per-site times from VM
    constants; this is its measured counterpart, built from the wall
    times and traffic a :class:`repro.core.backends.KernelProfile`
    records on the machine actually running the kernels.  Comparing the
    two (predicted vs. ``seconds_per_site``) is how backend pipeline
    efficiencies are calibrated.
    """

    kernel: str
    calls: int
    site_units: float
    seconds: float
    bytes_moved: int

    @property
    def timed(self) -> bool:
        """Whether this kernel was actually observed (dispatched at all)."""
        return self.site_units > 0

    @property
    def seconds_per_site(self) -> float | None:
        """Measured wall seconds per (pattern x call) work unit.

        ``None`` for kernels the profile never observed — an untimed
        kernel has no measured cost, and returning ``0.0`` would let
        cost-model consumers (the autotuner above all) price it as
        *free*.  Callers must skip ``None`` entries (or check
        :attr:`timed`).
        """
        return self.seconds / self.site_units if self.site_units else None

    @property
    def bytes_per_site(self) -> float:
        """Measured traffic (lower bound) per work unit."""
        return self.bytes_moved / self.site_units if self.site_units else 0.0

    @property
    def effective_bandwidth_gbs(self) -> float:
        """Bytes moved over wall time, in GB/s (0 when untimed)."""
        return self.bytes_moved / self.seconds / 1e9 if self.seconds else 0.0


def measured_costs(source) -> dict[str, MeasuredKernelCost]:
    """Extract per-kernel measured costs from a profile or trace.

    ``source`` may be

    * a :class:`repro.core.backends.KernelProfile` (any profiling
      backend's ``profile`` attribute), or
    * a :class:`repro.perf.trace.KernelTrace` whose ``measured_seconds``
      field is populated (i.e. recorded through a profiling backend).

    Returns a dict over the paper's four kernels.  Raises ``ValueError``
    for a trace with no measurements — analytic replay needs no
    calibration input, so asking for one is a caller bug.
    """
    if hasattr(source, "merged_seconds") and hasattr(source, "merged_site_units"):
        calls = source.merged()
        units = source.merged_site_units()
        seconds = source.merged_seconds()
        nbytes = source.merged_bytes()
    elif hasattr(source, "calls") and hasattr(source, "traced_sites"):
        if source.measured_seconds is None:
            raise ValueError(
                "trace carries no measurements; record it through a "
                "profiling backend (see repro.perf.trace.trace_from_profile)"
            )
        calls = dict(source.calls)
        units = {k: n * source.traced_sites for k, n in calls.items()}
        seconds = dict(source.measured_seconds)
        nbytes = dict(source.measured_bytes or {k: 0 for k in calls})
    else:
        raise TypeError(
            f"expected a KernelProfile or measured KernelTrace, got {type(source)!r}"
        )
    return {
        k: MeasuredKernelCost(
            kernel=k,
            calls=int(calls.get(k, 0)),
            site_units=float(units.get(k, 0)),
            seconds=float(seconds.get(k, 0.0)),
            bytes_moved=int(nbytes.get(k, 0)),
        )
        for k in KERNELS
    }


# ----------------------------------------------------------------------
# measured synchronisation costs (real fork-join regions -> calibration)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MeasuredSyncCost:
    """Empirical fork-join region cost from a real parallel engine.

    The PThreads/OpenMP side of the model predicts the two-barrier
    region overhead from published microbenchmark constants; this is the
    measured counterpart, built from the
    :class:`repro.parallel.pool.BarrierStats` a real
    :class:`~repro.parallel.pool.WorkerPool` (or threaded fork-join
    engine) records while running: regions observed, mean wall time per
    region, mean announcement + barrier + straggler overhead (region
    wall time minus the slowest worker's compute), and the fraction of
    region time lost to synchronisation.
    """

    regions: int
    mean_region_s: float
    mean_overhead_s: float
    mean_compute_s: float
    overhead_fraction: float


def measured_sync_cost(stats) -> MeasuredSyncCost:
    """Summarise one engine's measured barrier statistics.

    ``stats`` is a :class:`repro.parallel.pool.BarrierStats` instance or
    its ``to_dict()`` payload (what benchmark JSON artefacts store).
    """
    if hasattr(stats, "to_dict"):
        stats = stats.to_dict()
    regions = int(stats.get("regions", 0))
    region_s = float(stats.get("region_seconds", 0.0))
    overhead_s = float(stats.get("overhead_seconds", 0.0))
    compute_s = float(stats.get("compute_seconds", 0.0))
    return MeasuredSyncCost(
        regions=regions,
        mean_region_s=region_s / regions if regions else 0.0,
        mean_overhead_s=overhead_s / regions if regions else 0.0,
        mean_compute_s=compute_s / regions if regions else 0.0,
        overhead_fraction=overhead_s / region_s if region_s else 0.0,
    )


def calibrate_forkjoin(samples: dict, name: str = "measured-forkjoin"):
    """Fit a :class:`~repro.parallel.pthreads.ForkJoinModel` to measured
    barriers.

    ``samples`` maps worker count -> ``BarrierStats`` (or its dict
    payload).  The fork-join region overhead is modelled as two barriers
    of ``a + b * n`` seconds each, so the mean measured region overhead
    at each worker count gives one point of ``2 * (a + b * n)``; the
    constants are recovered by least squares (clamped non-negative).  A
    single sample pins only the constant term (``b = 0``) — measure at
    two or more worker counts to separate the per-thread slope, exactly
    how the modelled constants were calibrated from EPCC-style
    microbenchmarks.
    """
    from ..parallel.openmp import OpenMPModel
    from ..parallel.pthreads import ForkJoinModel

    points = [
        (int(n), measured_sync_cost(stats).mean_overhead_s)
        for n, stats in samples.items()
        if measured_sync_cost(stats).regions > 0
    ]
    if not points:
        raise ValueError("no measured regions to calibrate from")
    if len(points) == 1:
        a = max(points[0][1] / 2.0, 0.0)
        b = 0.0
    else:
        arr = np.array(points, dtype=np.float64)
        design = np.column_stack([np.ones(arr.shape[0]), arr[:, 0]])
        coef, *_ = np.linalg.lstsq(design, arr[:, 1] / 2.0, rcond=None)
        a, b = max(float(coef[0]), 0.0), max(float(coef[1]), 0.0)
    return ForkJoinModel(
        name=name,
        barrier=OpenMPModel(
            name=f"{name}-barrier", fork_base_s=a, barrier_per_thread_s=b
        ),
    )
