"""Platform descriptors — the paper's Table I as executable data.

Every number below is taken from Table I of the paper ("Specifications
of CPUs and accelerators used for performance evaluation"); derived
quantities (per-core bandwidth share, peak flops/cycle) are computed,
not hard-coded, so the cost models stay consistent with the table.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mic.isa import AVX256, MIC512, VectorISA

__all__ = [
    "PlatformSpec",
    "XEON_E5_2630_2S",
    "XEON_E5_2680_2S",
    "XEON_PHI_5110P_1S",
    "XEON_PHI_5110P_2S",
    "NVIDIA_K20",
    "TABLE1_PLATFORMS",
    "BASELINE",
]


@dataclass(frozen=True)
class PlatformSpec:
    """One row of Table I plus the microarchitectural facts models need."""

    name: str
    peak_dp_gflops: float
    cores: int
    clock_ghz: float
    memory_gb: float
    memory_bw_gbs: float
    max_tdp_w: float
    approx_price_usd: float
    isa: VectorISA | None = None  # None for reference-only rows (K20)
    threads_per_core: int = 1
    sockets_or_cards: int = 1
    l1_bytes: int = 32 * 1024
    l2_bytes: int = 256 * 1024
    dram_latency_ns: float = 80.0
    #: Fraction of peak DRAM bandwidth sustainable by streaming kernels.
    bandwidth_efficiency: float = 0.8

    @property
    def flops_per_cycle_per_core(self) -> float:
        """Peak DP flops per cycle per core implied by Table I."""
        return self.peak_dp_gflops / self.cores / self.clock_ghz

    @property
    def bytes_per_cycle_per_core(self) -> float:
        """Sustainable DRAM bytes per core-cycle (chip BW shared evenly)."""
        return (
            self.memory_bw_gbs
            * self.bandwidth_efficiency
            / self.cores
            / self.clock_ghz
        )

    @property
    def hardware_threads(self) -> int:
        return self.cores * self.threads_per_core

    def energy_wh(self, runtime_s: float) -> float:
        """The paper's energy estimate: ``E[Wh] = MaxTDP * t / 3600``."""
        return self.max_tdp_w * runtime_s / 3600.0


# Table I rows ---------------------------------------------------------------

XEON_E5_2630_2S = PlatformSpec(
    name="2S Xeon E5-2630",
    peak_dp_gflops=220.0,
    cores=12,
    clock_ghz=2.30,
    memory_gb=32.0,
    memory_bw_gbs=85.2,
    max_tdp_w=190.0,
    approx_price_usd=1224.0,
    isa=AVX256,
    threads_per_core=1,  # hyper-threading off in the paper's runs (1 rank/core)
    sockets_or_cards=2,
    l2_bytes=256 * 1024,
    dram_latency_ns=80.0,
)

XEON_E5_2680_2S = PlatformSpec(
    name="2S Xeon E5-2680",
    peak_dp_gflops=346.0,
    cores=16,
    clock_ghz=2.70,
    memory_gb=32.0,
    memory_bw_gbs=102.4,
    max_tdp_w=260.0,
    approx_price_usd=3486.0,
    isa=AVX256,
    threads_per_core=1,
    sockets_or_cards=2,
    l2_bytes=256 * 1024,
    dram_latency_ns=80.0,
)

XEON_PHI_5110P_1S = PlatformSpec(
    name="1S Xeon Phi 5110P",
    peak_dp_gflops=1074.0,
    cores=60,
    clock_ghz=1.053,
    memory_gb=8.0,
    memory_bw_gbs=320.0,
    max_tdp_w=225.0,
    approx_price_usd=2649.0,
    isa=MIC512,
    threads_per_core=4,
    sockets_or_cards=1,
    l2_bytes=512 * 1024,
    dram_latency_ns=300.0,
    # GDDR5 on KNC sustains a smaller fraction of its huge peak
    bandwidth_efficiency=0.55,
)

XEON_PHI_5110P_2S = PlatformSpec(
    name="2S Xeon Phi 5110P",
    peak_dp_gflops=2148.0,
    cores=120,
    clock_ghz=1.053,
    memory_gb=16.0,
    memory_bw_gbs=640.0,
    max_tdp_w=450.0,
    approx_price_usd=5298.0,
    isa=MIC512,
    threads_per_core=4,
    sockets_or_cards=2,
    l2_bytes=512 * 1024,
    dram_latency_ns=300.0,
    bandwidth_efficiency=0.55,
)

#: Listed in Table I "for reference only" — no ISA model, never executed.
NVIDIA_K20 = PlatformSpec(
    name="NVIDIA K20 (ref.)",
    peak_dp_gflops=1170.0,
    cores=2496,
    clock_ghz=0.706,
    memory_gb=5.0,
    memory_bw_gbs=208.0,
    max_tdp_w=225.0,
    approx_price_usd=2800.0,
    isa=None,
)

TABLE1_PLATFORMS = (
    XEON_E5_2630_2S,
    XEON_E5_2680_2S,
    XEON_PHI_5110P_1S,
    XEON_PHI_5110P_2S,
    NVIDIA_K20,
)

#: The paper's primary performance baseline (all speedups relative to it).
BASELINE = XEON_E5_2680_2S
