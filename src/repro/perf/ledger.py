"""Perf-regression ledger: one schema for every benchmark artifact.

The repo's performance story used to live in five loose ``BENCH_*.json``
files, each with its own ad-hoc shape — comparable only by eyeball.
This module turns that trajectory into a queryable artifact, following
the Gysela Xeon Phi study's methodology of treating measured kernel
timings as first-class, comparable data across configurations:

* :class:`LedgerEntry` — the unit row: a benchmark id, a *config
  fingerprint* (stable hash of the parameters that make two runs
  comparable), a flat ``metric name -> float`` mapping, and host info;
* :class:`Ledger` — an append-only collection with atomic JSON
  persistence (``PERF_LEDGER.json`` at the repo root is the committed
  baseline);
* :func:`entries_from_report` — adapters that ingest each of the five
  legacy ``BENCH_*.json`` shapes (obs overhead, backends, scheduler,
  gradients, parallel scaling) into ledger entries, so history is not
  lost;
* :func:`compare` — the regression diff: matches entries across two
  ledgers by ``(benchmark, fingerprint)``, classifies each shared
  metric as lower-better or higher-better by name convention, and
  flags relative movements beyond a threshold.

The CLI front end is ``repro bench``: run suites and append entries,
``repro bench --compare BASELINE`` to diff and exit nonzero on
regression (``--report-only`` for advisory CI lanes).
"""

from __future__ import annotations

import hashlib
import json
import platform
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "SCHEMA",
    "DEFAULT_THRESHOLD",
    "LedgerEntry",
    "Ledger",
    "MetricDelta",
    "config_fingerprint",
    "host_info",
    "entries_from_report",
    "load_report",
    "metric_direction",
    "compare",
    "render_compare",
]

#: Schema tag written into every ledger file.
SCHEMA = "repro-perf-ledger/1"

#: Default relative-change threshold for :func:`compare` (10%).
DEFAULT_THRESHOLD = 0.10

#: Name fragments marking a metric as lower-is-better (durations,
#: overheads, prediction error) — checked before the higher-is-better
#: set.
_LOWER_BETTER_SUFFIXES = ("_s", "_seconds", "_ns", "_us", "_ms")
_LOWER_BETTER_SUBSTRINGS = ("overhead", "mispredict")

#: Name fragments marking a metric as higher-is-better.
_HIGHER_BETTER_SUBSTRINGS = ("speedup",)

#: Full-name prefixes that are *informational* despite a timing-style
#: suffix: the autotuner's cost-model predictions (``predicted_s``,
#: ``default_predicted_s``) describe the model's belief, not a measured
#: duration — a prediction drifting up is a model recalibration, not a
#: performance regression.
_INFORMATIONAL_PREFIXES = (
    "autotune.predicted",
    "autotune.default_predicted",
)


def config_fingerprint(config: dict) -> str:
    """Stable short hash of the parameters that make runs comparable.

    Canonical-JSON SHA-256, truncated to 12 hex chars — collisions
    across a repo's worth of benchmark configs are not a concern, and
    short fingerprints keep the ledger and CLI output readable.
    """
    blob = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:12]


def host_info() -> dict:
    """Where a benchmark ran: platform, python, numpy, CPU budget."""
    import os

    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep in practice
        numpy_version = None
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": numpy_version,
        "cpu_count": os.cpu_count(),
    }


@dataclass
class LedgerEntry:
    """One benchmark measurement: who ran, under what config, measuring what.

    ``metrics`` is flat (``name -> float``); nested structure from the
    source report is flattened with dotted keys, so every number stays
    individually addressable by :func:`compare`.
    """

    benchmark: str
    config: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    host: dict = field(default_factory=dict)
    fingerprint: str = ""
    source: str = ""

    def __post_init__(self) -> None:
        if not self.fingerprint:
            self.fingerprint = config_fingerprint(self.config)

    @property
    def key(self) -> tuple[str, str]:
        """The identity :func:`compare` matches entries on."""
        return (self.benchmark, self.fingerprint)

    def to_dict(self) -> dict:
        """JSON-ready row."""
        return {
            "benchmark": self.benchmark,
            "fingerprint": self.fingerprint,
            "config": self.config,
            "metrics": self.metrics,
            "host": self.host,
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "LedgerEntry":
        """Inverse of :meth:`to_dict` (unknown keys ignored)."""
        return cls(
            benchmark=d["benchmark"],
            config=d.get("config", {}),
            metrics=d.get("metrics", {}),
            host=d.get("host", {}),
            fingerprint=d.get("fingerprint", ""),
            source=d.get("source", ""),
        )


class Ledger:
    """Append-only collection of :class:`LedgerEntry` rows."""

    def __init__(self, entries: list[LedgerEntry] | None = None) -> None:
        self.entries: list[LedgerEntry] = list(entries or [])

    def __len__(self) -> int:
        return len(self.entries)

    def append(self, entry: LedgerEntry) -> None:
        """Add one row."""
        self.entries.append(entry)

    def extend(self, entries: list[LedgerEntry]) -> None:
        """Add several rows."""
        self.entries.extend(entries)

    def by_key(self) -> dict[tuple[str, str], LedgerEntry]:
        """Latest entry per ``(benchmark, fingerprint)`` identity."""
        out: dict[tuple[str, str], LedgerEntry] = {}
        for e in self.entries:  # later rows win: the ledger is append-only
            out[e.key] = e
        return out

    def benchmarks(self) -> list[str]:
        """Distinct benchmark ids, sorted."""
        return sorted({e.benchmark for e in self.entries})

    def to_dict(self) -> dict:
        """JSON-ready document (schema-tagged)."""
        return {
            "schema": SCHEMA,
            "entries": [e.to_dict() for e in self.entries],
        }

    def save(self, path: str | Path) -> Path:
        """Atomically write the ledger as JSON; returns the path."""
        from ..util import atomic_write_text

        path = Path(path)
        atomic_write_text(path, json.dumps(self.to_dict(), indent=1) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "Ledger":
        """Read a ledger file; raises ``ValueError`` on schema mismatch."""
        data = json.loads(Path(path).read_text())
        if not isinstance(data, dict) or data.get("schema") != SCHEMA:
            raise ValueError(
                f"{path}: not a perf ledger (expected schema {SCHEMA!r})"
            )
        return cls([LedgerEntry.from_dict(d) for d in data.get("entries", [])])


# ----------------------------------------------------------------------
# legacy BENCH_*.json ingestion
# ----------------------------------------------------------------------
def _flatten(value, prefix: str = "") -> dict[str, float]:
    """Numeric leaves of a nested dict as ``a.b.c -> float``."""
    out: dict[str, float] = {}
    if isinstance(value, bool):
        out[prefix] = float(value)
    elif isinstance(value, (int, float)):
        out[prefix] = float(value)
    elif isinstance(value, dict):
        for k, v in value.items():
            out.update(_flatten(v, f"{prefix}.{k}" if prefix else str(k)))
    return out


def _sniff(data: dict) -> str:
    """Which legacy report shape a raw BENCH dict is."""
    if "probe_ns" in data:
        return "obs"
    if "backends" in data and "results" in data:
        return "backends"
    if "configs" in data:
        return "parallel"
    results = data.get("results")
    if isinstance(results, list) and results:
        if "per_op_s" in results[0]:
            return "scheduler"
        if "one_traversal_s" in results[0]:
            return "gradients"
    raise ValueError("unrecognised benchmark report shape")


def entries_from_report(data: dict, source: str = "") -> list[LedgerEntry]:
    """Ledger entries for one raw benchmark report dict.

    Accepts the unified shape new benchmarks emit (``{"benchmark": id,
    "entries": [{config, metrics}, ...]}``) and all five legacy
    ``BENCH_*.json`` shapes; raises ``ValueError`` on anything else.
    One entry is produced per measured configuration (per sites count,
    per worker count, ...), so comparisons stay per-config.
    """
    host = host_info()
    if isinstance(data.get("entries"), list) and "benchmark" in data:
        return [
            LedgerEntry(
                benchmark=data["benchmark"],
                config=row.get("config", {}),
                metrics=_flatten(row.get("metrics", {})),
                host=row.get("host", host),
                source=source,
            )
            for row in data["entries"]
        ]

    kind = _sniff(data)
    entries: list[LedgerEntry] = []
    if kind == "obs":
        config = {
            "backend": data.get("backend"),
            "n_taxa": data.get("n_taxa"),
            "n_sites": data.get("n_sites"),
            "probes_per_dispatch": data.get("probes_per_dispatch"),
        }
        metrics = {
            k: float(data[k])
            for k in (
                "probe_ns",
                "disabled_s",
                "disabled_ns_per_dispatch",
                "enabled_s",
                "disabled_overhead_ratio",
                "enabled_overhead_ratio",
            )
            if isinstance(data.get(k), (int, float))
        }
        entries.append(
            LedgerEntry("bench_obs", config, metrics, host, source=source)
        )
    elif kind == "backends":
        for row in data["results"]:
            config = {"sites": row.get("sites"), "backends": data["backends"]}
            metrics = _flatten(
                {k: v for k, v in row.items() if k != "sites"}
            )
            entries.append(
                LedgerEntry(
                    "bench_backends", config, metrics, host, source=source
                )
            )
    elif kind == "scheduler":
        for row in data["results"]:
            config = {
                "sites": row.get("sites"),
                "n_taxa": row.get("n_taxa"),
                "backend": data.get("backend"),
            }
            metrics = _flatten(
                {
                    k: v
                    for k, v in row.items()
                    if k not in ("sites", "n_taxa", "plan")
                }
            )
            entries.append(
                LedgerEntry(
                    "bench_scheduler", config, metrics, host, source=source
                )
            )
    elif kind == "gradients":
        for row in data["results"]:
            config = {
                "sites": row.get("sites"),
                "n_taxa": row.get("n_taxa"),
                "backend": data.get("backend"),
            }
            metrics = _flatten(
                {
                    k: v
                    for k, v in row.items()
                    if k not in ("sites", "n_taxa")
                }
            )
            entries.append(
                LedgerEntry(
                    "bench_gradients", config, metrics, host, source=source
                )
            )
    else:  # parallel
        for cfg in data["configs"]:
            for mode, runs in cfg.get("modes", {}).items():
                for run in runs:
                    config = {
                        "sites": cfg.get("sites"),
                        "mode": mode,
                        "workers": run.get("workers"),
                    }
                    metrics = _flatten(
                        {
                            k: v
                            for k, v in run.items()
                            if k != "workers"
                        }
                    )
                    metrics["serial_seconds"] = float(
                        cfg.get("serial_seconds", 0.0)
                    )
                    entries.append(
                        LedgerEntry(
                            "bench_parallel",
                            config,
                            metrics,
                            data.get("env", host),
                            source=source,
                        )
                    )
    return entries


def load_report(path: str | Path) -> list[LedgerEntry]:
    """Read one benchmark report file into ledger entries."""
    path = Path(path)
    return entries_from_report(json.loads(path.read_text()), source=path.name)


# ----------------------------------------------------------------------
# comparison
# ----------------------------------------------------------------------
def metric_direction(name: str) -> str | None:
    """``"lower"``/``"higher"``-is-better, or ``None`` for informational.

    Classified by name convention: duration/overhead metrics (``*_s``,
    ``*_seconds``, ``*_ns``, ``*overhead*``) and prediction error
    (``*mispredict*``) want to go down, speedups want to go up;
    anything else (counts, deltas, bucket data, the autotuner's
    cost-model *predictions*) is not a regression signal on its own.
    """
    if name.startswith(_INFORMATIONAL_PREFIXES):
        return None
    leaf = name.rsplit(".", 1)[-1]
    if any(s in leaf for s in _HIGHER_BETTER_SUBSTRINGS):
        return "higher"
    if leaf.endswith(_LOWER_BETTER_SUFFIXES) or any(
        s in leaf for s in _LOWER_BETTER_SUBSTRINGS
    ):
        return "lower"
    return None


@dataclass(frozen=True)
class MetricDelta:
    """One metric compared across two ledgers."""

    benchmark: str
    fingerprint: str
    metric: str
    baseline: float
    current: float
    direction: str
    #: relative change in the *bad* direction (positive = worse)
    worsening: float

    def regressed(self, threshold: float) -> bool:
        """Whether the movement exceeds ``threshold`` the wrong way."""
        return self.worsening > threshold


def compare(
    baseline: Ledger,
    current: Ledger,
    threshold: float = DEFAULT_THRESHOLD,
) -> tuple[list[MetricDelta], list[MetricDelta]]:
    """Diff two ledgers: ``(regressions, all_compared_deltas)``.

    Entries match on ``(benchmark, fingerprint)``; only directional
    metrics (see :func:`metric_direction`) present on both sides are
    compared.  ``worsening`` is ``current/baseline - 1`` for
    lower-is-better metrics and ``baseline/current - 1`` for
    higher-is-better ones, so "positive beyond the threshold" always
    means "got worse".  Baseline values of zero are skipped (no
    meaningful ratio).
    """
    base_by_key = baseline.by_key()
    cur_by_key = current.by_key()
    deltas: list[MetricDelta] = []
    for key in sorted(set(base_by_key) & set(cur_by_key)):
        b, c = base_by_key[key], cur_by_key[key]
        for metric in sorted(set(b.metrics) & set(c.metrics)):
            direction = metric_direction(metric)
            if direction is None:
                continue
            bv, cv = b.metrics[metric], c.metrics[metric]
            if bv <= 0 or cv <= 0:
                continue
            worsening = (
                cv / bv - 1.0 if direction == "lower" else bv / cv - 1.0
            )
            deltas.append(
                MetricDelta(
                    benchmark=key[0],
                    fingerprint=key[1],
                    metric=metric,
                    baseline=bv,
                    current=cv,
                    direction=direction,
                    worsening=worsening,
                )
            )
    regressions = [d for d in deltas if d.regressed(threshold)]
    return regressions, deltas


def render_compare(
    regressions: list[MetricDelta],
    deltas: list[MetricDelta],
    threshold: float,
) -> str:
    """Human-readable diff report for ``repro bench --compare``."""
    lines = [
        f"compared {len(deltas)} directional metrics "
        f"(threshold {threshold:.0%}): "
        f"{len(regressions)} regression(s)"
    ]
    for d in sorted(regressions, key=lambda d: -d.worsening):
        lines.append(
            f"  REGRESSED {d.benchmark}[{d.fingerprint}] {d.metric}: "
            f"{d.baseline:g} -> {d.current:g} "
            f"({d.worsening:+.1%} worse, {d.direction}-is-better)"
        )
    if not regressions and deltas:
        worst = max(deltas, key=lambda d: d.worsening)
        lines.append(
            f"  worst movement: {worst.benchmark} {worst.metric} "
            f"{worst.worsening:+.1%} (within threshold)"
        )
    return "\n".join(lines) + "\n"
